package opt

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
	"github.com/optlab/opt/internal/testutil"
)

func TestPublicQuickstartFlow(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 9, Edges: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()
	want := g.CountTriangles()

	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{OPT, OPTSerial, MGT, CCSeq, CCDS, GraphChiTri} {
		res, err := Triangulate(st, Options{Algorithm: alg, MemoryPages: 6, TempDir: t.TempDir()})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Triangles != want {
			t.Errorf("%v: triangles = %d, want %d", alg, res.Triangles, want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: Elapsed = %v", alg, res.Elapsed)
		}
		if res.PagesRead == 0 {
			t.Errorf("%v: PagesRead = 0", alg)
		}
	}
}

func TestPublicOpenStore(t *testing.T) {
	g := PaperExampleGraph()
	path := filepath.Join(t.TempDir(), "g.optstore")
	built, err := BuildStore(path, g, 64)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if opened.NumVertices() != built.NumVertices() || opened.NumPages() != built.NumPages() {
		t.Fatal("reopened store differs")
	}
	if opened.NumEdges() != 12 || opened.PageSize() != 64 || opened.Path() != path {
		t.Fatalf("store metadata wrong: %+v", opened)
	}
}

func TestPublicVertexIteratorModel(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triangulate(st, Options{Model: VertexIteratorModel, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 5 {
		t.Fatalf("triangles = %d, want 5", res.Triangles)
	}
}

func TestPublicOnTriangles(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got int
	res, err := Triangulate(st, Options{
		Algorithm: OPTSerial, MemoryPages: 4,
		OnTriangles: func(u, v uint32, ws []uint32) {
			mu.Lock()
			got += len(ws)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 || res.Triangles != 5 {
		t.Fatalf("listed %d, result %d, want 5", got, res.Triangles)
	}
}

func TestPublicEdgeListRoundtrip(t *testing.T) {
	in := `# comment
% another comment
10 20
20 30
30 10
42 10
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("parsed %v", g)
	}
	if g.CountTriangles() != 1 {
		t.Fatalf("triangles = %d, want 1", g.CountTriangles())
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.CountTriangles() != 1 {
		t.Fatal("roundtrip changed the graph")
	}
}

func TestPublicEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("single-field line: want error")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric: want error")
	}
}

func TestPublicGenerators(t *testing.T) {
	hk, err := GenerateHolmeKim(HolmeKimConfig{Vertices: 500, EdgesPerVertex: 4, TriadProb: 0.6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hk.AverageClusteringCoefficient() < 0.1 {
		t.Fatalf("HolmeKim cc = %v, want clustered", hk.AverageClusteringCoefficient())
	}
	er, err := GenerateErdosRenyi(500, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if er.NumVertices() != 500 {
		t.Fatal("ER size wrong")
	}
	if _, err := GenerateRMAT(RMATConfig{Vertices: -1}); err == nil {
		t.Error("bad RMAT config: want error")
	}
	k5 := CompleteGraph(5)
	if k5.CountTriangles() != 10 {
		t.Fatal("K5 triangles wrong")
	}
}

func TestPublicDatasetProxies(t *testing.T) {
	names := DatasetNames()
	if len(names) != 5 || names[0] != "lj" || names[4] != "yahoo" {
		t.Fatalf("DatasetNames = %v", names)
	}
	g, err := GenerateDatasetProxy("lj", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5000 {
		t.Fatalf("proxy |V| = %d", g.NumVertices())
	}
	if _, err := GenerateDatasetProxy("nope", 100); err == nil {
		t.Error("unknown proxy: want error")
	}
}

func TestPublicCountInMemory(t *testing.T) {
	g := PaperExampleGraph()
	for _, m := range []string{"", "edge", "vertex", "ayz"} {
		got, err := CountInMemory(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if got != 5 {
			t.Errorf("CountInMemory(%q) = %d, want 5", m, got)
		}
	}
	if _, err := CountInMemory(g, "magic"); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestPublicGraphAccessors(t *testing.T) {
	g := PaperExampleGraph()
	if g.NumVertices() != 8 || g.NumEdges() != 12 || g.MaxDegree() != 6 {
		t.Fatalf("accessors wrong: %v", g)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 7) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(2) != 6 {
		t.Fatal("Degree wrong")
	}
	if len(g.Neighbors(2)) != 6 {
		t.Fatal("Neighbors wrong")
	}
	tri := g.LocalTriangleCounts()
	if tri[2] != 4 {
		t.Fatal("LocalTriangleCounts wrong")
	}
	if g.Transitivity() <= 0 || g.AverageClusteringCoefficient() <= 0 {
		t.Fatal("metrics wrong")
	}
	og, perm := g.DegreeOrderedWithPerm()
	if og.CountTriangles() != 5 || len(perm) != 8 {
		t.Fatal("DegreeOrderedWithPerm wrong")
	}
	if s := g.String(); s == "" {
		t.Fatal("String empty")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		OPT: "OPT", OPTSerial: "OPT_serial", MGT: "MGT",
		CCSeq: "CC-Seq", CCDS: "CC-DS", GraphChiTri: "GraphChi-Tri",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm String empty")
	}
}

func TestUnknownAlgorithmErrors(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Triangulate(st, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm: want error")
	}
}

func TestBuildStoreStreamingPublic(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 256, Edges: 2000, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	want := g.CountTriangles()
	dir := t.TempDir()
	elPath := filepath.Join(dir, "g.el")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st, err := BuildStoreStreaming(filepath.Join(dir, "g.optstore"), elPath, 256)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triangulate(st, Options{Algorithm: OPT, MemoryPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != want {
		t.Fatalf("streaming store triangles = %d, want %d", res.Triangles, want)
	}
	if _, err := BuildStoreStreaming(filepath.Join(dir, "x"), "/nonexistent", 0); err == nil {
		t.Fatal("missing edge list: want error")
	}
}

func TestTriangulateContextPreCancelled(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	for _, alg := range []Algorithm{OPT, OPTSerial, MGT, CCSeq, CCDS, GraphChiTri} {
		res, err := TriangulateContext(ctx, st, Options{Algorithm: alg, MemoryPages: 4, TempDir: t.TempDir()})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", alg, err)
		}
		if res != nil {
			t.Errorf("%v: pre-cancelled run returned result %+v", alg, res)
		}
	}
	testutil.WaitGoroutines(t, before, "pre-cancelled runs")
}

func TestTriangulateContextMidRunCancel(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 10, Edges: 8000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 256)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err := TriangulateContext(ctx, st, Options{
		Algorithm:   OPT,
		MemoryPages: 4, // tiny budget forces many iterations
		Threads:     2,
		OnEvent: func(e Event) {
			if e.Kind == EventIterationEnd {
				once.Do(cancel) // cancel as soon as the first iteration ends
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("mid-run cancel must return the partial result")
	}
	if res.Iterations < 1 {
		t.Errorf("partial result reports %d iterations, want >= 1", res.Iterations)
	}
	if res.Elapsed <= 0 {
		t.Errorf("partial result Elapsed = %v", res.Elapsed)
	}
	testutil.WaitGoroutines(t, before, "mid-run cancel")
}

func TestDeviceErrorPropagation(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 9, Edges: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()
	st, err := storage.BuildFile(filepath.Join(t.TempDir(), "g.optstore"), g.internal(), 256)
	if err != nil {
		t.Fatal(err)
	}
	base, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = base.Close() }()

	before := runtime.NumGoroutine()
	for _, name := range []string{"OPT", "OPT_serial", "MGT", "CC-Seq", "CC-DS", "GraphChi-Tri"} {
		faulty := &ssd.FaultyDevice{PageDevice: base, FailEveryN: 5}
		_, err := engine.Run(context.Background(), name, st, faulty,
			engine.Options{MemoryPages: 4, TempDir: t.TempDir()})
		if err == nil {
			t.Errorf("%s: injected read fault was swallowed", name)
			continue
		}
		if !errors.Is(err, ssd.ErrInjected) {
			t.Errorf("%s: err = %v, want ssd.ErrInjected in the chain", name, err)
		}
	}
	testutil.WaitGoroutines(t, before, "device-error propagation")
}

func TestPublicOptionValidation(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	cb := func(u, v uint32, ws []uint32) {}
	cases := []struct {
		name string
		opts Options
	}{
		{"negative threads", Options{Threads: -1}},
		{"negative queue depth", Options{QueueDepth: -1}},
		{"negative memory pages", Options{MemoryPages: -1}},
		{"memory fraction above one", Options{MemoryFraction: 1.5}},
		{"triangles from counting-only GraphChi", Options{Algorithm: GraphChiTri, OnTriangles: cb}},
		{"iterator model on MGT", Options{Algorithm: MGT, Model: VertexIteratorModel}},
	}
	for _, tc := range cases {
		if _, err := Triangulate(st, tc.opts); err == nil {
			t.Errorf("%s: invalid options accepted", tc.name)
		}
	}
}

func TestPublicOnEvent(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[EventKind]int{}
	res, err := Triangulate(st, Options{
		Algorithm:   OPTSerial,
		MemoryPages: 4,
		OnEvent: func(e Event) {
			mu.Lock()
			seen[e.Kind]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 5 {
		t.Fatalf("triangles = %d, want 5", res.Triangles)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[EventRunStart] != 1 || seen[EventRunEnd] != 1 {
		t.Errorf("run boundary events = %d/%d, want 1/1", seen[EventRunStart], seen[EventRunEnd])
	}
	if seen[EventIterationEnd] < 1 {
		t.Error("no IterationEnd events observed")
	}
	if seen[EventTrianglesFound] < 1 {
		t.Error("no TrianglesFound events observed")
	}
	if seen[EventPagesRead] < 1 {
		t.Error("no PagesRead events observed")
	}
}

func TestBuildStoreStreamingContextCancelled(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 256, Edges: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	elPath := filepath.Join(dir, "g.el")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildStoreStreamingContext(ctx, filepath.Join(dir, "g.optstore"), elPath, 256); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPublicMGTInstanceModel(t *testing.T) {
	g := PaperExampleGraph()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triangulate(st, Options{Model: MGTInstanceModel, Algorithm: OPTSerial, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 5 {
		t.Fatalf("triangles = %d, want 5", res.Triangles)
	}
}
