package opt

import (
	"fmt"
	"time"

	"github.com/optlab/opt/internal/cluster"
)

// DistributedMethod selects one of the distributed triangle-counting
// systems the paper compares against in Table 7.
type DistributedMethod int

// Simulated distributed methods.
const (
	// SV is the MapReduce partition algorithm of Suri & Vassilvitskii
	// (WWW'11), with its Θ(ρ)-duplicated, disk-materialised shuffle.
	SV DistributedMethod = iota
	// AKM is the PATRIC MPI triangulation of Arifuzzaman, Khan & Marathe
	// (CIKM'13) over work-balanced overlapping partitions.
	AKM
	// PowerGraph is the GAS triangle counter of Gonzalez et al. (OSDI'12)
	// over a 2D grid vertex-cut.
	PowerGraph
)

// String implements fmt.Stringer.
func (m DistributedMethod) String() string {
	switch m {
	case SV:
		return "SV"
	case AKM:
		return "AKM"
	case PowerGraph:
		return "PowerGraph"
	default:
		return fmt.Sprintf("DistributedMethod(%d)", int(m))
	}
}

// ClusterConfig describes the simulated cluster (see DESIGN.md §3: node
// compute is real Go work on real partitions; network, shuffle-disk and
// framework costs are modelled from actual byte volumes).
type ClusterConfig struct {
	// Nodes is the machine count (the paper uses 31 workers). Default 31.
	Nodes int
	// CoresPerNode is the per-machine core count (paper: 12). Default 12.
	CoresPerNode int
	// SVColors is the ρ parameter of SV's universal hash (default 6).
	SVColors int
}

// DistributedResult reports a simulated distributed run.
type DistributedResult struct {
	Method    DistributedMethod
	Triangles int64
	// Elapsed is the modelled wall-clock time.
	Elapsed time.Duration
	// ComputeMax is the bottleneck node's ideal-scaled compute time.
	ComputeMax time.Duration
	// CommTime is the priced communication time.
	CommTime time.Duration
	// BytesShuffled is the bytes moved between nodes.
	BytesShuffled int64
}

// SimulateDistributed counts triangles with a simulated distributed
// system, as in the paper's Table 7 comparison. Counts are exact; timings
// combine measured per-partition compute with a modelled network.
func SimulateDistributed(g *Graph, method DistributedMethod, cfg ClusterConfig) (*DistributedResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 31
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 12
	}
	if cfg.SVColors <= 0 {
		cfg.SVColors = 6
	}
	ccfg := cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.CoresPerNode, Net: cluster.DefaultNet()}
	var res *cluster.Result
	var err error
	switch method {
	case SV:
		res, err = cluster.RunSV(g.internal(), cfg.SVColors, ccfg)
	case AKM:
		res, err = cluster.RunAKM(g.internal(), ccfg)
	case PowerGraph:
		res, err = cluster.RunPowerGraph(g.internal(), ccfg)
	default:
		return nil, fmt.Errorf("opt: unknown distributed method %v", method)
	}
	if err != nil {
		return nil, err
	}
	return &DistributedResult{
		Method:        method,
		Triangles:     res.Triangles,
		Elapsed:       res.SimElapsed,
		ComputeMax:    res.ComputeMax,
		CommTime:      res.CommTime,
		BytesShuffled: res.BytesShuffled,
	}, nil
}
