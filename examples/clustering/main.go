// Clustering analysis: the network-analysis application from the paper's
// introduction — clustering coefficients [19] and transitivity [18] are
// obtained directly from triangulation. This example contrasts a
// high-clustering social-style network (Holme–Kim) with a random graph of
// the same density, listing triangles through the disk-based framework.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"

	opt "github.com/optlab/opt"
)

func main() {
	const n = 20_000
	social, err := opt.GenerateHolmeKim(opt.HolmeKimConfig{
		Vertices: n, EdgesPerVertex: 8, TriadProb: 0.6, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	random, err := opt.GenerateErdosRenyi(n, social.NumEdges(), 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("network           |V|     |E|      triangles  avg-CC  transitivity")
	for _, tc := range []struct {
		name string
		g    *opt.Graph
	}{
		{"social (HK)", social},
		{"random (ER)", random},
	} {
		tris := countViaDisk(tc.g)
		fmt.Printf("%-14s %7d %8d %10d  %.4f  %.4f\n",
			tc.name, tc.g.NumVertices(), tc.g.NumEdges(), tris,
			tc.g.AverageClusteringCoefficient(), tc.g.Transitivity())
	}

	// Per-vertex clustering: the social network's hubs sit in dense
	// neighborhoods; list the 5 most clustered high-degree vertices.
	cc := social.ClusteringCoefficients()
	type vc struct {
		v  int
		cc float64
	}
	var hubs []vc
	for v := 0; v < social.NumVertices(); v++ {
		if social.Degree(uint32(v)) >= 30 {
			hubs = append(hubs, vc{v, cc[v]})
		}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].cc > hubs[j].cc })
	fmt.Println("\nmost clustered hubs (degree ≥ 30):")
	for i := 0; i < 5 && i < len(hubs); i++ {
		fmt.Printf("  vertex %6d  degree %3d  C(v) = %.3f\n",
			hubs[i].v, social.Degree(uint32(hubs[i].v)), hubs[i].cc)
	}
}

// countViaDisk stores the graph and triangulates it with OPT, counting via
// the listing callback to demonstrate exact enumeration.
func countViaDisk(g *opt.Graph) int64 {
	dir, err := os.MkdirTemp("", "opt-clustering-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "g.optstore"), g.DegreeOrdered(), 0)
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	var tris int64
	_, err = opt.Triangulate(st, opt.Options{
		Algorithm: opt.OPT, Threads: 4, MemoryFraction: 0.15,
		OnTriangles: func(_, _ uint32, ws []uint32) {
			mu.Lock()
			tris += int64(len(ws))
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return tris
}
