// One machine vs a cluster — the Table 7 story: a single machine running
// the OPT framework against simulated 31-node deployments of SV (Hadoop),
// AKM (MPI) and PowerGraph on the same graph. Distributed counts are
// exact (real computation on real partitions); their network, shuffle and
// framework costs are modelled (see DESIGN.md §3).
//
// Run with: go run ./examples/onemachine
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	opt "github.com/optlab/opt"
)

func main() {
	g, err := opt.GenerateDatasetProxy("twitter", 12_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %v (TWITTER proxy)\n\n", g)

	// One machine: the OPT framework with all cores.
	dir, err := os.MkdirTemp("", "opt-onemachine-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "g.optstore"), g, 0)
	if err != nil {
		log.Fatal(err)
	}
	one, err := opt.Triangulate(st, opt.Options{
		Algorithm: opt.OPT, Threads: runtime.NumCPU(), MemoryFraction: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("method       machines  triangles   elapsed     shuffled")
	fmt.Printf("%-12s %8d  %10d  %-10v  %s\n", "OPT", 1, one.Triangles, one.Elapsed.Round(time.Millisecond), "-")

	cfg := opt.ClusterConfig{Nodes: 31, CoresPerNode: 12}
	for _, m := range []opt.DistributedMethod{opt.SV, opt.AKM, opt.PowerGraph} {
		res, err := opt.SimulateDistributed(g, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Triangles != one.Triangles {
			log.Fatalf("%v count %d != OPT %d", m, res.Triangles, one.Triangles)
		}
		fmt.Printf("%-12s %8d  %10d  %-10v  %s\n",
			m, cfg.Nodes, res.Triangles, res.Elapsed.Round(time.Millisecond), mb(res.BytesShuffled))
	}

	fmt.Println("\nper-machine relative performance (elapsed × machines, normalised to OPT):")
	for _, m := range []opt.DistributedMethod{opt.SV, opt.AKM, opt.PowerGraph} {
		res, err := opt.SimulateDistributed(g, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rel := float64(res.Elapsed) * float64(cfg.Nodes) / float64(one.Elapsed)
		fmt.Printf("  %-12s %8.1f× the resources per unit of work\n", m, rel)
	}
}

func mb(b int64) string {
	return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
}
