// Community detection from triangles — the application of Prat-Pérez et
// al. [26] cited in the paper's introduction: good communities contain
// many triangles. This example plants dense communities in a sparse
// background, lists all triangles with the disk-based framework, and
// recovers the communities by growing connected components over the
// *triangle graph* (vertices joined only when they share a triangle edge),
// scoring each candidate by triangle density.
//
// Run with: go run ./examples/community
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	opt "github.com/optlab/opt"
)

const (
	numCommunities = 12
	communitySize  = 60
	background     = 30_000
)

func main() {
	g, truth := buildPlantedGraph()
	fmt.Printf("graph: %v with %d planted communities of %d members\n",
		g, numCommunities, communitySize)

	og, perm := g.DegreeOrderedWithPerm()
	dir, err := os.MkdirTemp("", "opt-community-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "g.optstore"), og, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Union-find over triangle edges: only edges that participate in at
	// least K triangles join communities (filters the sparse background).
	const minSupport = 3
	support := map[[2]uint32]int{}
	var mu sync.Mutex
	if _, err := opt.Triangulate(st, opt.Options{
		Algorithm: opt.OPT, Threads: 4, MemoryFraction: 0.15,
		OnTriangles: func(u, v uint32, ws []uint32) {
			mu.Lock()
			for _, w := range ws {
				support[key(u, v)]++
				support[key(u, w)]++
				support[key(v, w)]++
			}
			mu.Unlock()
		},
	}); err != nil {
		log.Fatal(err)
	}

	uf := newUnionFind(og.NumVertices())
	for e, s := range support {
		if s >= minSupport {
			uf.union(int(e[0]), int(e[1]))
		}
	}

	// Collect components of size >= 5 as community candidates.
	members := map[int][]uint32{}
	for v := 0; v < og.NumVertices(); v++ {
		r := uf.find(v)
		members[r] = append(members[r], perm[v]) // back to original ids
	}
	type community struct {
		size int
		ids  []uint32
	}
	var found []community
	for _, ids := range members {
		if len(ids) >= 5 {
			found = append(found, community{size: len(ids), ids: ids})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].size > found[j].size })

	fmt.Printf("\nrecovered %d triangle-dense communities (≥5 members):\n", len(found))
	correct := 0
	for i, c := range found {
		label, purity := dominantLabel(c.ids, truth)
		if purity >= 0.8 && label >= 0 {
			correct++
		}
		if i < 8 {
			fmt.Printf("  community %2d: %3d members, %3.0f%% from planted community %d\n",
				i, c.size, purity*100, label)
		}
	}
	fmt.Printf("\n%d/%d planted communities recovered with ≥80%% purity\n", correct, numCommunities)
	if correct < numCommunities*2/3 {
		log.Fatal("community recovery failed")
	}
}

func key(a, b uint32) [2]uint32 {
	if a > b {
		a, b = b, a
	}
	return [2]uint32{a, b}
}

// dominantLabel returns the planted community most of ids belong to and
// the fraction belonging to it (-1 when most members are background).
func dominantLabel(ids []uint32, truth map[uint32]int) (int, float64) {
	counts := map[int]int{}
	for _, id := range ids {
		if lbl, ok := truth[id]; ok {
			counts[lbl]++
		} else {
			counts[-1]++
		}
	}
	best, bestN := -1, 0
	for lbl, n := range counts {
		if n > bestN {
			best, bestN = lbl, n
		}
	}
	return best, float64(bestN) / float64(len(ids))
}

// buildPlantedGraph embeds dense communities (p=0.5 cliques-ish) in a
// sparse random background, returning vertex -> community labels.
func buildPlantedGraph() (*opt.Graph, map[uint32]int) {
	rng := rand.New(rand.NewSource(5))
	total := background + numCommunities*communitySize
	var edges []opt.Edge
	// Sparse background: avg degree 4, almost triangle-free.
	for i := 0; i < background*2; i++ {
		u := uint32(rng.Intn(total))
		v := uint32(rng.Intn(total))
		edges = append(edges, opt.Edge{U: u, V: v})
	}
	truth := map[uint32]int{}
	for c := 0; c < numCommunities; c++ {
		base := background + c*communitySize
		for i := 0; i < communitySize; i++ {
			truth[uint32(base+i)] = c
			for j := i + 1; j < communitySize; j++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, opt.Edge{U: uint32(base + i), V: uint32(base + j)})
				}
			}
		}
	}
	g, err := opt.NewGraph(total, edges)
	if err != nil {
		log.Fatal(err)
	}
	return g, truth
}

// unionFind is a path-compressing disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
