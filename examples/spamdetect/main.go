// Spam detection by local triangle counting — the application of
// Becchetti et al. [7] cited in the paper's introduction: spam pages in a
// web graph link into farms with abnormally few triangles relative to
// their degree, while legitimate hub pages accumulate many.
//
// The example plants a link farm (a dense bipartite-style gadget with no
// triangles) inside a normal web-like graph, computes per-vertex triangle
// counts through the disk-based framework's listing output, and ranks
// suspects by the triangle-to-wedge ratio.
//
// Run with: go run ./examples/spamdetect
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	opt "github.com/optlab/opt"
)

const (
	normalVertices = 30_000
	farmSize       = 40 // spam pages
	farmTargets    = 25 // boosted pages each spam page links to
)

func main() {
	g, spamIDs := buildWebGraph()
	fmt.Printf("web graph: %v (%d planted spam pages)\n", g, len(spamIDs))

	// Degree-order for the framework; keep the permutation to map results
	// back to original page ids.
	og, perm := g.DegreeOrderedWithPerm()

	dir, err := os.MkdirTemp("", "opt-spam-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "web.optstore"), og, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Per-vertex triangle counts from the disk-based listing.
	tri := make([]int64, og.NumVertices())
	var mu sync.Mutex
	if _, err := opt.Triangulate(st, opt.Options{
		Algorithm: opt.OPT, Threads: 4, MemoryFraction: 0.15,
		OnTriangles: func(u, v uint32, ws []uint32) {
			mu.Lock()
			for _, w := range ws {
				tri[u]++
				tri[v]++
				tri[w]++
			}
			mu.Unlock()
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Score pages: low triangles per wedge at high degree is suspicious.
	type suspect struct {
		page  uint32
		deg   int
		tris  int64
		score float64
	}
	var suspects []suspect
	for v := 0; v < og.NumVertices(); v++ {
		d := og.Degree(uint32(v))
		if d < 10 {
			continue // too small to judge
		}
		wedges := float64(d) * float64(d-1) / 2
		s := suspect{page: perm[v], deg: d, tris: tri[v]}
		s.score = float64(s.tris) / wedges
		suspects = append(suspects, s)
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].score < suspects[j].score })

	isSpam := map[uint32]bool{}
	for _, s := range spamIDs {
		isSpam[s] = true
	}
	fmt.Println("\nmost suspicious pages (lowest triangle/wedge ratio):")
	fmt.Println("  page     degree  triangles  ratio    planted-spam?")
	hits := 0
	top := farmSize
	if top > len(suspects) {
		top = len(suspects)
	}
	for i := 0; i < top; i++ {
		s := suspects[i]
		mark := ""
		if isSpam[s.page] {
			mark = "YES"
			hits++
		}
		if i < 10 {
			fmt.Printf("  %-8d %6d  %9d  %.5f  %s\n", s.page, s.deg, s.tris, s.score, mark)
		}
	}
	fmt.Printf("  …\nprecision@%d: %d/%d planted spam pages recovered (%.0f%%)\n",
		top, hits, farmSize, 100*float64(hits)/float64(farmSize))
	if hits < farmSize/2 {
		log.Fatal("detector failed: fewer than half the planted spam pages ranked on top")
	}
}

// buildWebGraph assembles a triangle-rich Holme–Kim web graph plus a
// planted triangle-free link farm, returning the farm's page ids.
func buildWebGraph() (*opt.Graph, []uint32) {
	base, err := opt.GenerateHolmeKim(opt.HolmeKimConfig{
		Vertices: normalVertices, EdgesPerVertex: 7, TriadProb: 0.55, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	n := base.NumVertices()
	var edges []opt.Edge
	for v := 0; v < n; v++ {
		for _, w := range base.Neighbors(uint32(v)) {
			if uint32(v) < w {
				edges = append(edges, opt.Edge{U: uint32(v), V: w})
			}
		}
	}
	// Spam pages: each links to a disjoint-ish random set of boosted
	// targets; no links among spam pages, no shared neighbors by design
	// randomness — near-zero triangles at high degree.
	var spamIDs []uint32
	total := n + farmSize
	for s := 0; s < farmSize; s++ {
		id := uint32(n + s)
		spamIDs = append(spamIDs, id)
		seen := map[uint32]struct{}{}
		for len(seen) < farmTargets {
			t := uint32(rng.Intn(n))
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			edges = append(edges, opt.Edge{U: id, V: t})
		}
	}
	g, err := opt.NewGraph(total, edges)
	if err != nil {
		log.Fatal(err)
	}
	return g, spamIDs
}
