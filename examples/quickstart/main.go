// Quickstart: generate a scale-free graph, store it in the slotted-page
// format, and triangulate it with the OPT framework — comparing against
// MGT and the in-memory oracle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	opt "github.com/optlab/opt"
)

func main() {
	// 1. Generate an R-MAT graph (the paper's synthetic workload) and apply
	// the degree-based ordering every method assumes.
	g, err := opt.GenerateRMAT(opt.RMATConfig{Vertices: 1 << 14, Edges: 1 << 18, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	g = g.DegreeOrdered()
	fmt.Printf("graph: %v, max degree %d\n", g, g.MaxDegree())

	// 2. Build the on-disk store.
	dir, err := os.MkdirTemp("", "opt-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "graph.optstore"), g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d pages of %d bytes\n", st.NumPages(), st.PageSize())

	// 3. Triangulate with OPT using a 15% memory budget (the paper's
	// default), all cores, and thread morphing.
	res, err := opt.Triangulate(st, opt.Options{
		Algorithm:      opt.OPT,
		Threads:        runtime.NumCPU(),
		MemoryFraction: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPT:        %d triangles in %v (%d iterations, %d pages read, %d reused)\n",
		res.Triangles, res.Elapsed, res.Iterations, res.PagesRead, res.ReusedPages)

	// 4. Cross-check with MGT and the in-memory oracle.
	mres, err := opt.Triangulate(st, opt.Options{Algorithm: opt.MGT, MemoryFraction: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MGT:        %d triangles in %v (%d pages read)\n",
		mres.Triangles, mres.Elapsed, mres.PagesRead)
	oracle, err := opt.CountInMemory(g, "edge")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory:  %d triangles\n", oracle)
	if res.Triangles != oracle || mres.Triangles != oracle {
		log.Fatal("counts disagree!")
	}
	fmt.Println("all methods agree ✓")
}
