package opt

import (
	"path/filepath"
	"testing"
)

func storeFor(t *testing.T, g *Graph) *Store {
	t.Helper()
	st, err := BuildStore(filepath.Join(t.TempDir(), "g.optstore"), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestVertexTriangleCounts(t *testing.T) {
	g := PaperExampleGraph()
	st := storeFor(t, g)
	counts, err := VertexTriangleCounts(st, Options{Algorithm: OPT, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the in-memory computation.
	want := g.LocalTriangleCounts()
	for v := range want {
		if counts[v] != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, counts[v], want[v])
		}
	}
	// Rejects a non-nil OnTriangles.
	if _, err := VertexTriangleCounts(st, Options{OnTriangles: func(u, v uint32, ws []uint32) {}}); err == nil {
		t.Fatal("want error for non-nil OnTriangles")
	}
}

func TestEdgeSupportK4(t *testing.T) {
	g := CompleteGraph(4)
	st := storeFor(t, g)
	sup, err := EdgeSupport(st, Options{Algorithm: OPTSerial, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge of K4 lies in exactly 2 triangles.
	if len(sup) != 6 {
		t.Fatalf("support for %d edges, want 6", len(sup))
	}
	for e, s := range sup {
		if s != 2 {
			t.Fatalf("edge %v support %d, want 2", e, s)
		}
	}
}

func TestEdgeSupportPaperExample(t *testing.T) {
	g := PaperExampleGraph()
	st := storeFor(t, g)
	sup, err := EdgeSupport(st, Options{Algorithm: OPT, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Edge (c=2, f=5) lies in Δcdf and Δcfg: support 2.
	if got := sup[[2]uint32{2, 5}]; got != 2 {
		t.Fatalf("support(c,f) = %d, want 2", got)
	}
	// Edge (a=0, b=1) lies only in Δabc.
	if got := sup[[2]uint32{0, 1}]; got != 1 {
		t.Fatalf("support(a,b) = %d, want 1", got)
	}
	// Sum of supports = 3 × triangles.
	total := 0
	for _, s := range sup {
		total += s
	}
	if total != 15 {
		t.Fatalf("Σ support = %d, want 15", total)
	}
}

func TestTrussDecomposition(t *testing.T) {
	// K5 is a 5-truss: every edge has truss number 5.
	g := CompleteGraph(5)
	st := storeFor(t, g)
	truss, err := TrussDecomposition(g, st, Options{Algorithm: OPTSerial, MemoryPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(truss) != 10 {
		t.Fatalf("truss for %d edges, want 10", len(truss))
	}
	for e, k := range truss {
		if k != 5 {
			t.Fatalf("edge %v truss %d, want 5", e, k)
		}
	}
}

func TestTrussDecompositionMixed(t *testing.T) {
	// A K4 (4-truss) plus one pendant triangle (3-truss).
	edges := []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}, // K4
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 4, V: 5}, // pendant triangle
	}
	g, err := NewGraph(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	st := storeFor(t, g)
	truss, err := TrussDecomposition(g, st, Options{Algorithm: OPTSerial, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
		if truss[e] != 4 {
			t.Fatalf("K4 edge %v truss = %d, want 4", e, truss[e])
		}
	}
	for _, e := range [][2]uint32{{3, 4}, {3, 5}, {4, 5}} {
		if truss[e] != 3 {
			t.Fatalf("pendant edge %v truss = %d, want 3", e, truss[e])
		}
	}
}
