package opt_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	opt "github.com/optlab/opt"
)

// Example demonstrates the core flow: build a graph, store it, and
// triangulate with the OPT framework.
func Example() {
	// The paper's Figure 1 example graph (vertices a..h), which contains
	// exactly five triangles.
	g := opt.PaperExampleGraph()

	dir, err := os.MkdirTemp("", "opt-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "g.optstore"), g, 64)
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.Triangulate(st, opt.Options{Algorithm: opt.OPT, MemoryPages: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Triangles)
	// Output: 5
}

// ExampleTriangulate_listing shows triangle listing in the paper's nested
// representation ⟨u, v, {w…}⟩.
func ExampleTriangulate_listing() {
	g := opt.PaperExampleGraph()
	dir, err := os.MkdirTemp("", "opt-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "g.optstore"), g, 64)
	if err != nil {
		log.Fatal(err)
	}
	var count int
	_, err = opt.Triangulate(st, opt.Options{
		Algorithm:   opt.OPTSerial, // serial mode lists deterministically, in order
		MemoryPages: 4,
		OnTriangles: func(u, v uint32, ws []uint32) { count += len(ws) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(count)
	// Output: 5
}

// ExampleGraph_CountTriangles shows the in-memory oracle on a complete
// graph: K5 has C(5,3) = 10 triangles.
func ExampleGraph_CountTriangles() {
	fmt.Println(opt.CompleteGraph(5).CountTriangles())
	// Output: 10
}

// ExampleEdgeSupport computes per-edge triangle support, the quantity
// k-truss decomposition builds on. Every edge of K4 lies in 2 triangles.
func ExampleEdgeSupport() {
	g := opt.CompleteGraph(4)
	dir, err := os.MkdirTemp("", "opt-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := opt.BuildStore(filepath.Join(dir, "g.optstore"), g, 64)
	if err != nil {
		log.Fatal(err)
	}
	support, err := opt.EdgeSupport(st, opt.Options{MemoryPages: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(support), support[[2]uint32{0, 1}])
	// Output: 6 2
}
