package opt

import (
	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
)

// RMATConfig configures the R-MAT generator [Chakrabarti et al., SDM'04]
// used throughout the paper's synthetic experiments (§5.8). Zero quadrant
// probabilities select the GTgraph defaults (a=0.45, b=0.15, c=0.15,
// d=0.25) with 10% noise.
type RMATConfig struct {
	Vertices   int
	Edges      int64
	A, B, C, D float64
	Noise      float64
	Seed       int64
}

// GenerateRMAT samples an R-MAT graph and simplifies it.
func GenerateRMAT(cfg RMATConfig) (*Graph, error) {
	p := gen.RMATParams{
		NumVertices: cfg.Vertices,
		NumEdges:    cfg.Edges,
		A:           cfg.A, B: cfg.B, C: cfg.C, D: cfg.D,
		Noise: cfg.Noise,
		Seed:  cfg.Seed,
	}
	if p.A == 0 && p.B == 0 && p.C == 0 && p.D == 0 {
		p.A, p.B, p.C, p.D = 0.45, 0.15, 0.15, 0.25
		if p.Noise == 0 {
			p.Noise = 0.1
		}
	}
	g, err := gen.RMAT(p)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GenerateErdosRenyi samples a G(n, m) random graph and simplifies it.
func GenerateErdosRenyi(n int, m int64, seed int64) (*Graph, error) {
	g, err := gen.ErdosRenyi(n, m, seed)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// HolmeKimConfig configures the tunable-clustering scale-free generator
// [Holme & Kim, Phys. Rev. E 2002] used for the Figure 7c sweep.
type HolmeKimConfig struct {
	Vertices int
	// EdgesPerVertex is M: edges attached per new vertex (avg degree ≈ 2M).
	EdgesPerVertex int
	// TriadProb is the probability of a triad-formation step after each
	// preferential attachment; larger values raise the clustering
	// coefficient at near-constant density.
	TriadProb float64
	Seed      int64
}

// GenerateHolmeKim grows a Holme–Kim graph.
func GenerateHolmeKim(cfg HolmeKimConfig) (*Graph, error) {
	g, err := gen.HolmeKim(gen.HolmeKimParams{
		NumVertices: cfg.Vertices,
		M:           cfg.EdgesPerVertex,
		TriadProb:   cfg.TriadProb,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// DatasetNames lists the Table 2 dataset proxies available from
// GenerateDatasetProxy, in paper order: lj, orkut, twitter, uk, yahoo.
func DatasetNames() []string {
	names := make([]string, len(gen.Datasets))
	for i, d := range gen.Datasets {
		names[i] = d.Name
	}
	return names
}

// GenerateDatasetProxy generates a degree-ordered R-MAT proxy of one of
// the paper's five real-world datasets at the given vertex count,
// preserving the original's |E|/|V| density (see DESIGN.md §3 for the
// substitution rationale).
func GenerateDatasetProxy(name string, vertices int) (*Graph, error) {
	d, err := gen.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	g, err := d.Proxy(vertices)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// CompleteGraph returns K_n (useful for tests and demos: C(n,3) triangles).
func CompleteGraph(n int) *Graph { return &Graph{g: graph.Complete(n)} }

// PaperExampleGraph returns the 8-vertex example graph of the paper's
// Figure 1, which contains exactly five triangles.
func PaperExampleGraph() *Graph { return &Graph{g: graph.PaperExample()} }
