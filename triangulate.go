package opt

import (
	"fmt"
	"time"

	"github.com/optlab/opt/internal/baselines/cc"
	"github.com/optlab/opt/internal/baselines/gchi"
	"github.com/optlab/opt/internal/baselines/inmem"
	"github.com/optlab/opt/internal/baselines/mgt"
	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Store is an on-disk graph in the paper's slotted-page representation
// (§3.2): records in id order, oversized adjacency lists in page runs, with
// memory-resident vertex and page directories.
type Store struct {
	st *storage.Store
}

// BuildStore writes g to path. pageSize 0 selects the 8 KiB default.
func BuildStore(path string, g *Graph, pageSize int) (*Store, error) {
	st, err := storage.BuildFile(path, g.internal(), pageSize)
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// OpenStore opens a store built by BuildStore.
func OpenStore(path string) (*Store, error) {
	st, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// NumVertices returns |V|.
func (s *Store) NumVertices() int { return s.st.NumVertices }

// NumEdges returns |E|.
func (s *Store) NumEdges() int64 { return s.st.NumEdges }

// NumPages returns P(G), the number of data pages.
func (s *Store) NumPages() int { return int(s.st.NumPages) }

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.st.PageSize }

// Path returns the store file's path.
func (s *Store) Path() string { return s.st.Path }

// Algorithm selects a triangulation method.
type Algorithm int

// Available algorithms. OPT and OPTSerial are the paper's contribution;
// the rest are the comparison methods of §5.
const (
	// OPT is the fully overlapped, parallel framework (§3.2–§3.4).
	OPT Algorithm = iota
	// OPTSerial disables the macro-level overlap (§3.3) — single-core OPT
	// with asynchronous external I/O only.
	OPTSerial
	// MGT is Hu et al.'s read-only disk method (SIGMOD'13), an OPT instance
	// with synchronous I/O and no internal triangulation (§3.5, Eq. 7).
	MGT
	// CCSeq is the Chu–Cheng iterative method with sequential partitions.
	CCSeq
	// CCDS is the Chu–Cheng method with the degree-set heuristic.
	CCDS
	// GraphChiTri is GraphChi's triangle-counting application (counting
	// only).
	GraphChiTri
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case OPT:
		return "OPT"
	case OPTSerial:
		return "OPT_serial"
	case MGT:
		return "MGT"
	case CCSeq:
		return "CC-Seq"
	case CCDS:
		return "CC-DS"
	case GraphChiTri:
		return "GraphChi-Tri"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// IteratorModel selects the pluggable iterator model for OPT/OPTSerial.
type IteratorModel int

// Iterator models (§2.2, §3.5).
const (
	// EdgeIteratorModel intersects n≻(u) ∩ n≻(v) per edge — the faster
	// model, used by default (§5.1).
	EdgeIteratorModel IteratorModel = iota
	// VertexIteratorModel checks pairs (v, w) ∈ n≻(u)² against E.
	VertexIteratorModel
	// MGTInstanceModel is the §3.5 degenerate instantiation of the
	// framework (no internal triangulation, every adjacent vertex an
	// external candidate) — included to demonstrate the framework's
	// genericity. Prefer the MGT algorithm for the faithful baseline.
	MGTInstanceModel
)

// DeviceLatency simulates FlashSSD latency so the I/O-to-CPU cost ratio is
// controllable regardless of the host's real storage (DESIGN.md §3).
type DeviceLatency struct {
	// PerRead is the fixed cost per read request.
	PerRead time.Duration
	// PerPage is the streaming cost per page.
	PerPage time.Duration
}

// Options configures Triangulate.
type Options struct {
	// Algorithm defaults to OPT.
	Algorithm Algorithm
	// Model defaults to EdgeIteratorModel (OPT/OPTSerial only).
	Model IteratorModel
	// Threads is the worker count for parallel algorithms (default 2 for
	// OPT, 1 for GraphChiTri).
	Threads int
	// MemoryPages is the buffer budget m in pages. When 0,
	// MemoryFraction applies.
	MemoryPages int
	// MemoryFraction sets the budget as a fraction of the store size (the
	// paper sweeps 5%–25%; 15% is its default). Default 0.15.
	MemoryFraction float64
	// QueueDepth is the FlashSSD channel parallelism for OPT (default 8).
	QueueDepth int
	// Latency simulates device latency on every page read and write.
	Latency DeviceLatency
	// DisableMorphing turns off thread morphing (OPT only; Figure 4).
	DisableMorphing bool
	// OnTriangles, when non-nil, receives every triangle in the nested
	// representation ⟨u, v, {w…}⟩. It must be safe for concurrent calls.
	// GraphChiTri ignores it (it is a counting method).
	OnTriangles func(u, v uint32, ws []uint32)
	// CollectIterStats records per-iteration timings (OPT/OPTSerial).
	CollectIterStats bool
	// TempDir is used by CCSeq/CCDS/GraphChiTri for remainder files.
	TempDir string
}

// IterationStat mirrors core.IterationStat for the public API.
type IterationStat = core.IterationStat

// Result reports a Triangulate run.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Triangles is the exact triangle count.
	Triangles int64
	// Elapsed is the wall-clock time, including simulated latency.
	Elapsed time.Duration
	// Iterations is the number of outer-loop iterations/blocks.
	Iterations int
	// PagesRead and PagesWritten are the I/O volumes in pages.
	PagesRead, PagesWritten int64
	// ReusedPages is the Δin buffered-page credit (OPT only).
	ReusedPages int64
	// IntersectOps is the Eq. 3 min-model CPU cost.
	IntersectOps int64
	// IterStats is populated when Options.CollectIterStats is set.
	IterStats []IterationStat
}

func (o *Options) budget(st *storage.Store) int {
	if o.MemoryPages > 0 {
		return o.MemoryPages
	}
	f := o.MemoryFraction
	if f <= 0 {
		f = 0.15
	}
	m := int(float64(st.NumPages) * f)
	if m < 2 {
		m = 2
	}
	return m
}

func (o *Options) latency() ssd.Latency {
	return ssd.Latency{PerRead: o.Latency.PerRead, PerPage: o.Latency.PerPage}
}

// Triangulate runs the selected disk-based triangulation algorithm over the
// store.
func Triangulate(s *Store, opts Options) (*Result, error) {
	st := s.st
	base, err := st.Device()
	if err != nil {
		return nil, err
	}
	defer base.Close()
	mx := metrics.NewCollector()

	var out core.Output
	if opts.OnTriangles != nil {
		out = core.FuncOutput(opts.OnTriangles)
	}

	res := &Result{Algorithm: opts.Algorithm}
	start := time.Now()
	switch opts.Algorithm {
	case OPT, OPTSerial:
		mode := core.Parallel
		if opts.Algorithm == OPTSerial {
			mode = core.Serial
		}
		model := core.EdgeIterator
		switch opts.Model {
		case VertexIteratorModel:
			model = core.VertexIterator
		case MGTInstanceModel:
			model = core.MGTInstance
		}
		cres, err := core.Run(st, base, core.Options{
			Model:            model,
			Mode:             mode,
			Threads:          opts.Threads,
			MemoryPages:      opts.budget(st),
			QueueDepth:       opts.QueueDepth,
			Latency:          opts.latency(),
			DisableMorphing:  opts.DisableMorphing,
			Output:           out,
			Metrics:          mx,
			CollectIterStats: opts.CollectIterStats,
		})
		if err != nil {
			return nil, err
		}
		res.Triangles = cres.Triangles
		res.Iterations = cres.Iterations
		res.IterStats = cres.IterStats
	case MGT:
		mres, err := mgt.Run(st, base, mgt.Options{
			MemoryPages: opts.budget(st),
			Latency:     opts.latency(),
			Output:      out,
			Metrics:     mx,
		})
		if err != nil {
			return nil, err
		}
		res.Triangles = mres.Triangles
		res.Iterations = mres.Blocks
	case CCSeq, CCDS:
		variant := cc.Seq
		if opts.Algorithm == CCDS {
			variant = cc.DS
		}
		cres, err := cc.Run(st, base, cc.Options{
			Variant:     variant,
			MemoryPages: opts.budget(st),
			TempDir:     opts.TempDir,
			Latency:     opts.latency(),
			Output:      out,
			Metrics:     mx,
		})
		if err != nil {
			return nil, err
		}
		res.Triangles = cres.Triangles
		res.Iterations = cres.Iterations
	case GraphChiTri:
		gres, err := gchi.Run(st, base, gchi.Options{
			MemoryPages: opts.budget(st),
			Threads:     opts.Threads,
			TempDir:     opts.TempDir,
			Latency:     opts.latency(),
			Metrics:     mx,
		})
		if err != nil {
			return nil, err
		}
		res.Triangles = gres.Triangles
		res.Iterations = gres.Iterations
	default:
		return nil, fmt.Errorf("opt: unknown algorithm %v", opts.Algorithm)
	}
	res.Elapsed = time.Since(start)
	snap := mx.Snapshot()
	res.PagesRead = snap.PagesRead
	res.PagesWritten = snap.PagesWritten
	res.ReusedPages = snap.ReusedPages
	res.IntersectOps = snap.IntersectOps
	return res, nil
}

// CountInMemory counts triangles with the in-memory baselines of §2.2 —
// useful as an oracle and for the Figure 3b comparison. method is one of
// "edge", "vertex", "ayz".
func CountInMemory(g *Graph, method string) (int64, error) {
	switch method {
	case "edge", "":
		return inmem.EdgeIteratorCount(g.internal(), nil, nil), nil
	case "vertex":
		return inmem.VertexIteratorCount(g.internal(), nil, nil), nil
	case "ayz":
		return inmem.AYZCount(g.internal(), nil), nil
	default:
		return 0, fmt.Errorf("opt: unknown in-memory method %q (want edge, vertex or ayz)", method)
	}
}

// BuildStoreStreaming builds a store directly from a text edge-list file
// with bounded memory: the edge list never resides in RAM — it is
// externally sorted through temporary run files — so graphs far larger
// than memory can be prepared, per the paper's billion-scale-on-one-PC
// premise. Only the O(|V|) directories and the sorter's run buffer are
// memory resident. The degree-based vertex ordering is applied using
// first-pass degree counts. pageSize 0 selects the 8 KiB default.
func BuildStoreStreaming(storePath, edgeListPath string, pageSize int) (*Store, error) {
	st, err := storage.BuildFileStreaming(storePath, storage.EdgeListFileScanner{Path: edgeListPath},
		storage.StreamBuildOptions{PageSize: pageSize, DegreeOrder: true})
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}
