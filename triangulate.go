package opt

import (
	"context"
	"fmt"
	"time"

	"github.com/optlab/opt/internal/baselines/inmem"
	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"

	// Algorithm packages register their engine.Runner in init; the blank
	// imports make every registry name reachable from the public API.
	_ "github.com/optlab/opt/internal/baselines/cc"
	_ "github.com/optlab/opt/internal/baselines/gchi"
	_ "github.com/optlab/opt/internal/baselines/mgt"
	_ "github.com/optlab/opt/internal/cluster"
	_ "github.com/optlab/opt/internal/core"
)

// Store is an on-disk graph in the paper's slotted-page representation
// (§3.2): records in id order, oversized adjacency lists in page runs, with
// memory-resident vertex and page directories.
type Store struct {
	st *storage.Store
}

// BuildStore writes g to path with the raw page codec. pageSize 0 selects
// the 8 KiB default.
func BuildStore(path string, g *Graph, pageSize int) (*Store, error) {
	return BuildStoreCodec(path, g, pageSize, CodecRaw)
}

// BuildStoreCodec is BuildStore with an explicit page codec: CodecRaw keeps
// fixed 4-byte neighbors, CodecDeltaVarint stores sorted adjacency lists as
// varint-encoded deltas, shrinking P(G) — the page count every external
// algorithm's I/O cost is measured in.
func BuildStoreCodec(path string, g *Graph, pageSize int, codec string) (*Store, error) {
	st, err := storage.BuildFileCodec(path, g.internal(), pageSize, codec)
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// OpenStore opens a store built by BuildStore.
func OpenStore(path string) (*Store, error) {
	st, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// NumVertices returns |V|.
func (s *Store) NumVertices() int { return s.st.NumVertices }

// NumEdges returns |E|.
func (s *Store) NumEdges() int64 { return s.st.NumEdges }

// NumPages returns P(G), the number of data pages.
func (s *Store) NumPages() int { return int(s.st.NumPages) }

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.st.PageSize }

// Path returns the store file's path.
func (s *Store) Path() string { return s.st.Path }

// Codec returns the name of the page codec the store was built with.
func (s *Store) Codec() string { return s.st.CodecName() }

// Version returns the store file format version.
func (s *Store) Version() int { return s.st.Version() }

// Page codec names for BuildStoreCodec and Options.Codec.
const (
	// CodecRaw stores neighbors as fixed 4-byte values (the v1 format).
	CodecRaw = storage.CodecRaw
	// CodecDeltaVarint stores sorted adjacency lists as varint deltas.
	CodecDeltaVarint = storage.CodecDeltaVarint
)

// Codecs returns the names of every available page codec.
func Codecs() []string { return storage.Codecs() }

// Device backend names for Options.Backend.
const (
	// BackendPortable is the worker-pool os.File device (default).
	BackendPortable = string(ssd.BackendPortable)
	// BackendNative is the Linux io_uring/preadv device with O_DIRECT where
	// the store layout permits; the portable device off Linux.
	BackendNative = string(ssd.BackendNative)
	// BackendAuto selects native where the build supports it.
	BackendAuto = string(ssd.BackendAuto)
)

// Backends returns the accepted Options.Backend names.
func Backends() []string { return ssd.Backends() }

// NativeBackendAvailable reports whether this build carries the native
// Linux I/O backend.
func NativeBackendAvailable() bool { return ssd.NativeAvailable() }

// Algorithm selects a triangulation method.
type Algorithm int

// Available algorithms. OPT and OPTSerial are the paper's contribution;
// the rest are the comparison methods of §5.
const (
	// OPT is the fully overlapped, parallel framework (§3.2–§3.4).
	OPT Algorithm = iota
	// OPTSerial disables the macro-level overlap (§3.3) — single-core OPT
	// with asynchronous external I/O only.
	OPTSerial
	// MGT is Hu et al.'s read-only disk method (SIGMOD'13), an OPT instance
	// with synchronous I/O and no internal triangulation (§3.5, Eq. 7).
	MGT
	// CCSeq is the Chu–Cheng iterative method with sequential partitions.
	CCSeq
	// CCDS is the Chu–Cheng method with the degree-set heuristic.
	CCDS
	// GraphChiTri is GraphChi's triangle-counting application (counting
	// only).
	GraphChiTri
	// Shard2D is one block-pair task of the distributed 2D decomposition
	// (DESIGN.md §15): with ShardGrid 0 it is a full single-task count; with
	// a grid it counts only the triangles whose base edge spans blocks
	// (ShardI, ShardJ). Agent optds run distributed tasks through it.
	Shard2D
)

// String implements fmt.Stringer. The spelling doubles as the execution
// engine's registry key.
func (a Algorithm) String() string {
	switch a {
	case OPT:
		return "OPT"
	case OPTSerial:
		return "OPT_serial"
	case MGT:
		return "MGT"
	case CCSeq:
		return "CC-Seq"
	case CCDS:
		return "CC-DS"
	case GraphChiTri:
		return "GraphChi-Tri"
	case Shard2D:
		return "Shard2D"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms returns the registry names of every available algorithm.
func Algorithms() []string { return engine.Names() }

// IteratorModel selects the pluggable iterator model for OPT/OPTSerial.
type IteratorModel int

// Iterator models (§2.2, §3.5).
const (
	// EdgeIteratorModel intersects n≻(u) ∩ n≻(v) per edge — the faster
	// model, used by default (§5.1).
	EdgeIteratorModel IteratorModel = iota
	// VertexIteratorModel checks pairs (v, w) ∈ n≻(u)² against E.
	VertexIteratorModel
	// MGTInstanceModel is the §3.5 degenerate instantiation of the
	// framework (no internal triangulation, every adjacent vertex an
	// external candidate) — included to demonstrate the framework's
	// genericity. Prefer the MGT algorithm for the faithful baseline.
	MGTInstanceModel
)

// DeviceLatency simulates FlashSSD latency so the I/O-to-CPU cost ratio is
// controllable regardless of the host's real storage (DESIGN.md §3).
type DeviceLatency struct {
	// PerRead is the fixed cost per read request.
	PerRead time.Duration
	// PerPage is the streaming cost per page.
	PerPage time.Duration
}

// Event is one progress observation emitted while a run executes: run and
// iteration boundaries, page I/O, triangles found, thread morphing.
type Event = events.Event

// EventKind identifies what an Event reports.
type EventKind = events.Kind

// Event kinds, re-exported for OnEvent consumers.
const (
	EventRunStart       = events.RunStart
	EventRunEnd         = events.RunEnd
	EventIterationStart = events.IterationStart
	EventIterationEnd   = events.IterationEnd
	EventPagesRead      = events.PagesRead
	EventPagesWritten   = events.PagesWritten
	EventTrianglesFound = events.TrianglesFound
	EventMorph          = events.Morph
	// Distributed-layer kinds, emitted by the optd coordinator while a
	// sharded job progresses.
	EventShardDispatched = events.ShardDispatched
	EventShardRetried    = events.ShardRetried
	EventShardMerged     = events.ShardMerged
)

// Options configures Triangulate.
type Options struct {
	// Algorithm defaults to OPT.
	Algorithm Algorithm
	// Model defaults to EdgeIteratorModel (OPT/OPTSerial only).
	Model IteratorModel
	// Threads is the worker count for parallel algorithms (default 2 for
	// OPT, 1 for GraphChiTri). Must be non-negative.
	Threads int
	// MemoryPages is the buffer budget m in pages. When 0,
	// MemoryFraction applies. Must be non-negative.
	MemoryPages int
	// MemoryFraction sets the budget as a fraction of the store size (the
	// paper sweeps 5%–25%; 15% is its default). 0 selects the default; any
	// other value must lie in (0, 1].
	MemoryFraction float64
	// QueueDepth is the FlashSSD channel parallelism for OPT (default 8).
	// Must be non-negative.
	QueueDepth int
	// MaxCoalescePages caps the pages OPT's I/O scheduler merges into one
	// vectored read (0 = default 32, clamped to the external area; 1
	// disables coalescing). Must be non-negative.
	MaxCoalescePages int
	// PrefetchDepth bounds the coalesced reads OPT's I/O scheduler keeps in
	// flight as read-ahead (0 = QueueDepth; 1 disables read-ahead). Must be
	// non-negative.
	PrefetchDepth int
	// Latency simulates device latency on every page read and write.
	Latency DeviceLatency
	// DisableMorphing turns off thread morphing (OPT only; Figure 4).
	DisableMorphing bool
	// OnTriangles, when non-nil, receives every triangle in the nested
	// representation ⟨u, v, {w…}⟩. It must be safe for concurrent calls.
	// Setting it with GraphChiTri is an error: that method only counts.
	OnTriangles func(u, v uint32, ws []uint32)
	// OnEvent, when non-nil, receives progress events. It must be safe for
	// concurrent calls and must not block: emitters sit on hot paths.
	OnEvent func(Event)
	// CollectIterStats records per-iteration timings (OPT/OPTSerial).
	CollectIterStats bool
	// TempDir is used by CCSeq/CCDS/GraphChiTri for remainder files.
	TempDir string
	// Codec, when non-empty, requires the store to have been built with the
	// named page codec (see Codecs); the run is rejected on a mismatch.
	Codec string
	// Backend selects how the store device reaches the disk: BackendPortable
	// (the worker-pool os.File device), BackendNative (Linux io_uring/preadv
	// with O_DIRECT where the layout permits), or BackendAuto (native where
	// the build supports it). Empty resolves through the OPT_BACKEND
	// environment variable and then defaults to portable. Off Linux the
	// native and auto backends open the portable device.
	Backend string
	// ShardGrid, ShardI, ShardJ restrict a shard-aware algorithm (Shard2D)
	// to one block-pair task of the distributed 2D decomposition:
	// 0 ≤ ShardI ≤ ShardJ < ShardGrid. All zero disables sharding.
	ShardGrid int
	ShardI    int
	ShardJ    int
}

// IterationStat mirrors engine.IterationStat for the public API.
type IterationStat = engine.IterationStat

// Result reports a Triangulate run.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Triangles is the exact triangle count (so far, on a partial result).
	Triangles int64
	// Elapsed is the wall-clock time, including simulated latency.
	Elapsed time.Duration
	// Iterations is the number of completed outer-loop iterations/blocks.
	Iterations int
	// PagesRead and PagesWritten are the I/O volumes in pages.
	PagesRead, PagesWritten int64
	// ReusedPages is the Δin buffered-page credit (OPT only).
	ReusedPages int64
	// IntersectOps is the Eq. 3 min-model CPU cost.
	IntersectOps int64
	// IterStats is populated when Options.CollectIterStats is set.
	IterStats []IterationStat
}

// engineModel maps the public model selector onto the engine's.
func (o *Options) engineModel() engine.Model {
	switch o.Model {
	case VertexIteratorModel:
		return engine.ModelVertex
	case MGTInstanceModel:
		return engine.ModelMGTInstance
	default:
		return engine.ModelEdge
	}
}

func (o *Options) latency() ssd.Latency {
	return ssd.Latency{PerRead: o.Latency.PerRead, PerPage: o.Latency.PerPage}
}

// Triangulate runs the selected disk-based triangulation algorithm over the
// store. It is TriangulateContext with a background context.
func Triangulate(s *Store, opts Options) (*Result, error) {
	return TriangulateContext(context.Background(), s, opts)
}

// TriangulateContext runs the selected algorithm under ctx. Every algorithm
// dispatches through the execution engine's runner registry — one code
// path validates the options, resolves the memory budget, and invokes the
// registered implementation. When ctx is cancelled the run stops within
// one iteration and returns the partial Result accumulated so far together
// with an error satisfying errors.Is(err, ctx.Err()); no goroutines are
// leaked.
func TriangulateContext(ctx context.Context, s *Store, opts Options) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := s.st
	backend, err := ssd.ParseBackend(opts.Backend)
	if err != nil {
		return nil, err
	}
	base, err := st.DeviceBackend(backend)
	if err != nil {
		return nil, err
	}
	// A failed close means the OS may not have released the descriptor;
	// surface it, but never at the cost of masking the run's own error.
	defer func() {
		if cerr := base.Close(); err == nil {
			err = cerr
		}
	}()

	var sink events.Sink
	if opts.OnEvent != nil {
		sink = events.Func(opts.OnEvent)
	}
	eres, err := engine.Run(ctx, opts.Algorithm.String(), st, base, engine.Options{
		Model:            opts.engineModel(),
		Threads:          opts.Threads,
		MemoryPages:      opts.MemoryPages,
		MemoryFraction:   opts.MemoryFraction,
		QueueDepth:       opts.QueueDepth,
		MaxCoalescePages: opts.MaxCoalescePages,
		PrefetchDepth:    opts.PrefetchDepth,
		Latency:          opts.latency(),
		DisableMorphing:  opts.DisableMorphing,
		OnTriangles:      opts.OnTriangles,
		CollectIterStats: opts.CollectIterStats,
		TempDir:          opts.TempDir,
		Codec:            opts.Codec,
		Backend:          opts.Backend,
		ShardGrid:        opts.ShardGrid,
		ShardI:           opts.ShardI,
		ShardJ:           opts.ShardJ,
		Events:           sink,
	})
	if eres == nil {
		return nil, err
	}
	return &Result{
		Algorithm:    opts.Algorithm,
		Triangles:    eres.Triangles,
		Elapsed:      eres.Elapsed,
		Iterations:   eres.Iterations,
		PagesRead:    eres.PagesRead,
		PagesWritten: eres.PagesWritten,
		ReusedPages:  eres.ReusedPages,
		IntersectOps: eres.IntersectOps,
		IterStats:    eres.IterStats,
	}, err
}

// CountInMemory counts triangles with the in-memory baselines of §2.2 —
// useful as an oracle and for the Figure 3b comparison. method is one of
// "edge", "vertex", "ayz".
func CountInMemory(g *Graph, method string) (int64, error) {
	switch method {
	case "edge", "":
		return inmem.EdgeIteratorCount(g.internal(), nil, nil), nil
	case "vertex":
		return inmem.VertexIteratorCount(g.internal(), nil, nil), nil
	case "ayz":
		return inmem.AYZCount(g.internal(), nil), nil
	default:
		return 0, fmt.Errorf("opt: unknown in-memory method %q (want edge, vertex or ayz)", method)
	}
}

// BuildStoreStreaming builds a store directly from a text edge-list file
// with bounded memory: the edge list never resides in RAM — it is
// externally sorted through temporary run files — so graphs far larger
// than memory can be prepared, per the paper's billion-scale-on-one-PC
// premise. Only the O(|V|) directories and the sorter's run buffer are
// memory resident. The degree-based vertex ordering is applied using
// first-pass degree counts. pageSize 0 selects the 8 KiB default.
func BuildStoreStreaming(storePath, edgeListPath string, pageSize int) (*Store, error) {
	return BuildStoreStreamingContext(context.Background(), storePath, edgeListPath, pageSize)
}

// BuildStoreStreamingContext is BuildStoreStreaming with cancellation: the
// two edge-list passes and the external sort check ctx periodically, so
// preparing a billion-edge graph can be interrupted.
func BuildStoreStreamingContext(ctx context.Context, storePath, edgeListPath string, pageSize int) (*Store, error) {
	return BuildStoreStreamingCodecContext(ctx, storePath, edgeListPath, pageSize, CodecRaw)
}

// BuildStoreStreamingCodecContext is BuildStoreStreamingContext with an
// explicit page codec (see Codecs).
func BuildStoreStreamingCodecContext(ctx context.Context, storePath, edgeListPath string, pageSize int, codec string) (*Store, error) {
	st, err := storage.BuildFileStreamingContext(ctx, storePath, storage.EdgeListFileScanner{Path: edgeListPath},
		storage.StreamBuildOptions{PageSize: pageSize, DegreeOrder: true, Codec: codec})
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}
