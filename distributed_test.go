package opt

import (
	"testing"
	"time"
)

func TestSimulateDistributedExact(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 9, Edges: 6000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()
	want := g.CountTriangles()
	for _, m := range []DistributedMethod{SV, AKM, PowerGraph} {
		res, err := SimulateDistributed(g, m, ClusterConfig{Nodes: 8, CoresPerNode: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Triangles != want {
			t.Errorf("%v: triangles = %d, want %d", m, res.Triangles, want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: elapsed = %v", m, res.Elapsed)
		}
		if res.Method != m {
			t.Errorf("result method = %v, want %v", res.Method, m)
		}
	}
	// Defaults applied.
	if _, err := SimulateDistributed(g, SV, ClusterConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateDistributed(g, DistributedMethod(9), ClusterConfig{}); err == nil {
		t.Fatal("unknown method: want error")
	}
}

func TestDistributedMethodString(t *testing.T) {
	if SV.String() != "SV" || AKM.String() != "AKM" || PowerGraph.String() != "PowerGraph" {
		t.Fatal("String wrong")
	}
	if DistributedMethod(9).String() == "" {
		t.Fatal("unknown String empty")
	}
}

// TestSimulateDistributedCostMapping pins the Table 7 cost surface through
// the public API: the internal simulation's cost decomposition must survive
// the DistributedResult mapping, and the per-method fixed costs must show
// up exactly where the models put them.
func TestSimulateDistributedCostMapping(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 9, Edges: 6000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()

	cases := []struct {
		method DistributedMethod
		cfg    ClusterConfig
		// latencyRounds is the minimum comm time in 20ms latency rounds
		// (SV: 1, AKM: 2, PowerGraph: 3 — one per communication round).
		latencyRounds int
		// elapsedFloor adds the method's fixed overhead beyond comm+compute
		// (SV: the 5s Hadoop job overhead; AKM/PowerGraph: Nodes×2ms MPI
		// startup).
		elapsedFloor func(nodes int) time.Duration
	}{
		{SV, ClusterConfig{Nodes: 8, CoresPerNode: 4}, 1,
			func(int) time.Duration { return 5 * time.Second }},
		{AKM, ClusterConfig{Nodes: 8, CoresPerNode: 4}, 2,
			func(nodes int) time.Duration { return time.Duration(nodes) * 2 * time.Millisecond }},
		{PowerGraph, ClusterConfig{Nodes: 8, CoresPerNode: 4}, 3,
			func(nodes int) time.Duration { return time.Duration(nodes) * 2 * time.Millisecond }},
	}
	const latency = 20 * time.Millisecond // DefaultNet().LatencyPerRound
	for _, tc := range cases {
		res, err := SimulateDistributed(g, tc.method, tc.cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.method, err)
		}
		if floor := time.Duration(tc.latencyRounds) * latency; res.CommTime < floor {
			t.Errorf("%v: comm %v below the %d-round latency floor %v", tc.method, res.CommTime, tc.latencyRounds, floor)
		}
		if want := res.CommTime + res.ComputeMax + tc.elapsedFloor(tc.cfg.Nodes); res.Elapsed != want {
			t.Errorf("%v: elapsed = %v, want comm+compute+overhead = %v", tc.method, res.Elapsed, want)
		}
		if res.BytesShuffled < 0 {
			t.Errorf("%v: negative shuffle %d", tc.method, res.BytesShuffled)
		}
	}
}

// TestSimulateDistributedSingleNode: with one node nothing crosses the
// network — AKM and PowerGraph must report zero shuffled bytes and a comm
// time of exactly their round latencies, while SV still pays for its
// materialised shuffle (the disk round trip exists even on one machine).
func TestSimulateDistributedSingleNode(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 9, Edges: 6000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()
	const latency = 20 * time.Millisecond
	one := ClusterConfig{Nodes: 1, CoresPerNode: 4}

	akm, err := SimulateDistributed(g, AKM, one)
	if err != nil {
		t.Fatal(err)
	}
	if akm.BytesShuffled != 0 || akm.CommTime != 2*latency {
		t.Errorf("AKM single node: shuffled %d, comm %v, want 0 and %v", akm.BytesShuffled, akm.CommTime, 2*latency)
	}
	pg, err := SimulateDistributed(g, PowerGraph, one)
	if err != nil {
		t.Fatal(err)
	}
	if pg.BytesShuffled != 0 || pg.CommTime != 3*latency {
		t.Errorf("PowerGraph single node: shuffled %d, comm %v, want 0 and %v", pg.BytesShuffled, pg.CommTime, 3*latency)
	}
	sv, err := SimulateDistributed(g, SV, ClusterConfig{Nodes: 1, CoresPerNode: 4, SVColors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(12 * g.NumEdges()); sv.BytesShuffled != want {
		t.Errorf("SV rho=1: shuffled %d bytes, want 12·|E| = %d", sv.BytesShuffled, want)
	}
}
