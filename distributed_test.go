package opt

import "testing"

func TestSimulateDistributedExact(t *testing.T) {
	g, err := GenerateRMAT(RMATConfig{Vertices: 1 << 9, Edges: 6000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	g = g.DegreeOrdered()
	want := g.CountTriangles()
	for _, m := range []DistributedMethod{SV, AKM, PowerGraph} {
		res, err := SimulateDistributed(g, m, ClusterConfig{Nodes: 8, CoresPerNode: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Triangles != want {
			t.Errorf("%v: triangles = %d, want %d", m, res.Triangles, want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: elapsed = %v", m, res.Elapsed)
		}
		if res.Method != m {
			t.Errorf("result method = %v, want %v", res.Method, m)
		}
	}
	// Defaults applied.
	if _, err := SimulateDistributed(g, SV, ClusterConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateDistributed(g, DistributedMethod(9), ClusterConfig{}); err == nil {
		t.Fatal("unknown method: want error")
	}
}

func TestDistributedMethodString(t *testing.T) {
	if SV.String() != "SV" || AKM.String() != "AKM" || PowerGraph.String() != "PowerGraph" {
		t.Fatal("String wrong")
	}
	if DistributedMethod(9).String() == "" {
		t.Fatal("unknown String empty")
	}
}
