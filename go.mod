module github.com/optlab/opt

go 1.22
