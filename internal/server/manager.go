// Package server is the optd serving layer: a job manager that runs
// triangulation jobs through engine.Run under a bounded worker pool, a
// bounded admission queue with backpressure, and a global memory-page
// budget, plus the HTTP/SSE front-end in http.go. DESIGN.md §10 documents
// the job lifecycle, the admission and budget rules, and the event
// mapping; this package is the substrate later scaling work (sharding,
// remote workers) builds on.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/optlab/opt/internal/cluster"
	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Admission and lifecycle errors. The HTTP layer maps each onto a status
// code; programmatic callers classify with errors.Is.
var (
	// ErrQueueFull: the bounded admission queue is at capacity → 429.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining: the daemon received SIGTERM and stopped admitting → 503.
	ErrDraining = errors.New("server: draining, not admitting jobs")
	// ErrBadRequest: the spec is malformed or fails engine validation → 400.
	ErrBadRequest = errors.New("server: bad request")
	// ErrBudgetTooLarge: the job's resolved memory budget exceeds the
	// global page budget, so it could never be scheduled → 413.
	ErrBudgetTooLarge = errors.New("server: job exceeds global page budget")
	// ErrNotFound: no job with that id → 404.
	ErrNotFound = errors.New("server: no such job")
)

// Config sizes the manager. Zero values select the documented defaults.
type Config struct {
	// Workers is the bounded pool size: at most Workers jobs run
	// concurrently (default 2).
	Workers int
	// QueueDepth bounds the admission queue: at most QueueDepth admitted
	// jobs wait for a worker; beyond that Submit fails with ErrQueueFull
	// (default 8).
	QueueDepth int
	// TotalPages is the global memory-page budget shared by concurrently
	// running jobs; a job's resolved Options.MemoryPages is acquired from
	// it before the run starts. 0 disables arbitration.
	TotalPages int
	// DefaultTimeout applies to jobs whose spec carries none (0 = no
	// limit).
	DefaultTimeout time.Duration
	// EventBuffer is the per-job event ring/channel capacity (default 256).
	EventBuffer int
	// TempDir hosts per-job scratch directories (default: os.TempDir()).
	TempDir string
	// OnBudget, when non-nil, observes every budget acquire/release as
	// (inUse, total) — the accounting hook the backpressure tests assert
	// the never-exceeded invariant through.
	OnBudget func(inUse, total int)
	// WrapDevice, when non-nil, wraps every job's page device before the
	// run starts — the fault-injection seam the distributed chaos tests use
	// to make one agent's reads fail mid-shard.
	WrapDevice func(ssd.PageDevice) ssd.PageDevice
	// Dispatcher overrides how distributed jobs reach their agents (nil
	// selects the HTTP wire protocol).
	Dispatcher cluster.Dispatcher
	// DefaultAgents are the agent identities a distributed job falls back
	// to when its spec names none (the optd -agents flag).
	DefaultAgents []string
}

// Manager owns the job table, the worker pool, and the admission state.
type Manager struct {
	cfg    Config
	budget *PageBudget
	queue  chan *Job
	wg     sync.WaitGroup

	rootCtx    context.Context // parent of every job context; cancelled at the drain deadline
	cancelJobs context.CancelFunc

	mu       sync.Mutex
	draining bool
	seq      int64
	jobs     map[string]*Job
	order    []*Job            // insertion order for listing
	stores   map[string]string // registered name → path
	opened   map[string]*storage.Store
	cache    map[string]*cacheEntry
	hits     int64

	distSeq   int64
	distJobs  map[string]*DistJob
	distOrder []*DistJob
}

// cacheEntry is a digest-keyed completed result.
type cacheEntry struct {
	result  *engine.Result
	metrics metrics.Snapshot
}

// New starts a manager with cfg's worker pool running.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	m := &Manager{
		cfg:    cfg,
		budget: NewPageBudget(cfg.TotalPages),
		queue:  make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		stores:   make(map[string]string),
		opened:   make(map[string]*storage.Store),
		cache:    make(map[string]*cacheEntry),
		distJobs: make(map[string]*DistJob),
	}
	m.budget.SetHook(cfg.OnBudget)
	m.rootCtx, m.cancelJobs = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Budget exposes the global page-budget accounting.
func (m *Manager) Budget() *PageBudget { return m.budget }

// RegisterStore opens the store at path and makes it addressable as name
// in job specs.
func (m *Manager) RegisterStore(name, path string) error {
	if name == "" {
		return fmt.Errorf("%w: empty store name", ErrBadRequest)
	}
	st, err := storage.Open(path)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores[name] = path
	m.opened[path] = st
	return nil
}

// Stores returns the registered store names, sorted.
func (m *Manager) Stores() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.stores))
	for n := range m.stores {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolveStore maps a spec's store field — registered name or file path —
// onto an opened store. Ad-hoc paths are opened once and cached; the
// directories are memory resident but the data file is only opened per
// job, so a cached store holds no descriptor.
func (m *Manager) resolveStore(ref string) (*storage.Store, error) {
	if ref == "" {
		return nil, fmt.Errorf("%w: spec.store is required", ErrBadRequest)
	}
	m.mu.Lock()
	path, ok := m.stores[ref]
	if !ok {
		path = ref
	}
	if st, ok := m.opened[path]; ok {
		m.mu.Unlock()
		return st, nil
	}
	m.mu.Unlock()
	st, err := storage.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: opening store %q: %v", ErrBadRequest, ref, err)
	}
	m.mu.Lock()
	m.opened[path] = st
	m.mu.Unlock()
	return st, nil
}

// Submit validates and admits a job. The fast path — a digest cache hit —
// returns an already-completed job without consuming queue or budget
// capacity. Admission failures are ErrBadRequest/ErrBudgetTooLarge
// (rejected outright), ErrQueueFull (backpressure: retry later) or
// ErrDraining (shutting down).
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if m.isDraining() {
		return nil, ErrDraining
	}
	if spec.Algorithm == "" {
		spec.Algorithm = "OPT"
	}
	opts, err := spec.engineOptions()
	if err != nil {
		return nil, err
	}
	if _, err := spec.timeout(); err != nil {
		return nil, err
	}
	if err := engine.ValidateFor(spec.Algorithm, opts); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	st, err := m.resolveStore(spec.Store)
	if err != nil {
		return nil, err
	}
	pages := opts.Budget(st)
	if total := m.budget.Total(); total > 0 && pages > total {
		return nil, fmt.Errorf("%w: job needs %d pages, global budget is %d", ErrBudgetTooLarge, pages, total)
	}

	job := &Job{
		Spec:      spec,
		storePath: st.Path,
		algorithm: spec.Algorithm,
		digest:    spec.digest(st.Path),
		pages:     pages,
		hub:       newEventHub(m.cfg.EventBuffer),
		collector: metrics.NewCollector(),
		created:   time.Now(),
		done:      make(chan struct{}),
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.seq++
	job.ID = "j" + strconv.FormatInt(m.seq, 10)
	if hit, ok := m.cache[job.digest]; ok {
		// Served from the result cache: the job is recorded in the table
		// as done without ever touching the queue, budget, or a worker.
		m.hits++
		job.cached = true
		job.started = job.created
		res := *hit.result
		m.jobs[job.ID] = job
		m.order = append(m.order, job)
		m.mu.Unlock()
		job.finish(StateDone, &res, nil)
		return job, nil
	}
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job)
	m.mu.Unlock()
	return job, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every tracked job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Job(nil), m.order...)
}

// Cancel cancels the job with the given id: a queued job moves straight
// to canceled (the worker will skip it), a running one has its context
// cancelled and winds down within an iteration, reporting the partial
// result. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == StateQueued && cancel == nil
	j.mu.Unlock()
	switch {
	case queued:
		j.finish(StateCanceled, nil, fmt.Errorf("server: job %s canceled before start: %w", id, context.Canceled))
	case cancel != nil:
		cancel()
	}
	return j, nil
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// CacheHits returns the number of submissions served from the result
// cache.
func (m *Manager) CacheHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}

// Drain shuts the manager down gracefully: admission stops immediately
// (Submit fails with ErrDraining), in-flight and queued jobs get up to
// deadline to finish, then every remaining job context is cancelled and
// Drain waits for the workers to wind down — the engine contract bounds
// that by one iteration per job. It reports whether the deadline forced
// cancellation. Drain is idempotent; concurrent calls share the outcome.
func (m *Manager) Drain(deadline time.Duration) (forced bool) {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-workersDone:
	case <-timer.C:
		forced = true
		m.cancelJobs()
		<-workersDone
	}
	// Idempotence: a second Drain finds the pool already stopped, and any
	// job left queued was finalized by the worker loop before exit.
	m.cancelJobs()
	return forced
}

// worker pulls admitted jobs off the bounded queue until it closes at
// drain time, finalizing every job it pops on every path.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.run(job)
	}
}

// run executes one job end to end: context and timeout setup, budget
// acquisition, device open, engine dispatch, and terminal-state
// accounting.
func (m *Manager) run(job *Job) {
	// A DELETE may have finalized the job while it sat in the queue.
	if job.State().Terminal() {
		return
	}
	timeout, _ := job.Spec.timeout() // validated at admission
	if timeout == 0 {
		timeout = m.cfg.DefaultTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(m.rootCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(m.rootCtx)
	}
	defer cancel()
	job.mu.Lock()
	if job.state.Terminal() { // raced with DELETE
		job.mu.Unlock()
		return
	}
	job.cancel = cancel
	job.mu.Unlock()

	// The budget wait happens while still queued: pages are only held by
	// running jobs, so the in-use sum tracks actual concurrent budgets.
	if err := m.budget.Acquire(ctx, job.pages); err != nil {
		job.finish(stateForError(err), nil, fmt.Errorf("server: job %s waiting for page budget: %w", job.ID, err))
		return
	}
	defer m.budget.Release(job.pages)

	st, err := m.resolveStore(job.storePath)
	if err != nil {
		job.finish(StateFailed, nil, err)
		return
	}
	b, err := ssd.ParseBackend(job.Spec.Backend)
	if err != nil {
		// Unreachable after admission validation; belt and braces.
		job.finish(StateFailed, nil, fmt.Errorf("server: job %s: %w", job.ID, err))
		return
	}
	dev, err := st.DeviceBackend(b)
	if err != nil {
		job.finish(StateFailed, nil, fmt.Errorf("server: job %s opening device: %w", job.ID, err))
		return
	}
	if m.cfg.WrapDevice != nil {
		dev = m.cfg.WrapDevice(dev)
	}

	tempDir, err := os.MkdirTemp(m.cfg.TempDir, "optd-job-")
	if err != nil {
		_ = dev.Close()
		job.finish(StateFailed, nil, err)
		return
	}
	defer func() { _ = os.RemoveAll(tempDir) }()

	opts, _ := job.Spec.engineOptions() // validated at admission
	opts.MemoryPages = job.pages
	opts.TempDir = tempDir
	opts.Events = events.Tee(job.collector, job.hub)

	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	res, err := engine.Run(ctx, job.algorithm, st, dev, opts)
	if cerr := dev.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err == nil {
		m.mu.Lock()
		m.cache[job.digest] = &cacheEntry{result: res, metrics: job.collector.Snapshot()}
		m.mu.Unlock()
		job.finish(StateDone, res, nil)
		return
	}
	job.finish(stateForError(err), res, err)
}

// stateForError maps a run error onto the terminal state: cancellation
// (DELETE, per-job timeout, drain) is StateCanceled, everything else
// StateFailed.
func stateForError(err error) State {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return StateCanceled
	}
	return StateFailed
}

// Stats is the daemon-level accounting served by /healthz.
type Stats struct {
	Workers     int   `json:"workers"`
	QueueLen    int   `json:"queue_len"`
	QueueCap    int   `json:"queue_cap"`
	Draining    bool  `json:"draining"`
	Jobs        int   `json:"jobs"`
	BudgetTotal int   `json:"budget_total_pages"`
	BudgetUsed  int   `json:"budget_in_use_pages"`
	BudgetHigh  int   `json:"budget_high_water_pages"`
	CacheHits   int64 `json:"cache_hits"`
}

// Stats returns a point-in-time snapshot of the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Workers:   m.cfg.Workers,
		QueueLen:  len(m.queue),
		QueueCap:  m.cfg.QueueDepth,
		Draining:  m.draining,
		Jobs:      len(m.jobs),
		CacheHits: m.hits,
	}
	m.mu.Unlock()
	s.BudgetTotal = m.budget.Total()
	s.BudgetUsed = m.budget.InUse()
	s.BudgetHigh = m.budget.HighWater()
	return s
}
