package server

import (
	"context"
	"fmt"
	"time"

	"github.com/optlab/opt/internal/cluster"
)

// RunTask executes one distributed shard-pair task on this node by
// submitting it as an ordinary job — the task inherits the whole serving
// substrate: admission validation, queue backpressure (a saturated agent
// answers 429 and the coordinator retries elsewhere), the global page
// budget, the digest result cache (a re-dispatched task whose twin
// already ran here is served without re-reading a page), and per-job
// SSE/metrics.
//
// A returned error is an admission failure the HTTP layer maps to a
// status code; an execution failure (device fault, store mismatch,
// cancellation) comes back inside the result frame's Err field, so the
// coordinator books it against the attempt.
func (m *Manager) RunTask(ctx context.Context, t cluster.TaskMessage) (cluster.TaskResultMessage, error) {
	frame := cluster.TaskResultMessage{ID: t.ID, Attempt: t.Attempt}
	if err := t.Validate(); err != nil {
		return frame, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	st, err := m.resolveStore(t.Store)
	if err != nil {
		return frame, err
	}
	if t.Digest != "" {
		if got := cluster.DigestOf(st).Sum(); got != t.Digest {
			// The agent holds a different build of the graph: not an
			// admission error (another agent may hold the right one), so it
			// travels inside the frame as an execution failure.
			frame.Err = fmt.Sprintf("store %s digests %s, task wants %s", t.Store, got, t.Digest)
			return frame, nil
		}
	}
	job, err := m.Submit(Spec{
		Store:       t.Store,
		Algorithm:   cluster.ShardRunnerName,
		MemoryPages: t.MemoryPages,
		Codec:       t.Codec,
		Backend:     t.Backend,
		ShardGrid:   t.Grid,
		ShardI:      t.I,
		ShardJ:      t.J,
	})
	if err != nil {
		return frame, err
	}
	start := time.Now()
	select {
	case <-job.Done():
	case <-ctx.Done():
		// The coordinator hung up (straggler replacement won, or the whole
		// job died): stop burning budget on a result nobody will merge.
		_, _ = m.Cancel(job.ID)
		<-job.Done()
	}
	res, err := job.Result()
	if err != nil {
		frame.Err = err.Error()
	}
	if res != nil {
		frame.Triangles = res.Triangles
		frame.Report = cluster.TaskReport{
			PagesRead:    res.PagesRead,
			IntersectOps: res.IntersectOps,
			ElapsedNS:    int64(time.Since(start)),
		}
	}
	return frame, nil
}
