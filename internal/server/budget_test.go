package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPageBudgetAcquireRelease(t *testing.T) {
	b := NewPageBudget(10)
	ctx := context.Background()
	if err := b.Acquire(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 6 {
		t.Fatalf("InUse = %d, want 6", got)
	}

	// A second acquire that does not fit must block until pages free up.
	acquired := make(chan error, 1)
	go func() { acquired <- b.Acquire(ctx, 6) }()
	select {
	case err := <-acquired:
		t.Fatalf("oversubscribing acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	b.Release(6)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
	if hw := b.HighWater(); hw != 6 {
		t.Fatalf("HighWater = %d, want 6", hw)
	}
	b.Release(6)
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
}

func TestPageBudgetRejectsImpossible(t *testing.T) {
	b := NewPageBudget(4)
	err := b.Acquire(context.Background(), 5)
	if !errors.Is(err, ErrBudgetTooLarge) {
		t.Fatalf("Acquire(5) on total 4 = %v, want ErrBudgetTooLarge", err)
	}
}

func TestPageBudgetCancelledWait(t *testing.T) {
	b := NewPageBudget(4)
	if err := b.Acquire(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Acquire(ctx, 2) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not wake the budget waiter")
	}
	if got := b.InUse(); got != 4 {
		t.Fatalf("InUse after cancelled wait = %d, want 4 (no pages leaked)", got)
	}
}

func TestPageBudgetUnlimited(t *testing.T) {
	// total 0 disables arbitration: acquires never block, but accounting
	// still tracks the in-use sum so /healthz reports it.
	b := NewPageBudget(0)
	for i := 0; i < 50; i++ {
		if err := b.Acquire(context.Background(), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.InUse(); got != 50<<20 {
		t.Fatalf("InUse = %d, want %d", got, 50<<20)
	}
	for i := 0; i < 50; i++ {
		b.Release(1 << 20)
	}
	if b.InUse() != 0 {
		t.Fatal("releases did not return the pages")
	}
}

func TestPageBudgetHookObservesEveryTransition(t *testing.T) {
	b := NewPageBudget(8)
	var calls []int
	var mu sync.Mutex
	b.SetHook(func(inUse, total int) {
		mu.Lock()
		calls = append(calls, inUse)
		mu.Unlock()
	})
	ctx := context.Background()
	_ = b.Acquire(ctx, 3)
	_ = b.Acquire(ctx, 5)
	b.Release(5)
	b.Release(3)
	want := []int{3, 8, 3, 0}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != len(want) {
		t.Fatalf("hook calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("hook calls = %v, want %v", calls, want)
		}
	}
}
