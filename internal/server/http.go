package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/optlab/opt/internal/cluster"
)

// retryAfterSeconds is the backpressure hint sent with 429/503 responses.
// Jobs at laptop scale finish in seconds; a saturated queue usually has
// capacity again within one.
const retryAfterSeconds = "1"

// NewHandler builds the optd HTTP API over m:
//
//	POST   /jobs             submit a job (202; 200 on a cache hit;
//	                         429 + Retry-After when the queue is full;
//	                         503 while draining)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        job status, result, per-job metrics snapshot
//	DELETE /jobs/{id}        cancel (the run winds down within an iteration)
//	GET    /jobs/{id}/events server-sent progress events
//	GET    /stores           registered store names
//	GET    /healthz          daemon stats (queue, budget, cache)
//
// The distributed layer adds:
//
//	POST   /tasks                 execute one shard-pair task (agent role);
//	                              runs through the ordinary job substrate
//	POST   /dist/jobs             submit a distributed job (coordinator role)
//	GET    /dist/jobs             list distributed jobs
//	GET    /dist/jobs/{id}        distributed job status and merge report
//	DELETE /dist/jobs/{id}        cancel a distributed job
//	GET    /dist/jobs/{id}/events aggregated per-shard progress (SSE)
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	h := &api{m: m}
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("GET /jobs", h.list)
	mux.HandleFunc("GET /jobs/{id}", h.get)
	mux.HandleFunc("DELETE /jobs/{id}", h.cancel)
	mux.HandleFunc("GET /jobs/{id}/events", h.stream)
	mux.HandleFunc("GET /stores", h.stores)
	mux.HandleFunc("GET /healthz", h.health)
	mux.HandleFunc("POST /tasks", h.task)
	mux.HandleFunc("POST /dist/jobs", h.distSubmit)
	mux.HandleFunc("GET /dist/jobs", h.distList)
	mux.HandleFunc("GET /dist/jobs/{id}", h.distGet)
	mux.HandleFunc("DELETE /dist/jobs/{id}", h.distCancel)
	mux.HandleFunc("GET /dist/jobs/{id}/events", h.distStream)
	return mux
}

type api struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeError maps the manager's error vocabulary onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds)
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds)
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrBudgetTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (h *api) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, errors.Join(ErrBadRequest, err))
		return
	}
	job, err := h.m.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	code := http.StatusAccepted
	if job.Status().Cached {
		code = http.StatusOK // served from the result cache, already done
	}
	writeJSON(w, code, job.Status())
}

func (h *api) list(w http.ResponseWriter, r *http.Request) {
	jobs := h.m.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *api) get(w http.ResponseWriter, r *http.Request) {
	job, ok := h.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (h *api) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := h.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// stream serves the job's progress as server-sent events: the buffered
// history first, then live events, then one terminal "done" frame with
// the final job status once the run reaches a terminal state.
func (h *api) stream(w http.ResponseWriter, r *http.Request) {
	job, ok := h.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	streamHub(w, r, job.hub, func() any { return job.Status() })
}

// streamHub is the shared SSE pump behind the local and distributed event
// endpoints: replay, then live events, then one "done" frame with the
// final status once the hub closes.
func streamHub(w http.ResponseWriter, r *http.Request, hub *eventHub, final func() any) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("server: streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := hub.Subscribe()
	defer cancel()
	for _, e := range replay {
		if err := writeSSE(w, "progress", sseEvent{
			Kind: e.Kind, Algorithm: e.Algorithm, Iteration: e.Iteration, N: e.N, ElapsedNS: int64(e.Elapsed),
		}); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case e, ok := <-live:
			if !ok {
				// Hub closed: the job is terminal; send the final status.
				_ = writeSSE(w, "done", final())
				flusher.Flush()
				return
			}
			if err := writeSSE(w, "progress", sseEvent{
				Kind: e.Kind, Algorithm: e.Algorithm, Iteration: e.Iteration, N: e.N, ElapsedNS: int64(e.Elapsed),
			}); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// task is the agent role's endpoint: execute one shard-pair task frame
// through the local job substrate and answer with the result frame.
func (h *api) task(w http.ResponseWriter, r *http.Request) {
	var t cluster.TaskMessage
	if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
		writeError(w, errors.Join(ErrBadRequest, err))
		return
	}
	res, err := h.m.RunTask(r.Context(), t)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *api) distSubmit(w http.ResponseWriter, r *http.Request) {
	var spec DistSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, errors.Join(ErrBadRequest, err))
		return
	}
	job, err := h.m.SubmitDist(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (h *api) distList(w http.ResponseWriter, r *http.Request) {
	jobs := h.m.DistJobs()
	out := make([]DistStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *api) distGet(w http.ResponseWriter, r *http.Request) {
	job, ok := h.m.GetDist(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (h *api) distCancel(w http.ResponseWriter, r *http.Request) {
	job, err := h.m.CancelDist(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (h *api) distStream(w http.ResponseWriter, r *http.Request) {
	job, ok := h.m.GetDist(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	streamHub(w, r, job.hub, func() any { return job.Status() })
}

func (h *api) stores(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.m.Stores())
}

func (h *api) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.m.Stats())
}
