// Distributed-layer serving tests: the agent /tasks endpoint, the
// coordinator /dist/jobs lifecycle over real HTTP agents, the aggregated
// shard SSE stream, and cancellation.
package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/optlab/opt/internal/cluster"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/server"
	"github.com/optlab/opt/internal/storage"
	"github.com/optlab/opt/internal/testutil"
)

// buildDistStore writes g to a store file and returns (path, digest).
func buildDistStore(t *testing.T, g *graph.Graph) (string, string) {
	t.Helper()
	path := buildStore(t, g, 128)
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, cluster.DigestOf(st).Sum()
}

// newAgent starts one agent optd over HTTP with the store registered as
// "g", torn down (server first, then drain) at test end.
func newAgent(t *testing.T, storePath string) (*httptest.Server, *server.Manager) {
	t.Helper()
	mgr := server.New(server.Config{Workers: 2, QueueDepth: 16})
	if err := mgr.RegisterStore("g", storePath); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewHandler(mgr))
	t.Cleanup(func() {
		ts.Close()
		mgr.Drain(5 * time.Second)
	})
	return ts, mgr
}

func postTask(t *testing.T, ts *httptest.Server, task cluster.TaskMessage) (int, cluster.TaskResultMessage) {
	t.Helper()
	body, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res cluster.TaskResultMessage
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, res
}

// TestTasksEndpoint drives the agent role over the wire: a valid frame
// executes through the job substrate and answers with the exact per-shard
// count; digest drift and malformed frames are rejected the right way
// (inside the frame vs. as an HTTP error).
func TestTasksEndpoint(t *testing.T) {
	g := graph.Complete(20)
	path, digest := buildDistStore(t, g)
	ts, mgr := newAgent(t, path)

	grid, err := cluster.NewGrid(2, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range grid.Shards() {
		task := cluster.TaskMessage{
			ID: cluster.MakeTaskID("w", s), Job: "w",
			Grid: 2, I: s.I, J: s.J,
			Store: "g", Digest: digest,
		}
		code, res := postTask(t, ts, task)
		if code != http.StatusOK {
			t.Fatalf("shard %+v: status %d", s, code)
		}
		if res.Err != "" {
			t.Fatalf("shard %+v: frame error %q", s, res.Err)
		}
		if res.ID != task.ID {
			t.Fatalf("shard %+v: result id %q", s, res.ID)
		}
		if ref := grid.CountShardRef(g, s.I, s.J); res.Triangles != ref {
			t.Fatalf("shard %+v: %d, oracle %d", s, res.Triangles, ref)
		}
		sum += res.Triangles
	}
	if want := graph.CountTrianglesReference(g); sum != want {
		t.Fatalf("shard sum %d, reference %d", sum, want)
	}

	// Digest drift: an execution failure inside the frame, not an HTTP
	// error — another agent may hold the right build.
	code, res := postTask(t, ts, cluster.TaskMessage{
		ID: "w/0-0", Job: "w", Grid: 1, Store: "g", Digest: "0000000000000000",
	})
	if code != http.StatusOK || res.Err == "" {
		t.Fatalf("digest drift: status %d, frame err %q; want 200 + in-frame error", code, res.Err)
	}

	// Malformed frames and unknown stores are admission failures.
	if code, _ := postTask(t, ts, cluster.TaskMessage{ID: "w/1-0", Job: "w", Grid: 2, I: 1, J: 0, Store: "g"}); code != http.StatusBadRequest {
		t.Fatalf("inverted shard: status %d, want 400", code)
	}
	if code, _ := postTask(t, ts, cluster.TaskMessage{ID: "w/0-0", Job: "w", Grid: 1, Store: "nope"}); code != http.StatusBadRequest {
		t.Fatalf("unknown store: status %d, want 400", code)
	}

	// The substrate's result cache serves a re-dispatched twin: same task
	// again must hit the digest cache.
	before := mgr.CacheHits()
	if code, _ := postTask(t, ts, cluster.TaskMessage{
		ID: cluster.MakeTaskID("w", cluster.Shard{I: 0, J: 1}), Job: "w",
		Grid: 2, I: 0, J: 1, Store: "g", Digest: digest,
	}); code != http.StatusOK {
		t.Fatalf("re-dispatch: status %d", code)
	}
	if mgr.CacheHits() == before {
		t.Fatal("re-dispatched twin missed the result cache")
	}
}

// TestDistJobLifecycle is the coordinator E2E over real HTTP agents:
// submit via POST /dist/jobs, watch the aggregated shard SSE stream, and
// read back the exact merged report.
func TestDistJobLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Registered before the agents so it runs after their teardown (LIFO).
	t.Cleanup(func() { testutil.WaitGoroutines(t, baseline, "distributed fleet") })
	g := graph.Complete(25)
	want := graph.CountTrianglesReference(g)
	path, _ := buildDistStore(t, g)
	agent1, _ := newAgent(t, path)
	agent2, _ := newAgent(t, path)

	coord := server.New(server.Config{Workers: 2, QueueDepth: 16})
	if err := coord.RegisterStore("g", path); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(server.NewHandler(coord))
	defer func() {
		cts.Close()
		coord.Drain(5 * time.Second)
	}()

	spec := server.DistSpec{
		Store:  "g",
		Agents: []string{agent1.URL, agent2.URL},
		Grid:   2,
	}
	body, _ := json.Marshal(spec)
	resp, err := cts.Client().Post(cts.URL+"/dist/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st server.DistStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, st.ID)
	}
	if st.Tasks != 3 {
		t.Fatalf("tasks = %d, want 3 for a 2×2 grid", st.Tasks)
	}

	// The SSE stream aggregates per-shard progress; reading to the "done"
	// frame doubles as completion wait.
	sresp, err := cts.Client().Get(cts.URL + "/dist/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	kinds := map[string]int{}
	var done bool
	scanner := bufio.NewScanner(sresp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: done") {
			done = true
		}
		if strings.HasPrefix(line, "data: ") && !done {
			var e struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err == nil {
				kinds[e.Kind]++
			}
		}
		if done && strings.HasPrefix(line, "data: ") {
			break
		}
	}
	if !done {
		t.Fatalf("stream ended without a done frame (kinds %v)", kinds)
	}
	if kinds["shard-dispatched"] != 3 || kinds["shard-merged"] != 3 {
		t.Fatalf("shard event kinds = %v, want 3 dispatched + 3 merged", kinds)
	}

	// Final status: exact merge, metrics attached, listed.
	gresp, err := cts.Client().Get(cts.URL + "/dist/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final server.DistStatus
	if err := json.NewDecoder(gresp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if final.State != "done" {
		t.Fatalf("state %q, error %q", final.State, final.Error)
	}
	if final.Report == nil || final.Report.Triangles != want {
		t.Fatalf("report %+v, want %d triangles", final.Report, want)
	}
	if final.Report.Duplicates != 0 || len(final.Report.Failed) != 0 {
		t.Fatalf("clean fleet reported %+v", final.Report)
	}
	if final.Metrics == nil || final.Metrics.ShardsMerged != 3 {
		t.Fatalf("metrics %+v, want 3 shards merged", final.Metrics)
	}

	lresp, err := cts.Client().Get(cts.URL + "/dist/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []server.DistStatus
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestSubmitDistValidation covers the admission failures of the
// distributed submit path.
func TestSubmitDistValidation(t *testing.T) {
	g := graph.Complete(10)
	path, _ := buildDistStore(t, g)
	mgr := server.New(server.Config{})
	t.Cleanup(func() { mgr.Drain(time.Second) })
	if err := mgr.RegisterStore("g", path); err != nil {
		t.Fatal(err)
	}
	cases := []server.DistSpec{
		{Store: "g"},                                              // no agents, no default fleet
		{Store: "g", Agents: []string{"http://a"}, Grid: -1},      // bad grid
		{Store: "nope", Agents: []string{"http://a"}},             // unknown store
		{Store: "g", Agents: []string{"http://a"}, Timeout: "x"},  // bad duration
		{Store: "g", Agents: []string{"http://a"}, RetryBackoff: "-1s"},
		{Store: "g", Agents: []string{"http://a"}, StragglerAfter: "zzz"},
	}
	for i, spec := range cases {
		if _, err := mgr.SubmitDist(spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
}

// TestDistCancel: a distributed job stuck on unreachable agents is
// cancelled via the manager and lands in the canceled state with a partial
// (empty) report.
func TestDistCancel(t *testing.T) {
	g := graph.Complete(10)
	path, _ := buildDistStore(t, g)
	blocked := make(chan struct{})
	mgr := server.New(server.Config{
		Dispatcher: cluster.DispatchFunc(func(ctx context.Context, agent string, task cluster.TaskMessage) (cluster.TaskResultMessage, error) {
			select {
			case <-blocked:
			case <-ctx.Done():
			}
			return cluster.TaskResultMessage{}, ctx.Err()
		}),
	})
	t.Cleanup(func() { close(blocked); mgr.Drain(5 * time.Second) })
	if err := mgr.RegisterStore("g", path); err != nil {
		t.Fatal(err)
	}
	job, err := mgr.SubmitDist(server.DistSpec{Store: "g", Agents: []string{"a"}, Grid: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CancelDist(job.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job never terminated")
	}
	if got := job.State().String(); got != "canceled" {
		t.Fatalf("state %q, want canceled", got)
	}
	if _, err := mgr.CancelDist("d999"); err == nil {
		t.Fatal("cancel of unknown dist job succeeded")
	}
}

// TestDistDefaultAgents: a spec naming no agents falls back to the
// manager's configured fleet (the optd -agents flag).
func TestDistDefaultAgents(t *testing.T) {
	g := graph.Complete(15)
	want := graph.CountTrianglesReference(g)
	path, _ := buildDistStore(t, g)
	agent, _ := newAgent(t, path)

	mgr := server.New(server.Config{DefaultAgents: []string{agent.URL}})
	t.Cleanup(func() { mgr.Drain(5 * time.Second) })
	if err := mgr.RegisterStore("g", path); err != nil {
		t.Fatal(err)
	}
	job, err := mgr.SubmitDist(server.DistSpec{Store: "g", Grid: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	rep, err := job.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != want {
		t.Fatalf("merged %d, want %d", rep.Triangles, want)
	}
}
