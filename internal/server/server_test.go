// Package server_test drives the optd serving layer end to end over real
// HTTP: bounded admission with 429 backpressure, global page-budget
// arbitration, SSE progress streams, DELETE cancellation, digest-keyed
// result caching, and graceful drain with zero goroutine leaks.
package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/server"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
	"github.com/optlab/opt/internal/testutil"

	_ "github.com/optlab/opt/internal/baselines/mgt" // registers "MGT"
)

// gate lets tests hold admitted jobs inside engine.Run until released, so
// worker-pool and queue occupancy are deterministic. Each test installs
// its own channel.
var gate atomic.Value // chan struct{}

// gatedRunner blocks on the current gate channel (if any), then delegates
// to the real MGT runner. Cancellation while parked returns a partial
// result plus the context error, exactly per the Runner contract.
type gatedRunner struct{}

func (gatedRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts engine.Options) (*engine.Result, error) {
	if ch, _ := gate.Load().(chan struct{}); ch != nil {
		select {
		case <-ch:
		case <-ctx.Done():
			return &engine.Result{}, ctx.Err()
		}
	}
	r, _, ok := engine.Lookup("MGT")
	if !ok {
		return nil, errors.New("MGT runner not registered")
	}
	return r.Run(ctx, st, dev, opts)
}

// blockingRunner parks until cancelled, returning a partial result — the
// drain-deadline tests use it to force the forced-cancellation path.
type blockingRunner struct{}

func (blockingRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts engine.Options) (*engine.Result, error) {
	<-ctx.Done()
	return &engine.Result{Triangles: 1, Iterations: 1}, ctx.Err()
}

func init() {
	engine.Register(engine.Info{Name: "test-gated", Parallel: true}, gatedRunner{})
	engine.Register(engine.Info{Name: "test-blocking"}, blockingRunner{})
}

// buildStore writes g into a fresh slotted-page store file and returns its
// path.
func buildStore(t testing.TB, g *graph.Graph, pageSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.optstore")
	if _, err := storage.BuildFile(path, g, pageSize); err != nil {
		t.Fatal(err)
	}
	return path
}

func postJob(t *testing.T, ts *httptest.Server, spec server.Spec) (int, server.Status, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, st, resp.Header
}

func getStatus(t *testing.T, ts *httptest.Server, id string) server.Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, m *server.Manager, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State().String() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s never reached %q (state %v)", id, want, j.State())
}

// TestBackpressureE2E is the acceptance scenario: a daemon with worker
// pool 2 and queue depth 2 takes 8 jobs; exactly the 4 overflow jobs get
// 429 + Retry-After, every admitted job finishes with the in-memory
// reference count, the global page budget is never exceeded (asserted
// through the accounting hook), and the drain completes within its
// deadline leaking zero goroutines.
func TestBackpressureE2E(t *testing.T) {
	g := graph.Complete(25)
	want := graph.CountTrianglesReference(g) // C(25,3) = 2300
	path := buildStore(t, g, 128)

	const (
		perJobPages = 8
		totalPages  = 2 * perJobPages // exactly two concurrent budgets
	)
	// The hook runs under the budget lock, so plain fields are safe.
	var (
		maxInUse int
		violated bool
	)
	baseline := runtime.NumGoroutine()
	m := server.New(server.Config{
		Workers:    2,
		QueueDepth: 2,
		TotalPages: totalPages,
		OnBudget: func(inUse, total int) {
			if inUse > maxInUse {
				maxInUse = inUse
			}
			if inUse > total {
				violated = true
			}
		},
	})
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()

	release := make(chan struct{})
	gate.Store(release)

	spec := func(i int) server.Spec {
		return server.Spec{
			Store:       path,
			Algorithm:   "test-gated",
			MemoryPages: perJobPages,
			Threads:     i + 1, // distinct digests: no accidental cache hits
		}
	}

	// Fill the pool: two jobs admitted and parked inside engine.Run with
	// their budgets acquired.
	var admitted []string
	for i := 0; i < 2; i++ {
		code, st, _ := postJob(t, ts, spec(i))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d, want 202", i, code)
		}
		admitted = append(admitted, st.ID)
		waitState(t, m, st.ID, "running")
	}
	// Fill the queue: two more admitted, parked in the bounded queue.
	for i := 2; i < 4; i++ {
		code, st, _ := postJob(t, ts, spec(i))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d, want 202", i, code)
		}
		admitted = append(admitted, st.ID)
	}
	// Overflow: four concurrent submissions beyond pool+queue must all be
	// rejected with 429 and a Retry-After hint.
	var wg sync.WaitGroup
	var rejected atomic.Int32
	for i := 4; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, hdr := postJob(t, ts, spec(i))
			if code != http.StatusTooManyRequests {
				t.Errorf("overflow job %d: status %d, want 429", i, code)
				return
			}
			if hdr.Get("Retry-After") == "" {
				t.Errorf("overflow job %d: missing Retry-After", i)
			}
			rejected.Add(1)
		}(i)
	}
	wg.Wait()
	if got := rejected.Load(); got != 4 {
		t.Fatalf("rejected %d jobs, want exactly 4", got)
	}
	if len(m.Jobs()) != 4 {
		t.Fatalf("job table has %d entries, want the 4 admitted", len(m.Jobs()))
	}

	// Release the gate: the two runners proceed, the queue drains, all four
	// admitted jobs complete with the reference count.
	close(release)
	gate.Store((chan struct{})(nil))
	for _, id := range admitted {
		waitState(t, m, id, "done")
		st := getStatus(t, ts, id)
		if st.Result == nil || st.Result.Triangles != want {
			t.Fatalf("job %s: result %+v, want %d triangles", id, st.Result, want)
		}
		if st.Error != "" {
			t.Fatalf("job %s: unexpected error %q", id, st.Error)
		}
	}

	// Budget invariant: with the pool parked, both budgets were held at
	// once (high water = total), and the hook never saw an overshoot.
	if violated {
		t.Fatalf("page budget exceeded: hook saw in-use > %d", totalPages)
	}
	if maxInUse != totalPages {
		t.Fatalf("budget high water %d, want %d (two concurrent jobs)", maxInUse, totalPages)
	}
	if hw := m.Budget().HighWater(); hw != totalPages {
		t.Fatalf("Budget().HighWater() = %d, want %d", hw, totalPages)
	}

	// Graceful drain: nothing in flight, so the pool winds down well
	// within the deadline and no goroutines outlive the manager.
	start := time.Now()
	if forced := m.Drain(5 * time.Second); forced {
		t.Fatal("idle drain hit the deadline")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain took %v, want under the deadline", d)
	}
	if _, err := m.Submit(spec(9)); !errors.Is(err, server.ErrDraining) {
		t.Fatalf("Submit after drain = %v, want ErrDraining", err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
	testutil.WaitGoroutines(t, baseline, "job manager drain")
}

// TestDrainDeadlineForcesCancel pins the forced path: a job parked past
// the drain deadline is cancelled, keeps its partial result, and the
// workers still exit promptly.
func TestDrainDeadlineForcesCancel(t *testing.T) {
	path := buildStore(t, graph.Complete(10), 128)
	baseline := runtime.NumGoroutine()
	m := server.New(server.Config{Workers: 1, QueueDepth: 1})

	job, err := m.Submit(server.Spec{Store: path, Algorithm: "test-blocking"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, "running")

	start := time.Now()
	forced := m.Drain(100 * time.Millisecond)
	if !forced {
		t.Fatal("drain with a blocked job must report forced cancellation")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("forced drain took %v, want prompt wind-down after the deadline", d)
	}
	if st := job.State(); st != server.StateCanceled {
		t.Fatalf("job state = %v, want canceled", st)
	}
	res, err := job.Result()
	if res == nil || res.Triangles != 1 {
		t.Fatalf("partial result %+v, want the runner's progress kept", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", err)
	}
	// Idempotent: a second drain returns immediately without forcing.
	if m.Drain(time.Millisecond) {
		t.Fatal("second drain reported forced")
	}
	testutil.WaitGoroutines(t, baseline, "job manager drain")
}

// TestCancelQueuedAndRunning covers DELETE for both lifecycle positions:
// a queued job moves straight to canceled without running; a running job
// winds down with a partial result and the canceled state.
func TestCancelQueuedAndRunning(t *testing.T) {
	path := buildStore(t, graph.Complete(10), 128)
	m := server.New(server.Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()
	defer m.Drain(5 * time.Second)

	release := make(chan struct{})
	gate.Store(release)
	defer gate.Store((chan struct{})(nil))

	running, err := m.Submit(server.Spec{Store: path, Algorithm: "test-gated"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, "running")
	queued, err := m.Submit(server.Spec{Store: path, Algorithm: "test-gated", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	del := func(id string) (int, server.Status) {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st server.Status
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	if code, _ := del(queued.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE queued = %d, want 202", code)
	}
	waitState(t, m, queued.ID, "canceled")
	if st := getStatus(t, ts, queued.ID); st.Started != nil {
		t.Fatalf("queued job started=%v after cancel; it must never run", st.Started)
	}

	if code, _ := del(running.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE running = %d, want 202", code)
	}
	waitState(t, m, running.ID, "canceled")
	res, runErr := running.Result()
	if res == nil {
		t.Fatal("cancelled running job lost its partial result")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("cancelled job error = %v, want context.Canceled", runErr)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if code, st := del(running.ID); code != http.StatusAccepted || st.State != "canceled" {
		t.Fatalf("re-DELETE = %d/%s, want 202/canceled", code, st.State)
	}
}

// TestResultCache pins the digest-keyed fast path: an identical spec over
// the same store is served 200 from the cache without re-running, while
// any spec difference forces a fresh 202 run.
func TestResultCache(t *testing.T) {
	g := graph.Complete(12)
	want := graph.CountTrianglesReference(g)
	path := buildStore(t, g, 128)
	m := server.New(server.Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()
	defer m.Drain(5 * time.Second)

	spec := server.Spec{Store: path, Algorithm: "MGT", MemoryPages: 4}
	code, first, _ := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	waitState(t, m, first.ID, "done")

	code, second, _ := postJob(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("identical resubmit = %d, want 200 (cache hit)", code)
	}
	if !second.Cached || second.State != "done" {
		t.Fatalf("resubmit status = %+v, want cached done", second)
	}
	if second.Result == nil || second.Result.Triangles != want {
		t.Fatalf("cached result %+v, want %d triangles", second.Result, want)
	}
	if hits := m.CacheHits(); hits != 1 {
		t.Fatalf("CacheHits = %d, want 1", hits)
	}

	differing := spec
	differing.MemoryPages = 6
	if code, third, _ := postJob(t, ts, differing); code != http.StatusAccepted {
		t.Fatalf("differing spec = %d, want a fresh 202 run", code)
	} else {
		waitState(t, m, third.ID, "done")
	}
}

// TestSSEStream reads a job's event stream end to end: buffered progress
// replay, then the terminal "done" frame carrying the final status.
func TestSSEStream(t *testing.T) {
	g := graph.Complete(12)
	want := graph.CountTrianglesReference(g)
	path := buildStore(t, g, 128)
	m := server.New(server.Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()
	defer m.Drain(5 * time.Second)

	job, err := m.Submit(server.Spec{Store: path, Algorithm: "MGT"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress, done []string
	var current string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if current == "done" {
				done = append(done, data)
			} else {
				progress = append(progress, data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("got %d done frames, want exactly 1 (progress: %v)", len(done), progress)
	}
	joined := strings.Join(progress, "\n")
	for _, kind := range []string{"run-start", "run-end"} {
		if !strings.Contains(joined, fmt.Sprintf("%q", kind)) {
			t.Errorf("progress frames missing kind %q:\n%s", kind, joined)
		}
	}
	var final server.Status
	if err := json.Unmarshal([]byte(done[0]), &final); err != nil {
		t.Fatalf("done frame %q: %v", done[0], err)
	}
	if final.State != "done" || final.Result == nil || final.Result.Triangles != want {
		t.Fatalf("done frame = %+v, want done with %d triangles", final, want)
	}
	if final.Metrics == nil || final.Metrics.PagesRead == 0 {
		t.Fatalf("done frame metrics = %+v, want a per-job snapshot with I/O", final.Metrics)
	}
}

// TestBudgetSerializesJobs runs two jobs whose budgets cannot coexist: the
// second must wait for the first to release its pages, and the accounting
// hook must never observe in-use above the total.
func TestBudgetSerializesJobs(t *testing.T) {
	g := graph.Complete(12)
	want := graph.CountTrianglesReference(g)
	path := buildStore(t, g, 128)
	var maxInUse int
	m := server.New(server.Config{
		Workers:    2,
		QueueDepth: 2,
		TotalPages: 8,
		OnBudget: func(inUse, total int) {
			if inUse > maxInUse {
				maxInUse = inUse
			}
		},
	})
	defer m.Drain(5 * time.Second)

	var jobs []*server.Job
	for i := 0; i < 2; i++ {
		j, err := m.Submit(server.Spec{Store: path, Algorithm: "MGT", MemoryPages: 8, Threads: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
		res, err := j.Result()
		if err != nil {
			t.Fatalf("job %s: %v", j.ID, err)
		}
		if res.Triangles != want {
			t.Fatalf("job %s: %d triangles, want %d", j.ID, res.Triangles, want)
		}
	}
	if maxInUse > 8 {
		t.Fatalf("budget high water %d with total 8: jobs were not serialized", maxInUse)
	}
}

// TestSubmitValidation maps every admission failure onto its HTTP status.
func TestSubmitValidation(t *testing.T) {
	path := buildStore(t, graph.Complete(10), 128)
	m := server.New(server.Config{Workers: 1, QueueDepth: 1, TotalPages: 10})
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()
	defer m.Drain(5 * time.Second)

	cases := []struct {
		name string
		spec server.Spec
		code int
	}{
		{"unknown algorithm", server.Spec{Store: path, Algorithm: "nope"}, http.StatusBadRequest},
		{"bad model", server.Spec{Store: path, Algorithm: "MGT", Model: "diagonal"}, http.StatusBadRequest},
		{"negative threads", server.Spec{Store: path, Algorithm: "MGT", Threads: -1}, http.StatusBadRequest},
		{"bad timeout", server.Spec{Store: path, Algorithm: "MGT", Timeout: "soon"}, http.StatusBadRequest},
		{"unknown codec", server.Spec{Store: path, Algorithm: "MGT", Codec: "zstd"}, http.StatusBadRequest},
		{"missing store", server.Spec{Algorithm: "MGT"}, http.StatusBadRequest},
		{"unreadable store", server.Spec{Store: path + ".missing", Algorithm: "MGT"}, http.StatusBadRequest},
		{"budget too large", server.Spec{Store: path, Algorithm: "MGT", MemoryPages: 64}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if code, _, _ := postJob(t, ts, tc.spec); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	// Validation errors must name the offending field uniformly.
	_, err := m.Submit(server.Spec{Store: path, Algorithm: "MGT", Threads: -1})
	if err == nil || !strings.Contains(err.Error(), "Options.Threads") {
		t.Fatalf("Submit error %v, want it to name Options.Threads", err)
	}

	for _, target := range []string{"/jobs/j999", "/jobs/j999/events"} {
		resp, err := ts.Client().Get(ts.URL + target)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", target, resp.StatusCode)
		}
	}
}

// TestRegisteredStores covers name-based store addressing: /stores lists
// registrations and specs may reference stores by name.
func TestRegisteredStores(t *testing.T) {
	g := graph.Complete(12)
	want := graph.CountTrianglesReference(g)
	path := buildStore(t, g, 128)
	m := server.New(server.Config{Workers: 1, QueueDepth: 1})
	defer m.Drain(5 * time.Second)
	if err := m.RegisterStore("k12", path); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterStore("", path); err == nil {
		t.Fatal("empty store name must be rejected")
	}
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/stores")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(names) != 1 || names[0] != "k12" {
		t.Fatalf("/stores = %v, want [k12]", names)
	}

	job, err := m.Submit(server.Spec{Store: "k12", Algorithm: "MGT"})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	res, err := job.Result()
	if err != nil || res.Triangles != want {
		t.Fatalf("named-store job = %+v/%v, want %d triangles", res, err, want)
	}
}

// TestJobTimeout pins the per-job deadline: a spec timeout expires, the
// run is cancelled, and the state is canceled with the deadline error.
func TestJobTimeout(t *testing.T) {
	path := buildStore(t, graph.Complete(10), 128)
	m := server.New(server.Config{Workers: 1, QueueDepth: 1})
	defer m.Drain(5 * time.Second)

	job, err := m.Submit(server.Spec{Store: path, Algorithm: "test-blocking", Timeout: "50ms"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job timeout never fired")
	}
	if st := job.State(); st != server.StateCanceled {
		t.Fatalf("state = %v, want canceled on timeout", st)
	}
	_, runErr := job.Result()
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded", runErr)
	}
}
