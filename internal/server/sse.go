package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/optlab/opt/internal/events"
)

// eventHub is the job-scoped bridge between the engine's events.Sink and
// any number of SSE subscribers. It honours the sink contract — Event
// never blocks, whatever the consumers do — by fanning out through
// bounded per-subscriber channels that drop (and count) events when a
// slow client falls behind, while a bounded replay ring preserves the
// most recent history for late subscribers.
type eventHub struct {
	mu     sync.Mutex
	ring   []events.Event // last ≤ cap events, ring[0] is the oldest
	maxLen int
	seq    int64 // events ever accepted (ring may have dropped the head)
	subs   map[*subscriber]struct{}
	closed bool
}

type subscriber struct {
	ch      chan events.Event
	dropped int64 // events not delivered because ch was full
}

func newEventHub(maxLen int) *eventHub {
	if maxLen <= 0 {
		maxLen = 256
	}
	return &eventHub{maxLen: maxLen, subs: make(map[*subscriber]struct{})}
}

// Event implements events.Sink. It is safe for concurrent use and never
// blocks: emitters sit on the engine's hot paths.
func (h *eventHub) Event(e events.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	if len(h.ring) == h.maxLen {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = e
	} else {
		h.ring = append(h.ring, e)
	}
	for s := range h.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
}

// Subscribe returns the replayable history plus a live channel. The
// channel is closed when the hub closes (job reached a terminal state) or
// when the returned cancel function runs. Subscribing to a closed hub
// still returns the history with an already-closed channel, so a client
// attaching after completion sees the full (bounded) stream.
func (h *eventHub) Subscribe() (replay []events.Event, ch <-chan events.Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([]events.Event(nil), h.ring...)
	s := &subscriber{ch: make(chan events.Event, h.maxLen)}
	if h.closed {
		close(s.ch)
		return replay, s.ch, func() {}
	}
	h.subs[s] = struct{}{}
	return replay, s.ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[s]; ok {
			delete(h.subs, s)
			close(s.ch)
		}
	}
}

// Close ends the stream: every subscriber channel is closed after the
// events already fanned out, and further Event calls are ignored.
func (h *eventHub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}

// sseEvent is the JSON payload of one "progress" SSE message.
type sseEvent struct {
	Kind      events.Kind `json:"kind"`
	Algorithm string      `json:"algorithm,omitempty"`
	Iteration int         `json:"iteration"`
	N         int64       `json:"n"`
	ElapsedNS int64       `json:"elapsed_ns,omitempty"`
}

// writeSSE writes one server-sent event frame.
func writeSSE(w io.Writer, event string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload)
	return err
}
