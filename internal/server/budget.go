package server

import (
	"context"
	"fmt"
	"sync"
)

// PageBudget arbitrates the global memory-page budget shared by every
// concurrently running job. The engine's per-run Options.MemoryPages is
// the §5 m_in/m_ex buffer budget of one triangulation; when optd runs many
// jobs on one machine those budgets add up, so the manager acquires a
// job's resolved page count here before dispatching it and the sum in use
// never exceeds the configured total — the multi-tenant analogue of the
// paper's single-run bound.
type PageBudget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int // 0 = unlimited
	inUse int
	high  int // high-water mark of inUse
	// onChange, when non-nil, observes every acquire/release with the lock
	// held (test accounting hook — it must not call back into the budget).
	onChange func(inUse, total int)
}

// NewPageBudget returns a budget of total pages. total 0 disables
// arbitration: every Acquire succeeds immediately (accounting still runs).
func NewPageBudget(total int) *PageBudget {
	b := &PageBudget{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the configured budget (0 = unlimited).
func (b *PageBudget) Total() int { return b.total }

// SetHook installs fn as the accounting observer. It is called with the
// budget lock held on every acquire and release; tests use it to assert
// the in-use sum never exceeds the total.
func (b *PageBudget) SetHook(fn func(inUse, total int)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// InUse returns the pages currently acquired.
func (b *PageBudget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// HighWater returns the maximum pages ever simultaneously acquired.
func (b *PageBudget) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.high
}

// Acquire blocks until n pages fit under the total, then takes them. It
// fails immediately when n can never fit (n > total), and unblocks with
// ctx's error when the context is cancelled while waiting.
func (b *PageBudget) Acquire(ctx context.Context, n int) error {
	if n < 0 {
		return fmt.Errorf("server: budget acquire of %d pages", n)
	}
	if b.total > 0 && n > b.total {
		return fmt.Errorf("%w: job needs %d pages, global budget is %d", ErrBudgetTooLarge, n, b.total)
	}
	// Wake the cond wait when ctx is cancelled, so a drain or DELETE does
	// not leave a worker parked here forever.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.cond.Broadcast()
	})
	defer stop()

	b.mu.Lock()
	defer b.mu.Unlock()
	for b.total > 0 && b.inUse+n > b.total {
		if err := ctx.Err(); err != nil {
			return err
		}
		b.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.inUse += n
	if b.inUse > b.high {
		b.high = b.inUse
	}
	if b.onChange != nil {
		b.onChange(b.inUse, b.total)
	}
	return nil
}

// Release returns n pages to the budget.
func (b *PageBudget) Release(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inUse -= n
	if b.inUse < 0 {
		// A release without a matching acquire is a manager bug; clamp so
		// accounting stays sane and make it visible to the hook.
		b.inUse = 0
	}
	if b.onChange != nil {
		b.onChange(b.inUse, b.total)
	}
	b.cond.Broadcast()
}
