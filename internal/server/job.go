package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/metrics"
)

// State is a job's position in its lifecycle. The machine is linear with
// three terminal states:
//
//	queued → running → done
//	                 ↘ failed
//	queued/running   → canceled   (DELETE, per-job timeout, drain deadline)
type State int

// Job states.
const (
	// StateQueued: admitted, waiting for a worker (or for budget pages).
	StateQueued State = iota
	// StateRunning: dispatched to engine.Run with budget pages acquired.
	StateRunning
	// StateDone: finished with a full Result.
	StateDone
	// StateFailed: finished with an error that was not a cancellation.
	StateFailed
	// StateCanceled: cancelled by DELETE, per-job timeout, or drain; a
	// partial Result may accompany the state, exactly as engine.Run
	// reports it under cancellation.
	StateCanceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is the client-supplied description of one triangulation job. Store
// names a store registered with the daemon or a path to an .optstore file;
// the remaining fields mirror the engine knobs (zero values select the
// engine defaults).
type Spec struct {
	Store            string  `json:"store"`
	Algorithm        string  `json:"algorithm"`
	Model            string  `json:"model,omitempty"` // "", "edge", "vertex", "mgt"
	Threads          int     `json:"threads,omitempty"`
	MemoryPages      int     `json:"memory_pages,omitempty"`
	MemoryFraction   float64 `json:"memory_fraction,omitempty"`
	QueueDepth       int     `json:"queue_depth,omitempty"`
	MaxCoalescePages int     `json:"max_coalesce_pages,omitempty"`
	PrefetchDepth    int     `json:"prefetch_depth,omitempty"`
	Timeout          string  `json:"timeout,omitempty"` // Go duration, e.g. "30s"
	CollectIterStats bool    `json:"collect_iter_stats,omitempty"`
	// Codec, when non-empty, requires the store to have been built with the
	// named page codec; unknown names are rejected at admission and a
	// mismatch fails the run.
	Codec string `json:"codec,omitempty"`
	// Backend selects the device backend the job's store is opened through
	// ("portable", "native", "auto"; empty resolves via OPT_BACKEND then
	// portable). Unknown names are rejected at admission.
	Backend string `json:"backend,omitempty"`
	// ShardGrid, ShardI, ShardJ restrict the job to one block-pair task of
	// the 2D distributed decomposition (0/0/0 = unsharded). Only shard-aware
	// algorithms accept them; agent optds receive their tasks as ordinary
	// jobs carrying these fields.
	ShardGrid int `json:"shard_grid,omitempty"`
	ShardI    int `json:"shard_i,omitempty"`
	ShardJ    int `json:"shard_j,omitempty"`
}

// engineOptions translates the spec into engine.Options (without an event
// sink — the manager attaches the job-scoped sink at dispatch).
func (s Spec) engineOptions() (engine.Options, error) {
	opts := engine.Options{
		Threads:          s.Threads,
		MemoryPages:      s.MemoryPages,
		MemoryFraction:   s.MemoryFraction,
		QueueDepth:       s.QueueDepth,
		MaxCoalescePages: s.MaxCoalescePages,
		PrefetchDepth:    s.PrefetchDepth,
		CollectIterStats: s.CollectIterStats,
		Codec:            s.Codec,
		Backend:          s.Backend,
		ShardGrid:        s.ShardGrid,
		ShardI:           s.ShardI,
		ShardJ:           s.ShardJ,
	}
	switch s.Model {
	case "", "edge":
		opts.Model = engine.ModelEdge
	case "vertex":
		opts.Model = engine.ModelVertex
	case "mgt":
		opts.Model = engine.ModelMGTInstance
	default:
		return opts, fmt.Errorf("%w: unknown model %q (want edge, vertex or mgt)", ErrBadRequest, s.Model)
	}
	return opts, nil
}

// timeout parses the per-job timeout, 0 when unset.
func (s Spec) timeout() (time.Duration, error) {
	if s.Timeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s.Timeout)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%w: invalid timeout %q", ErrBadRequest, s.Timeout)
	}
	return d, nil
}

// digest keys the result cache: two specs with the same digest would run
// the identical deterministic computation over the same store file, so a
// completed Result can be served without admission. The resolved store
// path (not the client's spelling) anchors the key.
func (s Spec) digest(storePath string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d\x00%d\x00%v\x00%d\x00%d\x00%d\x00%v\x00%s\x00%s",
		storePath, s.Algorithm, s.Model, s.Threads, s.MemoryPages, s.MemoryFraction,
		s.QueueDepth, s.MaxCoalescePages, s.PrefetchDepth, s.CollectIterStats, s.Codec, s.Backend)
	// The shard coordinates are part of the computation's identity: two
	// block-pair tasks over the same store must never share a cache entry.
	fmt.Fprintf(h, "\x00%d\x00%d\x00%d", s.ShardGrid, s.ShardI, s.ShardJ)
	return hex.EncodeToString(h.Sum(nil))
}

// Job is one admitted triangulation request tracked by the manager's
// in-memory job table.
type Job struct {
	// ID is the manager-assigned identifier ("j1", "j2", …).
	ID string
	// Spec is the admitted request.
	Spec Spec

	storePath string // resolved store file path
	algorithm string // resolved registry name
	digest    string
	pages     int // resolved memory budget in pages, acquired before running

	hub       *eventHub
	collector *metrics.Collector

	mu       sync.Mutex
	state    State
	cancel   context.CancelFunc // non-nil once the worker created the run context
	result   *engine.Result
	err      error
	cached   bool
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{} // closed on reaching a terminal state
}

// Status is the JSON view of a job served by the HTTP API.
type Status struct {
	ID        string            `json:"id"`
	State     string            `json:"state"`
	Spec      Spec              `json:"spec"`
	Algorithm string            `json:"algorithm"`
	Pages     int               `json:"pages,omitempty"` // resolved budget
	Cached    bool              `json:"cached,omitempty"`
	Error     string            `json:"error,omitempty"`
	Created   time.Time         `json:"created"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	Result    *ResultView       `json:"result,omitempty"`
	Metrics   *metrics.Snapshot `json:"metrics,omitempty"`
}

// ResultView is the JSON shape of an engine.Result. Partial results (a
// cancelled or failed run) are served the same way, flagged by the job
// state and error.
type ResultView struct {
	Algorithm    string                 `json:"algorithm"`
	Triangles    int64                  `json:"triangles"`
	Iterations   int                    `json:"iterations"`
	ElapsedNS    time.Duration          `json:"elapsed_ns"`
	PagesRead    int64                  `json:"pages_read"`
	PagesWritten int64                  `json:"pages_written"`
	ReusedPages  int64                  `json:"reused_pages"`
	IntersectOps int64                  `json:"intersect_ops"`
	IterStats    []engine.IterationStat `json:"iter_stats,omitempty"`
}

func viewOf(r *engine.Result) *ResultView {
	if r == nil {
		return nil
	}
	return &ResultView{
		Algorithm:    r.Algorithm,
		Triangles:    r.Triangles,
		Iterations:   r.Iterations,
		ElapsedNS:    r.Elapsed,
		PagesRead:    r.PagesRead,
		PagesWritten: r.PagesWritten,
		ReusedPages:  r.ReusedPages,
		IntersectOps: r.IntersectOps,
		IterStats:    r.IterStats,
	}
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:        j.ID,
		State:     j.state.String(),
		Spec:      j.Spec,
		Algorithm: j.algorithm,
		Pages:     j.pages,
		Cached:    j.cached,
		Created:   j.created,
		Result:    viewOf(j.result),
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.state.Terminal() && j.collector != nil {
		snap := j.collector.Snapshot()
		s.Metrics = &snap
	}
	return s
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the (possibly partial) result and error after the job
// reached a terminal state; both are nil/nil before that.
func (j *Job) Result() (*engine.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil
	}
	return j.result, j.err
}

// finish moves the job to a terminal state, records the outcome, wakes
// Done waiters, and closes the event hub so SSE streams terminate.
func (j *Job) finish(state State, res *engine.Result, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
	j.hub.Close()
}
