package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/optlab/opt/internal/cluster"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
)

// DistSpec is the client-supplied description of one distributed job: a
// coordinator optd fans the 2D shard-pair task set of Store out to the
// agent optds at Agents and merges the results exactly once.
type DistSpec struct {
	// Store is the store path every agent resolves locally (shared
	// filesystem or identical replica — the digest check catches drift).
	Store string `json:"store"`
	// Agents are agent optd base URLs (or opaque dispatcher keys under a
	// custom Config.Dispatcher).
	Agents []string `json:"agents"`
	// Grid is the decomposition dimension (0 = 1: a single task).
	Grid int `json:"grid,omitempty"`
	// Codec, Backend, MemoryPages forward into every task.
	Codec       string `json:"codec,omitempty"`
	Backend     string `json:"backend,omitempty"`
	MemoryPages int    `json:"memory_pages,omitempty"`
	// MaxAttempts is the per-task attempt budget (0 = coordinator default).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBackoff and StragglerAfter are Go durations ("50ms"); empty
	// selects the coordinator defaults / disables straggler re-dispatch.
	RetryBackoff   string `json:"retry_backoff,omitempty"`
	StragglerAfter string `json:"straggler_after,omitempty"`
	// Timeout bounds the whole distributed job (Go duration; empty = none).
	Timeout string `json:"timeout,omitempty"`
}

// coordinatorConfig translates the spec, resolving the store to pin the
// digest every agent must match.
func (m *Manager) coordinatorConfig(id string, spec DistSpec) (cluster.CoordinatorConfig, error) {
	var zero cluster.CoordinatorConfig
	if len(spec.Agents) == 0 {
		return zero, fmt.Errorf("%w: spec.agents is required", ErrBadRequest)
	}
	if spec.Grid < 0 {
		return zero, fmt.Errorf("%w: spec.grid must be non-negative, got %d", ErrBadRequest, spec.Grid)
	}
	st, err := m.resolveStore(spec.Store)
	if err != nil {
		return zero, err
	}
	cfg := cluster.CoordinatorConfig{
		Agents:      spec.Agents,
		Grid:        spec.Grid,
		Job:         id,
		Store:       spec.Store,
		Digest:      cluster.DigestOf(st).Sum(),
		Codec:       spec.Codec,
		Backend:     spec.Backend,
		MemoryPages: spec.MemoryPages,
		MaxAttempts: spec.MaxAttempts,
	}
	if spec.RetryBackoff != "" {
		d, err := time.ParseDuration(spec.RetryBackoff)
		if err != nil || d < 0 {
			return zero, fmt.Errorf("%w: invalid retry_backoff %q", ErrBadRequest, spec.RetryBackoff)
		}
		cfg.RetryBackoff = d
	}
	if spec.StragglerAfter != "" {
		d, err := time.ParseDuration(spec.StragglerAfter)
		if err != nil || d < 0 {
			return zero, fmt.Errorf("%w: invalid straggler_after %q", ErrBadRequest, spec.StragglerAfter)
		}
		cfg.StragglerAfter = d
	}
	return cfg, nil
}

// DistJob is one tracked distributed job. It reuses the job vocabulary —
// State machine, SSE hub, metrics collector — so clients observe a
// distributed run exactly like a local one, with the shard event kinds
// (shard-dispatched / shard-retried / shard-merged) flowing through the
// same stream.
type DistJob struct {
	ID   string
	Spec DistSpec

	digest    string
	tasks     int
	hub       *eventHub
	collector *metrics.Collector

	mu       sync.Mutex
	state    State
	cancel   context.CancelFunc
	report   *cluster.RunReport
	err      error
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{}
}

// DistStatus is the JSON view of a distributed job.
type DistStatus struct {
	ID       string            `json:"id"`
	State    string            `json:"state"`
	Spec     DistSpec          `json:"spec"`
	Digest   string            `json:"digest,omitempty"`
	Tasks    int               `json:"tasks"`
	Error    string            `json:"error,omitempty"`
	Created  time.Time         `json:"created"`
	Started  *time.Time        `json:"started,omitempty"`
	Finished *time.Time        `json:"finished,omitempty"`
	Report   *DistReportView   `json:"report,omitempty"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
}

// DistReportView is the JSON shape of a cluster.RunReport.
type DistReportView struct {
	Triangles  int64                       `json:"triangles"`
	Tasks      int                         `json:"tasks"`
	Dispatched int                         `json:"dispatched"`
	Retries    int                         `json:"retries"`
	Stragglers int                         `json:"stragglers"`
	Duplicates int                         `json:"duplicates"`
	Failed     []cluster.TaskID            `json:"failed,omitempty"`
	ElapsedNS  int64                       `json:"elapsed_ns"`
	PerTask    []cluster.TaskResultMessage `json:"per_task,omitempty"`
}

func distViewOf(r *cluster.RunReport) *DistReportView {
	if r == nil {
		return nil
	}
	return &DistReportView{
		Triangles:  r.Triangles,
		Tasks:      r.Tasks,
		Dispatched: r.Dispatched,
		Retries:    r.Retries,
		Stragglers: r.Stragglers,
		Duplicates: r.Duplicates,
		Failed:     r.Failed,
		ElapsedNS:  int64(r.Elapsed),
		PerTask:    r.PerTask,
	}
}

// Status returns a consistent snapshot of the distributed job.
func (j *DistJob) Status() DistStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := DistStatus{
		ID:      j.ID,
		State:   j.state.String(),
		Spec:    j.Spec,
		Digest:  j.digest,
		Tasks:   j.tasks,
		Created: j.created,
		Report:  distViewOf(j.report),
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.state.Terminal() && j.collector != nil {
		snap := j.collector.Snapshot()
		s.Metrics = &snap
	}
	return s
}

// State returns the job's current state.
func (j *DistJob) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *DistJob) Done() <-chan struct{} { return j.done }

// Report returns the (possibly partial) merged report and error once the
// job is terminal; nil/nil before that.
func (j *DistJob) Report() (*cluster.RunReport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil
	}
	return j.report, j.err
}

func (j *DistJob) finish(state State, rep *cluster.RunReport, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.report = rep
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
	j.hub.Close()
}

// SubmitDist validates and launches a distributed job. The coordinator
// runs on a manager-joined goroutine under the manager's root context, so
// a forced drain cancels it like any local job.
func (m *Manager) SubmitDist(spec DistSpec) (*DistJob, error) {
	if m.isDraining() {
		return nil, ErrDraining
	}
	if len(spec.Agents) == 0 {
		spec.Agents = append([]string(nil), m.cfg.DefaultAgents...)
	}
	var timeout time.Duration
	if spec.Timeout != "" {
		d, err := time.ParseDuration(spec.Timeout)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("%w: invalid timeout %q", ErrBadRequest, spec.Timeout)
		}
		timeout = d
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.distSeq++
	id := "d" + strconv.FormatInt(m.distSeq, 10)
	m.mu.Unlock()

	cfg, err := m.coordinatorConfig(id, spec)
	if err != nil {
		return nil, err
	}
	job := &DistJob{
		ID:        id,
		Spec:      spec,
		digest:    cfg.Digest,
		hub:       newEventHub(m.cfg.EventBuffer),
		collector: metrics.NewCollector(),
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	cfg.Events = events.Tee(job.collector, job.hub)

	dispatch := m.cfg.Dispatcher
	if dispatch == nil {
		dispatch = &cluster.HTTPDispatcher{Client: cluster.NewDefaultHTTPClient()}
	}
	coord, err := cluster.NewCoordinator(cfg, dispatch)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	job.tasks = len(coord.Tasks())

	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(m.rootCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(m.rootCtx)
	}
	job.mu.Lock()
	job.cancel = cancel
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	m.mu.Lock()
	m.distJobs[id] = job
	m.distOrder = append(m.distOrder, job)
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		rep, err := coord.Run(ctx)
		if err != nil {
			job.finish(stateForError(err), rep, err)
			return
		}
		job.finish(StateDone, rep, nil)
	}()
	return job, nil
}

// GetDist returns the distributed job with the given id.
func (m *Manager) GetDist(id string) (*DistJob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.distJobs[id]
	return j, ok
}

// DistJobs lists every tracked distributed job in submission order.
func (m *Manager) DistJobs() []*DistJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*DistJob(nil), m.distOrder...)
}

// CancelDist cancels a distributed job; the coordinator winds down its
// in-flight attempts and reports the partial merge.
func (m *Manager) CancelDist(id string) (*DistJob, error) {
	j, ok := m.GetDist(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, nil
}
