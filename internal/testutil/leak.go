// Package testutil holds small helpers shared by the repository's test
// suites. Production packages must not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitGoroutines polls until the live goroutine count has returned to at
// most baseline, failing the test with a full stack dump otherwise. It is
// the zero-leaked-goroutines assertion every concurrency suite shares:
// capture runtime.NumGoroutine() before the scenario, call this after.
// label names the scenario in the failure message.
func WaitGoroutines(t testing.TB, baseline int, label string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if label == "" {
		label = "test"
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("%s leaked goroutines: %d live, baseline %d\n%s",
		label, runtime.NumGoroutine(), baseline, buf[:n])
}

// LeakCheck captures the current goroutine count and registers a cleanup
// that runs WaitGoroutines against it when the test finishes — the
// one-liner form for tests whose whole body is the scenario.
func LeakCheck(t testing.TB, label string) {
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() { WaitGoroutines(t, baseline, label) })
}
