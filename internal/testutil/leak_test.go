package testutil

import (
	"runtime"
	"testing"
)

// TestWaitGoroutinesSettles: a goroutine alive when the check starts but
// released before the deadline must not fail the test — the poll loop has
// to observe the count coming back down, not just the instant snapshot.
func TestWaitGoroutinesSettles(t *testing.T) {
	baseline := runtime.NumGoroutine()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-release
		close(done)
	}()
	close(release)
	WaitGoroutines(t, baseline, "settling goroutine")
	<-done
}

// TestLeakCheckClean: the cleanup-registered form passes on a test that
// spawns and joins everything it starts.
func TestLeakCheckClean(t *testing.T) {
	LeakCheck(t, "clean scenario")
	done := make(chan struct{})
	go close(done)
	<-done
}
