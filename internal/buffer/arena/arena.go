// Package arena provides aligned, recycled read buffers for the ssd layer.
//
// The native Linux backend reads with O_DIRECT, which requires the buffer
// address to be aligned (typically to 512 or 4096 bytes); Go's allocator
// gives no such guarantee, so the arena over-allocates once per buffer and
// slices to the alignment boundary. Released buffers are kept on
// power-of-two size-class free lists and handed back on the next Acquire,
// so the steady state of a read loop — acquire, read, decode, release —
// performs zero heap allocations. That preserves the 0 allocs/op contract
// the I/O scheduler pinned in PR 3.
//
// The package is a leaf below both ssd and buffer: it imports nothing from
// the repository, so ssd can use it without creating the
// ssd → buffer → storage → ssd cycle.
package arena

import (
	"sync"
	"unsafe"
)

// maxPerClass bounds each size-class free list; buffers released beyond it
// are dropped for the GC. The async device keeps at most ring-depth buffers
// in flight, so the bound only matters when a workload's read sizes shift.
const maxPerClass = 64

// Arena recycles byte buffers whose backing arrays start on an alignment
// boundary. It is safe for concurrent use.
type Arena struct {
	align int

	mu   sync.Mutex
	free map[int][][]byte // size class → released full-capacity slices

	allocs   int64 // fresh allocations (cache misses)
	recycles int64 // acquisitions served from a free list
}

// New returns an arena whose buffers are aligned to align bytes, which must
// be a positive power of two.
func New(align int) *Arena {
	if align <= 0 || align&(align-1) != 0 {
		panic("arena: alignment must be a positive power of two")
	}
	return &Arena{align: align, free: make(map[int][][]byte)}
}

// Align returns the arena's alignment in bytes.
func (a *Arena) Align() int { return a.align }

// classFor rounds n up to the arena's buffer size classes: the next power
// of two, floored at the alignment so every class is itself aligned.
func (a *Arena) classFor(n int) int {
	size := a.align
	for size < n {
		size <<= 1
	}
	return size
}

// Acquire returns an n-byte buffer whose first byte sits on an alignment
// boundary and whose capacity is the full size class, so Release can
// recover the class from cap alone. n must be positive.
func (a *Arena) Acquire(n int) []byte {
	if n <= 0 {
		panic("arena: Acquire of non-positive size")
	}
	size := a.classFor(n)
	a.mu.Lock()
	if l := a.free[size]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		a.free[size] = l[:len(l)-1]
		a.recycles++
		a.mu.Unlock()
		return b[:n]
	}
	a.allocs++
	a.mu.Unlock()
	raw := make([]byte, size+a.align)
	off := int(-uintptr(unsafe.Pointer(&raw[0])) & uintptr(a.align-1))
	return raw[off : off+n : off+size]
}

// Release returns a buffer obtained from Acquire to the arena. Slices the
// arena does not recognise — wrong capacity class or unaligned start — are
// dropped silently, so callers may pass through buffers of foreign origin.
// The caller must not retain any view of b after Release.
func (a *Arena) Release(b []byte) {
	size := cap(b)
	if size < a.align || size&(size-1) != 0 {
		return
	}
	full := b[:size]
	if uintptr(unsafe.Pointer(&full[0]))&uintptr(a.align-1) != 0 {
		return
	}
	a.mu.Lock()
	if len(a.free[size]) < maxPerClass {
		a.free[size] = append(a.free[size], full)
	}
	a.mu.Unlock()
}

// Stats reports fresh allocations and recycled acquisitions so far.
func (a *Arena) Stats() (allocs, recycles int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs, a.recycles
}
