package arena

import (
	"testing"
	"unsafe"
)

func addr(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }

func TestAcquireAligned(t *testing.T) {
	for _, align := range []int{512, 4096} {
		a := New(align)
		for _, n := range []int{1, 100, align - 1, align, align + 1, 3 * align} {
			b := a.Acquire(n)
			if len(b) != n {
				t.Fatalf("align %d: Acquire(%d) len = %d", align, n, len(b))
			}
			if addr(b)%uintptr(align) != 0 {
				t.Fatalf("align %d: Acquire(%d) address %#x not aligned", align, n, addr(b))
			}
			if cap(b) < n || cap(b)&(cap(b)-1) != 0 {
				t.Fatalf("align %d: Acquire(%d) cap = %d, want power-of-two class", align, n, cap(b))
			}
		}
	}
}

func TestReleaseRecycles(t *testing.T) {
	a := New(4096)
	b := a.Acquire(5000)
	p := addr(b)
	a.Release(b)
	c := a.Acquire(6000) // same 8192-byte class
	if addr(c) != p {
		t.Fatalf("recycled buffer address %#x, want %#x", addr(c), p)
	}
	if allocs, recycles := a.Stats(); allocs != 1 || recycles != 1 {
		t.Fatalf("stats = %d allocs, %d recycles; want 1, 1", allocs, recycles)
	}
}

func TestReleaseForeignDropped(t *testing.T) {
	a := New(4096)
	a.Release(make([]byte, 100))  // wrong class
	a.Release(make([]byte, 4096)) // right class, almost surely unaligned… either way:
	a.Release(nil)
	for size, l := range a.free {
		for _, b := range l {
			if addr(b)%4096 != 0 || cap(b) != size {
				t.Fatalf("foreign buffer admitted to class %d", size)
			}
		}
	}
}

func TestClassFor(t *testing.T) {
	a := New(512)
	for _, tc := range []struct{ n, want int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096}, {4097, 8192},
	} {
		if got := a.classFor(tc.n); got != tc.want {
			t.Fatalf("classFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestSteadyStateZeroAllocs pins the arena's purpose: once warm, the
// acquire/release loop of the read path allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under the race detector")
	}
	a := New(4096)
	sizes := []int{4096, 5000, 16384}
	for _, n := range sizes { // warm every class
		a.Release(a.Acquire(n))
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, n := range sizes {
			b := a.Acquire(n)
			b[0] = 1
			a.Release(b)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", avg)
	}
}

func TestConcurrentUse(t *testing.T) {
	a := New(512)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				b := a.Acquire(1000 + i)
				b[len(b)-1] = byte(i)
				a.Release(b)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
