//go:build race

package arena

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count tests skip under it: instrumentation allocates.
const raceEnabled = true
