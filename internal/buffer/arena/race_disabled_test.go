//go:build !race

package arena

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
