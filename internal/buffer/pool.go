// Package buffer provides the memory-buffer substrate of §3.2: fixed page
// budgets for the internal and external areas, pin/unpin semantics, and the
// page-reuse path that lets the external area of iteration i serve the
// internal-area loads of iteration i+1 (the Δin_io credit of §3.3).
//
// The unit of buffering is a Chunk: an aligned span of pages holding whole
// decoded records — one page for slotted pages shared by small vertices, or
// a multi-page run for an oversized adjacency list.
package buffer

import (
	"fmt"
	"sync"

	"github.com/optlab/opt/internal/storage"
)

// Chunk is a decoded, aligned span of pages. Arena is the shared neighbor
// backing that every Recs[i].Adj sub-slices (see storage.DecodeRangeAppend);
// recycling it alongside Recs keeps warm decodes at zero allocations.
type Chunk struct {
	FirstPage uint32
	NumPages  int
	Recs      []storage.VertexRec
	Arena     []uint32
}

// chunkFree recycles Chunk headers and their Recs/Arena backing arrays
// between iterations so the steady-state external path allocates nothing.
var chunkFree = sync.Pool{New: func() any { return new(Chunk) }}

// GetChunk returns a recycled (or fresh) Chunk with zeroed fields and
// Recs/Arena slices of length zero retaining any recycled capacity.
func GetChunk() *Chunk {
	c := chunkFree.Get().(*Chunk)
	c.FirstPage = 0
	c.NumPages = 0
	c.Recs = c.Recs[:0]
	c.Arena = c.Arena[:0]
	return c
}

// PutChunk returns a chunk to the free list. The caller must no longer hold
// references to the chunk, its Recs, or its Arena; record contents are
// cleared so the free list does not pin adjacency arrays from previous
// graphs (the Arena holds no pointers, so its capacity is retained as is).
func PutChunk(c *Chunk) {
	if c == nil {
		return
	}
	for i := range c.Recs {
		c.Recs[i] = storage.VertexRec{}
	}
	c.Recs = c.Recs[:0]
	c.Arena = c.Arena[:0]
	chunkFree.Put(c)
}

type entry struct {
	chunk *Chunk
	pins  int
}

// Pool is a page-budgeted chunk cache with pinning and FIFO eviction of
// unpinned chunks. It is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	capPages int
	used     int
	chunks   map[uint32]*entry
	fifo     []uint32 // insertion order, candidates for eviction
	overflow int      // pages held beyond capacity because everything was pinned
}

// NewPool returns a Pool with the given capacity in pages. Like the paper's
// internal area, the capacity must admit at least one adjacency list; a
// single chunk larger than the capacity is still admitted, with the excess
// recorded as overflow.
func NewPool(capPages int) *Pool {
	if capPages < 1 {
		capPages = 1
	}
	return &Pool{capPages: capPages, chunks: make(map[uint32]*entry)}
}

// Capacity returns the pool's page budget.
func (p *Pool) Capacity() int { return p.capPages }

// UsedPages returns the pages currently held.
func (p *Pool) UsedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// OverflowPages returns the cumulative number of pages admitted beyond
// capacity because no unpinned chunk could be evicted.
func (p *Pool) OverflowPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.overflow
}

// Insert adds a chunk pinned once, evicting unpinned chunks in FIFO order
// as needed. It returns the number of pages evicted. Inserting a chunk
// whose FirstPage is already present panics: the caller is responsible for
// Lookup-before-load.
func (p *Pool) Insert(c *Chunk) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.chunks[c.FirstPage]; dup {
		panic(fmt.Sprintf("buffer: duplicate insert of chunk %d", c.FirstPage))
	}
	evicted := 0
	for p.used+c.NumPages > p.capPages {
		if !p.evictOneLocked() {
			p.overflow += p.used + c.NumPages - p.capPages
			break
		}
		evicted++
	}
	p.chunks[c.FirstPage] = &entry{chunk: c, pins: 1}
	p.fifo = append(p.fifo, c.FirstPage)
	p.used += c.NumPages
	return evicted
}

// evictOneLocked removes the oldest unpinned chunk. It reports whether an
// eviction happened.
func (p *Pool) evictOneLocked() bool {
	for i, first := range p.fifo {
		e, ok := p.chunks[first]
		if !ok {
			continue // already removed; lazily skip
		}
		if e.pins > 0 {
			continue
		}
		delete(p.chunks, first)
		p.used -= e.chunk.NumPages
		p.fifo = append(p.fifo[:i], p.fifo[i+1:]...)
		return true
	}
	return false
}

// Lookup returns the chunk starting at page first and pins it, or nil when
// absent. Callers must Unpin when done.
func (p *Pool) Lookup(first uint32) *Chunk {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.chunks[first]
	if !ok {
		return nil
	}
	e.pins++
	return e.chunk
}

// Contains reports whether the chunk starting at first is resident, without
// pinning it.
func (p *Pool) Contains(first uint32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.chunks[first]
	return ok
}

// Unpin releases one pin on the chunk starting at first. Unpinning an
// absent or unpinned chunk panics: it indicates a framework bug.
func (p *Pool) Unpin(first uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.chunks[first]
	if !ok {
		panic(fmt.Sprintf("buffer: unpin of absent chunk %d", first))
	}
	if e.pins == 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned chunk %d", first))
	}
	e.pins--
}

// PinCount returns the current pin count of the chunk starting at first,
// or -1 when the chunk is not resident.
func (p *Pool) PinCount(first uint32) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.chunks[first]
	if !ok {
		return -1
	}
	return e.pins
}

// Take removes and returns the chunk starting at first regardless of pins
// (the donation path from the external to the internal area between
// iterations). It returns nil when absent.
func (p *Pool) Take(first uint32) *Chunk {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.chunks[first]
	if !ok {
		return nil
	}
	delete(p.chunks, first)
	p.used -= e.chunk.NumPages
	for i, f := range p.fifo {
		if f == first {
			p.fifo = append(p.fifo[:i], p.fifo[i+1:]...)
			break
		}
	}
	return e.chunk
}

// Clear removes every chunk.
func (p *Pool) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.chunks = make(map[uint32]*entry)
	p.fifo = nil
	p.used = 0
}

// Resident returns the FirstPage keys of all resident chunks, in no
// particular order.
func (p *Pool) Resident() []uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint32, 0, len(p.chunks))
	for f := range p.chunks {
		out = append(out, f)
	}
	return out
}
