package buffer

import (
	"sync"
	"testing"

	"github.com/optlab/opt/internal/storage"
)

func chunk(first uint32, pages int) *Chunk {
	return &Chunk{FirstPage: first, NumPages: pages}
}

func TestPoolInsertLookup(t *testing.T) {
	p := NewPool(4)
	p.Insert(chunk(0, 1))
	p.Insert(chunk(1, 2))
	if p.UsedPages() != 3 {
		t.Fatalf("UsedPages = %d, want 3", p.UsedPages())
	}
	c := p.Lookup(1)
	if c == nil || c.NumPages != 2 {
		t.Fatalf("Lookup(1) = %v", c)
	}
	if p.Lookup(9) != nil {
		t.Fatal("Lookup(9) should be nil")
	}
	if !p.Contains(0) || p.Contains(9) {
		t.Fatal("Contains wrong")
	}
}

func TestPoolEvictionFIFO(t *testing.T) {
	p := NewPool(3)
	p.Insert(chunk(0, 1))
	p.Insert(chunk(1, 1))
	p.Insert(chunk(2, 1))
	// All inserted pinned once; unpin 0 and 1 so they are evictable.
	p.Unpin(0)
	p.Unpin(1)
	evicted := p.Insert(chunk(3, 2)) // needs 2 pages -> evicts 0 then 1
	if evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
	if p.Contains(0) || p.Contains(1) {
		t.Fatal("FIFO eviction order violated")
	}
	if !p.Contains(2) || !p.Contains(3) {
		t.Fatal("wrong survivors")
	}
	if p.UsedPages() != 3 {
		t.Fatalf("UsedPages = %d, want 3", p.UsedPages())
	}
}

func TestPoolPinPreventsEviction(t *testing.T) {
	p := NewPool(2)
	p.Insert(chunk(0, 1)) // pinned
	p.Insert(chunk(1, 1)) // pinned
	// Everything pinned: insert overflows.
	p.Insert(chunk(2, 1))
	if !p.Contains(0) || !p.Contains(1) || !p.Contains(2) {
		t.Fatal("pinned chunk was evicted")
	}
	if p.OverflowPages() != 1 {
		t.Fatalf("OverflowPages = %d, want 1", p.OverflowPages())
	}
}

func TestPoolUnpinThenEvictable(t *testing.T) {
	p := NewPool(1)
	p.Insert(chunk(0, 1))
	c := p.Lookup(0) // second pin
	if c == nil {
		t.Fatal("Lookup failed")
	}
	p.Unpin(0)
	p.Unpin(0) // now unpinned
	p.Insert(chunk(1, 1))
	if p.Contains(0) {
		t.Fatal("chunk 0 should have been evicted")
	}
}

func TestPoolUnpinPanics(t *testing.T) {
	p := NewPool(2)
	p.Insert(chunk(0, 1))
	p.Unpin(0)
	assertPanics(t, func() { p.Unpin(0) }, "double unpin")
	assertPanics(t, func() { p.Unpin(7) }, "unpin absent")
	assertPanics(t, func() { p.Insert(chunk(0, 1)) }, "duplicate insert")
}

func assertPanics(t *testing.T, fn func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestPoolTake(t *testing.T) {
	p := NewPool(4)
	p.Insert(chunk(0, 2))
	p.Insert(chunk(2, 1))
	c := p.Take(0) // still pinned; Take succeeds regardless
	if c == nil || c.NumPages != 2 {
		t.Fatalf("Take = %v", c)
	}
	if p.Contains(0) {
		t.Fatal("Take left chunk resident")
	}
	if p.UsedPages() != 1 {
		t.Fatalf("UsedPages = %d, want 1", p.UsedPages())
	}
	if p.Take(0) != nil {
		t.Fatal("second Take should be nil")
	}
}

func TestPoolClearAndResident(t *testing.T) {
	p := NewPool(4)
	p.Insert(chunk(0, 1))
	p.Insert(chunk(5, 1))
	res := p.Resident()
	if len(res) != 2 {
		t.Fatalf("Resident = %v", res)
	}
	p.Clear()
	if p.UsedPages() != 0 || len(p.Resident()) != 0 {
		t.Fatal("Clear did not empty pool")
	}
}

func TestPoolOversizedChunkAdmitted(t *testing.T) {
	p := NewPool(2)
	p.Insert(chunk(0, 5)) // bigger than capacity
	if !p.Contains(0) {
		t.Fatal("oversized chunk rejected")
	}
	if p.OverflowPages() != 3 {
		t.Fatalf("OverflowPages = %d, want 3", p.OverflowPages())
	}
}

func TestPoolMinimumCapacity(t *testing.T) {
	p := NewPool(0)
	if p.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", p.Capacity())
	}
}

// TestPoolEvictionPressure hammers a small pool from many goroutines with
// Insert/Lookup/Unpin/Take so evictions race against pinning. Each worker
// owns a disjoint key range, so the pin counts of its own chunks are
// deterministic and can be checked exactly even while the other workers
// force evictions.
func TestPoolEvictionPressure(t *testing.T) {
	const (
		workers  = 8
		rounds   = 200
		capacity = 16 // far below workers*rounds pages: constant pressure
	)
	p := NewPool(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				first := uint32(w*rounds + i)
				p.Insert(chunk(first, 1))
				if got := p.PinCount(first); got != 1 {
					t.Errorf("after Insert(%d): pins = %d, want 1", first, got)
					return
				}
				if c := p.Lookup(first); c == nil {
					t.Errorf("Lookup(%d) = nil while pinned", first)
					return
				}
				if got := p.PinCount(first); got != 2 {
					t.Errorf("after Lookup(%d): pins = %d, want 2", first, got)
					return
				}
				p.Unpin(first)
				if got := p.PinCount(first); got != 1 {
					t.Errorf("after Unpin(%d): pins = %d, want 1", first, got)
					return
				}
				// A pinned chunk can never be evicted, however hard the
				// other workers push.
				if !p.Contains(first) {
					t.Errorf("pinned chunk %d evicted", first)
					return
				}
				switch i % 3 {
				case 0:
					// Release: the chunk becomes eviction fodder.
					p.Unpin(first)
				case 1:
					// Donate: Take removes it regardless of the pin.
					if c := p.Take(first); c == nil || c.FirstPage != first {
						t.Errorf("Take(%d) while pinned = %v", first, c)
						return
					}
				case 2:
					// Release, then reclaim it if it survived the others.
					p.Unpin(first)
					if c := p.Take(first); c != nil && c.FirstPage != first {
						t.Errorf("Take(%d) returned chunk %d", first, c.FirstPage)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// Every surviving chunk was left unpinned, so the budget must hold and
	// no pins may leak.
	if p.UsedPages() > capacity {
		t.Fatalf("UsedPages = %d exceeds capacity %d with all pins released", p.UsedPages(), capacity)
	}
	for _, first := range p.Resident() {
		if got := p.PinCount(first); got != 0 {
			t.Fatalf("chunk %d left with %d pins", first, got)
		}
	}
	if p.PinCount(uint32(workers*rounds)) != -1 {
		t.Fatal("PinCount of absent chunk should be -1")
	}
}

// TestChunkRecycle checks the GetChunk/PutChunk free list: recycled chunks
// come back zeroed and must not retain adjacency arrays from their previous
// life.
func TestChunkRecycle(t *testing.T) {
	c := GetChunk()
	if c.FirstPage != 0 || c.NumPages != 0 || len(c.Recs) != 0 {
		t.Fatalf("fresh chunk not zeroed: %+v", c)
	}
	c.FirstPage = 7
	c.NumPages = 2
	c.Recs = append(c.Recs, storage.VertexRec{ID: 1, Adj: []uint32{2, 3}})
	PutChunk(c)
	PutChunk(nil) // must be a no-op

	d := GetChunk()
	if d.FirstPage != 0 || d.NumPages != 0 || len(d.Recs) != 0 {
		t.Fatalf("recycled chunk not reset: %+v", d)
	}
	if cap(d.Recs) > 0 {
		if r := d.Recs[:1][0]; r.Adj != nil || r.ID != 0 {
			t.Fatalf("recycled record retains data: %+v", r)
		}
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint32(w * 100)
			for i := uint32(0); i < 50; i++ {
				p.Insert(chunk(base+i, 1))
				if c := p.Lookup(base + i); c != nil {
					p.Unpin(base + i)
				}
				p.Unpin(base + i) // release insert pin
			}
		}()
	}
	wg.Wait()
	if p.UsedPages() > 64 {
		t.Fatalf("UsedPages = %d exceeds capacity with everything unpinned", p.UsedPages())
	}
}
