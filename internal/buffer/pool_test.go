package buffer

import (
	"sync"
	"testing"
)

func chunk(first uint32, pages int) *Chunk {
	return &Chunk{FirstPage: first, NumPages: pages}
}

func TestPoolInsertLookup(t *testing.T) {
	p := NewPool(4)
	p.Insert(chunk(0, 1))
	p.Insert(chunk(1, 2))
	if p.UsedPages() != 3 {
		t.Fatalf("UsedPages = %d, want 3", p.UsedPages())
	}
	c := p.Lookup(1)
	if c == nil || c.NumPages != 2 {
		t.Fatalf("Lookup(1) = %v", c)
	}
	if p.Lookup(9) != nil {
		t.Fatal("Lookup(9) should be nil")
	}
	if !p.Contains(0) || p.Contains(9) {
		t.Fatal("Contains wrong")
	}
}

func TestPoolEvictionFIFO(t *testing.T) {
	p := NewPool(3)
	p.Insert(chunk(0, 1))
	p.Insert(chunk(1, 1))
	p.Insert(chunk(2, 1))
	// All inserted pinned once; unpin 0 and 1 so they are evictable.
	p.Unpin(0)
	p.Unpin(1)
	evicted := p.Insert(chunk(3, 2)) // needs 2 pages -> evicts 0 then 1
	if evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
	if p.Contains(0) || p.Contains(1) {
		t.Fatal("FIFO eviction order violated")
	}
	if !p.Contains(2) || !p.Contains(3) {
		t.Fatal("wrong survivors")
	}
	if p.UsedPages() != 3 {
		t.Fatalf("UsedPages = %d, want 3", p.UsedPages())
	}
}

func TestPoolPinPreventsEviction(t *testing.T) {
	p := NewPool(2)
	p.Insert(chunk(0, 1)) // pinned
	p.Insert(chunk(1, 1)) // pinned
	// Everything pinned: insert overflows.
	p.Insert(chunk(2, 1))
	if !p.Contains(0) || !p.Contains(1) || !p.Contains(2) {
		t.Fatal("pinned chunk was evicted")
	}
	if p.OverflowPages() != 1 {
		t.Fatalf("OverflowPages = %d, want 1", p.OverflowPages())
	}
}

func TestPoolUnpinThenEvictable(t *testing.T) {
	p := NewPool(1)
	p.Insert(chunk(0, 1))
	c := p.Lookup(0) // second pin
	if c == nil {
		t.Fatal("Lookup failed")
	}
	p.Unpin(0)
	p.Unpin(0) // now unpinned
	p.Insert(chunk(1, 1))
	if p.Contains(0) {
		t.Fatal("chunk 0 should have been evicted")
	}
}

func TestPoolUnpinPanics(t *testing.T) {
	p := NewPool(2)
	p.Insert(chunk(0, 1))
	p.Unpin(0)
	assertPanics(t, func() { p.Unpin(0) }, "double unpin")
	assertPanics(t, func() { p.Unpin(7) }, "unpin absent")
	assertPanics(t, func() { p.Insert(chunk(0, 1)) }, "duplicate insert")
}

func assertPanics(t *testing.T, fn func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestPoolTake(t *testing.T) {
	p := NewPool(4)
	p.Insert(chunk(0, 2))
	p.Insert(chunk(2, 1))
	c := p.Take(0) // still pinned; Take succeeds regardless
	if c == nil || c.NumPages != 2 {
		t.Fatalf("Take = %v", c)
	}
	if p.Contains(0) {
		t.Fatal("Take left chunk resident")
	}
	if p.UsedPages() != 1 {
		t.Fatalf("UsedPages = %d, want 1", p.UsedPages())
	}
	if p.Take(0) != nil {
		t.Fatal("second Take should be nil")
	}
}

func TestPoolClearAndResident(t *testing.T) {
	p := NewPool(4)
	p.Insert(chunk(0, 1))
	p.Insert(chunk(5, 1))
	res := p.Resident()
	if len(res) != 2 {
		t.Fatalf("Resident = %v", res)
	}
	p.Clear()
	if p.UsedPages() != 0 || len(p.Resident()) != 0 {
		t.Fatal("Clear did not empty pool")
	}
}

func TestPoolOversizedChunkAdmitted(t *testing.T) {
	p := NewPool(2)
	p.Insert(chunk(0, 5)) // bigger than capacity
	if !p.Contains(0) {
		t.Fatal("oversized chunk rejected")
	}
	if p.OverflowPages() != 3 {
		t.Fatalf("OverflowPages = %d, want 3", p.OverflowPages())
	}
}

func TestPoolMinimumCapacity(t *testing.T) {
	p := NewPool(0)
	if p.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", p.Capacity())
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint32(w * 100)
			for i := uint32(0); i < 50; i++ {
				p.Insert(chunk(base+i, 1))
				if c := p.Lookup(base + i); c != nil {
					p.Unpin(base + i)
				}
				p.Unpin(base + i) // release insert pin
			}
		}()
	}
	wg.Wait()
	if p.UsedPages() > 64 {
		t.Fatalf("UsedPages = %d exceeds capacity with everything unpinned", p.UsedPages())
	}
}
