// Package diskio provides the sequential working-file format shared by the
// iterative "slow group" baselines (CC-Seq, CC-DS, GraphChi-Tri): a flat
// sequence of (id, deg, neighbors…) little-endian uint32 records. Reads and
// writes are charged to a metrics collector at page granularity and pass
// through the simulated device-latency model, so remainder-file I/O costs
// are comparable with the slotted-page stores used by OPT and MGT.
package diskio

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
)

// CostModel bundles the per-page accounting applied to stream I/O.
type CostModel struct {
	PageSize int
	Latency  ssd.Latency
	Metrics  *metrics.Collector
	// ReadAhead is the number of pages per priced device request: streams
	// read and write sequentially, so the fixed PerRead latency is paid
	// once per ReadAhead pages rather than per page. Default 16.
	ReadAhead int
	// Context, if non-nil, cancels the stream: ReadRecord and WriteRecord
	// fail with the context's error once it is done, so the iterative
	// baselines stop within one record of cancellation.
	Context context.Context
	// Events, if non-nil, receives PagesRead/PagesWritten progress events.
	Events events.Sink
}

// err returns the context's error, if a context is set and done.
func (cm CostModel) err() error {
	if cm.Context != nil {
		return cm.Context.Err()
	}
	return nil
}

// emit forwards one I/O progress event to the configured sink, if any.
func (cm CostModel) emit(kind events.Kind, n int64) {
	if cm.Events != nil {
		cm.Events.Event(events.Event{Kind: kind, Iteration: -1, N: n})
	}
}

// readAhead returns the effective read-ahead window.
func (cm CostModel) readAhead() int {
	if cm.ReadAhead <= 0 {
		return 16
	}
	return cm.ReadAhead
}

// chargePages charges the latency of n sequential pages to th, amortising
// PerRead over the read-ahead window. reqPages tracks pages since the last
// priced request and is returned updated.
func (cm CostModel) chargePages(th *ssd.Throttle, n int64, reqPages int) int {
	if cm.Latency.PerRead == 0 && cm.Latency.PerPage == 0 {
		return reqPages
	}
	ra := cm.readAhead()
	d := time.Duration(n) * cm.Latency.PerPage
	for i := int64(0); i < n; i++ {
		reqPages++
		if reqPages >= ra {
			d += cm.Latency.PerRead
			reqPages = 0
		}
	}
	th.Charge(d)
	return reqPages
}

// StreamWriter writes working-file records with page-granular cost
// accounting.
type StreamWriter struct {
	f        *os.File
	bw       *bufio.Writer
	bytes    int64
	reqPages int
	th       ssd.Throttle
	cm       CostModel
}

// NewStreamWriter creates (truncating) the working file at path.
func NewStreamWriter(path string, cm CostModel) (*StreamWriter, error) {
	if cm.PageSize <= 0 {
		return nil, fmt.Errorf("diskio: page size %d", cm.PageSize)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &StreamWriter{f: f, bw: bufio.NewWriterSize(f, 1<<20), cm: cm}, nil
}

// WriteRecord appends one (id, adj) record.
func (w *StreamWriter) WriteRecord(id uint32, adj []uint32) error {
	if err := w.cm.err(); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], id)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(adj)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	var nb [4]byte
	for _, x := range adj {
		binary.LittleEndian.PutUint32(nb[:], x)
		if _, err := w.bw.Write(nb[:]); err != nil {
			return err
		}
	}
	before := w.bytes / int64(w.cm.PageSize)
	w.bytes += int64(8 + 4*len(adj))
	w.charge(w.bytes/int64(w.cm.PageSize) - before)
	return nil
}

func (w *StreamWriter) charge(pages int64) {
	if pages <= 0 {
		return
	}
	if w.cm.Metrics != nil {
		w.cm.Metrics.AddPagesWritten(pages)
	}
	w.cm.emit(events.PagesWritten, pages)
	w.reqPages = w.cm.chargePages(&w.th, pages, w.reqPages)
}

// BytesWritten returns the payload size so far.
func (w *StreamWriter) BytesWritten() int64 { return w.bytes }

// Close charges the final partial page, settles the latency debt, and
// closes the file.
func (w *StreamWriter) Close() error {
	if w.bytes%int64(w.cm.PageSize) != 0 {
		w.charge(1)
	}
	w.th.Flush()
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// StreamReader reads working-file records with page-granular cost
// accounting.
type StreamReader struct {
	f        *os.File
	br       *bufio.Reader
	bytes    int64
	reqPages int
	th       ssd.Throttle
	cm       CostModel
}

// NewStreamReader opens the working file at path.
func NewStreamReader(path string, cm CostModel) (*StreamReader, error) {
	if cm.PageSize <= 0 {
		return nil, fmt.Errorf("diskio: page size %d", cm.PageSize)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &StreamReader{f: f, br: bufio.NewReaderSize(f, 1<<20), cm: cm}, nil
}

// ReadRecord returns the next (id, adj) record, or io.EOF at end of file.
func (r *StreamReader) ReadRecord() (uint32, []uint32, error) {
	if err := r.cm.err(); err != nil {
		return 0, nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("diskio: truncated record header")
		}
		return 0, nil, err
	}
	id := binary.LittleEndian.Uint32(hdr[0:])
	deg := int(binary.LittleEndian.Uint32(hdr[4:]))
	body := make([]byte, 4*deg)
	if _, err := io.ReadFull(r.br, body); err != nil {
		return 0, nil, fmt.Errorf("diskio: truncated record body: %w", err)
	}
	adj := make([]uint32, deg)
	for i := range adj {
		adj[i] = binary.LittleEndian.Uint32(body[4*i:])
	}
	before := r.bytes / int64(r.cm.PageSize)
	r.bytes += int64(8 + 4*deg)
	if pages := r.bytes/int64(r.cm.PageSize) - before; pages > 0 {
		if r.cm.Metrics != nil {
			r.cm.Metrics.AddPagesRead(pages)
		}
		r.cm.emit(events.PagesRead, pages)
		r.reqPages = r.cm.chargePages(&r.th, pages, r.reqPages)
	}
	return id, adj, nil
}

// Close settles the latency debt and closes the file.
func (r *StreamReader) Close() error {
	r.th.Flush()
	return r.f.Close()
}
