package diskio

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
)

func TestStreamRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ccg")
	mx := metrics.NewCollector()
	cm := CostModel{PageSize: 64, Metrics: mx}
	w, err := NewStreamWriter(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	recs := map[uint32][]uint32{
		1: {2, 3, 4},
		5: {},
		9: make([]uint32, 100), // spans several pages
	}
	for i := range recs[9] {
		recs[9][i] = uint32(i)
	}
	order := []uint32{1, 5, 9}
	for _, id := range order {
		if err := w.WriteRecord(id, recs[id]); err != nil {
			t.Fatal(err)
		}
	}
	if w.BytesWritten() != int64(8+12+8+8+400) {
		t.Fatalf("BytesWritten = %d", w.BytesWritten())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantPages := (int64(8+12+8+8+400) + 63) / 64
	if mx.PagesWritten() != wantPages {
		t.Fatalf("PagesWritten = %d, want %d", mx.PagesWritten(), wantPages)
	}

	r, err := NewStreamReader(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	var gotOrder []uint32
	for {
		id, adj, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		gotOrder = append(gotOrder, id)
		want := recs[id]
		if len(want) == 0 && len(adj) == 0 {
			continue
		}
		if !reflect.DeepEqual(adj, want) {
			t.Fatalf("record %d = %v, want %v", id, adj, want)
		}
	}
	if !reflect.DeepEqual(gotOrder, order) {
		t.Fatalf("order = %v, want %v", gotOrder, order)
	}
	if mx.PagesRead() == 0 {
		t.Fatal("PagesRead = 0")
	}
}

func TestStreamReaderMissingFile(t *testing.T) {
	if _, err := NewStreamReader(filepath.Join(t.TempDir(), "absent"), CostModel{PageSize: 64}); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestStreamBadPageSize(t *testing.T) {
	if _, err := NewStreamWriter(filepath.Join(t.TempDir(), "x"), CostModel{}); err == nil {
		t.Fatal("want error for page size 0")
	}
	if _, err := NewStreamReader(filepath.Join(t.TempDir(), "x"), CostModel{}); err == nil {
		t.Fatal("want error for page size 0")
	}
}

func TestStreamLatencyCharging(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lat.ccg")
	mx := metrics.NewCollector()
	cm := CostModel{
		PageSize:  64,
		Latency:   ssd.Latency{PerRead: 100 * time.Microsecond, PerPage: 50 * time.Microsecond},
		Metrics:   mx,
		ReadAhead: 4,
	}
	w, err := NewStreamWriter(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	adj := make([]uint32, 30) // 128 bytes per record -> 2 pages
	for i := 0; i < 20; i++ {
		if err := w.WriteRecord(uint32(i), adj); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// 20 records × 128B = 2560B = 40 pages; cost = 40×50µs + 10×100µs = 3ms.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("write latency undercharged: %v", elapsed)
	}
	if mx.PagesWritten() != 40 {
		t.Fatalf("PagesWritten = %d, want 40", mx.PagesWritten())
	}

	r, err := NewStreamReader(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	for {
		if _, _, err := r.ReadRecord(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("read latency undercharged: %v", elapsed)
	}
}

func TestStreamTruncatedBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.ccg")
	cm := CostModel{PageSize: 64}
	w, err := NewStreamWriter(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(7, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the body.
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamReader(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if _, _, err := r.ReadRecord(); err == nil {
		t.Fatal("truncated body: want error")
	}
	// Cut into the header.
	if err := os.WriteFile(path, data[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := NewStreamReader(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r2.Close() }()
	if _, _, err := r2.ReadRecord(); err == nil {
		t.Fatal("truncated header: want error")
	}
}
