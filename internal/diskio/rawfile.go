package diskio

import "os"

// RawFile is a plain OS file handle for scratch artifacts that live
// outside the paged store: external-sort run files, benchmark listing
// output, and similar byte streams with no page structure to account for.
// It exists so the rest of the tree never touches os.Open/os.Create
// directly — the ioconfine rule funnels every file handle through this
// package or internal/ssd, keeping raw I/O auditable in one place. Callers
// that need counted, latency-modelled access use StreamReader/StreamWriter
// or an ssd device instead.
type RawFile struct {
	f *os.File
}

// CreateRaw creates or truncates the named scratch file.
func CreateRaw(path string) (*RawFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RawFile{f: f}, nil
}

// CreateTempRaw creates a new scratch file in dir with a name built from
// pattern, as os.CreateTemp does.
func CreateTempRaw(dir, pattern string) (*RawFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &RawFile{f: f}, nil
}

// OpenRaw opens the named scratch file for reading.
func OpenRaw(path string) (*RawFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &RawFile{f: f}, nil
}

// Read implements io.Reader.
func (r *RawFile) Read(p []byte) (int, error) { return r.f.Read(p) }

// Write implements io.Writer.
func (r *RawFile) Write(p []byte) (int, error) { return r.f.Write(p) }

// Close releases the handle.
func (r *RawFile) Close() error { return r.f.Close() }

// Name returns the path the file was opened with.
func (r *RawFile) Name() string { return r.f.Name() }
