//go:build linux

// Native Linux read backend (DESIGN.md §14): io_uring submission/completion
// rings when the kernel offers them, vectored preadv otherwise, and
// O_DIRECT when the store layout permits. Everything here is raw syscall —
// the repository carries no dependencies, so the io_uring ABI (setup/enter
// plus the mmap'd SQ/CQ rings) is spelled out below rather than imported.
//
// The fallback ladder, decided once at open time and reported through
// BackendInfo:
//
//	O_DIRECT open  → buffered open        (unaligned layout, or the
//	                                       filesystem rejects the flag)
//	io_uring ring  → preadv worker pool   (ENOSYS / EPERM / EMFILE…)
//	native backend → portable FileDevice  (non-Linux builds; native_other.go)
//
// Each demotion keeps the PageDevice/AsyncDevice contract intact; only the
// mechanism under it changes.
package ssd

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"syscall"
	"unsafe"
)

const nativeAvailable = true

// io_uring syscall numbers. The io_uring calls entered the kernel after the
// syscall package froze, so they are spelled out; the numbers are uniform
// across Linux architectures (asm-generic allocation).
const (
	sysIOUringSetup = 425
	sysIOUringEnter = 426
)

// io_uring ABI constants (linux/io_uring.h).
const (
	ioringOffSQRing = 0x0
	ioringOffCQRing = 0x8000000
	ioringOffSQEs   = 0x10000000

	ioringEnterGetevents = 1 << 0
	ioringFeatSingleMmap = 1 << 0

	// IORING_OP_READV is supported from the first io_uring kernel (5.1),
	// unlike IORING_OP_READ (5.6), so the ring uses readv with a pinned
	// one-entry iovec per slot.
	ioringOpNop   = 0
	ioringOpReadv = 1
)

// ringEntries is the SQ depth requested at setup. It bounds in-flight reads
// on the ring engine; the CQ is sized 2× by the kernel, so with at most
// ringEntries outstanding the completion queue cannot overflow.
const ringEntries = 64

// sqRingOffsets / cqRingOffsets mirror struct io_sqring_offsets and
// io_cqring_offsets: byte offsets of the ring's control words within the
// mmap'd regions.
type sqRingOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array             uint32
	resv1                             uint32
	userAddr                          uint64
}

type cqRingOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes                    uint32
	flags, resv1                      uint32
	userAddr                          uint64
}

// ioUringParams mirrors struct io_uring_params (120 bytes).
type ioUringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        sqRingOffsets
	cqOff        cqRingOffsets
}

// ioUringSQE mirrors struct io_uring_sqe (64 bytes). Only the fields the
// readv/nop submissions touch are named; the union tail is opaque padding.
type ioUringSQE struct {
	opcode   uint8
	flags    uint8
	ioprio   uint16
	fd       int32
	off      uint64
	addr     uint64
	len      uint32
	rwFlags  uint32
	userData uint64
	pad      [24]byte
}

// ioUringCQE mirrors struct io_uring_cqe (16 bytes).
type ioUringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

// ringSetup is the io_uring_setup entry point, a variable so tests can
// force the ENOSYS/EPERM demotion to the preadv path.
var ringSetup = func(entries uint32, p *ioUringParams) (int, error) {
	fd, _, errno := syscall.Syscall(sysIOUringSetup, uintptr(entries), uintptr(unsafe.Pointer(p)), 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

func ioUringEnter(fd int, toSubmit, minComplete, flags uint32) (int, error) {
	n, _, errno := syscall.Syscall6(sysIOUringEnter,
		uintptr(fd), uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
	if errno != 0 {
		return int(n), errno
	}
	return int(n), nil
}

// uring is one mmap'd submission/completion ring pair. The SQ side is
// touched only by the AsyncDevice submitter goroutine and the CQ side only
// by its reaper, so no locking beyond the ABI's atomics is needed.
type uring struct {
	fd int

	sqRing []byte // SQ control region (may also carry the CQ: single-mmap)
	cqRing []byte // CQ control region; aliases sqRing on single-mmap kernels
	sqeMem []byte // SQE array region

	sqHead  *uint32
	sqTail  *uint32
	sqMask  uint32
	sqArray []uint32
	sqes    []ioUringSQE

	cqHead *uint32
	cqTail *uint32
	cqMask uint32
	cqes   []ioUringCQE

	entries  uint32 // SQ depth
	localTail uint32 // submitter's private copy of *sqTail
	staged    uint32 // SQEs published but not yet pushed via enter
}

func newURing(entries uint32) (*uring, error) {
	var p ioUringParams
	fd, err := ringSetup(entries, &p)
	if err != nil {
		return nil, err
	}
	r := &uring{fd: fd, entries: p.sqEntries}
	fail := func(err error) (*uring, error) {
		r.close()
		return nil, err
	}
	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(ioUringCQE{}))
	single := p.features&ioringFeatSingleMmap != 0
	if single && cqSize > sqSize {
		sqSize = cqSize
	}
	r.sqRing, err = syscall.Mmap(fd, ioringOffSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("ssd: mmap sq ring: %w", err))
	}
	if single {
		r.cqRing = r.sqRing
	} else {
		r.cqRing, err = syscall.Mmap(fd, ioringOffCQRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return fail(fmt.Errorf("ssd: mmap cq ring: %w", err))
		}
	}
	r.sqeMem, err = syscall.Mmap(fd, ioringOffSQEs, int(p.sqEntries)*int(unsafe.Sizeof(ioUringSQE{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("ssd: mmap sqes: %w", err))
	}
	at32 := func(region []byte, off uint32) *uint32 {
		return (*uint32)(unsafe.Pointer(&region[off]))
	}
	r.sqHead = at32(r.sqRing, p.sqOff.head)
	r.sqTail = at32(r.sqRing, p.sqOff.tail)
	r.sqMask = *at32(r.sqRing, p.sqOff.ringMask)
	r.sqArray = unsafe.Slice(at32(r.sqRing, p.sqOff.array), p.sqEntries)
	r.sqes = unsafe.Slice((*ioUringSQE)(unsafe.Pointer(&r.sqeMem[0])), p.sqEntries)
	r.cqHead = at32(r.cqRing, p.cqOff.head)
	r.cqTail = at32(r.cqRing, p.cqOff.tail)
	r.cqMask = *at32(r.cqRing, p.cqOff.ringMask)
	r.cqes = unsafe.Slice((*ioUringCQE)(unsafe.Pointer(&r.cqRing[p.cqOff.cqes])), p.cqEntries)
	r.localTail = atomic.LoadUint32(r.sqTail)
	return r, nil
}

// stage publishes one SQE without entering the kernel. It must only be
// called from the submitter goroutine, and only when the SQ has room.
func (r *uring) stage(sqe ioUringSQE) {
	idx := r.localTail & r.sqMask
	r.sqes[idx] = sqe
	r.sqArray[idx] = idx
	r.localTail++
	atomic.StoreUint32(r.sqTail, r.localTail)
	r.staged++
}

// sqFull reports whether another SQE would overrun the submission queue.
func (r *uring) sqFull() bool {
	return r.localTail-atomic.LoadUint32(r.sqHead) >= r.entries
}

func (r *uring) close() {
	if r.sqeMem != nil {
		syscall.Munmap(r.sqeMem)
	}
	if r.cqRing != nil && &r.cqRing[0] != &r.sqRing[0] {
		syscall.Munmap(r.cqRing)
	}
	if r.sqRing != nil {
		syscall.Munmap(r.sqRing)
	}
	syscall.Close(r.fd)
}

// nativeDevice is the Linux PageDevice over a raw fd. The synchronous
// methods use preadv; the ring methods below are driven by AsyncDevice's
// submitter/reaper pair when a ring is present.
type nativeDevice struct {
	fd       int
	offset   int64
	pageSize int
	numPages uint32
	info     BackendInfo

	ring *uring
	iov  []syscall.Iovec // one pinned iovec per ring slot, indexed by tag

	closed atomic.Bool
}

// openNative opens path's page region through the fallback ladder
// documented at the top of the file.
func openNative(path string, offset int64, pageSize int) (PageDevice, error) {
	if pageSize <= 0 {
		panic("ssd: page size must be positive")
	}
	info := BackendInfo{Backend: BackendNative, Align: DirectAlign}
	direct := offset%DirectAlign == 0 && pageSize%DirectAlign == 0
	if !direct {
		info.DirectReason = fmt.Sprintf("offset %d or page size %d not %d-byte aligned", offset, pageSize, DirectAlign)
	}
	var fd int
	var err error
	if direct {
		fd, err = syscall.Open(path, syscall.O_RDONLY|syscall.O_DIRECT|syscall.O_CLOEXEC, 0)
		if err != nil {
			// tmpfs and some network filesystems reject the flag outright.
			direct = false
			info.DirectReason = fmt.Sprintf("O_DIRECT open: %v", err)
		}
	}
	if !direct {
		fd, err = syscall.Open(path, syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
		if err != nil {
			return nil, fmt.Errorf("ssd: open %s: %w", path, err)
		}
	}
	info.Direct = direct
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("ssd: stat %s: %w", path, err)
	}
	n := (st.Size - offset) / int64(pageSize)
	if n < 0 {
		n = 0
	}
	if n > math.MaxUint32 {
		syscall.Close(fd)
		return nil, fmt.Errorf("%w: %s holds %d pages of %d bytes", ErrTooManyPages, path, n, pageSize)
	}
	d := &nativeDevice{fd: fd, offset: offset, pageSize: pageSize, numPages: uint32(n), info: info}
	ring, rerr := newURing(ringEntries)
	if rerr != nil {
		// Old kernel (ENOSYS), seccomp/rlimit policy (EPERM, EMFILE)… the
		// preadv worker-pool path below serves every read instead.
		d.info.RingReason = fmt.Sprintf("io_uring unavailable: %v", rerr)
	} else {
		d.ring = ring
		d.iov = make([]syscall.Iovec, ring.entries)
		d.info.Ring = true
		d.info.RingDepth = int(ring.entries)
	}
	return d, nil
}

// BackendInfo implements InfoProvider.
func (d *nativeDevice) BackendInfo() BackendInfo { return d.info }

// PageSize implements PageDevice.
func (d *nativeDevice) PageSize() int { return d.pageSize }

// NumPages implements PageDevice.
func (d *nativeDevice) NumPages() uint32 { return d.numPages }

// WritePages implements PageDevice. The native backend serves sealed store
// files; nothing in the engine writes through a store device.
func (d *nativeDevice) WritePages(first uint32, data []byte) error {
	return errors.New("ssd: native device is read-only")
}

// Close implements PageDevice.
func (d *nativeDevice) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	if d.ring != nil {
		d.ring.close()
	}
	return syscall.Close(d.fd)
}

func (d *nativeDevice) checkRange(first uint32, count int) error {
	if count <= 0 || int64(first)+int64(count) > int64(d.numPages) {
		return fmt.Errorf("%w: pages [%d, %d) of %d", ErrOutOfRange, first, int64(first)+int64(count), d.numPages)
	}
	return nil
}

// alignedBuf returns an n-byte slice whose base address satisfies the
// O_DIRECT alignment, for the synchronous paths that own their buffer.
func alignedBuf(n int) []byte {
	raw := make([]byte, n+DirectAlign)
	off := int(-uintptr(unsafe.Pointer(&raw[0])) & uintptr(DirectAlign-1))
	return raw[off : off+n : off+n]
}

// ReadPages implements PageDevice.
func (d *nativeDevice) ReadPages(first uint32, count int) ([]byte, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	if err := d.checkRange(first, count); err != nil {
		return nil, err
	}
	want := count * d.pageSize
	var buf []byte
	if d.info.Direct {
		buf = alignedBuf(want)
	} else {
		buf = make([]byte, want)
	}
	if err := d.preadFull(buf, d.offset+int64(first)*int64(d.pageSize)); err != nil {
		return nil, fmt.Errorf("ssd: read pages [%d,+%d): %w", first, count, err)
	}
	return buf, nil
}

// ReadPagesInto implements IntoReader. Under O_DIRECT an unaligned caller
// buffer is served through an aligned bounce buffer plus a copy; the async
// layer always passes arena-aligned buffers, so the bounce is reserved for
// direct synchronous callers.
func (d *nativeDevice) ReadPagesInto(buf []byte, first uint32, count int) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if err := d.checkRange(first, count); err != nil {
		return err
	}
	want := count * d.pageSize
	if len(buf) < want {
		return fmt.Errorf("ssd: read buffer of %d bytes, want %d", len(buf), want)
	}
	dst := buf[:want]
	bounce := d.info.Direct && uintptr(unsafe.Pointer(&dst[0]))%DirectAlign != 0
	if bounce {
		dst = alignedBuf(want)
	}
	if err := d.preadFull(dst, d.offset+int64(first)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("ssd: read pages [%d,+%d): %w", first, count, err)
	}
	if bounce {
		copy(buf, dst)
	}
	return nil
}

// preadFull reads len(buf) bytes at off, retrying short reads and EINTR.
// It uses preadv through Syscall6 — positional, thread-safe, and the same
// primitive the ring path's SQEs encode — rather than an os.File method,
// keeping the whole backend on one code path.
func (d *nativeDevice) preadFull(buf []byte, off int64) error {
	for len(buf) > 0 {
		iov := syscall.Iovec{Base: &buf[0], Len: uint64(len(buf))}
		n, _, errno := syscall.Syscall6(syscall.SYS_PREADV,
			uintptr(d.fd), uintptr(unsafe.Pointer(&iov)), 1,
			uintptr(uint32(off)), uintptr(uint64(off)>>32), 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return errno
		}
		if n == 0 {
			return fmt.Errorf("unexpected EOF at offset %d", off)
		}
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// --- ring engine hooks, driven by AsyncDevice (async.go) ---------------

// errRingFull reports a full submission queue; the submitter flushes the
// staged batch and retries.
var errRingFull = errors.New("ssd: submission queue full")

// RingEnabled reports whether the completion ring came up at open time.
func (d *nativeDevice) RingEnabled() bool { return d.ring != nil }

// RingSlots returns the number of concurrently usable submission slots.
func (d *nativeDevice) RingSlots() int { return int(d.ring.entries) }

// PrepareRead stages (without submitting) one vectored read of count pages
// from first into buf, tagged tag. tag must be a free slot index below
// RingSlots: the slot's iovec stays pinned until the CQE for tag arrives.
// Submitter-goroutine only.
func (d *nativeDevice) PrepareRead(tag uint64, buf []byte, first uint32, count int) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if err := d.checkRange(first, count); err != nil {
		return err
	}
	want := count * d.pageSize
	if len(buf) < want {
		return fmt.Errorf("ssd: read buffer of %d bytes, want %d", len(buf), want)
	}
	if d.ring.sqFull() {
		return errRingFull
	}
	d.iov[tag] = syscall.Iovec{Base: &buf[0], Len: uint64(want)}
	d.ring.stage(ioUringSQE{
		opcode:   ioringOpReadv,
		fd:       int32(d.fd),
		off:      uint64(d.offset + int64(first)*int64(d.pageSize)),
		addr:     uint64(uintptr(unsafe.Pointer(&d.iov[tag]))),
		len:      1,
		userData: tag,
	})
	return nil
}

// SubmitNop stages and submits a no-op completion carrying tag, used to
// wake the reaper at shutdown.
func (d *nativeDevice) SubmitNop(tag uint64) error {
	if d.ring.sqFull() {
		if _, err := d.Submit(); err != nil {
			return err
		}
	}
	d.ring.stage(ioUringSQE{opcode: ioringOpNop, fd: -1, userData: tag})
	_, err := d.Submit()
	return err
}

// Submit pushes every staged SQE to the kernel in one io_uring_enter call,
// returning how many were consumed. Submitter-goroutine only.
func (d *nativeDevice) Submit() (int, error) {
	r := d.ring
	total := 0
	for r.staged > 0 {
		n, err := ioUringEnter(r.fd, r.staged, 0, 0)
		if err == syscall.EINTR || err == syscall.EAGAIN {
			continue
		}
		if err != nil {
			return total, fmt.Errorf("ssd: io_uring_enter: %w", err)
		}
		r.staged -= uint32(n)
		total += n
	}
	return total, nil
}

// WaitCQE blocks for one completion. ok is false when the ring itself
// failed (the device is closing out from under the reaper); otherwise tag
// names the submission and n/err carry its result — a negative CQE res
// arrives here already converted to the corresponding errno.
// Reaper-goroutine only.
func (d *nativeDevice) WaitCQE() (tag uint64, n int, err error, ok bool) {
	r := d.ring
	for {
		head := atomic.LoadUint32(r.cqHead)
		if head != atomic.LoadUint32(r.cqTail) {
			cqe := r.cqes[head&r.cqMask]
			atomic.StoreUint32(r.cqHead, head+1)
			if cqe.res < 0 {
				return cqe.userData, 0, syscall.Errno(-cqe.res), true
			}
			return cqe.userData, int(cqe.res), nil, true
		}
		if _, eerr := ioUringEnter(r.fd, 0, 1, ioringEnterGetevents); eerr != nil {
			if eerr == syscall.EINTR {
				continue
			}
			return 0, 0, fmt.Errorf("ssd: io_uring_enter(GETEVENTS): %w", eerr), false
		}
	}
}
