package ssd

import (
	"fmt"
	"os"
)

// Backend selects how file-backed devices reach the disk.
type Backend string

const (
	// BackendPortable is the os.File positional-read device served by the
	// AsyncDevice worker pool — the default, and the only backend whose
	// behaviour is identical on every platform.
	BackendPortable Backend = "portable"
	// BackendNative is the Linux-native device: io_uring submission/
	// completion rings when the kernel offers them, preadv otherwise, and
	// O_DIRECT when the store layout permits. On non-Linux builds it opens
	// the portable device (the build-tag stub).
	BackendNative Backend = "native"
	// BackendAuto picks BackendNative where the build supports it and
	// BackendPortable elsewhere.
	BackendAuto Backend = "auto"
)

// backendEnv is the environment variable consulted when no backend is set
// explicitly, so CI can run the whole suite against the native backend
// (OPT_BACKEND=native go test ./...) without threading a flag everywhere.
const backendEnv = "OPT_BACKEND"

// Backends lists the accepted backend names.
func Backends() []string {
	return []string{string(BackendPortable), string(BackendNative), string(BackendAuto)}
}

// ParseBackend validates a backend name. The empty string resolves through
// the OPT_BACKEND environment variable and then defaults to portable.
func ParseBackend(s string) (Backend, error) {
	if s == "" {
		s = os.Getenv(backendEnv)
	}
	switch Backend(s) {
	case "":
		return BackendPortable, nil
	case BackendPortable, BackendNative, BackendAuto:
		return Backend(s), nil
	}
	return "", fmt.Errorf("ssd: unknown backend %q (want portable, native or auto)", s)
}

// NativeAvailable reports whether this build carries the native Linux
// backend. Off Linux the native and auto backends open portable devices.
func NativeAvailable() bool { return nativeAvailable }

// DirectAlign is the buffer, offset and length alignment the native backend
// requires before it opens a file with O_DIRECT. 4096 covers every common
// filesystem/device combination; 512-sector devices simply get stricter
// alignment than they need.
const DirectAlign = 4096

// BackendInfo describes how an open device reaches the disk, for optinfo
// and for the event layer's DirectFallback/RingDepth reporting.
type BackendInfo struct {
	// Backend is the engaged backend: portable or native. Auto resolves at
	// open time and is never reported.
	Backend Backend
	// Direct reports whether the file is open with O_DIRECT.
	// DirectReason says why not when it is not.
	Direct       bool
	DirectReason string
	// Ring reports whether an io_uring completion ring is set up, with
	// RingDepth SQ entries. RingReason says why not when it is not.
	Ring       bool
	RingDepth  int
	RingReason string
	// Align is the alignment direct I/O would require, in bytes.
	Align int
}

// InfoProvider is implemented by devices that can describe their backend.
type InfoProvider interface {
	BackendInfo() BackendInfo
}

// OpenDeviceBackend opens path's page region — pages of pageSize bytes
// starting at byte offset — through the selected backend. The empty backend
// resolves like ParseBackend("").
func OpenDeviceBackend(path string, offset int64, pageSize int, backend Backend) (PageDevice, error) {
	b := backend
	if b == "" {
		var err error
		if b, err = ParseBackend(""); err != nil {
			return nil, err
		}
	}
	switch b {
	case BackendNative, BackendAuto:
		return openNative(path, offset, pageSize)
	case BackendPortable:
		return OpenFileDevice(path, offset, pageSize)
	}
	return nil, fmt.Errorf("ssd: unknown backend %q (want portable, native or auto)", backend)
}
