package ssd

import (
	"errors"
	"sync"
	"testing"

	"github.com/optlab/opt/internal/metrics"
)

// TestAsyncReadScatter checks that a vectored read is one device submission
// whose segments arrive in order, each a sub-slice of the one read buffer
// with the right pages.
func TestAsyncReadScatter(t *testing.T) {
	base := NewMemDevice(64)
	fillPages(t, base, 16)
	mx := metrics.NewCollector()
	d := NewAsyncDevice(base, AsyncOptions{Metrics: mx})
	defer d.Close()

	spans := []int{1, 2, 3}
	type seg struct {
		idx  int
		data []byte
	}
	var mu sync.Mutex
	var got []seg
	d.AsyncReadScatter(4, spans, func(i int, data []byte, err error) {
		if err != nil {
			t.Errorf("seg %d: %v", i, err)
			return
		}
		mu.Lock()
		got = append(got, seg{idx: i, data: data})
		mu.Unlock()
	})
	d.Drain()

	if len(got) != len(spans) {
		t.Fatalf("callbacks = %d, want %d", len(got), len(spans))
	}
	first := uint32(4)
	for i, s := range got {
		if s.idx != i {
			t.Fatalf("segment order: got %d at position %d", s.idx, i)
		}
		if len(s.data) != spans[i]*64 {
			t.Fatalf("seg %d: %d bytes, want %d", i, len(s.data), spans[i]*64)
		}
		for p := 0; p < spans[i]; p++ {
			if s.data[p*64] != byte(first)+byte(p) {
				t.Fatalf("seg %d page %d: byte %d, want %d", i, p, s.data[p*64], byte(first)+byte(p))
			}
		}
		first += uint32(spans[i])
	}
	if mx.AsyncReads() != 1 {
		t.Fatalf("async reads = %d, want 1 (one submission for the whole group)", mx.AsyncReads())
	}
	if mx.PagesRead() != 6 {
		t.Fatalf("pages read = %d, want 6", mx.PagesRead())
	}
}

// TestAsyncReadScatterFailure checks the error fan-out contract: a failed
// coalesced read must fail every constituent segment exactly once.
func TestAsyncReadScatterFailure(t *testing.T) {
	base := NewMemDevice(64)
	fillPages(t, base, 16)
	faulty := &FaultyDevice{PageDevice: base, FailEveryN: 1}
	d := NewAsyncDevice(faulty, AsyncOptions{})
	defer d.Close()

	spans := []int{2, 1, 4, 1}
	calls := make([]int, len(spans))
	var mu sync.Mutex
	d.AsyncReadScatter(0, spans, func(i int, data []byte, err error) {
		mu.Lock()
		defer mu.Unlock()
		calls[i]++
		if !errors.Is(err, ErrInjected) {
			t.Errorf("seg %d: err = %v, want ErrInjected", i, err)
		}
		if data != nil {
			t.Errorf("seg %d: non-nil data on failure", i)
		}
	})
	d.Drain()
	for i, n := range calls {
		if n != 1 {
			t.Fatalf("seg %d failed %d times, want exactly once", i, n)
		}
	}
	if faulty.Reads() != 1 {
		t.Fatalf("device reads = %d, want 1", faulty.Reads())
	}
}

// TestAsyncDeviceAccounting checks the submitted/completed counters that
// the I/O scheduler and tests use to observe in-flight depth.
func TestAsyncDeviceAccounting(t *testing.T) {
	base := NewMemDevice(64)
	fillPages(t, base, 8)
	d := NewAsyncDevice(base, AsyncOptions{})
	defer d.Close()

	if d.Submitted() != 0 || d.Completed() != 0 || d.InFlight() != 0 {
		t.Fatalf("fresh device: submitted=%d completed=%d inflight=%d", d.Submitted(), d.Completed(), d.InFlight())
	}
	const n = 20
	for i := 0; i < n; i++ {
		d.AsyncRead(uint32(i%8), 1, func([]byte, error) {})
	}
	d.AsyncWrite(0, make([]byte, 64), nil)
	d.AsyncReadScatter(0, []int{1, 1}, func(int, []byte, error) {})
	d.Drain()
	if d.Submitted() != n+2 {
		t.Fatalf("submitted = %d, want %d", d.Submitted(), n+2)
	}
	if d.Completed() != d.Submitted() {
		t.Fatalf("after Drain: completed = %d, submitted = %d", d.Completed(), d.Submitted())
	}
	if d.InFlight() != 0 {
		t.Fatalf("after Drain: inflight = %d, want 0", d.InFlight())
	}
}
