//go:build linux

package ssd

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"

	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
)

// nativeFixture writes numPages pages of deterministic content at offset
// and opens the region through the native backend.
func nativeFixture(t *testing.T, offset int64, pageSize, numPages int) (*nativeDevice, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.bin")
	content := make([]byte, offset+int64(numPages*pageSize))
	rnd := rand.New(rand.NewSource(42))
	rnd.Read(content)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := openNative(path, offset, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	nd, ok := d.(*nativeDevice)
	if !ok {
		t.Fatalf("openNative returned %T", d)
	}
	t.Cleanup(func() { _ = nd.Close() })
	return nd, content[offset:]
}

func TestNativeMatchesReadAt(t *testing.T) {
	d, pages := nativeFixture(t, 100, 256, 64)
	if d.NumPages() != 64 || d.PageSize() != 256 {
		t.Fatalf("device shape %d×%d", d.NumPages(), d.PageSize())
	}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		first := uint32(rnd.Intn(60))
		count := 1 + rnd.Intn(64-int(first))
		got, err := d.ReadPages(first, count)
		if err != nil {
			t.Fatalf("ReadPages(%d, %d): %v", first, count, err)
		}
		want := pages[int(first)*256 : (int(first)+count)*256]
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadPages(%d, %d) content differs", first, count)
		}
		buf := make([]byte, count*256)
		if err := d.ReadPagesInto(buf, first, count); err != nil {
			t.Fatalf("ReadPagesInto(%d, %d): %v", first, count, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("ReadPagesInto(%d, %d) content differs", first, count)
		}
	}
	if _, err := d.ReadPages(63, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := d.WritePages(0, make([]byte, 256)); err == nil {
		t.Fatal("native device write: want error")
	}
}

// TestNativeRingThroughAsync drives the full ring engine: AsyncDevice over
// a native device with a live io_uring, concurrent scatter reads, event and
// metrics accounting, and clean shutdown.
func TestNativeRingThroughAsync(t *testing.T) {
	d, pages := nativeFixture(t, 0, 512, 128)
	if !d.RingEnabled() {
		t.Skipf("io_uring unavailable here: %s", d.info.RingReason)
	}
	mx := metrics.NewCollector()
	var ringDepthEvents, submittedBatches atomic.Int64
	sink := events.Func(func(e events.Event) {
		switch e.Kind {
		case events.RingDepth:
			ringDepthEvents.Add(1)
		case events.SubmittedBatch:
			submittedBatches.Add(1)
		}
	})
	ad := NewAsyncDevice(d, AsyncOptions{QueueDepth: 4, Metrics: mx, Events: sink})
	defer ad.Close()
	if !ad.RingActive() {
		t.Fatal("ring engine not engaged")
	}
	if ringDepthEvents.Load() != 1 || mx.RingDepth() != int64(d.RingSlots()) {
		t.Fatalf("ring depth reporting: %d events, metric %d, want 1 and %d",
			ringDepthEvents.Load(), mx.RingDepth(), d.RingSlots())
	}

	var bad atomic.Int64
	for round := 0; round < 8; round++ {
		for p := uint32(0); p+4 <= 128; p += 4 {
			first := p
			ad.AsyncReadScatter(first, []int{1, 3}, func(seg int, data []byte, err error) {
				if err != nil {
					bad.Add(1)
					return
				}
				var want []byte
				if seg == 0 {
					want = pages[int(first)*512 : (int(first)+1)*512]
				} else {
					want = pages[(int(first)+1)*512 : (int(first)+4)*512]
				}
				if !bytes.Equal(data, want) {
					bad.Add(1)
				}
			})
		}
		ad.Drain()
	}
	if bad.Load() != 0 {
		t.Fatalf("%d segments failed or mismatched", bad.Load())
	}
	if got, want := mx.PagesRead(), int64(8*32*4); got != want {
		t.Fatalf("PagesRead = %d, want %d", got, want)
	}
	if mx.SubmittedBatches() == 0 || mx.BatchedReads() != int64(8*32) {
		t.Fatalf("batches = %d covering %d reads, want >0 covering %d",
			mx.SubmittedBatches(), mx.BatchedReads(), 8*32)
	}
	if submittedBatches.Load() != mx.SubmittedBatches() {
		t.Fatalf("event/metric batch counts diverge: %d vs %d",
			submittedBatches.Load(), mx.SubmittedBatches())
	}
}

// TestNativeRingErrorDelivery pins error propagation through the CQE path:
// reads past the device map to ErrOutOfRange before submission, and the
// engine survives mixed success/failure bursts.
func TestNativeRingErrorDelivery(t *testing.T) {
	d, _ := nativeFixture(t, 0, 512, 16)
	if !d.RingEnabled() {
		t.Skipf("io_uring unavailable here: %s", d.info.RingReason)
	}
	ad := NewAsyncDevice(d, AsyncOptions{})
	defer ad.Close()
	var oks, fails atomic.Int64
	for i := 0; i < 32; i++ {
		first := uint32(i % 20)
		ad.AsyncRead(first, 4, func(data []byte, err error) {
			if first+4 <= 16 {
				if err != nil {
					t.Errorf("read at %d: %v", first, err)
				}
				oks.Add(1)
			} else {
				if !errors.Is(err, ErrOutOfRange) {
					t.Errorf("read at %d: err = %v, want ErrOutOfRange", first, err)
				}
				fails.Add(1)
			}
		})
	}
	ad.Drain()
	if oks.Load()+fails.Load() != 32 || fails.Load() == 0 {
		t.Fatalf("completions: %d ok, %d failed", oks.Load(), fails.Load())
	}
}

// TestRingSetupFallback forces io_uring_setup to fail the way locked-down
// kernels do and checks the open demotes to the preadv path, read results
// intact — the middle rung of the fallback ladder.
func TestRingSetupFallback(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.ENOSYS, syscall.EPERM} {
		t.Run(errno.Error(), func(t *testing.T) {
			orig := ringSetup
			ringSetup = func(entries uint32, p *ioUringParams) (int, error) { return -1, errno }
			defer func() { ringSetup = orig }()

			d, pages := nativeFixture(t, 0, 256, 32)
			if d.RingEnabled() {
				t.Fatal("ring came up despite forced setup failure")
			}
			info := d.BackendInfo()
			if info.Ring || info.RingReason == "" {
				t.Fatalf("info = %+v, want ring off with a reason", info)
			}
			ad := NewAsyncDevice(d, AsyncOptions{QueueDepth: 2})
			defer ad.Close()
			if ad.RingActive() {
				t.Fatal("async device engaged a dead ring")
			}
			var bad atomic.Int64
			for p := uint32(0); p < 32; p += 2 {
				first := p
				ad.AsyncRead(first, 2, func(data []byte, err error) {
					if err != nil || !bytes.Equal(data, pages[int(first)*256:(int(first)+2)*256]) {
						bad.Add(1)
					}
				})
			}
			ad.Drain()
			if bad.Load() != 0 {
				t.Fatalf("%d preadv-path reads failed", bad.Load())
			}
		})
	}
}

// TestDirectFallback covers the top rung of the ladder: an unaligned store
// offset must refuse O_DIRECT with a recorded reason, and AsyncDevice must
// surface that as a DirectFallback event and metric.
func TestDirectFallback(t *testing.T) {
	d, _ := nativeFixture(t, 100, 256, 8) // offset 100: unaligned
	info := d.BackendInfo()
	if info.Direct || info.DirectReason == "" {
		t.Fatalf("info = %+v, want direct off with a reason", info)
	}
	if info.Align != DirectAlign {
		t.Fatalf("Align = %d, want %d", info.Align, DirectAlign)
	}
	mx := metrics.NewCollector()
	var fallbacks atomic.Int64
	ad := NewAsyncDevice(d, AsyncOptions{
		Metrics: mx,
		Events: events.Func(func(e events.Event) {
			if e.Kind == events.DirectFallback {
				fallbacks.Add(1)
			}
		}),
	})
	ad.Close()
	if fallbacks.Load() != 1 || mx.DirectFallbacks() != 1 {
		t.Fatalf("fallback reporting: %d events, metric %d, want 1 and 1",
			fallbacks.Load(), mx.DirectFallbacks())
	}
}

// TestDirectAlignedOpen checks the aligned layout at least attempts
// O_DIRECT; filesystems that reject the flag (tmpfs) must land on the
// buffered rung with the open error recorded, never fail the open.
func TestDirectAlignedOpen(t *testing.T) {
	d, pages := nativeFixture(t, 4096, 4096, 8)
	info := d.BackendInfo()
	if !info.Direct && info.DirectReason == "" {
		t.Fatalf("info = %+v: direct off without a reason", info)
	}
	got, err := d.ReadPages(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pages[3*4096:5*4096]) {
		t.Fatal("content differs under direct/buffered open")
	}
	// ReadPagesInto with a deliberately unaligned destination exercises the
	// bounce-buffer path when O_DIRECT is engaged.
	raw := make([]byte, 2*4096+1)
	buf := raw[1:]
	if err := d.ReadPagesInto(buf, 3, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pages[3*4096:5*4096]) {
		t.Fatal("unaligned ReadPagesInto content differs")
	}
	t.Logf("direct=%v reason=%q ring=%v", info.Direct, info.DirectReason, info.Ring)
}

// TestFaultyAroundNative wraps the fault injector around a native device:
// the wrapper hides the ring interface (interface embedding does not
// forward type identity), so the async layer must demote to the worker
// pool and still deliver the scheduled fault.
func TestFaultyAroundNative(t *testing.T) {
	d, pages := nativeFixture(t, 0, 256, 32)
	fd := &FaultyDevice{PageDevice: d, FailAt: 3}
	ad := NewAsyncDevice(fd, AsyncOptions{QueueDepth: 1})
	defer ad.Close()
	if ad.RingActive() {
		t.Fatal("ring engine engaged through the fault wrapper")
	}
	var injected, ok atomic.Int64
	for i := 0; i < 6; i++ {
		first := uint32(i * 4)
		ad.AsyncRead(first, 4, func(data []byte, err error) {
			switch {
			case errors.Is(err, ErrInjected):
				injected.Add(1)
			case err == nil && bytes.Equal(data, pages[int(first)*256:(int(first)+4)*256]):
				ok.Add(1)
			default:
				t.Errorf("read at %d: %v", first, err)
			}
		})
		ad.Drain() // serialise so FailAt lands deterministically
	}
	if injected.Load() != 1 || ok.Load() != 5 {
		t.Fatalf("injected=%d ok=%d, want 1 and 5", injected.Load(), ok.Load())
	}
}

// TestNativeTooManyPages mirrors the OpenFileDevice boundary fix on the
// native open path.
func TestNativeTooManyPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sparse.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(1 << 32); err != nil {
		t.Skipf("cannot create sparse file: %v", err)
	}
	if _, err := openNative(path, 0, 1); !errors.Is(err, ErrTooManyPages) {
		t.Fatalf("err = %v, want ErrTooManyPages", err)
	}
}
