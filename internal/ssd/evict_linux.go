//go:build linux

package ssd

import (
	"fmt"
	"syscall"
)

// posixFadvDontneed is POSIX_FADV_DONTNEED: drop the file's clean pages
// from the page cache.
const posixFadvDontneed = 4

// EvictCache asks the kernel to drop path's contents from the page cache,
// so a subsequent read measures the device rather than a memcpy. It syncs
// the file first — POSIX_FADV_DONTNEED skips dirty pages — making it safe
// to call right after a store build. Benchmarks use it to put the portable
// (buffered) and native (O_DIRECT) backends on the same cold footing, the
// regime OPT actually targets: graphs larger than memory.
//
// Best effort by contract: the kernel may keep pages that are mapped or
// under writeback, and an error only means the caller's comparison is
// warm-vs-cold rather than cold-vs-cold.
func EvictCache(path string) error {
	fd, err := syscall.Open(path, syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return fmt.Errorf("ssd: evict %s: %w", path, err)
	}
	defer syscall.Close(fd)
	if err := syscall.Fsync(fd); err != nil {
		return fmt.Errorf("ssd: evict %s: fsync: %w", path, err)
	}
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		uintptr(fd), 0, 0, posixFadvDontneed, 0, 0); errno != 0 {
		return fmt.Errorf("ssd: evict %s: fadvise: %w", path, errno)
	}
	return nil
}
