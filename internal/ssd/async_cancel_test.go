package ssd

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/optlab/opt/internal/events"
)

// TestAsyncDeviceCancellation verifies that a done context drains the
// device: queued requests complete with the context's error (callbacks
// still run, so Drain and Close unblock), and the synchronous paths fail
// fast without touching the backing device.
func TestAsyncDeviceCancellation(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 16)
	ctx, cancel := context.WithCancel(context.Background())
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 2, Context: ctx})
	cancel()

	var calls, cancelled atomic.Int32
	for p := uint32(0); p < 16; p++ {
		d.AsyncRead(p, 1, func(data []byte, err error) {
			calls.Add(1)
			if errors.Is(err, context.Canceled) && data == nil {
				cancelled.Add(1)
			}
		})
	}
	d.AsyncWrite(0, make([]byte, 64), nil) // nil-callback path must not hang either

	d.Drain() // must unblock even though no I/O happened
	if calls.Load() != 16 || cancelled.Load() != 16 {
		t.Fatalf("callbacks = %d, cancelled = %d, want 16/16", calls.Load(), cancelled.Load())
	}

	if _, err := d.ReadPages(0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("sync read err = %v, want context.Canceled", err)
	}
	if err := d.WritePages(0, make([]byte, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("sync write err = %v, want context.Canceled", err)
	}
	d.Close() // must not deadlock
}

// TestAsyncDeviceCancelMidStream cancels while requests are in flight and
// checks that every callback still runs exactly once.
func TestAsyncDeviceCancelMidStream(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 2, Context: ctx})
	defer d.Close()

	var calls atomic.Int32
	for p := uint32(0); p < 64; p++ {
		if p == 8 {
			cancel()
		}
		d.AsyncRead(p%16, 1, func(data []byte, err error) {
			calls.Add(1)
		})
	}
	d.Drain()
	if calls.Load() != 64 {
		t.Fatalf("callbacks ran %d times, want 64", calls.Load())
	}
}

// TestAsyncDeviceEvents checks that completed I/O is reported to the
// configured event sink on both the synchronous and asynchronous paths.
func TestAsyncDeviceEvents(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 8)
	var pagesRead, pagesWritten atomic.Int64
	sink := events.Func(func(e events.Event) {
		switch e.Kind {
		case events.PagesRead:
			pagesRead.Add(e.N)
		case events.PagesWritten:
			pagesWritten.Add(e.N)
		}
	})
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 2, Events: sink})
	defer d.Close()

	if _, err := d.ReadPages(0, 2); err != nil {
		t.Fatal(err)
	}
	d.AsyncRead(0, 3, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
	})
	d.AsyncWrite(0, make([]byte, 128), nil)
	d.Drain()
	if err := d.WritePages(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}

	if got := pagesRead.Load(); got != 5 {
		t.Errorf("PagesRead events totalled %d, want 5", got)
	}
	if got := pagesWritten.Load(); got != 3 {
		t.Errorf("PagesWritten events totalled %d, want 3", got)
	}
}
