// Package ssd provides the FlashSSD substrate: page-granular storage
// devices with the AsyncRead(pid, callback, args) semantics the paper's
// framework is built on (§3.2).
//
// The paper runs on a real Samsung 830 FlashSSD through Windows overlapped
// I/O. What OPT exploits from that stack is precisely:
//
//  1. non-blocking reads — the requesting thread keeps computing,
//  2. device-internal parallelism — several outstanding reads progress
//     concurrently (NCQ), and
//  3. completion callbacks — a callback thread runs CPU work per completion.
//
// AsyncDevice reproduces those three properties over any backing PageDevice:
// submissions enter a bounded queue served by QueueDepth worker goroutines
// (the device channels), and completions are dispatched in completion order
// to a single dispatcher goroutine (the paper's callback thread). An
// optional simulated latency makes the I/O-to-CPU cost ratio c of §3.3
// controllable, so overlap effects are measurable regardless of host
// hardware.
package ssd

import (
	"errors"
	"fmt"
	"sync"
)

// PageDevice is synchronous page-granular storage.
type PageDevice interface {
	// ReadPages reads count consecutive pages starting at page first into a
	// freshly allocated buffer of count*PageSize() bytes.
	ReadPages(first uint32, count int) ([]byte, error)
	// WritePages writes len(data)/PageSize() consecutive pages starting at
	// page first. Implementations may extend the device.
	WritePages(first uint32, data []byte) error
	// NumPages returns the current number of pages on the device.
	NumPages() uint32
	// PageSize returns the page size in bytes.
	PageSize() int
	// Close releases resources.
	Close() error
}

// IntoReader is the allocation-free read contract. Devices that implement
// it read into a caller-supplied buffer instead of allocating one per call,
// letting AsyncDevice recycle aligned buffers through an arena. buf must
// hold at least count*PageSize() bytes; only the first count*PageSize()
// bytes are written.
type IntoReader interface {
	ReadPagesInto(buf []byte, first uint32, count int) error
}

// Common device errors.
var (
	ErrOutOfRange = errors.New("ssd: page out of range")
	ErrClosed     = errors.New("ssd: device closed")
	// ErrTooManyPages reports a backing file whose page count does not fit
	// the uint32 page-address space; opening such a file must fail instead
	// of silently truncating the count.
	ErrTooManyPages = errors.New("ssd: page count exceeds uint32 address space")
)

// MemDevice is an in-memory PageDevice used by tests and by experiments
// whose I/O is fully simulated. It is safe for concurrent use: the async
// layer's device channels read while a writer extends the store.
type MemDevice struct {
	pageSize int
	mu       sync.RWMutex
	data     []byte
	closed   bool
}

// NewMemDevice returns an empty MemDevice with the given page size.
func NewMemDevice(pageSize int) *MemDevice {
	if pageSize <= 0 {
		panic("ssd: page size must be positive")
	}
	return &MemDevice{pageSize: pageSize}
}

// PageSize implements PageDevice.
func (d *MemDevice) PageSize() int { return d.pageSize }

// NumPages implements PageDevice.
func (d *MemDevice) NumPages() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return uint32(len(d.data) / d.pageSize)
}

// ReadPages implements PageDevice.
func (d *MemDevice) ReadPages(first uint32, count int) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	if count <= 0 {
		return nil, fmt.Errorf("%w: count %d", ErrOutOfRange, count)
	}
	start := int64(first) * int64(d.pageSize)
	end := start + int64(count)*int64(d.pageSize)
	if end > int64(len(d.data)) {
		return nil, fmt.Errorf("%w: pages [%d, %d) of %d", ErrOutOfRange, first, int64(first)+int64(count), uint32(len(d.data)/d.pageSize))
	}
	out := make([]byte, end-start)
	copy(out, d.data[start:end])
	return out, nil
}

// ReadPagesInto implements IntoReader.
func (d *MemDevice) ReadPagesInto(buf []byte, first uint32, count int) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if count <= 0 {
		return fmt.Errorf("%w: count %d", ErrOutOfRange, count)
	}
	start := int64(first) * int64(d.pageSize)
	end := start + int64(count)*int64(d.pageSize)
	if end > int64(len(d.data)) {
		return fmt.Errorf("%w: pages [%d, %d) of %d", ErrOutOfRange, first, int64(first)+int64(count), uint32(len(d.data)/d.pageSize))
	}
	if want := int(end - start); len(buf) < want {
		return fmt.Errorf("ssd: read buffer of %d bytes, want %d", len(buf), want)
	}
	copy(buf, d.data[start:end])
	return nil
}

// WritePages implements PageDevice, extending the device as needed.
func (d *MemDevice) WritePages(first uint32, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(data)%d.pageSize != 0 {
		return fmt.Errorf("ssd: write of %d bytes is not page aligned (page size %d)", len(data), d.pageSize)
	}
	start := int64(first) * int64(d.pageSize)
	end := start + int64(len(data))
	if end > int64(len(d.data)) {
		grown := make([]byte, end)
		copy(grown, d.data)
		d.data = grown
	}
	copy(d.data[start:end], data)
	return nil
}

// Close implements PageDevice.
func (d *MemDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
