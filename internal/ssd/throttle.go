package ssd

import "time"

// Throttle converts fine-grained simulated latencies into accurate
// aggregate delays. Sub-millisecond time.Sleep calls overshoot badly on
// most kernels (often to hundreds of microseconds), which would throttle a
// simulated device far below its configured rate. A Throttle instead
// accumulates latency debt and sleeps only when at least SleepQuantum is
// owed, crediting back the measured oversleep — so throughput converges to
// the configured rate while individual operations stay cheap.
//
// A Throttle is not safe for concurrent use; give each goroutine its own
// (e.g. one per device channel).
type Throttle struct {
	debt time.Duration
}

// SleepQuantum is the minimum owed latency that triggers a real sleep.
const SleepQuantum = time.Millisecond

// Charge adds d of simulated latency, sleeping if enough debt accumulated.
func (t *Throttle) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	t.debt += d
	if t.debt < SleepQuantum {
		return
	}
	start := time.Now()
	time.Sleep(t.debt)
	t.debt -= time.Since(start)
	// Cap the credit from oversleeping so one bad scheduling hiccup does
	// not grant unbounded free I/O.
	if t.debt < -4*SleepQuantum {
		t.debt = -4 * SleepQuantum
	}
}

// Flush sleeps off any remaining debt (e.g. at end of a run).
func (t *Throttle) Flush() {
	if t.debt <= 0 {
		return
	}
	start := time.Now()
	time.Sleep(t.debt)
	t.debt -= time.Since(start)
}
