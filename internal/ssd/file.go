package ssd

import (
	"fmt"
	"math"
	"os"
	"sync"
)

// FileDevice is a PageDevice backed by a region of an os.File, starting at
// a byte offset (so a store file can carry a header before its page area).
// Reads use positional I/O and are safe for concurrent use; writes extend
// the file as needed.
type FileDevice struct {
	f        *os.File
	offset   int64
	pageSize int

	mu       sync.RWMutex
	numPages uint32
	closed   bool
	ownsFile bool
}

// NewFileDevice wraps an open file. offset is the byte position of page 0;
// numPages is the number of valid pages. If ownsFile is true, Close closes
// the file.
func NewFileDevice(f *os.File, offset int64, pageSize int, numPages uint32, ownsFile bool) *FileDevice {
	if pageSize <= 0 {
		panic("ssd: page size must be positive")
	}
	return &FileDevice{f: f, offset: offset, pageSize: pageSize, numPages: numPages, ownsFile: ownsFile}
}

// OpenFileDevice opens path read-only as a device whose pages start at
// offset and run to the end of the file.
func OpenFileDevice(path string, offset int64, pageSize int) (*FileDevice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	n := (st.Size() - offset) / int64(pageSize)
	if n < 0 {
		n = 0
	}
	// Page addresses are uint32; a count that does not fit would silently
	// wrap under a bare conversion, making the device lie about its size.
	if n > math.MaxUint32 {
		f.Close()
		return nil, fmt.Errorf("%w: %s holds %d pages of %d bytes", ErrTooManyPages, path, n, pageSize)
	}
	return NewFileDevice(f, offset, pageSize, uint32(n), true), nil
}

// PageSize implements PageDevice.
func (d *FileDevice) PageSize() int { return d.pageSize }

// NumPages implements PageDevice.
func (d *FileDevice) NumPages() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.numPages
}

// ReadPages implements PageDevice.
func (d *FileDevice) ReadPages(first uint32, count int) ([]byte, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, ErrClosed
	}
	n := d.numPages
	d.mu.RUnlock()
	if count <= 0 || int64(first)+int64(count) > int64(n) {
		return nil, fmt.Errorf("%w: pages [%d, %d) of %d", ErrOutOfRange, first, int64(first)+int64(count), n)
	}
	buf := make([]byte, count*d.pageSize)
	if _, err := d.f.ReadAt(buf, d.offset+int64(first)*int64(d.pageSize)); err != nil {
		return nil, fmt.Errorf("ssd: read pages [%d,+%d): %w", first, count, err)
	}
	return buf, nil
}

// ReadPagesInto implements IntoReader: the same positional read as
// ReadPages, but into a caller-supplied buffer so the async layer can
// recycle buffers instead of allocating one per coalesced read.
func (d *FileDevice) ReadPagesInto(buf []byte, first uint32, count int) error {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return ErrClosed
	}
	n := d.numPages
	d.mu.RUnlock()
	if count <= 0 || int64(first)+int64(count) > int64(n) {
		return fmt.Errorf("%w: pages [%d, %d) of %d", ErrOutOfRange, first, int64(first)+int64(count), n)
	}
	want := count * d.pageSize
	if len(buf) < want {
		return fmt.Errorf("ssd: read buffer of %d bytes, want %d", len(buf), want)
	}
	if _, err := d.f.ReadAt(buf[:want], d.offset+int64(first)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("ssd: read pages [%d,+%d): %w", first, count, err)
	}
	return nil
}

// BackendInfo implements InfoProvider for the portable backend.
func (d *FileDevice) BackendInfo() BackendInfo {
	return BackendInfo{Backend: BackendPortable}
}

// WritePages implements PageDevice.
func (d *FileDevice) WritePages(first uint32, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(data)%d.pageSize != 0 {
		return fmt.Errorf("ssd: write of %d bytes is not page aligned (page size %d)", len(data), d.pageSize)
	}
	if _, err := d.f.WriteAt(data, d.offset+int64(first)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("ssd: write pages at %d: %w", first, err)
	}
	if end := first + uint32(len(data)/d.pageSize); end > d.numPages {
		d.numPages = end
	}
	return nil
}

// Close implements PageDevice.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.ownsFile {
		return d.f.Close()
	}
	return nil
}
