package ssd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optlab/opt/internal/metrics"
)

func fillPages(t *testing.T, d PageDevice, numPages int) {
	t.Helper()
	ps := d.PageSize()
	buf := make([]byte, numPages*ps)
	for p := 0; p < numPages; p++ {
		for i := 0; i < ps; i++ {
			buf[p*ps+i] = byte(p)
		}
	}
	if err := d.WritePages(0, buf); err != nil {
		t.Fatal(err)
	}
}

func TestMemDeviceReadWrite(t *testing.T) {
	d := NewMemDevice(64)
	fillPages(t, d, 4)
	if d.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", d.NumPages())
	}
	got, err := d.ReadPages(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 128 || got[0] != 2 || got[64] != 3 {
		t.Fatalf("ReadPages content wrong: len=%d got[0]=%d got[64]=%d", len(got), got[0], got[64])
	}
}

func TestMemDeviceOutOfRange(t *testing.T) {
	d := NewMemDevice(64)
	fillPages(t, d, 2)
	if _, err := d.ReadPages(1, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.ReadPages(0, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("count=0: err = %v, want ErrOutOfRange", err)
	}
}

func TestMemDeviceClosed(t *testing.T) {
	d := NewMemDevice(64)
	fillPages(t, d, 1)
	if err := d.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if _, err := d.ReadPages(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := d.WritePages(0, make([]byte, 64)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write err = %v, want ErrClosed", err)
	}
}

func TestMemDeviceUnalignedWrite(t *testing.T) {
	d := NewMemDevice(64)
	if err := d.WritePages(0, make([]byte, 65)); err == nil {
		t.Fatal("unaligned write: want error")
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const offset = 100 // header region
	if _, err := f.WriteAt([]byte("HDR"), 0); err != nil {
		t.Fatal(err)
	}
	d := NewFileDevice(f, offset, 32, 0, true)
	fillPages(t, d, 5)
	if d.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", d.NumPages())
	}
	got, err := d.ReadPages(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{4}, 32)) {
		t.Fatalf("page 4 content = %v", got[:4])
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	// Reopen read-only via OpenFileDevice.
	rd, err := OpenFileDevice(path, offset, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rd.Close() }()
	if rd.NumPages() != 5 {
		t.Fatalf("reopened NumPages = %d, want 5", rd.NumPages())
	}
	got, err = rd.ReadPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[32] != 1 {
		t.Fatal("reopened content wrong")
	}
	if _, err := rd.ReadPages(5, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestFileDeviceConcurrentReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d := NewFileDevice(f, 0, 128, 0, true)
	defer func() { _ = d.Close() }()
	fillPages(t, d, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := uint32(0); p < 64; p++ {
				data, err := d.ReadPages(p, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if data[0] != byte(p) {
					t.Errorf("page %d content = %d", p, data[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestAsyncReadCallbacksRunSerially(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 32)
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 4})
	defer d.Close()

	var inCallback atomic.Int32
	var maxConcurrent atomic.Int32
	var count atomic.Int32
	for p := uint32(0); p < 32; p++ {
		pid := p
		d.AsyncRead(pid, 1, func(data []byte, err error) {
			cur := inCallback.Add(1)
			if cur > maxConcurrent.Load() {
				maxConcurrent.Store(cur)
			}
			if err != nil {
				t.Error(err)
			}
			if data[0] != byte(pid) {
				t.Errorf("page %d delivered %d", pid, data[0])
			}
			time.Sleep(100 * time.Microsecond)
			count.Add(1)
			inCallback.Add(-1)
		})
	}
	d.Drain()
	if count.Load() != 32 {
		t.Fatalf("callbacks ran %d times, want 32", count.Load())
	}
	if maxConcurrent.Load() != 1 {
		t.Fatalf("callbacks overlapped: max concurrency %d", maxConcurrent.Load())
	}
}

// TestMicroOverlap verifies the micro-level overlapping property: while a
// callback computes, the device keeps serving queued reads, so total time is
// far below the serial sum of I/O and CPU.
func TestMicroOverlap(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 16)
	lat := Latency{PerRead: 2 * time.Millisecond}
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 8, Latency: lat})
	defer d.Close()

	const cpuPerPage = 2 * time.Millisecond
	sw := metrics.StartStopwatch()
	for p := uint32(0); p < 16; p++ {
		d.AsyncRead(p, 1, func(data []byte, err error) {
			if err != nil {
				t.Error(err)
			}
			time.Sleep(cpuPerPage) // the external-triangulation CPU work
		})
	}
	d.Drain()
	elapsed := sw.Elapsed()

	serialCost := 16 * (2*time.Millisecond + cpuPerPage) // 64ms
	// With overlap the I/O hides behind CPU: expect ≈ 16*cpu + one latency,
	// plus scheduler/sleep overshoot. Anything clearly below the serial sum
	// demonstrates the overlap.
	if elapsed > serialCost*7/8 {
		t.Fatalf("no overlap: elapsed %v vs serial cost %v", elapsed, serialCost)
	}
}

func TestAsyncReadFromCallbackChaining(t *testing.T) {
	// Algorithm 9 chains: each completion submits the next request. This
	// must not deadlock even with QueueDepth 1.
	mem := NewMemDevice(64)
	fillPages(t, mem, 50)
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 1})
	defer d.Close()

	var visited atomic.Int32
	var chain func(p uint32)
	chain = func(p uint32) {
		d.AsyncRead(p, 1, func(data []byte, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			visited.Add(1)
			if p+1 < 50 {
				chain(p + 1)
			}
		})
	}
	chain(0)
	d.Drain()
	if visited.Load() != 50 {
		t.Fatalf("chained callbacks visited %d, want 50", visited.Load())
	}
}

func TestAsyncWriteAndSyncPath(t *testing.T) {
	mem := NewMemDevice(64)
	m := metrics.NewCollector()
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 2, Metrics: m})
	defer d.Close()

	page := bytes.Repeat([]byte{7}, 64)
	var wrote atomic.Bool
	d.AsyncWrite(0, page, func(_ []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		wrote.Store(true)
	})
	d.AsyncWrite(1, page, nil) // nil callback path
	d.Drain()
	if !wrote.Load() {
		t.Fatal("write callback did not run")
	}
	got, err := d.ReadPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[64] != 7 {
		t.Fatal("async write content wrong")
	}
	if m.PagesWritten() != 2 {
		t.Fatalf("PagesWritten = %d, want 2", m.PagesWritten())
	}
	if m.SyncReads() != 1 || m.PagesRead() != 2 {
		t.Fatalf("metrics: sync=%d read=%d", m.SyncReads(), m.PagesRead())
	}
}

func TestAsyncMetricsCounts(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 10)
	m := metrics.NewCollector()
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 4, Metrics: m})
	defer d.Close()
	for p := uint32(0); p < 10; p += 2 {
		d.AsyncRead(p, 2, func(_ []byte, err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	d.Drain()
	if m.AsyncReads() != 5 {
		t.Fatalf("AsyncReads = %d, want 5", m.AsyncReads())
	}
	if m.PagesRead() != 10 {
		t.Fatalf("PagesRead = %d, want 10", m.PagesRead())
	}
}

func TestAsyncErrorDelivery(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 4)
	d := NewAsyncDevice(mem, AsyncOptions{QueueDepth: 2})
	defer d.Close()
	var gotErr atomic.Value
	d.AsyncRead(10, 1, func(_ []byte, err error) {
		if err != nil {
			gotErr.Store(err)
		}
	})
	d.Drain()
	err, _ := gotErr.Load().(error)
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("callback err = %v, want ErrOutOfRange", err)
	}
}

func TestFaultyDevice(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 8)
	fd := &FaultyDevice{PageDevice: mem, FailEveryN: 3}
	var fails int
	for i := 0; i < 9; i++ {
		if _, err := fd.ReadPages(0, 1); errors.Is(err, ErrInjected) {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("injected %d faults in 9 reads, want 3", fails)
	}
	if fd.Reads() != 9 {
		t.Fatalf("Reads = %d, want 9", fd.Reads())
	}

	fp := &FaultyDevice{PageDevice: mem, FailPage: 5, FailPageSet: true}
	if _, err := fp.ReadPages(4, 3); !errors.Is(err, ErrInjected) {
		t.Fatal("read covering page 5 should fail")
	}
	if _, err := fp.ReadPages(0, 3); err != nil {
		t.Fatalf("read not covering page 5 failed: %v", err)
	}
}

func TestLatencyCost(t *testing.T) {
	l := Latency{PerRead: time.Millisecond, PerPage: 100 * time.Microsecond}
	if got := l.Cost(10); got != 2*time.Millisecond {
		t.Fatalf("Cost(10) = %v, want 2ms", got)
	}
	if got := (Latency{}).Cost(100); got != 0 {
		t.Fatalf("zero latency Cost = %v, want 0", got)
	}
}

func TestAsyncCloseIdempotent(t *testing.T) {
	mem := NewMemDevice(64)
	d := NewAsyncDevice(mem, AsyncOptions{})
	d.Close()
	d.Close()
}

// sparseFile creates a file of the given size without materialising its
// blocks, so the 2^32-page boundary is reachable with page size 1.
func sparseFile(t *testing.T, size int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sparse.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		t.Skipf("cannot create %d-byte sparse file: %v", size, err)
	}
	return path
}

// TestOpenFileDevicePageCountBoundary pins the fix for the uint32
// truncation bug: a file holding exactly MaxUint32 pages opens with the
// true count, and one page more is rejected with ErrTooManyPages instead
// of silently wrapping to a tiny device.
func TestOpenFileDevicePageCountBoundary(t *testing.T) {
	const maxPages = int64(1) << 32

	path := sparseFile(t, maxPages-1) // 2^32-1 one-byte pages: last valid size
	d, err := OpenFileDevice(path, 0, 1)
	if err != nil {
		t.Fatalf("open at boundary: %v", err)
	}
	if got := d.NumPages(); got != 1<<32-1 {
		t.Fatalf("NumPages = %d, want %d", got, int64(1)<<32-1)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	path = sparseFile(t, maxPages) // 2^32 pages: one past the address space
	if _, err := OpenFileDevice(path, 0, 1); !errors.Is(err, ErrTooManyPages) {
		t.Fatalf("open past boundary: err = %v, want ErrTooManyPages", err)
	}
}

func TestReadPagesInto(t *testing.T) {
	devices := map[string]PageDevice{}
	mem := NewMemDevice(64)
	fillPages(t, mem, 8)
	devices["mem"] = mem
	path := filepath.Join(t.TempDir(), "pages.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fd := NewFileDevice(f, 0, 64, 0, true)
	defer func() { _ = fd.Close() }()
	fillPages(t, fd, 8)
	devices["file"] = fd

	for name, d := range devices {
		t.Run(name, func(t *testing.T) {
			ir, ok := d.(IntoReader)
			if !ok {
				t.Fatalf("%T does not implement IntoReader", d)
			}
			buf := make([]byte, 3*64)
			if err := ir.ReadPagesInto(buf, 2, 3); err != nil {
				t.Fatal(err)
			}
			want, err := d.ReadPages(2, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatal("ReadPagesInto content differs from ReadPages")
			}
			// Oversized buffers are allowed; only the prefix is written.
			big := make([]byte, 4*64)
			big[3*64] = 0xEE
			if err := ir.ReadPagesInto(big, 2, 3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(big[:3*64], want) || big[3*64] != 0xEE {
				t.Fatal("oversized buffer mishandled")
			}
			if err := ir.ReadPagesInto(make([]byte, 64), 2, 3); err == nil {
				t.Fatal("short buffer: want error")
			}
			if err := ir.ReadPagesInto(buf, 7, 3); !errors.Is(err, ErrOutOfRange) {
				t.Fatalf("out of range: err = %v, want ErrOutOfRange", err)
			}
			if err := ir.ReadPagesInto(buf, 0, 0); !errors.Is(err, ErrOutOfRange) {
				t.Fatalf("count=0: err = %v, want ErrOutOfRange", err)
			}
		})
	}
}

func TestFaultyDeviceReadPagesInto(t *testing.T) {
	mem := NewMemDevice(64)
	fillPages(t, mem, 8)
	fd := &FaultyDevice{PageDevice: mem, FailAt: 2}
	buf := make([]byte, 64)
	if err := fd.ReadPagesInto(buf, 0, 1); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if err := fd.ReadPagesInto(buf, 1, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: err = %v, want ErrInjected", err)
	}
	if err := fd.ReadPagesInto(buf, 2, 1); err != nil {
		t.Fatalf("read 3: %v", err)
	}
	if buf[0] != 2 {
		t.Fatalf("content after faults = %d, want 2", buf[0])
	}
	if fd.Reads() != 3 {
		t.Fatalf("Reads = %d, want 3", fd.Reads())
	}
}

// TestAsyncReadSteadyStateAllocs pins the satellite win: with an
// IntoReader underneath, the async read loop recycles arena buffers and
// the submit→read→callback cycle stops allocating once warm.
func TestAsyncReadSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under the race detector")
	}
	path := filepath.Join(t.TempDir(), "pages.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fd := NewFileDevice(f, 0, 512, 0, true)
	defer func() { _ = fd.Close() }()
	fillPages(t, fd, 64)
	d := NewAsyncDevice(fd, AsyncOptions{QueueDepth: 2})
	defer d.Close()

	var bad atomic.Int64
	cb := func(data []byte, err error) {
		if err != nil || len(data) != 4*512 {
			bad.Add(1)
		}
	}
	warm := func() {
		for p := uint32(0); p+4 <= 64; p += 4 {
			d.AsyncRead(p, 4, cb)
		}
		d.Drain()
	}
	warm()
	avg := testing.AllocsPerRun(50, warm)
	if bad.Load() != 0 {
		t.Fatalf("%d callbacks saw errors or short data", bad.Load())
	}
	// 16 reads per run; allow a fraction of an alloc/run for incidental
	// runtime noise (goroutine stack growth, timer churn), but the per-read
	// make([]byte) of the old path (≥16/run) must be gone.
	if avg > 2 {
		t.Fatalf("steady-state allocs per 16-read run = %v, want ≤ 2", avg)
	}
}
