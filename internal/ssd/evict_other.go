//go:build !linux

package ssd

import "errors"

// EvictCache is the non-Linux stub: there is no portable way to drop a
// file's page-cache contents, so callers fall back to warm-cache numbers
// and should say so.
func EvictCache(path string) error {
	return errors.New("ssd: page-cache eviction unsupported on this platform")
}
