package ssd

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is returned by FaultyDevice for injected failures.
var ErrInjected = errors.New("ssd: injected fault")

// FaultyDevice wraps a PageDevice and fails reads according to a schedule.
// It is used by the failure-injection tests to verify that every disk-based
// algorithm surfaces I/O errors instead of silently miscounting.
type FaultyDevice struct {
	PageDevice
	// FailEveryN makes every Nth read fail (1-based count). 0 disables.
	FailEveryN int64
	// FailAt makes exactly the FailAt-th read fail (1-based count), once —
	// the fault-sweep tests use it to walk a single injected failure across
	// every read position of a run. 0 disables.
	FailAt int64
	// FailPage makes any read covering this page fail when FailPageSet.
	FailPage    uint32
	FailPageSet bool

	reads atomic.Int64
}

// ReadPages implements PageDevice with fault injection.
func (d *FaultyDevice) ReadPages(first uint32, count int) ([]byte, error) {
	n := d.reads.Add(1)
	if d.FailEveryN > 0 && n%d.FailEveryN == 0 {
		return nil, ErrInjected
	}
	if d.FailAt > 0 && n == d.FailAt {
		return nil, ErrInjected
	}
	if d.FailPageSet && first <= d.FailPage && d.FailPage < first+uint32(count) {
		return nil, ErrInjected
	}
	return d.PageDevice.ReadPages(first, count)
}

// Reads returns the number of read calls observed.
func (d *FaultyDevice) Reads() int64 { return d.reads.Load() }
