package ssd

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is returned by FaultyDevice for injected failures.
var ErrInjected = errors.New("ssd: injected fault")

// FaultyDevice wraps a PageDevice and fails reads according to a schedule.
// It is used by the failure-injection tests to verify that every disk-based
// algorithm surfaces I/O errors instead of silently miscounting.
type FaultyDevice struct {
	PageDevice
	// FailEveryN makes every Nth read fail (1-based count). 0 disables.
	FailEveryN int64
	// FailAt makes exactly the FailAt-th read fail (1-based count), once —
	// the fault-sweep tests use it to walk a single injected failure across
	// every read position of a run. 0 disables.
	FailAt int64
	// FailPage makes any read covering this page fail when FailPageSet.
	FailPage    uint32
	FailPageSet bool

	reads atomic.Int64
}

// inject counts one read and reports whether the schedule fails it.
func (d *FaultyDevice) inject(first uint32, count int) bool {
	n := d.reads.Add(1)
	if d.FailEveryN > 0 && n%d.FailEveryN == 0 {
		return true
	}
	if d.FailAt > 0 && n == d.FailAt {
		return true
	}
	return d.FailPageSet && first <= d.FailPage && d.FailPage < first+uint32(count)
}

// ReadPages implements PageDevice with fault injection.
func (d *FaultyDevice) ReadPages(first uint32, count int) ([]byte, error) {
	if d.inject(first, count) {
		return nil, ErrInjected
	}
	return d.PageDevice.ReadPages(first, count)
}

// ReadPagesInto forwards to the wrapped device's IntoReader under the same
// fault schedule, so the allocation-free read path stays fault-testable.
// When the wrapped device does not implement IntoReader the call falls back
// to ReadPages plus a copy.
func (d *FaultyDevice) ReadPagesInto(buf []byte, first uint32, count int) error {
	if d.inject(first, count) {
		return ErrInjected
	}
	if ir, ok := d.PageDevice.(IntoReader); ok {
		return ir.ReadPagesInto(buf, first, count)
	}
	data, err := d.PageDevice.ReadPages(first, count)
	if err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

// BackendInfo forwards the wrapped device's backend description, defaulting
// to the portable backend when the device does not describe itself.
func (d *FaultyDevice) BackendInfo() BackendInfo {
	if ip, ok := d.PageDevice.(InfoProvider); ok {
		return ip.BackendInfo()
	}
	return BackendInfo{Backend: BackendPortable}
}

// Reads returns the number of read calls observed.
func (d *FaultyDevice) Reads() int64 { return d.reads.Load() }
