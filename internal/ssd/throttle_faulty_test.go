package ssd

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestThrottleAccumulatesSmallCharges checks that sub-quantum charges only
// build debt and never sleep.
func TestThrottleAccumulatesSmallCharges(t *testing.T) {
	var th Throttle
	for i := 0; i < 4; i++ {
		th.Charge(SleepQuantum / 8)
	}
	if want := 4 * (SleepQuantum / 8); th.debt != want {
		t.Fatalf("debt = %v, want %v", th.debt, want)
	}
	th.Charge(0)
	th.Charge(-time.Second)
	if want := 4 * (SleepQuantum / 8); th.debt != want {
		t.Fatalf("debt after zero/negative charges = %v, want %v", th.debt, want)
	}
}

// TestThrottleSleepsAndCredits checks that crossing the quantum sleeps the
// debt off and that the oversleep credit is capped.
func TestThrottleSleepsAndCredits(t *testing.T) {
	var th Throttle
	start := time.Now()
	th.Charge(2 * SleepQuantum)
	elapsed := time.Since(start)
	if elapsed < SleepQuantum {
		t.Fatalf("Charge over the quantum slept %v, want >= %v", elapsed, SleepQuantum)
	}
	if th.debt >= SleepQuantum {
		t.Fatalf("debt = %v after sleeping, want < %v", th.debt, SleepQuantum)
	}
	if th.debt < -4*SleepQuantum {
		t.Fatalf("debt = %v, breaches the -4*SleepQuantum credit cap", th.debt)
	}

	// However badly the kernel oversleeps, the credit never exceeds the cap.
	th = Throttle{debt: SleepQuantum}
	th.Charge(time.Nanosecond)
	if th.debt < -4*SleepQuantum {
		t.Fatalf("debt = %v, breaches the credit cap", th.debt)
	}
}

// TestThrottleFlush checks Flush retires all outstanding debt.
func TestThrottleFlush(t *testing.T) {
	var th Throttle
	th.Charge(SleepQuantum / 2)
	th.Flush()
	if th.debt > 0 {
		t.Fatalf("debt = %v after Flush, want <= 0", th.debt)
	}
	credit := th.debt
	th.Flush() // flushing with no debt must not sleep or change anything
	if th.debt != credit {
		t.Fatalf("debt changed across empty Flush: %v -> %v", credit, th.debt)
	}
}

// TestThrottlePerGoroutine exercises the documented concurrency contract —
// one Throttle per goroutine — under the race detector, and checks the
// aggregate guarantee: real sleep time converges to the charged latency,
// never undershooting by more than the credit cap.
func TestThrottlePerGoroutine(t *testing.T) {
	const (
		goroutines = 4
		perCharge  = SleepQuantum / 4
		charges    = 40 // 10ms of simulated latency per goroutine
	)
	var wg sync.WaitGroup
	elapsed := make([]time.Duration, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var th Throttle
			start := time.Now()
			for i := 0; i < charges; i++ {
				th.Charge(perCharge)
			}
			th.Flush()
			elapsed[g] = time.Since(start)
		}(g)
	}
	wg.Wait()
	charged := time.Duration(charges) * perCharge
	floor := charged - 4*SleepQuantum
	for g, e := range elapsed {
		if e < floor {
			t.Errorf("goroutine %d slept %v for %v of charged latency, want >= %v", g, e, charged, floor)
		}
	}
}

// faultyBase builds a MemDevice with pages pages for wrapping.
func faultyBase(t *testing.T, pageSize, pages int) *MemDevice {
	t.Helper()
	d := NewMemDevice(pageSize)
	if err := d.WritePages(0, make([]byte, pageSize*pages)); err != nil {
		t.Fatalf("seeding device: %v", err)
	}
	return d
}

// TestFaultyDeviceEveryNConcurrent hammers FailEveryN from many goroutines:
// the atomic read counter must make the failure count exact, not
// approximate, and the race detector must stay quiet.
func TestFaultyDeviceEveryNConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 300
		everyN     = 3
	)
	base := faultyBase(t, 64, 4)
	defer func() { _ = base.Close() }()
	dev := &FaultyDevice{PageDevice: base, FailEveryN: everyN}

	var wg sync.WaitGroup
	injected := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, err := dev.ReadPages(0, 1)
				switch {
				case err == nil:
				case errors.Is(err, ErrInjected):
					injected[g]++
				default:
					t.Errorf("unexpected read error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if got := dev.Reads(); got != total {
		t.Fatalf("Reads() = %d, want %d", got, total)
	}
	var failures int64
	for _, n := range injected {
		failures += n
	}
	if want := total / everyN; failures != want {
		t.Fatalf("injected failures = %d, want exactly %d", failures, want)
	}
}

// TestFaultyDeviceFailPageConcurrent checks the page-targeted schedule
// under concurrency: every read covering the poisoned page fails, every
// read missing it succeeds.
func TestFaultyDeviceFailPageConcurrent(t *testing.T) {
	base := faultyBase(t, 64, 8)
	defer func() { _ = base.Close() }()
	dev := &FaultyDevice{PageDevice: base, FailPage: 5, FailPageSet: true}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := dev.ReadPages(4, 2); !errors.Is(err, ErrInjected) {
					t.Errorf("read covering poisoned page: err = %v, want ErrInjected", err)
					return
				}
				if _, err := dev.ReadPages(0, 4); err != nil {
					t.Errorf("read missing poisoned page: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
