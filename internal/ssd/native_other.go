//go:build !linux

package ssd

const nativeAvailable = false

// openNative stubs the native backend off Linux: the native and auto
// backends open the portable FileDevice, so callers never need their own
// platform switch and `go test ./...` stays green on every OS.
func openNative(path string, offset int64, pageSize int) (PageDevice, error) {
	return OpenFileDevice(path, offset, pageSize)
}
