package ssd

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBackend(t *testing.T) {
	// The CI native-backend run exports OPT_BACKEND=native; this test is
	// about the names themselves, so pin the env fallback to empty.
	t.Setenv(backendEnv, "")
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendPortable, true},
		{"portable", BackendPortable, true},
		{"native", BackendNative, true},
		{"auto", BackendAuto, true},
		{"io_uring", "", false},
		{"Portable", "", false},
	} {
		got, err := ParseBackend(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseBackend(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestParseBackendEnv(t *testing.T) {
	t.Setenv(backendEnv, "native")
	if got, err := ParseBackend(""); err != nil || got != BackendNative {
		t.Fatalf("env native: got %q, %v", got, err)
	}
	// An explicit name beats the environment.
	if got, err := ParseBackend("portable"); err != nil || got != BackendPortable {
		t.Fatalf("explicit beats env: got %q, %v", got, err)
	}
	t.Setenv(backendEnv, "bogus")
	if _, err := ParseBackend(""); err == nil {
		t.Fatal("bogus env value: want error")
	}
}

// TestOpenDeviceBackend exercises every backend name on every platform:
// off Linux the native/auto opens are served by the portable stub, which
// is exactly the contract `go test ./...` relies on there.
func TestOpenDeviceBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.bin")
	content := bytes.Repeat([]byte{7}, 100+4*128)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{"", BackendPortable, BackendNative, BackendAuto} {
		d, err := OpenDeviceBackend(path, 100, 128, b)
		if err != nil {
			t.Fatalf("backend %q: %v", b, err)
		}
		if d.NumPages() != 4 || d.PageSize() != 128 {
			t.Fatalf("backend %q: %d pages of %d", b, d.NumPages(), d.PageSize())
		}
		got, err := d.ReadPages(1, 2)
		if err != nil {
			t.Fatalf("backend %q read: %v", b, err)
		}
		if !bytes.Equal(got, content[100+128:100+3*128]) {
			t.Fatalf("backend %q content wrong", b)
		}
		ip, ok := d.(InfoProvider)
		if !ok {
			t.Fatalf("backend %q: %T is not an InfoProvider", b, d)
		}
		info := ip.BackendInfo()
		if info.Backend != BackendPortable && info.Backend != BackendNative {
			t.Fatalf("backend %q: info reports %q", b, info.Backend)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("backend %q close: %v", b, err)
		}
	}
	if _, err := OpenDeviceBackend(path, 100, 128, "bogus"); err == nil {
		t.Fatal("bogus backend: want error")
	}
}
