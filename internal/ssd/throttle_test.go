package ssd

import (
	"testing"
	"time"
)

func TestThrottleAccumulatesBelowQuantum(t *testing.T) {
	var th Throttle
	start := time.Now()
	for i := 0; i < 10; i++ {
		th.Charge(10 * time.Microsecond) // 100µs total, below the quantum
	}
	if elapsed := time.Since(start); elapsed > SleepQuantum {
		t.Fatalf("sub-quantum charges slept %v", elapsed)
	}
	if th.debt != 100*time.Microsecond {
		t.Fatalf("debt = %v, want 100µs", th.debt)
	}
}

func TestThrottleSleepsAtQuantum(t *testing.T) {
	var th Throttle
	start := time.Now()
	th.Charge(3 * SleepQuantum)
	elapsed := time.Since(start)
	if elapsed < 3*SleepQuantum {
		t.Fatalf("slept only %v for a 3ms charge", elapsed)
	}
	// Oversleep must be credited: debt should be ≤ 0 now.
	if th.debt > 0 {
		t.Fatalf("debt = %v after sleep, want <= 0", th.debt)
	}
	if th.debt < -4*SleepQuantum {
		t.Fatalf("credit cap violated: %v", th.debt)
	}
}

func TestThrottleAggregateRate(t *testing.T) {
	// 100 charges of 50µs = 5ms total; wall time should be close.
	var th Throttle
	start := time.Now()
	for i := 0; i < 100; i++ {
		th.Charge(50 * time.Microsecond)
	}
	th.Flush()
	elapsed := time.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Fatalf("aggregate undershoot: %v for 5ms of charges", elapsed)
	}
	if elapsed > 25*time.Millisecond {
		t.Fatalf("aggregate overshoot: %v for 5ms of charges", elapsed)
	}
}

func TestThrottleZeroAndNegative(t *testing.T) {
	var th Throttle
	th.Charge(0)
	th.Charge(-time.Second)
	if th.debt != 0 {
		t.Fatalf("debt = %v, want 0", th.debt)
	}
	th.Flush() // no debt: returns immediately
}
