package ssd

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optlab/opt/internal/buffer/arena"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
)

// Latency is a simulated device latency model: a read of k consecutive
// pages takes PerRead + k*PerPage inside one device channel. Zero values
// disable simulation (reads cost only the backing device's real time).
type Latency struct {
	PerRead time.Duration // fixed submission/seek overhead per request
	PerPage time.Duration // streaming cost per page
}

// Cost returns the simulated duration of a count-page read.
func (l Latency) Cost(count int) time.Duration {
	return l.PerRead + time.Duration(count)*l.PerPage
}

// AsyncOptions configures an AsyncDevice.
type AsyncOptions struct {
	// QueueDepth is the number of device channels (concurrently progressing
	// requests), modelling FlashSSD internal parallelism. Default 8.
	QueueDepth int
	// Latency is the simulated latency model. Zero disables simulation.
	// A non-zero model forces the worker-pool engine even over a ring
	// device: simulated per-channel latency and kernel completion order
	// cannot coexist.
	Latency Latency
	// Metrics, if non-nil, receives page-read/write and async counters.
	Metrics *metrics.Collector
	// Context, if non-nil, cancels the device: once it is done, queued and
	// newly submitted requests complete immediately with the context's
	// error (callbacks still run, so Drain and Close unblock as usual) and
	// the synchronous paths fail fast. Defaults to context.Background().
	Context context.Context
	// Events, if non-nil, receives PagesRead/PagesWritten progress events
	// per completed request, plus the native-backend kinds
	// (SubmittedBatch/RingDepth/DirectFallback) where they apply.
	Events events.Sink
}

// request is one queued asynchronous operation.
type request struct {
	first uint32
	count int
	write []byte // nil for reads
	owned bool   // caller recycles the buffer (AsyncReadOwned)
	cb    func(data []byte, err error)
}

// ringDevice is the kernel-completion-ring contract the native Linux
// device offers (native_linux.go). The submitter goroutine owns
// PrepareRead/Submit/SubmitNop; the reaper goroutine owns WaitCQE.
type ringDevice interface {
	RingEnabled() bool
	RingSlots() int
	PrepareRead(tag uint64, buf []byte, first uint32, count int) error
	Submit() (int, error)
	SubmitNop(tag uint64) error
	WaitCQE() (tag uint64, n int, err error, ok bool)
}

// nopTag is the reserved user_data value of the shutdown no-op; request
// tags are slot indices, far below it.
const nopTag = ^uint64(0)

// AsyncDevice adds AsyncRead/AsyncWrite semantics on top of a PageDevice.
//
// Requests enter an unbounded submission queue. Two engines can drain it:
//
//   - The portable worker pool: QueueDepth worker goroutines (the device
//     channels) perform the reads, each through its own latency throttle.
//   - The ring engine, when the backing device is a native Linux device
//     with a live io_uring and no simulated latency: one submitter
//     goroutine stages batched SQEs and one reaper goroutine collects
//     CQEs, so a whole burst of coalesced reads costs one syscall.
//
// Either way each completion is handed, in completion order, to a single
// dispatcher goroutine that runs the registered callback — the role the
// paper assigns to the callback thread. Callbacks may submit further
// asynchronous requests (Algorithm 9 lines 9–13) without deadlock because
// the submission queue is unbounded.
//
// Buffer lifetime: when the backing device supports allocation-free reads
// (IntoReader), read buffers come from an aligned arena and are recycled
// as soon as the callback returns. The data slice passed to a callback is
// therefore valid only for the duration of the callback; callers that need
// the bytes longer either copy or submit through AsyncReadOwned, whose
// buffer survives the callback until handed back via Recycle.
type AsyncDevice struct {
	dev     PageDevice
	opts    AsyncOptions
	queue   *reqQueue
	done    chan struct{}
	compl   chan completion
	pending sync.WaitGroup
	workers sync.WaitGroup // worker/ring + dispatcher goroutines, joined by Close
	once    sync.Once

	// Allocation-free read path: set when dev implements IntoReader.
	into IntoReader
	pool *arena.Arena

	// Ring engine: set when dev is a ringDevice with a live ring and the
	// latency model is zero.
	ring         ringDevice
	slots        *ringSlots
	slotFree     chan uint64
	ringShutdown atomic.Bool

	// Request accounting: submissions and retirements of asynchronous
	// requests, exposed so schedulers and tests can observe the in-flight
	// depth without instrumenting callbacks.
	submitted atomic.Int64
	completed atomic.Int64

	syncMu sync.Mutex
	syncTh Throttle // throttle for the synchronous path
}

type completion struct {
	data    []byte
	err     error
	cb      func(data []byte, err error)
	recycle []byte // arena buffer to release once cb has returned
}

// NewAsyncDevice starts the device channels and the callback dispatcher.
// Close must be called to release them.
func NewAsyncDevice(dev PageDevice, opts AsyncOptions) *AsyncDevice {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	d := &AsyncDevice{
		dev:   dev,
		opts:  opts,
		queue: newReqQueue(),
		done:  make(chan struct{}),
		compl: make(chan completion, opts.QueueDepth*2),
	}
	d.into, _ = dev.(IntoReader)
	if d.into != nil {
		d.pool = arena.New(DirectAlign)
	}
	if ip, ok := dev.(InfoProvider); ok {
		if info := ip.BackendInfo(); info.Backend == BackendNative && !info.Direct {
			d.emit(events.DirectFallback, 1)
			if m := opts.Metrics; m != nil {
				m.AddDirectFallbacks(1)
			}
		}
	}
	if rd, ok := dev.(ringDevice); ok && rd.RingEnabled() && d.into != nil && opts.Latency == (Latency{}) {
		d.ring = rd
		n := rd.RingSlots()
		d.slots = &ringSlots{entries: make([]slotEntry, n)}
		d.slotFree = make(chan uint64, n)
		for i := 0; i < n; i++ {
			d.slotFree <- uint64(i)
		}
		d.emit(events.RingDepth, int64(n))
		if m := opts.Metrics; m != nil {
			m.SetRingDepth(int64(n))
		}
		d.workers.Add(2)
		go d.ringSubmitter()
		go d.ringReaper()
	} else {
		for i := 0; i < opts.QueueDepth; i++ {
			d.workers.Add(1)
			go d.worker()
		}
	}
	d.workers.Add(1)
	go d.dispatcher()
	return d
}

// PageSize returns the backing device's page size.
func (d *AsyncDevice) PageSize() int { return d.dev.PageSize() }

// NumPages returns the backing device's page count.
func (d *AsyncDevice) NumPages() uint32 { return d.dev.NumPages() }

// Metrics returns the collector, which may be nil.
func (d *AsyncDevice) Metrics() *metrics.Collector { return d.opts.Metrics }

// RingActive reports whether the io_uring engine is driving this device.
func (d *AsyncDevice) RingActive() bool { return d.ring != nil }

// AsyncRead submits an asynchronous read of count pages starting at first.
// cb runs on the callback dispatcher goroutine when the read completes; it
// corresponds to AsyncRead(pid, Callback, Args) in the paper. The data
// slice is valid only until cb returns (see the buffer-lifetime note on
// AsyncDevice).
func (d *AsyncDevice) AsyncRead(first uint32, count int, cb func(data []byte, err error)) {
	if m := d.opts.Metrics; m != nil {
		m.AddAsyncReads(1)
	}
	d.submitted.Add(1)
	d.pending.Add(1)
	d.queue.push(request{first: first, count: count, cb: cb})
}

// AsyncReadOwned is AsyncRead with caller-managed buffer lifetime: the
// data slice stays valid after the callback returns, and the caller must
// hand it back through Recycle once every consumer is done with it. The
// I/O scheduler uses it for coalesced reads whose segments are decoded on
// worker goroutines after the completion callback has moved on.
func (d *AsyncDevice) AsyncReadOwned(first uint32, count int, cb func(data []byte, err error)) {
	if m := d.opts.Metrics; m != nil {
		m.AddAsyncReads(1)
	}
	d.submitted.Add(1)
	d.pending.Add(1)
	d.queue.push(request{first: first, count: count, owned: true, cb: cb})
}

// Recycle returns a buffer delivered by an AsyncReadOwned callback to the
// device's arena. nil and foreign buffers are ignored, so error-path and
// portable-path callers need no guards.
func (d *AsyncDevice) Recycle(data []byte) {
	if d.pool != nil && data != nil {
		d.pool.Release(data)
	}
}

// AsyncReadScatter submits one asynchronous vectored read covering
// len(spans) consecutive page runs: segment i spans spans[i] pages and
// begins where segment i-1 ends, with segment 0 starting at page first.
// The device performs a single read of the whole range (one submission,
// one latency charge; one SQE on the ring engine); on completion cb runs
// once per segment, in segment order, on the callback dispatcher, each
// receiving a sub-slice of the one read buffer — no copy. A failed read
// invokes cb for every segment with a nil data slice and the read's error,
// so each constituent fails exactly once.
func (d *AsyncDevice) AsyncReadScatter(first uint32, spans []int, cb func(seg int, data []byte, err error)) {
	total := 0
	for _, s := range spans {
		total += s
	}
	pageSize := d.dev.PageSize()
	d.AsyncRead(first, total, func(data []byte, err error) {
		if err != nil {
			for i := range spans {
				cb(i, nil, err)
			}
			return
		}
		off := 0
		for i, s := range spans {
			end := off + s*pageSize
			cb(i, data[off:end:end], nil)
			off = end
		}
	})
}

// AsyncWrite submits an asynchronous write. cb may be nil; if non-nil it
// runs on the dispatcher with a nil data slice.
func (d *AsyncDevice) AsyncWrite(first uint32, data []byte, cb func(data []byte, err error)) {
	d.submitted.Add(1)
	d.pending.Add(1)
	d.queue.push(request{first: first, write: data, cb: cb})
}

// Submitted returns the number of asynchronous requests submitted so far.
func (d *AsyncDevice) Submitted() int64 { return d.submitted.Load() }

// Completed returns the number of asynchronous requests fully retired
// (callback returned, or no callback was registered).
func (d *AsyncDevice) Completed() int64 { return d.completed.Load() }

// InFlight returns the number of asynchronous requests submitted but not
// yet retired.
func (d *AsyncDevice) InFlight() int64 { return d.submitted.Load() - d.completed.Load() }

// ReadPages performs a synchronous read through the same latency model,
// blocking the caller — the access pattern of the MGT baseline, which uses
// synchronous I/O only (§3.5).
func (d *AsyncDevice) ReadPages(first uint32, count int) ([]byte, error) {
	if err := d.opts.Context.Err(); err != nil {
		return nil, err
	}
	sw := metrics.StartStopwatch()
	d.syncMu.Lock()
	d.syncTh.Charge(d.opts.Latency.Cost(count))
	d.syncMu.Unlock()
	data, err := d.dev.ReadPages(first, count)
	if m := d.opts.Metrics; m != nil {
		m.AddSyncReads(1)
		m.AddPagesRead(int64(count))
		m.AddIOWait(sw.Elapsed())
	}
	if err == nil {
		d.emit(events.PagesRead, int64(count))
	}
	return data, err
}

// WritePages performs a synchronous write through the latency model.
func (d *AsyncDevice) WritePages(first uint32, data []byte) error {
	if err := d.opts.Context.Err(); err != nil {
		return err
	}
	d.syncMu.Lock()
	d.syncTh.Charge(d.opts.Latency.Cost(len(data) / d.dev.PageSize()))
	d.syncMu.Unlock()
	err := d.dev.WritePages(first, data)
	if m := d.opts.Metrics; m != nil && err == nil {
		m.AddPagesWritten(int64(len(data) / d.dev.PageSize()))
	}
	if err == nil {
		d.emit(events.PagesWritten, int64(len(data)/d.dev.PageSize()))
	}
	return err
}

// emit forwards one I/O progress event to the configured sink, if any.
func (d *AsyncDevice) emit(kind events.Kind, n int64) {
	if s := d.opts.Events; s != nil {
		s.Event(events.Event{Kind: kind, Iteration: -1, N: n})
	}
}

// retire marks one asynchronous request fully done: its callback has
// returned, or it never had one.
func (d *AsyncDevice) retire() {
	d.completed.Add(1)
	d.pending.Done()
}

// Drain blocks until every submitted asynchronous request has completed and
// its callback has returned.
func (d *AsyncDevice) Drain() { d.pending.Wait() }

// Close drains outstanding requests and stops the device goroutines,
// waiting until every worker and the dispatcher have returned. The backing
// device is not closed.
func (d *AsyncDevice) Close() {
	d.once.Do(func() {
		d.pending.Wait()
		close(d.done)
		d.queue.close()
		d.workers.Wait()
	})
}

func (d *AsyncDevice) worker() {
	defer d.workers.Done()
	// Each worker is one device channel with its own latency throttle, so
	// aggregate throughput scales with QueueDepth as real NCQ channels do.
	var th Throttle
	pageSize := d.dev.PageSize()
	for {
		req, ok := d.queue.pop()
		if !ok {
			return
		}
		// Cancellation drains in-flight requests: skip the I/O (and its
		// simulated latency) and complete with the context's error so
		// callbacks still run and Drain/Close unblock.
		if err := d.opts.Context.Err(); err != nil {
			if req.cb != nil {
				d.compl <- completion{data: nil, err: err, cb: req.cb}
			} else {
				d.retire()
			}
			continue
		}
		if req.write != nil {
			th.Charge(d.opts.Latency.Cost(len(req.write) / pageSize))
			err := d.dev.WritePages(req.first, req.write)
			if err == nil {
				if m := d.opts.Metrics; m != nil {
					m.AddPagesWritten(int64(len(req.write) / pageSize))
				}
				d.emit(events.PagesWritten, int64(len(req.write)/pageSize))
			}
			if req.cb != nil {
				d.compl <- completion{data: nil, err: err, cb: req.cb}
			} else {
				d.retire()
			}
			continue
		}
		th.Charge(d.opts.Latency.Cost(req.count))
		var data, recycle []byte
		var err error
		if d.into != nil && req.count > 0 {
			// Allocation-free path: read into a recycled arena buffer,
			// returned to the arena once the callback has consumed it.
			buf := d.pool.Acquire(req.count * pageSize)
			if err = d.into.ReadPagesInto(buf, req.first, req.count); err != nil {
				d.pool.Release(buf)
			} else {
				data = buf
				if !req.owned {
					recycle = buf
				}
			}
		} else {
			data, err = d.dev.ReadPages(req.first, req.count)
		}
		if err == nil {
			if m := d.opts.Metrics; m != nil {
				m.AddPagesRead(int64(req.count))
			}
			d.emit(events.PagesRead, int64(req.count))
		}
		d.compl <- completion{data: data, err: err, cb: req.cb, recycle: recycle}
	}
}

// ringSlots correlates in-flight ring submissions (tag = slot index) with
// their request and arena buffer. The submitter fills entries, the reaper
// takes them; the mutex publishes the entry across that goroutine pair.
type ringSlots struct {
	mu      sync.Mutex
	entries []slotEntry
}

type slotEntry struct {
	req  request
	buf  []byte
	used bool
}

func (s *ringSlots) set(tag uint64, req request, buf []byte) {
	s.mu.Lock()
	s.entries[tag] = slotEntry{req: req, buf: buf, used: true}
	s.mu.Unlock()
}

func (s *ringSlots) take(tag uint64) (slotEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tag >= uint64(len(s.entries)) || !s.entries[tag].used {
		return slotEntry{}, false
	}
	e := s.entries[tag]
	s.entries[tag] = slotEntry{}
	return e, true
}

func (s *ringSlots) takeAll() []slotEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []slotEntry
	for i := range s.entries {
		if s.entries[i].used {
			out = append(out, s.entries[i])
			s.entries[i] = slotEntry{}
		}
	}
	return out
}

// ringSubmitter is the ring engine's single SQ writer: it drains the
// submission queue, stages one SQE per read, and batches everything
// available into one io_uring_enter call — a burst of coalesced reads from
// the I/O scheduler costs one syscall instead of one goroutine hop each.
func (d *AsyncDevice) ringSubmitter() {
	defer d.workers.Done()
	for {
		req, ok := d.queue.pop()
		if !ok {
			d.flushBatch()
			d.ringShutdown.Store(true)
			// Wake the reaper; outstanding CQEs were all collected because
			// Close drains pending requests before closing the queue.
			_ = d.ring.SubmitNop(nopTag)
			return
		}
		for {
			d.stageOne(req)
			next, ok := d.queue.tryPop()
			if !ok {
				break
			}
			req = next
		}
		d.flushBatch()
	}
}

// stageOne serves one request on the ring engine: reads become staged
// SQEs; writes and cancellations complete synchronously, as on the worker
// pool.
func (d *AsyncDevice) stageOne(req request) {
	if err := d.opts.Context.Err(); err != nil {
		d.finish(completion{err: err, cb: req.cb})
		return
	}
	pageSize := d.dev.PageSize()
	if req.write != nil {
		err := d.dev.WritePages(req.first, req.write)
		if err == nil {
			if m := d.opts.Metrics; m != nil {
				m.AddPagesWritten(int64(len(req.write) / pageSize))
			}
			d.emit(events.PagesWritten, int64(len(req.write)/pageSize))
		}
		d.finish(completion{err: err, cb: req.cb})
		return
	}
	if req.count <= 0 {
		_, err := d.dev.ReadPages(req.first, req.count) // canonical range error
		d.finish(completion{err: err, cb: req.cb})
		return
	}
	slot := d.acquireSlot()
	buf := d.pool.Acquire(req.count * pageSize)
	if err := d.ring.PrepareRead(slot, buf, req.first, req.count); err != nil {
		d.pool.Release(buf)
		d.slotFree <- slot
		d.finish(completion{err: err, cb: req.cb})
		return
	}
	d.slots.set(slot, req, buf)
}

// acquireSlot returns a free submission slot, flushing the staged batch
// first when it must block: staged reads have to reach the kernel before
// the submitter waits on their completions for a slot.
func (d *AsyncDevice) acquireSlot() uint64 {
	select {
	case s := <-d.slotFree:
		return s
	default:
		d.flushBatch()
		return <-d.slotFree
	}
}

// flushBatch pushes every staged SQE to the kernel in one enter call. A
// submit failure is only reachable once the ring fd is gone; the
// outstanding slots are failed so nothing hangs.
func (d *AsyncDevice) flushBatch() {
	n, err := d.ring.Submit()
	if n > 0 {
		if m := d.opts.Metrics; m != nil {
			m.AddSubmittedBatch(int64(n))
		}
		d.emit(events.SubmittedBatch, int64(n))
	}
	if err != nil {
		for _, e := range d.slots.takeAll() {
			d.pool.Release(e.buf)
			d.finish(completion{err: err, cb: e.req.cb})
		}
	}
}

// finish hands one ring-engine completion to the dispatcher, honouring
// callback-less requests the way the worker pool does.
func (d *AsyncDevice) finish(c completion) {
	if c.cb == nil {
		if c.recycle != nil {
			d.pool.Release(c.recycle)
		}
		d.retire()
		return
	}
	d.compl <- c
}

// ringReaper is the ring engine's single CQ reader: it blocks in
// io_uring_enter(GETEVENTS), correlates each CQE back to its request via
// the slot table, and forwards the completion to the dispatcher.
func (d *AsyncDevice) ringReaper() {
	defer d.workers.Done()
	pageSize := d.dev.PageSize()
	for {
		tag, n, err, ok := d.ring.WaitCQE()
		if !ok {
			// The ring died under us (fd closed mid-run). Fail whatever is
			// outstanding so Drain and Close still unblock.
			for _, e := range d.slots.takeAll() {
				d.pool.Release(e.buf)
				d.finish(completion{err: err, cb: e.req.cb})
			}
			return
		}
		if tag == nopTag {
			if d.ringShutdown.Load() {
				return
			}
			continue
		}
		e, valid := d.slots.take(tag)
		if !valid {
			continue
		}
		want := e.req.count * pageSize
		if err == nil && n < want {
			// Short ring read (racing truncation, signal). Re-read the
			// whole range through preadv rather than patching the tail.
			err = d.into.ReadPagesInto(e.buf[:want], e.req.first, e.req.count)
		}
		var data []byte
		if err == nil {
			data = e.buf[:want]
			if m := d.opts.Metrics; m != nil {
				m.AddPagesRead(int64(e.req.count))
			}
			d.emit(events.PagesRead, int64(e.req.count))
		} else {
			d.pool.Release(e.buf)
			e.buf = nil
		}
		d.slotFree <- tag
		recycle := e.buf
		if e.req.owned {
			recycle = nil
		}
		d.finish(completion{data: data, err: err, cb: e.req.cb, recycle: recycle})
	}
}

// dispatcher is the callback thread: it executes completion callbacks
// serially in completion order and recycles the read buffer afterwards.
func (d *AsyncDevice) dispatcher() {
	defer d.workers.Done()
	run := func(c completion) {
		c.cb(c.data, c.err)
		if c.recycle != nil {
			d.pool.Release(c.recycle)
		}
		d.retire()
	}
	for {
		select {
		case c := <-d.compl:
			run(c)
		case <-d.done:
			// Drain anything that raced with shutdown.
			for {
				select {
				case c := <-d.compl:
					run(c)
				default:
					return
				}
			}
		}
	}
}

// reqQueue is an unbounded MPMC queue of requests. Consumed entries leave
// the head index behind rather than re-slicing, so the backing array keeps
// its capacity and a steady-state submit/complete loop stops allocating.
type reqQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []request
	head   int
	closed bool
}

func newReqQueue() *reqQueue {
	q := &reqQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *reqQueue) push(r request) {
	q.mu.Lock()
	q.items = append(q.items, r)
	// Signal under the mutex: an unlocked notify can land between a
	// worker's emptiness check and its park, and the request sits unserved
	// until the next push.
	q.cond.Signal()
	q.mu.Unlock()
}

// popLocked removes the head entry; callers hold q.mu and have checked
// non-emptiness.
func (q *reqQueue) popLocked() request {
	r := q.items[q.head]
	q.items[q.head] = request{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return r
}

func (q *reqQueue) pop() (request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return request{}, false
	}
	return q.popLocked(), true
}

// tryPop pops without blocking; ok is false when the queue is momentarily
// empty or closed. The ring submitter uses it to gather a batch.
func (q *reqQueue) tryPop() (request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return request{}, false
	}
	return q.popLocked(), true
}

func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
