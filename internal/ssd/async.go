package ssd

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
)

// Latency is a simulated device latency model: a read of k consecutive
// pages takes PerRead + k*PerPage inside one device channel. Zero values
// disable simulation (reads cost only the backing device's real time).
type Latency struct {
	PerRead time.Duration // fixed submission/seek overhead per request
	PerPage time.Duration // streaming cost per page
}

// Cost returns the simulated duration of a count-page read.
func (l Latency) Cost(count int) time.Duration {
	return l.PerRead + time.Duration(count)*l.PerPage
}

// AsyncOptions configures an AsyncDevice.
type AsyncOptions struct {
	// QueueDepth is the number of device channels (concurrently progressing
	// requests), modelling FlashSSD internal parallelism. Default 8.
	QueueDepth int
	// Latency is the simulated latency model. Zero disables simulation.
	Latency Latency
	// Metrics, if non-nil, receives page-read/write and async counters.
	Metrics *metrics.Collector
	// Context, if non-nil, cancels the device: once it is done, queued and
	// newly submitted requests complete immediately with the context's
	// error (callbacks still run, so Drain and Close unblock as usual) and
	// the synchronous paths fail fast. Defaults to context.Background().
	Context context.Context
	// Events, if non-nil, receives PagesRead/PagesWritten progress events
	// per completed request.
	Events events.Sink
}

// request is one queued asynchronous operation.
type request struct {
	first uint32
	count int
	write []byte // nil for reads
	cb    func(data []byte, err error)
}

// AsyncDevice adds AsyncRead/AsyncWrite semantics on top of a PageDevice.
//
// Requests enter an unbounded submission queue drained by QueueDepth worker
// goroutines (the device channels). Each completion is handed, in completion
// order, to a single dispatcher goroutine that runs the registered callback —
// the role the paper assigns to the callback thread. Callbacks may submit
// further asynchronous requests (Algorithm 9 lines 9–13) without deadlock
// because the submission queue is unbounded.
type AsyncDevice struct {
	dev     PageDevice
	opts    AsyncOptions
	queue   *reqQueue
	done    chan struct{}
	compl   chan completion
	pending sync.WaitGroup
	workers sync.WaitGroup // worker + dispatcher goroutines, joined by Close
	once    sync.Once

	// Request accounting: submissions and retirements of asynchronous
	// requests, exposed so schedulers and tests can observe the in-flight
	// depth without instrumenting callbacks.
	submitted atomic.Int64
	completed atomic.Int64

	syncMu sync.Mutex
	syncTh Throttle // throttle for the synchronous path
}

type completion struct {
	data []byte
	err  error
	cb   func(data []byte, err error)
}

// NewAsyncDevice starts the device channels and the callback dispatcher.
// Close must be called to release them.
func NewAsyncDevice(dev PageDevice, opts AsyncOptions) *AsyncDevice {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	d := &AsyncDevice{
		dev:   dev,
		opts:  opts,
		queue: newReqQueue(),
		done:  make(chan struct{}),
		compl: make(chan completion, opts.QueueDepth*2),
	}
	for i := 0; i < opts.QueueDepth; i++ {
		d.workers.Add(1)
		go d.worker()
	}
	d.workers.Add(1)
	go d.dispatcher()
	return d
}

// PageSize returns the backing device's page size.
func (d *AsyncDevice) PageSize() int { return d.dev.PageSize() }

// NumPages returns the backing device's page count.
func (d *AsyncDevice) NumPages() uint32 { return d.dev.NumPages() }

// Metrics returns the collector, which may be nil.
func (d *AsyncDevice) Metrics() *metrics.Collector { return d.opts.Metrics }

// AsyncRead submits an asynchronous read of count pages starting at first.
// cb runs on the callback dispatcher goroutine when the read completes; it
// corresponds to AsyncRead(pid, Callback, Args) in the paper.
func (d *AsyncDevice) AsyncRead(first uint32, count int, cb func(data []byte, err error)) {
	if m := d.opts.Metrics; m != nil {
		m.AddAsyncReads(1)
	}
	d.submitted.Add(1)
	d.pending.Add(1)
	d.queue.push(request{first: first, count: count, cb: cb})
}

// AsyncReadScatter submits one asynchronous vectored read covering
// len(spans) consecutive page runs: segment i spans spans[i] pages and
// begins where segment i-1 ends, with segment 0 starting at page first.
// The device performs a single read of the whole range (one submission,
// one latency charge); on completion cb runs once per segment, in segment
// order, on the callback dispatcher, each receiving a sub-slice of the one
// read buffer — no copy. A failed read invokes cb for every segment with a
// nil data slice and the read's error, so each constituent fails exactly
// once.
func (d *AsyncDevice) AsyncReadScatter(first uint32, spans []int, cb func(seg int, data []byte, err error)) {
	total := 0
	for _, s := range spans {
		total += s
	}
	pageSize := d.dev.PageSize()
	d.AsyncRead(first, total, func(data []byte, err error) {
		if err != nil {
			for i := range spans {
				cb(i, nil, err)
			}
			return
		}
		off := 0
		for i, s := range spans {
			end := off + s*pageSize
			cb(i, data[off:end:end], nil)
			off = end
		}
	})
}

// AsyncWrite submits an asynchronous write. cb may be nil; if non-nil it
// runs on the dispatcher with a nil data slice.
func (d *AsyncDevice) AsyncWrite(first uint32, data []byte, cb func(data []byte, err error)) {
	d.submitted.Add(1)
	d.pending.Add(1)
	d.queue.push(request{first: first, write: data, cb: cb})
}

// Submitted returns the number of asynchronous requests submitted so far.
func (d *AsyncDevice) Submitted() int64 { return d.submitted.Load() }

// Completed returns the number of asynchronous requests fully retired
// (callback returned, or no callback was registered).
func (d *AsyncDevice) Completed() int64 { return d.completed.Load() }

// InFlight returns the number of asynchronous requests submitted but not
// yet retired.
func (d *AsyncDevice) InFlight() int64 { return d.submitted.Load() - d.completed.Load() }

// ReadPages performs a synchronous read through the same latency model,
// blocking the caller — the access pattern of the MGT baseline, which uses
// synchronous I/O only (§3.5).
func (d *AsyncDevice) ReadPages(first uint32, count int) ([]byte, error) {
	if err := d.opts.Context.Err(); err != nil {
		return nil, err
	}
	sw := metrics.StartStopwatch()
	d.syncMu.Lock()
	d.syncTh.Charge(d.opts.Latency.Cost(count))
	d.syncMu.Unlock()
	data, err := d.dev.ReadPages(first, count)
	if m := d.opts.Metrics; m != nil {
		m.AddSyncReads(1)
		m.AddPagesRead(int64(count))
		m.AddIOWait(sw.Elapsed())
	}
	if err == nil {
		d.emit(events.PagesRead, int64(count))
	}
	return data, err
}

// WritePages performs a synchronous write through the latency model.
func (d *AsyncDevice) WritePages(first uint32, data []byte) error {
	if err := d.opts.Context.Err(); err != nil {
		return err
	}
	d.syncMu.Lock()
	d.syncTh.Charge(d.opts.Latency.Cost(len(data) / d.dev.PageSize()))
	d.syncMu.Unlock()
	err := d.dev.WritePages(first, data)
	if m := d.opts.Metrics; m != nil && err == nil {
		m.AddPagesWritten(int64(len(data) / d.dev.PageSize()))
	}
	if err == nil {
		d.emit(events.PagesWritten, int64(len(data)/d.dev.PageSize()))
	}
	return err
}

// emit forwards one I/O progress event to the configured sink, if any.
func (d *AsyncDevice) emit(kind events.Kind, n int64) {
	if s := d.opts.Events; s != nil {
		s.Event(events.Event{Kind: kind, Iteration: -1, N: n})
	}
}

// retire marks one asynchronous request fully done: its callback has
// returned, or it never had one.
func (d *AsyncDevice) retire() {
	d.completed.Add(1)
	d.pending.Done()
}

// Drain blocks until every submitted asynchronous request has completed and
// its callback has returned.
func (d *AsyncDevice) Drain() { d.pending.Wait() }

// Close drains outstanding requests and stops the device goroutines,
// waiting until every worker and the dispatcher have returned. The backing
// device is not closed.
func (d *AsyncDevice) Close() {
	d.once.Do(func() {
		d.pending.Wait()
		close(d.done)
		d.queue.close()
		d.workers.Wait()
	})
}

func (d *AsyncDevice) worker() {
	defer d.workers.Done()
	// Each worker is one device channel with its own latency throttle, so
	// aggregate throughput scales with QueueDepth as real NCQ channels do.
	var th Throttle
	for {
		req, ok := d.queue.pop()
		if !ok {
			return
		}
		// Cancellation drains in-flight requests: skip the I/O (and its
		// simulated latency) and complete with the context's error so
		// callbacks still run and Drain/Close unblock.
		if err := d.opts.Context.Err(); err != nil {
			if req.cb != nil {
				d.compl <- completion{data: nil, err: err, cb: req.cb}
			} else {
				d.retire()
			}
			continue
		}
		if req.write != nil {
			th.Charge(d.opts.Latency.Cost(len(req.write) / d.dev.PageSize()))
			err := d.dev.WritePages(req.first, req.write)
			if err == nil {
				if m := d.opts.Metrics; m != nil {
					m.AddPagesWritten(int64(len(req.write) / d.dev.PageSize()))
				}
				d.emit(events.PagesWritten, int64(len(req.write)/d.dev.PageSize()))
			}
			if req.cb != nil {
				d.compl <- completion{data: nil, err: err, cb: req.cb}
			} else {
				d.retire()
			}
			continue
		}
		th.Charge(d.opts.Latency.Cost(req.count))
		data, err := d.dev.ReadPages(req.first, req.count)
		if err == nil {
			if m := d.opts.Metrics; m != nil {
				m.AddPagesRead(int64(req.count))
			}
			d.emit(events.PagesRead, int64(req.count))
		}
		d.compl <- completion{data: data, err: err, cb: req.cb}
	}
}

// dispatcher is the callback thread: it executes completion callbacks
// serially in completion order.
func (d *AsyncDevice) dispatcher() {
	defer d.workers.Done()
	for {
		select {
		case c := <-d.compl:
			c.cb(c.data, c.err)
			d.retire()
		case <-d.done:
			// Drain anything that raced with shutdown.
			for {
				select {
				case c := <-d.compl:
					c.cb(c.data, c.err)
					d.retire()
				default:
					return
				}
			}
		}
	}
}

// reqQueue is an unbounded MPMC queue of requests.
type reqQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []request
	closed bool
}

func newReqQueue() *reqQueue {
	q := &reqQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *reqQueue) push(r request) {
	q.mu.Lock()
	q.items = append(q.items, r)
	// Signal under the mutex: an unlocked notify can land between a
	// worker's emptiness check and its park, and the request sits unserved
	// until the next push.
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *reqQueue) pop() (request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return request{}, false
	}
	r := q.items[0]
	q.items = q.items[1:]
	return r, true
}

func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
