package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasic(t *testing.T) {
	s := NewSet(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("fresh set Count = %d, want 0", s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count after Remove = %d, want 6", got)
	}
}

func TestSetContainsOutOfRange(t *testing.T) {
	s := NewSet(10)
	if s.Contains(-1) {
		t.Error("Contains(-1) = true")
	}
	if s.Contains(10) {
		t.Error("Contains(10) = true")
	}
	if s.Contains(1000) {
		t.Error("Contains(1000) = true")
	}
}

func TestSetAddIdempotent(t *testing.T) {
	s := NewSet(64)
	s.Add(5)
	s.Add(5)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count after duplicate Add = %d, want 1", got)
	}
}

func TestSetClear(t *testing.T) {
	s := NewSet(200)
	for i := 0; i < 200; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Clear = %d, want 0", got)
	}
	if s.Len() != 200 {
		t.Fatalf("Len after Clear = %d, want 200", s.Len())
	}
}

func TestSetNegativeCapacity(t *testing.T) {
	s := NewSet(-5)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) {
		t.Error("Contains(0) = true on empty set")
	}
}

func TestAndCount(t *testing.T) {
	a := NewSet(256)
	b := NewSet(256)
	for i := 0; i < 256; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 256; i += 3 {
		b.Add(i)
	}
	// multiples of 6 in [0,256): 0,6,...,252 -> 43 values
	if got := a.AndCount(b); got != 43 {
		t.Fatalf("AndCount = %d, want 43", got)
	}
	if got := b.AndCount(a); got != 43 {
		t.Fatalf("AndCount reversed = %d, want 43", got)
	}
}

func TestAndCountDifferentCapacities(t *testing.T) {
	a := NewSet(64)
	b := NewSet(1024)
	a.Add(10)
	b.Add(10)
	b.Add(700)
	if got := a.AndCount(b); got != 1 {
		t.Fatalf("AndCount = %d, want 1", got)
	}
	if got := b.AndCount(a); got != 1 {
		t.Fatalf("AndCount reversed = %d, want 1", got)
	}
}

func TestOr(t *testing.T) {
	a := NewSet(128)
	b := NewSet(128)
	a.Add(1)
	b.Add(2)
	b.Add(127)
	a.Or(b)
	for _, i := range []int{1, 2, 127} {
		if !a.Contains(i) {
			t.Errorf("Contains(%d) = false after Or", i)
		}
	}
	if got := a.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestForEachOrder(t *testing.T) {
	s := NewSet(300)
	want := []int{0, 7, 63, 64, 190, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

// TestSetAgainstMap cross-checks the bitset against a map-based model under a
// random operation sequence.
func TestSetAgainstMap(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(42))
	s := NewSet(n)
	model := make(map[int]bool)
	for op := 0; op < 5000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			model[i] = true
		case 1:
			s.Remove(i)
			delete(model, i)
		case 2:
			if s.Contains(i) != model[i] {
				t.Fatalf("op %d: Contains(%d) = %v, model says %v", op, i, s.Contains(i), model[i])
			}
		}
	}
	if s.Count() != len(model) {
		t.Fatalf("Count = %d, model has %d", s.Count(), len(model))
	}
}

// Property: AndCount is commutative and bounded by each operand's Count.
func TestAndCountProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := NewSet(1 << 16)
		b := NewSet(1 << 16)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		ab, ba := a.AndCount(b), b.AndCount(a)
		return ab == ba && ab <= a.Count() && ab <= b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
