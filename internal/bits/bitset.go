// Package bits provides a dense bitset used for constant-time vertex
// membership tests and for the boolean adjacency-matrix rows of the AYZ
// matrix-multiplication triangle counter.
package bits

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity dense bitset over [0, n).
type Set struct {
	words []uint64
	n     int
}

// NewSet returns a Set able to hold bits in [0, n).
func NewSet(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set (the n given to NewSet).
func (s *Set) Len() int { return s.n }

// Add sets bit i. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether bit i is set. Out-of-range i reports false.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear resets every bit to zero, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// AndCount returns |s ∩ t| without materialising the intersection. The two
// sets may have different capacities; bits beyond the shorter one count as
// zero.
func (s *Set) AndCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// Or sets s to s ∪ t. t must not have larger capacity than s.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}
