package graph

import "sort"

// DegreeOrder returns a relabeled copy of g under the Schank–Wagner
// degree-based heuristic: id(u) ≺ id(v) if degree(u) < degree(v), ties
// broken by original id for determinism. High-degree vertices receive high
// ids, shrinking |n≻(v)| for hubs and with it the Eq. 3 intersection cost.
// The second return value maps new id → original id.
func DegreeOrder(g *Graph) (*Graph, []VertexID) {
	n := g.NumVertices()
	perm := make([]VertexID, n) // perm[rank] = original id
	for i := range perm {
		perm[i] = VertexID(i)
	}
	sort.SliceStable(perm, func(i, j int) bool {
		di, dj := g.Degree(perm[i]), g.Degree(perm[j])
		if di != dj {
			return di < dj
		}
		return perm[i] < perm[j]
	})
	newID := make([]VertexID, n) // newID[original] = rank
	for rank, orig := range perm {
		newID[orig] = VertexID(rank)
	}
	return Relabel(g, newID), perm
}

// Relabel returns a copy of g with vertex v renamed to newID[v].
// newID must be a permutation of [0, n).
func Relabel(g *Graph, newID []VertexID) *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[newID[v]+1] = int64(g.Degree(VertexID(v)))
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	adj := make([]uint32, offsets[n])
	for v := 0; v < n; v++ {
		nv := newID[v]
		dst := adj[offsets[nv]:offsets[nv+1]]
		for i, w := range g.Neighbors(VertexID(v)) {
			dst[i] = newID[w]
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	}
	return &Graph{offsets: offsets, adj: adj}
}

// RandomOrder relabels g by the given permutation source, used by the
// ordering ablation. perm[v] gives the new id of original vertex v; it must
// be a permutation of [0, n).
func RandomOrder(g *Graph, perm []VertexID) *Graph {
	return Relabel(g, perm)
}

// IsDegreeOrdered reports whether ids are non-decreasing in degree, the
// invariant established by DegreeOrder.
func IsDegreeOrdered(g *Graph) bool {
	for v := 1; v < g.NumVertices(); v++ {
		if g.Degree(VertexID(v)) < g.Degree(VertexID(v-1)) {
			return false
		}
	}
	return true
}
