package graph

// PaperExampleEdges returns the edge list of the example graph G from
// Figure 1 of the paper, with vertices a..h mapped to ids 0..7 in
// alphabetical order. G contains exactly five triangles:
// Δabc, Δcdf, Δdef, Δcfg, Δcgh.
func PaperExampleEdges() []Edge {
	const (
		a = iota
		b
		c
		d
		e
		f
		gg
		h
	)
	return []Edge{
		{a, b}, {a, c}, {b, c}, // Δabc
		{c, d}, {c, f}, {d, f}, // Δcdf
		{d, e}, {e, f}, // Δdef (with d–f above)
		{f, gg}, {c, gg}, // Δcfg (with c–f above)
		{gg, h}, {c, h}, // Δcgh (with c–g above)
	}
}

// PaperExample returns the Figure 1 graph itself.
func PaperExample() *Graph {
	g, err := FromEdges(8, PaperExampleEdges())
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns the complete graph K_n, which has C(n,3) triangles.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = b.AddEdge(VertexID(u), VertexID(v))
		}
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n, which has no triangles for n > 3.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		_ = b.AddEdge(VertexID(u), VertexID((u+1)%n))
	}
	return b.Build()
}

// Star returns the star graph with one hub and n-1 leaves (no triangles).
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, VertexID(v))
	}
	return b.Build()
}
