package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBuilderSimpleGraph(t *testing.T) {
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 2, 0)
	mustAdd(t, b, 3, 0)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.Degree(3) != 1 {
		t.Fatalf("Degree(3) = %d, want 1", g.Degree(3))
	}
}

func mustAdd(t *testing.T, b *Builder, u, v VertexID) {
	t.Helper()
	if err := b.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 0) // duplicate, reversed
	mustAdd(t, b, 0, 1) // duplicate
	mustAdd(t, b, 1, 1) // self-loop, ignored
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(1) != 1 {
		t.Fatalf("Degree(1) = %d, want 1", g.Degree(1))
	}
}

func TestBuilderRangeError(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 5); err == nil {
		t.Fatal("AddEdge(0,5) on n=2: want error")
	}
}

func TestNeighborsAfterBefore(t *testing.T) {
	g := PaperExample()
	// vertex c (=2) has neighbors a,b,d,f,g,h = {0,1,3,5,6,7}
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []uint32{0, 1, 3, 5, 6, 7}) {
		t.Fatalf("Neighbors(c) = %v", got)
	}
	if got := g.NeighborsAfter(2); !reflect.DeepEqual(got, []uint32{3, 5, 6, 7}) {
		t.Fatalf("NeighborsAfter(c) = %v", got)
	}
	if got := g.NeighborsBefore(2); !reflect.DeepEqual(got, []uint32{0, 1}) {
		t.Fatalf("NeighborsBefore(c) = %v", got)
	}
}

func TestHasEdge(t *testing.T) {
	g := PaperExample()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(a,b) = false")
	}
	if g.HasEdge(0, 7) {
		t.Error("HasEdge(a,h) = true")
	}
	if g.HasEdge(0, 99) || g.HasEdge(99, 0) {
		t.Error("HasEdge out of range = true")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := PaperExample()
	count := 0
	g.Edges(func(u, v VertexID) bool {
		if u >= v {
			t.Fatalf("Edges emitted (u=%d, v=%d) with u >= v", u, v)
		}
		count++
		return true
	})
	if int64(count) != g.NumEdges() {
		t.Fatalf("Edges visited %d, want %d", count, g.NumEdges())
	}
	// Early stop.
	count = 0
	g.Edges(func(u, v VertexID) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early-stopped Edges visited %d, want 3", count)
	}
}

func TestPaperExampleTriangles(t *testing.T) {
	g := PaperExample()
	if got := CountTrianglesReference(g); got != 5 {
		t.Fatalf("paper example triangles = %d, want 5", got)
	}
}

func TestSpecialGraphTriangles(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"K4", Complete(4), 4},
		{"K5", Complete(5), 10},
		{"K10", Complete(10), 120},
		{"C10", Cycle(10), 0},
		{"C3", Cycle(3), 1},
		{"Star100", Star(100), 0},
		{"empty", mustGraph(t, 5, nil), 0},
	}
	for _, tc := range cases {
		if got := CountTrianglesReference(tc.g); got != tc.want {
			t.Errorf("%s: triangles = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDegreeOrderInvariants(t *testing.T) {
	g := PaperExample()
	og, perm := DegreeOrder(g)
	if !IsDegreeOrdered(og) {
		t.Fatal("DegreeOrder result is not degree ordered")
	}
	if og.NumVertices() != g.NumVertices() || og.NumEdges() != g.NumEdges() {
		t.Fatal("DegreeOrder changed graph size")
	}
	// Relabeling preserves triangle count.
	if got := CountTrianglesReference(og); got != 5 {
		t.Fatalf("triangles after DegreeOrder = %d, want 5", got)
	}
	// perm maps new ids back to originals bijectively.
	seen := make(map[VertexID]bool)
	for _, orig := range perm {
		if seen[orig] {
			t.Fatal("perm is not a bijection")
		}
		seen[orig] = true
	}
	// Degrees correspond through perm.
	for rank, orig := range perm {
		if og.Degree(VertexID(rank)) != g.Degree(orig) {
			t.Fatalf("degree mismatch at rank %d", rank)
		}
	}
}

func TestDegreeOrderReducesNSuccCost(t *testing.T) {
	// On a hub-heavy graph, degree ordering should give the hub an id with
	// small n≻.
	g := Star(50)
	og, _ := DegreeOrder(g)
	hub := VertexID(og.NumVertices() - 1) // highest id = highest degree
	if og.Degree(hub) != 49 {
		t.Fatalf("hub degree = %d, want 49", og.Degree(hub))
	}
	if got := len(og.NeighborsAfter(hub)); got != 0 {
		t.Fatalf("|n≻(hub)| = %d, want 0", got)
	}
}

func TestRelabelRandomPermutationPreservesTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 300)
	want := CountTrianglesReference(g)
	perm := make([]VertexID, g.NumVertices())
	for i := range perm {
		perm[i] = VertexID(i)
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	rg := RandomOrder(g, perm)
	if got := CountTrianglesReference(rg); got != want {
		t.Fatalf("triangles after random relabel = %d, want %d", got, want)
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		_ = b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return b.Build()
}

func TestAdjacencyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 40, 200)
		for v := 0; v < g.NumVertices(); v++ {
			n := g.Neighbors(VertexID(v))
			for i := range n {
				if i > 0 && n[i] <= n[i-1] {
					t.Fatalf("Neighbors(%d) not strictly increasing: %v", v, n)
				}
				if n[i] == uint32(v) {
					t.Fatalf("self-loop survived at %d", v)
				}
				// Symmetry.
				if !g.HasEdge(n[i], VertexID(v)) {
					t.Fatalf("asymmetric edge (%d, %d)", v, n[i])
				}
			}
		}
	}
}

func TestStatsOnPaperExample(t *testing.T) {
	g := PaperExample()
	s := BasicStats(g)
	if s.NumVertices != 8 || s.NumEdges != 12 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDegree != 6 { // vertex c
		t.Fatalf("MaxDegree = %d, want 6", s.MaxDegree)
	}
	if s.AvgDegree != 3 {
		t.Fatalf("AvgDegree = %v, want 3", s.AvgDegree)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// K4: every vertex has C(v)=1.
	for _, c := range LocalClusteringCoefficient(Complete(4)) {
		if c != 1 {
			t.Fatalf("K4 local cc = %v, want 1", c)
		}
	}
	if got := AverageClusteringCoefficient(Complete(4)); got != 1 {
		t.Fatalf("K4 avg cc = %v, want 1", got)
	}
	if got := AverageClusteringCoefficient(Cycle(10)); got != 0 {
		t.Fatalf("C10 avg cc = %v, want 0", got)
	}
	if got := Transitivity(Complete(5)); got != 1 {
		t.Fatalf("K5 transitivity = %v, want 1", got)
	}
	if got := Transitivity(Star(10)); got != 0 {
		t.Fatalf("star transitivity = %v, want 0", got)
	}
}

func TestTriangleCountsPerVertex(t *testing.T) {
	g := PaperExample()
	tri := TriangleCountsPerVertex(g)
	// c (=2) participates in Δabc, Δcdf, Δcfg, Δcgh = 4 triangles.
	if tri[2] != 4 {
		t.Fatalf("tri(c) = %d, want 4", tri[2])
	}
	// a participates only in Δabc.
	if tri[0] != 1 {
		t.Fatalf("tri(a) = %d, want 1", tri[0])
	}
	// Sum of per-vertex counts = 3 * total triangles.
	var sum int64
	for _, x := range tri {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("sum tri = %d, want 15", sum)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(Star(5))
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestTransitivityEmptyGraph(t *testing.T) {
	g := mustGraph(t, 3, nil)
	if got := Transitivity(g); got != 0 {
		t.Fatalf("Transitivity(empty) = %v, want 0", got)
	}
}
