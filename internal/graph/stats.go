package graph

import "github.com/optlab/opt/internal/intersect"

// Stats holds basic statistics reported in Table 2 of the paper.
type Stats struct {
	NumVertices int
	NumEdges    int64
	MaxDegree   int
	AvgDegree   float64
}

// BasicStats computes the Table 2 statistics for g.
func BasicStats(g *Graph) Stats {
	s := Stats{
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		MaxDegree:   g.MaxDegree(),
	}
	if s.NumVertices > 0 {
		s.AvgDegree = 2 * float64(s.NumEdges) / float64(s.NumVertices)
	}
	return s
}

// TriangleCountsPerVertex returns, for each vertex, the number of triangles
// it participates in. This is the local triangle count used by the
// Becchetti-style spam-detection example and by clustering coefficients.
func TriangleCountsPerVertex(g *Graph) []int64 {
	counts := make([]int64, g.NumVertices())
	g.Edges(func(u, v VertexID) bool {
		common := intersect.Adaptive(nil, g.NeighborsAfter(u), g.NeighborsAfter(v))
		// For each triangle u<v<w all three corners participate.
		for _, w := range common {
			counts[u]++
			counts[v]++
			counts[w]++
		}
		return true
	})
	return counts
}

// LocalClusteringCoefficient returns C(v) = 2·tri(v) / (deg(v)·(deg(v)−1))
// for every vertex, with C(v) = 0 for degree < 2.
func LocalClusteringCoefficient(g *Graph) []float64 {
	tri := TriangleCountsPerVertex(g)
	out := make([]float64, g.NumVertices())
	for v := range out {
		d := g.Degree(VertexID(v))
		if d >= 2 {
			out[v] = 2 * float64(tri[v]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// AverageClusteringCoefficient returns the Watts–Strogatz average of the
// local clustering coefficients [19].
func AverageClusteringCoefficient(g *Graph) float64 {
	cc := LocalClusteringCoefficient(g)
	if len(cc) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// Transitivity returns the global transitivity 3·#triangles / #wedges
// (Harary–Kommel [18]), 0 when the graph has no wedges.
func Transitivity(g *Graph) float64 {
	var wedges, triangles int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.Degree(VertexID(v)))
		wedges += d * (d - 1) / 2
	}
	g.Edges(func(u, v VertexID) bool {
		triangles += int64(intersect.AdaptiveCount(g.NeighborsAfter(u), g.NeighborsAfter(v)))
		return true
	})
	if wedges == 0 {
		return 0
	}
	return 3 * float64(triangles) / float64(wedges)
}

// CountTrianglesReference counts triangles with the plain in-memory
// edge-iterator. It is the ground-truth oracle that every other method in
// this repository is tested against.
func CountTrianglesReference(g *Graph) int64 {
	var total int64
	g.Edges(func(u, v VertexID) bool {
		total += int64(intersect.AdaptiveCount(g.NeighborsAfter(u), g.NeighborsAfter(v)))
		return true
	})
	return total
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(VertexID(v))]++
	}
	return h
}
