// Package graph provides the in-memory graph substrate: a compressed
// sparse-row (CSR) adjacency structure for simple undirected graphs, the
// degree-based vertex relabeling heuristic of Schank & Wagner that all
// triangulation methods in the paper rely on, and network-analysis metrics
// (clustering coefficient, transitivity) computed from triangle counts.
//
// Vertex ids are dense uint32 values in [0, NumVertices). Adjacency lists
// are sorted ascending, contain no self-loops and no duplicates.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex after relabeling. The ordering of VertexIDs
// is the ≺ total order used by the iterator models.
type VertexID = uint32

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V VertexID
}

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	offsets []int64  // len = n+1
	adj     []uint32 // concatenated sorted adjacency lists
}

// ErrVertexRange reports a vertex id outside [0, NumVertices).
var ErrVertexRange = errors.New("graph: vertex id out of range")

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Degree returns |n(v)|.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list n(v). The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []uint32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NeighborsAfter returns n≻(v): the suffix of n(v) with ids greater than v.
func (g *Graph) NeighborsAfter(v VertexID) []uint32 {
	n := g.Neighbors(v)
	i := sort.Search(len(n), func(i int) bool { return n[i] > v })
	return n[i:]
}

// NeighborsBefore returns n≺(v): the prefix of n(v) with ids less than v.
func (g *Graph) NeighborsBefore(v VertexID) []uint32 {
	n := g.Neighbors(v)
	i := sort.Search(len(n), func(i int) bool { return n[i] >= v })
	return n[:i]
}

// HasEdge reports whether (u, v) ∈ E.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
		return false
	}
	n := g.Neighbors(u)
	i := sort.Search(len(n), func(i int) bool { return n[i] >= v })
	return i < len(n) && n[i] == v
}

// Edges calls fn once per undirected edge (u < v), in ascending (u, v)
// order. fn returning false stops the iteration.
func (g *Graph) Edges(fn func(u, v VertexID) bool) {
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.NeighborsAfter(VertexID(u)) {
			if !fn(VertexID(u), v) {
				return
			}
		}
	}
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > m {
			m = d
		}
	}
	return m
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d, |E|=%d)", g.NumVertices(), g.NumEdges())
}

// Builder accumulates edges and produces a simplified Graph (sorted lists,
// duplicates and self-loops removed).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records an undirected edge. Self-loops are ignored. Duplicates
// are removed at Build time. It returns ErrVertexRange for out-of-range ids.
func (b *Builder) AddEdge(u, v VertexID) error {
	if int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("%w: (%d, %d) with n=%d", ErrVertexRange, u, v, b.n)
	}
	if u == v {
		return nil
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
	return nil
}

// NumPendingEdges returns the number of edge records accumulated so far
// (before deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the Graph. The Builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	deg := make([]int64, b.n)
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	var prev Edge
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue
		}
		uniq = append(uniq, e)
		prev = e
	}
	b.edges = uniq
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, b.n+1)
	for i := 0; i < b.n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]uint32, offsets[b.n])
	fill := make([]int64, b.n)
	copy(fill, offsets[:b.n])
	for _, e := range b.edges {
		adj[fill[e.U]] = e.V
		fill[e.U]++
		adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	// Each list already ends up sorted for U-side entries, but V-side
	// entries interleave; sort every list to guarantee the invariant.
	for v := 0; v < b.n; v++ {
		l := g.adj[offsets[v]:offsets[v+1]]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return g
}

// FromEdges builds a Graph directly from an edge slice.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
