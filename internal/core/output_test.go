package core

import (
	"bytes"
	"sync"
	"testing"
)

func TestCountingOutput(t *testing.T) {
	o := &CountingOutput{}
	o.Emit(1, 2, []uint32{3, 4, 5})
	o.Emit(1, 3, nil)
	o.Emit(2, 3, []uint32{9})
	if got := o.Triangles(); got != 4 {
		t.Fatalf("Triangles = %d, want 4", got)
	}
}

func TestCollectingOutputSorted(t *testing.T) {
	o := &CollectingOutput{}
	o.Emit(5, 6, []uint32{9, 7})
	o.Emit(1, 2, []uint32{3})
	got := o.Triangles()
	want := []Triangle{{1, 2, 3}, {5, 6, 7}, {5, 6, 9}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFuncOutput(t *testing.T) {
	var n int
	FuncOutput(func(u, v uint32, ws []uint32) { n += len(ws) }).Emit(1, 2, []uint32{3, 4})
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestNestedWriterRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	nw := NewNestedWriter(&buf)
	nw.Emit(1, 2, []uint32{3, 4})
	nw.Emit(10, 20, []uint32{30})
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	if nw.Triangles() != 3 {
		t.Fatalf("Triangles = %d, want 3", nw.Triangles())
	}
	var got []Triangle
	err := ReadNested(&buf, func(u, v uint32, ws []uint32) error {
		for _, w := range ws {
			got = append(got, Triangle{u, v, w})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Triangle{{1, 2, 3}, {1, 2, 4}, {10, 20, 30}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNestedWriterConcurrentEmitters(t *testing.T) {
	var buf bytes.Buffer
	nw := NewNestedWriter(&buf)
	var wg sync.WaitGroup
	const emitters = 8
	const perEmitter = 5000
	for e := 0; e < emitters; e++ {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				nw.Emit(uint32(e), uint32(i), []uint32{uint32(i + 1), uint32(i + 2)})
			}
		}()
	}
	wg.Wait()
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	wantTris := int64(emitters * perEmitter * 2)
	if nw.Triangles() != wantTris {
		t.Fatalf("Triangles = %d, want %d", nw.Triangles(), wantTris)
	}
	var n int64
	if err := ReadNested(&buf, func(_, _ uint32, ws []uint32) error {
		n += int64(len(ws))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != wantTris {
		t.Fatalf("decoded %d triangles, want %d (Close lost buffered data?)", n, wantTris)
	}
	if nw.BytesWritten() == 0 {
		t.Fatal("BytesWritten = 0")
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.after -= len(p)
	if w.after < 0 {
		return 0, errWriterFull
	}
	return len(p), nil
}

var errWriterFull = errSentinel("writer full")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func TestNestedWriterPropagatesError(t *testing.T) {
	nw := NewNestedWriter(&failingWriter{after: 10})
	for i := 0; i < 100_000; i++ {
		nw.Emit(uint32(i), uint32(i+1), []uint32{uint32(i + 2)})
	}
	if err := nw.Close(); err == nil {
		t.Fatal("Close: want error from underlying writer")
	}
}

func TestReadNestedTruncated(t *testing.T) {
	var buf bytes.Buffer
	nw := NewNestedWriter(&buf)
	nw.Emit(1, 2, []uint32{3})
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2] // cut the last w
	err := ReadNested(bytes.NewReader(data), func(_, _ uint32, _ []uint32) error { return nil })
	if err == nil {
		t.Fatal("truncated stream: want error")
	}
}

func TestSchedMorphingStealsWork(t *testing.T) {
	s := newSched(true)
	var mu sync.Mutex
	ran := 0
	s.run(4, func() {
		// Only external tasks: internal-home workers must morph.
		for i := 0; i < 100; i++ {
			s.submit(classExternal, func() {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}
		s.close(classInternal)
		s.close(classExternal)
	})
	if ran != 100 {
		t.Fatalf("ran = %d, want 100", ran)
	}
}

func TestSchedNoMorphingSeparation(t *testing.T) {
	s := newSched(false)
	var mu sync.Mutex
	ran := map[taskClass]int{}
	s.run(2, func() {
		for i := 0; i < 10; i++ {
			s.submit(classInternal, func() { mu.Lock(); ran[classInternal]++; mu.Unlock() })
			s.submit(classExternal, func() { mu.Lock(); ran[classExternal]++; mu.Unlock() })
		}
		s.close(classInternal)
		s.close(classExternal)
	})
	if ran[classInternal] != 10 || ran[classExternal] != 10 {
		t.Fatalf("ran = %v", ran)
	}
	if s.classWork(classInternal) == 0 && s.classWork(classExternal) == 0 {
		t.Fatal("no work time recorded")
	}
}

func TestSchedTasksSubmittedDuringRun(t *testing.T) {
	s := newSched(true)
	var mu sync.Mutex
	total := 0
	s.run(3, func() {
		var cascade func(depth int)
		cascade = func(depth int) {
			s.submit(classExternal, func() {
				mu.Lock()
				total++
				mu.Unlock()
				if depth > 0 {
					cascade(depth - 1)
				} else {
					s.close(classExternal)
				}
			})
		}
		cascade(20)
		s.close(classInternal)
	})
	if total != 21 {
		t.Fatalf("total = %d, want 21", total)
	}
}
