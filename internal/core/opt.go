package core

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/optlab/opt/internal/bits"
	"github.com/optlab/opt/internal/buffer"
	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Mode selects between the serial framework variant of §3.3 and the fully
// overlapped parallel variant of §3.2/§3.4.
type Mode int

const (
	// Serial is OPT_serial: the macro-level overlap is disabled — at each
	// iteration the external triangulation starts only after the internal
	// triangulation has completed — but the micro-level overlap (async
	// external I/O hidden behind external CPU work) remains.
	Serial Mode = iota
	// Parallel is full OPT: both overlap levels plus multi-core
	// parallelism and (optionally) thread morphing.
	Parallel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Serial {
		return "OPT_serial"
	}
	return "OPT"
}

// Options configures a framework run.
type Options struct {
	// Model selects the iterator model (default EdgeIterator, as in §5.1).
	Model ModelKind
	// Mode selects Serial or Parallel.
	Mode Mode
	// Threads is the worker count in Parallel mode (default 2: the main
	// thread and the callback thread).
	Threads int
	// MemoryPages is the total buffer budget m. Defaults to one quarter of
	// the store when 0.
	MemoryPages int
	// InternalPages (m_in) and ExternalPages (m_ex) override the default
	// even split m_in = m_ex = m/2 of §5.1.
	InternalPages int
	ExternalPages int
	// QueueDepth is the FlashSSD channel parallelism (default 8).
	QueueDepth int
	// Latency simulates device latency; zero runs at raw device speed.
	Latency ssd.Latency
	// DisableMorphing turns off thread morphing (§3.4) for the Figure 4
	// comparison. Ignored in Serial mode.
	DisableMorphing bool
	// VirtualCores, when positive, executes the Parallel mode on a single
	// real worker but list-schedules the measured task durations onto this
	// many virtual cores, reporting virtual phase times and elapsed. It
	// reproduces the paper's multi-core experiments on hosts with fewer
	// physical CPUs (DESIGN.md §3); Threads is ignored.
	VirtualCores int
	// VirtualCoreSet schedules the same run onto several core counts at
	// once; Result.VirtualElapsed reports the modelled elapsed per count.
	// Result.Elapsed reports the first entry's. Overrides VirtualCores.
	VirtualCoreSet []int
	// DisableMicroOverlap replaces asynchronous external reads with
	// synchronous ones, an ablation that degrades OPT towards MGT's I/O
	// behaviour.
	DisableMicroOverlap bool
	// MaxCoalescePages caps the pages merged into one vectored read by the
	// I/O scheduler (DESIGN.md §9). 0 selects the default of 32, clamped to
	// the external-area budget; 1 effectively disables coalescing (requests
	// are never merged, though a multi-page chunk still reads as one).
	MaxCoalescePages int
	// PrefetchDepth bounds the coalesced reads the scheduler keeps in
	// flight (read-ahead). 0 selects the QueueDepth; 1 disables read-ahead,
	// restoring the one-read-at-a-time chain of Algorithm 9.
	PrefetchDepth int
	// Output receives triangles; defaults to a CountingOutput.
	Output Output
	// Metrics receives cost counters; optional.
	Metrics *metrics.Collector
	// CollectIterStats enables the per-iteration records used by Figure 4.
	CollectIterStats bool
	// Events receives progress events (iteration boundaries, morphing, and
	// — via the device — page I/O); optional.
	Events events.Sink
}

// IterationStat describes one outer-loop iteration (Figure 4). It is the
// engine-wide definition; the alias keeps existing core callers compiling.
type IterationStat = engine.IterationStat

// Result reports a completed run.
type Result struct {
	Triangles  int64
	Iterations int
	// Elapsed is the wall-clock run time — or, when Options.VirtualCores
	// is set, the modelled elapsed time on that many cores.
	Elapsed   time.Duration
	IterStats []IterationStat
	Metrics   metrics.Snapshot
	// VirtualElapsed maps each entry of Options.VirtualCoreSet to its
	// modelled elapsed time.
	VirtualElapsed map[int]time.Duration
}

// extReq is one element of the request list L of Algorithm 4: a chunk to
// load into the external area together with V_ex^i, the candidate vertices
// whose records it holds.
type extReq struct {
	first uint32
	span  int
	cands []uint32 // sorted
}

// Run executes the OPT framework over a store whose data pages are served
// by base. It is the entry point corresponding to Algorithm 3.
func Run(st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	return RunContext(context.Background(), st, base, opts)
}

// RunContext is Run with cancellation: when ctx is done the run stops
// within the current iteration — queued device requests complete with the
// context's error, no goroutines leak — and the partial Result accumulated
// so far is returned alongside an error satisfying errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := newRunner(ctx, st, base, opts)
	defer r.close()
	return r.run()
}

type runner struct {
	gctx   context.Context
	st     *storage.Store
	dev    *ssd.AsyncDevice
	opts   Options
	model  Model
	ctx    *Ctx
	out    Output
	mx     *metrics.Collector
	mIn    int
	mEx    int
	pool   *buffer.Pool // external area, persists across iterations
	counts *CountingOutput

	// I/O-scheduler knobs, resolved from Options (DESIGN.md §9).
	maxCoalesce   int
	prefetchDepth int

	// Per-iteration state.
	internalChunks []*buffer.Chunk
	candSeen       *bits.Set
	vex            []uint32

	// Recycled backing arrays for the request list and coalescer: the
	// steady-state external path reuses these across iterations instead of
	// reallocating them (sub-slices alias the shared arrays, so each is
	// rebuilt from scratch each iteration and never grows mid-iteration).
	pairScratch     []uint64
	reqScratch      []extReq
	candScratch     []uint32
	spanScratch     []int
	loadSpanScratch []int
	groupScratch    []extGroup
	residentScratch []residentReq

	errOnce sync.Once
	err     error
	vset    []int // resolved virtual core set, nil when disabled
	vtotals []time.Duration
}

func newRunner(ctx context.Context, st *storage.Store, base ssd.PageDevice, opts Options) *runner {
	if opts.Threads <= 0 {
		opts.Threads = 2
	}
	if len(opts.VirtualCoreSet) == 0 && opts.VirtualCores > 0 {
		opts.VirtualCoreSet = []int{opts.VirtualCores}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.MemoryPages <= 0 {
		opts.MemoryPages = int(st.NumPages)/4 + 2
	}
	mIn, mEx := opts.InternalPages, opts.ExternalPages
	if mIn <= 0 && mEx <= 0 {
		mIn = opts.MemoryPages / 2
		mEx = opts.MemoryPages - mIn
	} else if mIn <= 0 {
		mIn = opts.MemoryPages - mEx
	} else if mEx <= 0 {
		mEx = opts.MemoryPages - mIn
	}
	if mIn < 1 {
		mIn = 1
	}
	if mEx < 1 {
		mEx = 1
	}
	mx := opts.Metrics
	out := opts.Output
	var counts *CountingOutput
	if out == nil {
		counts = &CountingOutput{}
		out = counts
	}
	maxCoalesce := opts.MaxCoalescePages
	if maxCoalesce <= 0 {
		maxCoalesce = 32
	}
	if maxCoalesce > mEx {
		maxCoalesce = mEx
	}
	prefetchDepth := opts.PrefetchDepth
	if prefetchDepth <= 0 {
		prefetchDepth = opts.QueueDepth
	}
	r := &runner{
		gctx:          ctx,
		st:            st,
		opts:          opts,
		model:         NewModel(opts.Model),
		out:           out,
		mx:            mx,
		mIn:           mIn,
		mEx:           mEx,
		pool:          buffer.NewPool(mEx),
		counts:        counts,
		maxCoalesce:   maxCoalesce,
		prefetchDepth: prefetchDepth,
	}
	r.vset = opts.VirtualCoreSet
	r.vtotals = make([]time.Duration, len(r.vset))
	r.dev = ssd.NewAsyncDevice(base, ssd.AsyncOptions{
		QueueDepth: opts.QueueDepth,
		Latency:    opts.Latency,
		Metrics:    mx,
		Context:    ctx,
		Events:     opts.Events,
	})
	r.ctx = newCtx(st, out, mx)
	return r
}

func (r *runner) close() { r.dev.Close() }

func (r *runner) fail(err error) {
	if err == nil {
		return
	}
	r.errOnce.Do(func() { r.err = err })
}

// decodeChunk decodes one completed read segment into a freshly pooled
// chunk: records append into the chunk's recycled Recs/Arena backing, the
// decode results are repointed into the chunk, and the page header is
// stamped. On decode failure the chunk goes straight back to the pool and
// the caller receives only the error — ownership of the chunk transfers to
// the caller on success and never otherwise. Both the internal-area
// callback and the external I/O scheduler funnel through here, so the
// decode/repoint/recycle discipline optlint's arenaescape rule checks has
// exactly one implementation.
func (r *runner) decodeChunk(first uint32, span int, data []byte) (*buffer.Chunk, error) {
	c := buffer.GetChunk()
	recs, arena, err := r.st.DecodeAppend(c.Recs, c.Arena, data)
	c.Recs, c.Arena = recs, arena
	if err != nil {
		buffer.PutChunk(c)
		return nil, err
	}
	c.FirstPage = first
	c.NumPages = span
	return c, nil
}

// emit forwards one progress event to the configured sink, if any.
func (r *runner) emit(e events.Event) {
	if s := r.opts.Events; s != nil {
		e.Algorithm = r.opts.Mode.String()
		s.Event(e)
	}
}

// triangleCount returns the triangles discovered so far.
func (r *runner) triangleCount() int64 {
	if r.counts != nil {
		return r.counts.Triangles()
	}
	if r.mx != nil {
		return r.mx.Triangles()
	}
	return 0
}

// run is Algorithm 3's outer loop.
func (r *runner) run() (*Result, error) {
	start := time.Now()
	res := &Result{}
	var lo uint32
	for lo < r.st.NumPages {
		if err := r.gctx.Err(); err != nil {
			r.fail(err)
			break
		}
		count := r.mIn
		if rem := int(r.st.NumPages - lo); count > rem {
			count = rem
		}
		count = r.st.AlignedRange(lo, count)
		hi := lo + uint32(count)

		itStart := time.Now()
		triBefore := r.triangleCount()
		r.emit(events.Event{Kind: events.IterationStart, Iteration: res.Iterations, N: int64(count)})
		stat, err := r.iteration(res.Iterations, lo, hi)
		stat.Elapsed = time.Since(itStart)
		if len(r.vset) > 0 {
			// Replace the triangulation phase's real (single-CPU) duration
			// with the virtual-schedule makespan; the load phase stays real.
			stat.Elapsed = stat.LoadTime + stat.PhaseVirtual
		}
		if found := r.triangleCount() - triBefore; found > 0 {
			r.emit(events.Event{Kind: events.TrianglesFound, Iteration: res.Iterations, N: found})
		}
		r.emit(events.Event{Kind: events.IterationEnd, Iteration: res.Iterations, N: r.triangleCount() - triBefore, Elapsed: stat.Elapsed})
		if err != nil {
			r.fail(err)
			break
		}
		if r.opts.CollectIterStats {
			res.IterStats = append(res.IterStats, stat)
		}
		res.Iterations++
		lo = hi
	}
	res.Elapsed = time.Since(start)
	if len(r.vset) > 0 {
		res.VirtualElapsed = make(map[int]time.Duration, len(r.vset))
		for i, c := range r.vset {
			res.VirtualElapsed[c] = r.vtotals[i]
		}
		res.Elapsed = r.vtotals[0]
	}
	if r.counts != nil {
		res.Triangles = r.counts.Triangles()
	} else if r.mx != nil {
		res.Triangles = r.mx.Triangles()
	}
	if r.mx != nil {
		res.Metrics = r.mx.Snapshot()
	}
	return res, r.err
}

// iteration performs lines 5–13 of Algorithm 3 for the page range [lo, hi).
func (r *runner) iteration(index int, lo, hi uint32) (IterationStat, error) {
	stat := IterationStat{Index: index, InternalPages: int(hi - lo)}
	loadStart := time.Now()
	r.ctx.beginIteration(lo, hi)
	r.internalChunks = r.internalChunks[:0]

	// V_ex ← ∅ (line 2; per-iteration in practice, reset after delegation).
	// Candidates are deduplicated with a bitset and collected as a slice:
	// far cheaper than a hash set at the rates Algorithm 7 produces them.
	if r.candSeen == nil || r.candSeen.Len() < r.st.NumVertices {
		r.candSeen = bits.NewSet(r.st.NumVertices)
	} else {
		r.candSeen.Clear()
	}
	r.vex = r.vex[:0]
	emit := func(v uint32) {
		if !r.candSeen.Contains(int(v)) {
			r.candSeen.Add(int(v))
			r.vex = append(r.vex, v)
		}
	}

	// --- Load the internal area (lines 6–8). ---
	// Pass 1: chunks retained in the external area from the previous
	// iteration are donated without I/O (the Δin credit enabled by the
	// Algorithm 4 loading order).
	type pendingLoad struct {
		idx   int
		first uint32
		span  int
	}
	var toLoad []pendingLoad
	for p := lo; p < hi; {
		span := r.st.AlignedRange(p, 1)
		if c := r.pool.Take(p); c != nil {
			r.internalChunks = append(r.internalChunks, c)
			for _, rec := range c.Recs {
				r.ctx.addInternal(rec)
				r.model.ExternalCandidates(r.ctx, rec, emit)
			}
			stat.ReusedPages += c.NumPages
			if r.mx != nil {
				r.mx.AddReusedPages(int64(c.NumPages))
			}
		} else {
			r.internalChunks = append(r.internalChunks, nil)
			toLoad = append(toLoad, pendingLoad{idx: len(r.internalChunks) - 1, first: p, span: span})
		}
		p += uint32(span)
	}
	// Pass 2: asynchronous reads, with consecutive chunks coalesced into
	// vectored reads just like the external path (DESIGN.md §9);
	// IdentifyExternalCandidateVertex (Algorithm 7) runs on the callback
	// thread per completed segment.
	if cap(r.loadSpanScratch) < len(toLoad) {
		r.loadSpanScratch = make([]int, 0, len(toLoad))
	}
	loadSpans := r.loadSpanScratch[:0]
	for i := 0; i < len(toLoad); {
		j := i + 1
		pages := toLoad[i].span
		for j < len(toLoad) &&
			toLoad[j].first == toLoad[j-1].first+uint32(toLoad[j-1].span) &&
			pages+toLoad[j].span <= r.maxCoalesce {
			pages += toLoad[j].span
			j++
		}
		grp := toLoad[i:j:j]
		base := len(loadSpans)
		for _, pl := range grp {
			loadSpans = append(loadSpans, pl.span)
		}
		spans := loadSpans[base:len(loadSpans):len(loadSpans)]
		if len(grp) > 1 {
			r.emit(events.Event{Kind: events.CoalescedRead, Iteration: index, N: int64(pages)})
			if r.mx != nil {
				r.mx.AddCoalescedRead(int64(pages))
			}
		}
		r.dev.AsyncReadScatter(grp[0].first, spans, func(seg int, data []byte, err error) {
			pl := grp[seg]
			if err != nil {
				r.fail(fmt.Errorf("core: loading internal pages [%d,+%d): %w", pl.first, pl.span, err))
				return
			}
			c, derr := r.decodeChunk(pl.first, pl.span, data)
			if derr != nil {
				r.fail(derr)
				return
			}
			r.internalChunks[pl.idx] = c
			for _, rec := range c.Recs {
				r.ctx.addInternal(rec)
				r.model.ExternalCandidates(r.ctx, rec, emit)
			}
		})
		i = j
	}
	r.loadSpanScratch = loadSpans
	r.dev.Drain() // line 8: wait for IdentifyExternalCandidateVertex
	stat.LoadTime = time.Since(loadStart)
	if r.err != nil {
		return stat, r.err
	}

	// --- Build the request list L (Algorithm 4 lines 2–7). ---
	reqs := r.buildRequests(r.vex)
	stat.ExternalReqs = len(reqs)

	if r.opts.Mode == Serial {
		r.runSerial(reqs, &stat)
	} else {
		r.runParallel(reqs, &stat)
	}
	if r.err != nil {
		return stat, r.err
	}

	// Lines 12–13: unpin the internal area. Chunks go back to the recycle
	// pool — nothing else references them once the iteration ends — while
	// the external pool retains its pages for the next iteration's Δin
	// credit.
	for i, c := range r.internalChunks {
		buffer.PutChunk(c)
		r.internalChunks[i] = nil
	}
	return stat, nil
}

// buildRequests groups V_ex by chunk into the ascending-page request list
// L. The I/O scheduler's coalescer consumes it ascending (consecutive
// pages merge into vectored reads) and then issues the groups in
// descending page order, preserving Algorithm 4 line 3 — the pages of the
// next iteration's internal area load last, so they stay resident in the
// external pool when the iteration ends. All returned slices alias runner
// scratch recycled across iterations.
func (r *runner) buildRequests(vex []uint32) []extReq {
	// Sort (page, vertex) pairs once; groups then fall out contiguously.
	pairs := r.pairScratch[:0]
	if cap(pairs) < len(vex) {
		pairs = make([]uint64, 0, len(vex))
	}
	for _, v := range vex {
		pairs = append(pairs, uint64(r.st.FirstPageOf(v))<<32|uint64(v))
	}
	slices.Sort(pairs)
	r.pairScratch = pairs

	// Pre-size from len(vex): every candidate lands in exactly one group,
	// so the shared cands backing array never grows mid-build and the
	// per-request sub-slices stay valid.
	if cap(r.candScratch) < len(vex) {
		r.candScratch = make([]uint32, 0, len(vex))
	}
	if cap(r.reqScratch) < len(vex) {
		r.reqScratch = make([]extReq, 0, len(vex))
	}
	cands := r.candScratch[:0]
	reqs := r.reqScratch[:0]
	for i := 0; i < len(pairs); {
		first := uint32(pairs[i] >> 32)
		j := i
		base := len(cands)
		for j < len(pairs) && uint32(pairs[j]>>32) == first {
			cands = append(cands, uint32(pairs[j]))
			j++
		}
		reqs = append(reqs, extReq{
			first: first,
			span:  r.st.AlignedRange(first, 1),
			cands: cands[base:len(cands):len(cands)],
		})
		i = j
	}
	r.candScratch = cands
	r.reqScratch = reqs
	return reqs
}

// runSerial executes the iteration tail in OPT_serial order: internal
// triangulation first (single-threaded), then the external triangulation
// with micro-level overlap only — coalesced reads kept in flight by the
// I/O scheduler while the callback thread intersects.
func (r *runner) runSerial(reqs []extReq, stat *IterationStat) {
	t0 := time.Now()
	for _, c := range r.internalChunks {
		if c == nil {
			continue
		}
		if err := r.gctx.Err(); err != nil {
			r.fail(err)
			break
		}
		for _, rec := range c.Recs {
			r.model.InternalTriangle(r.ctx, rec)
		}
	}
	stat.InternalTime = time.Since(t0)
	if r.mx != nil {
		r.mx.AddSerialWork(stat.InternalTime)
	}

	t1 := time.Now()
	io := r.newIOSched(nil)
	io.start(reqs)
	io.wait()
	stat.ExternalTime = time.Since(t1)
	if r.mx != nil {
		r.mx.AddSerialWork(stat.ExternalTime)
	}
}

// runParallel executes the iteration tail with the macro-level overlap:
// internal and external triangulation proceed concurrently on a morphing
// worker pool (Algorithm 3 lines 9–11, §3.4).
func (r *runner) runParallel(reqs []extReq, stat *IterationStat) {
	var s *sched
	realWorkers := r.opts.Threads
	if len(r.vset) > 0 {
		s = newVirtualSched(!r.opts.DisableMorphing, r.vset)
		realWorkers = 1
	} else {
		s = newSched(!r.opts.DisableMorphing || r.opts.Threads == 1)
	}
	s.run(realWorkers, func() {
		// DelegateExternalTriangle (line 9) precedes InternalTriangle
		// (line 10): start the I/O scheduler — initial read window plus
		// resident chunks — then submit the internal page tasks. The
		// scheduler closes classExternal when the last request retires
		// (immediately, when the list is empty).
		io := r.newIOSched(s)
		io.start(reqs)
		for _, c := range r.internalChunks {
			if c == nil {
				continue
			}
			c := c
			s.submit(classInternal, func() {
				if err := r.gctx.Err(); err != nil {
					r.fail(err)
					return
				}
				for _, rec := range c.Recs {
					r.model.InternalTriangle(r.ctx, rec)
				}
			})
		}
		s.close(classInternal)
	})
	stat.InternalTime = s.classWork(classInternal)
	stat.ExternalTime = s.classWork(classExternal)
	if m := s.morphCount(); m > 0 {
		r.emit(events.Event{Kind: events.Morph, Iteration: stat.Index, N: m})
		if r.mx != nil {
			r.mx.Event(events.Event{Kind: events.Morph, N: m})
		}
	}
	if len(r.vset) > 0 {
		stat.PhaseVirtual = s.maxClock(0)
		for i := range r.vset {
			r.vtotals[i] += stat.LoadTime + s.maxClock(i)
		}
	}
	if r.mx != nil {
		r.mx.AddParallelWork(stat.InternalTime + stat.ExternalTime)
	}
}

// processExternal runs ExternalTriangle (Algorithm 9 lines 4–7) for every
// candidate record in the chunk.
func (r *runner) processExternal(c *buffer.Chunk, req extReq) {
	for _, rec := range c.Recs {
		if !containsSorted(req.cands, rec.ID) {
			continue
		}
		r.model.ExternalTriangle(r.ctx, rec)
	}
}

func containsSorted(a []uint32, x uint32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}

// RunFile is a convenience wrapper that opens the store's own file device
// and runs the framework.
func RunFile(st *storage.Store, opts Options) (*Result, error) {
	return RunFileContext(context.Background(), st, opts)
}

// RunFileContext is RunFile with cancellation.
func RunFileContext(ctx context.Context, st *storage.Store, opts Options) (res *Result, err error) {
	dev, err := st.Device()
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := dev.Close(); err == nil {
			err = cerr
		}
	}()
	return RunContext(ctx, st, dev, opts)
}
