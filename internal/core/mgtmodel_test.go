package core

import (
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/metrics"
)

// TestMGTInstanceMatchesReference validates the §3.5 genericity claim:
// plugging the degenerate MGT model into the framework yields exact
// counts across buffer budgets and both I/O modes.
func TestMGTInstanceMatchesReference(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 47))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	st := buildStore(t, g, 256)
	for _, budget := range []int{2, 6, int(st.NumPages)/4 + 2} {
		for _, sync := range []bool{false, true} {
			res, err := RunFile(st, Options{
				Model: MGTInstance, Mode: Serial,
				MemoryPages: budget, DisableMicroOverlap: sync,
			})
			if err != nil {
				t.Fatalf("budget=%d sync=%v: %v", budget, sync, err)
			}
			if res.Triangles != want {
				t.Fatalf("budget=%d sync=%v: triangles = %d, want %d", budget, sync, res.Triangles, want)
			}
		}
	}
}

// TestMGTInstanceParallel runs the instance through the parallel framework.
func TestMGTInstanceParallel(t *testing.T) {
	g := graph.PaperExample()
	st := buildStore(t, g, 64)
	res, err := RunFile(st, Options{Model: MGTInstance, Mode: Parallel, Threads: 2, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 5 {
		t.Fatalf("triangles = %d, want 5", res.Triangles)
	}
}

// TestMGTInstanceDoesNoInternalWork: the degenerate model must record
// zero intersections during the internal phase — everything flows through
// the external area, as in the original MGT.
func TestMGTInstanceDoesNoInternalWork(t *testing.T) {
	g := graph.Complete(12)
	st := buildStore(t, g, 64)
	mx := metrics.NewCollector()
	res, err := RunFile(st, Options{Model: MGTInstance, Mode: Serial, MemoryPages: 4, Metrics: mx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 220 {
		t.Fatalf("triangles = %d, want 220", res.Triangles)
	}
	// All pair work happens in ExternalTriangle; with a K12 and a tiny
	// buffer, external requests must dominate page reads.
	if mx.AsyncReads() == 0 {
		t.Fatal("MGT instance issued no reads")
	}
}

// TestMGTInstanceIOCheaperThanFullRescan: the neighbor-pruned instance
// must not read more pages per block than the original's full rescan
// bound (1 + blocks)·P(G).
func TestMGTInstanceIOCheaperThanFullRescan(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 5000, 3))
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 128)
	mx := metrics.NewCollector()
	res, err := RunFile(st, Options{Model: MGTInstance, Mode: Serial, MemoryPages: 8, Metrics: mx})
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(res.Iterations+1) * int64(st.NumPages)
	if got := mx.PagesRead() - mx.ReusedPages(); got > bound {
		t.Fatalf("instance read %d pages, exceeding the Eq. 7 bound %d", got, bound)
	}
}
