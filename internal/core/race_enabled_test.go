//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count tests skip under it: instrumentation allocates, and
// sync.Pool deliberately randomises its caching to expose races.
const raceEnabled = true
