package core

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// buildStore materialises g into a store file in a test temp dir.
func buildStore(t testing.TB, g *graph.Graph, pageSize int) *storage.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.optstore")
	st, err := storage.BuildFile(path, g, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runOn(t testing.TB, g *graph.Graph, pageSize int, opts Options) *Result {
	t.Helper()
	st := buildStore(t, g, pageSize)
	res, err := RunFile(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOPTPaperExample(t *testing.T) {
	// The Figure 2 walkthrough: tiny pages force several iterations; both
	// models and both modes must find exactly the 5 triangles of G.
	g := graph.PaperExample()
	for _, model := range []ModelKind{EdgeIterator, VertexIterator} {
		for _, mode := range []Mode{Serial, Parallel} {
			res := runOn(t, g, 64, Options{
				Model: model, Mode: mode, MemoryPages: 4, Threads: 2,
			})
			if res.Triangles != 5 {
				t.Errorf("%v/%v: triangles = %d, want 5", model, mode, res.Triangles)
			}
			if res.Iterations < 1 {
				t.Errorf("%v/%v: iterations = %d", model, mode, res.Iterations)
			}
		}
	}
}

func TestOPTListsExactTriangles(t *testing.T) {
	g := graph.PaperExample()
	out := &CollectingOutput{}
	_ = runOn(t, g, 64, Options{Mode: Serial, MemoryPages: 4, Output: out})
	got := out.Triangles()
	want := []Triangle{
		{0, 1, 2}, // abc
		{2, 3, 5}, // cdf
		{2, 5, 6}, // cfg
		{2, 6, 7}, // cgh
		{3, 4, 5}, // def
	}
	if len(got) != len(want) {
		t.Fatalf("triangles = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triangles = %v, want %v", got, want)
		}
	}
}

// TestOPTMatchesReference is the main correctness gate: every combination
// of model, mode, buffer budget and page size must agree with the in-memory
// reference count on a skewed R-MAT graph.
func TestOPTMatchesReference(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 42))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	if want == 0 {
		t.Fatal("test graph has no triangles")
	}
	for _, pageSize := range []int{128, 512} {
		st := buildStore(t, g, pageSize)
		budgets := []int{2, 4, int(st.NumPages)/10 + 2, int(st.NumPages)/4 + 2, int(st.NumPages) + 4}
		for _, model := range []ModelKind{EdgeIterator, VertexIterator} {
			for _, mode := range []Mode{Serial, Parallel} {
				for _, m := range budgets {
					for _, threads := range []int{1, 2, 4} {
						if mode == Serial && threads > 1 {
							continue
						}
						res, err := RunFile(st, Options{
							Model: model, Mode: mode, Threads: threads, MemoryPages: m,
						})
						if err != nil {
							t.Fatalf("ps=%d %v/%v m=%d t=%d: %v", pageSize, model, mode, m, threads, err)
						}
						if res.Triangles != want {
							t.Fatalf("ps=%d %v/%v m=%d t=%d: triangles = %d, want %d",
								pageSize, model, mode, m, threads, res.Triangles, want)
						}
					}
				}
			}
		}
	}
}

func TestOPTSpecialGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K20", graph.Complete(20), 1140},
		{"C50", graph.Cycle(50), 0},
		{"Star200", graph.Star(200), 0},
	}
	for _, tc := range cases {
		for _, model := range []ModelKind{EdgeIterator, VertexIterator} {
			res := runOn(t, tc.g, 64, Options{Model: model, Mode: Parallel, Threads: 4, MemoryPages: 6})
			if res.Triangles != tc.want {
				t.Errorf("%s/%v: triangles = %d, want %d", tc.name, model, res.Triangles, tc.want)
			}
		}
	}
}

func TestOPTOversizedAdjacencyLists(t *testing.T) {
	// Hub degree far beyond one 64-byte page: record runs must flow through
	// both the internal and the external area intact.
	g := graph.Complete(40) // every list has 39 entries; page 64 holds 12
	want := int64(40 * 39 * 38 / 6)
	for _, model := range []ModelKind{EdgeIterator, VertexIterator} {
		res := runOn(t, g, 64, Options{Model: model, Mode: Parallel, Threads: 2, MemoryPages: 8})
		if res.Triangles != want {
			t.Errorf("%v: triangles = %d, want %d", model, res.Triangles, want)
		}
	}
}

func TestOPTMinimalBuffer(t *testing.T) {
	// The paper's minimum: the internal area must hold at least one
	// adjacency list. MemoryPages 2 -> m_in = m_ex = 1.
	raw, _ := gen.RMAT(gen.DefaultRMAT(256, 2000, 7))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	res := runOn(t, g, 128, Options{Mode: Serial, MemoryPages: 2})
	if res.Triangles != want {
		t.Fatalf("triangles = %d, want %d", res.Triangles, want)
	}
}

func TestOPTEmptyAndEdgeless(t *testing.T) {
	g, err := graph.FromEdges(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := runOn(t, g, 64, Options{Mode: Parallel, MemoryPages: 2})
	if res.Triangles != 0 {
		t.Fatalf("triangles = %d, want 0", res.Triangles)
	}
}

func TestOPTReusedPagesCredit(t *testing.T) {
	// With the default even split and a dense enough graph, the external
	// area of iteration i retains pages of iteration i+1's internal area:
	// the Δin credit must be non-zero (§3.3, negative-overhead mechanism).
	raw, _ := gen.RMAT(gen.DefaultRMAT(1<<10, 20_000, 3))
	g, _ := graph.DegreeOrder(raw)
	mx := metrics.NewCollector()
	st := buildStore(t, g, 256)
	if _, err := RunFile(st, Options{
		Mode: Serial, MemoryPages: int(st.NumPages) / 5, Metrics: mx,
	}); err != nil {
		t.Fatal(err)
	}
	if mx.ReusedPages() == 0 {
		t.Fatal("expected a non-zero Δin page-reuse credit")
	}
	// Reuse must shrink total I/O below one full read per... at most the
	// graph size plus external rereads; just check pages read < async model
	// without reuse would need: pagesRead + reused >= P(G).
	if mx.PagesRead()+mx.ReusedPages() < int64(st.NumPages) {
		t.Fatalf("pages read %d + reused %d < P(G) %d", mx.PagesRead(), mx.ReusedPages(), st.NumPages)
	}
}

func TestOPTIterationStats(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 6000, 5))
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 128)
	res, err := RunFile(st, Options{
		Mode: Parallel, Threads: 2, MemoryPages: int(st.NumPages) / 4,
		CollectIterStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterStats) != res.Iterations {
		t.Fatalf("IterStats = %d entries, iterations = %d", len(res.IterStats), res.Iterations)
	}
	totalPages := 0
	for i, s := range res.IterStats {
		if s.Index != i {
			t.Errorf("stat %d has index %d", i, s.Index)
		}
		totalPages += s.InternalPages
	}
	if totalPages != int(st.NumPages) {
		t.Fatalf("iterations covered %d pages, store has %d", totalPages, st.NumPages)
	}
}

func TestOPTIOErrorPropagates(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 6000, 5))
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 128)
	base, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = base.Close() }()
	for _, every := range []int64{1, 3, 7} {
		faulty := &ssd.FaultyDevice{PageDevice: base, FailEveryN: every}
		_, err = Run(st, faulty, Options{Mode: Parallel, Threads: 2, MemoryPages: 8})
		if !errors.Is(err, ssd.ErrInjected) {
			t.Fatalf("FailEveryN=%d: err = %v, want ErrInjected", every, err)
		}
	}
	// Failure localised to one page mid-store (likely an external read).
	faulty := &ssd.FaultyDevice{PageDevice: base, FailPage: st.NumPages / 2, FailPageSet: true}
	if _, err = Run(st, faulty, Options{Mode: Serial, MemoryPages: 6}); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("FailPage: err = %v, want ErrInjected", err)
	}
}

func TestOPTDisableMicroOverlap(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 6000, 9))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	res := runOn(t, g, 128, Options{
		Mode: Serial, MemoryPages: 8, DisableMicroOverlap: true,
	})
	if res.Triangles != want {
		t.Fatalf("triangles = %d, want %d", res.Triangles, want)
	}
}

func TestOPTDisableMorphing(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 6000, 11))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	for _, threads := range []int{2, 4} {
		res := runOn(t, g, 128, Options{
			Mode: Parallel, Threads: threads, MemoryPages: 8, DisableMorphing: true,
		})
		if res.Triangles != want {
			t.Fatalf("threads=%d: triangles = %d, want %d", threads, res.Triangles, want)
		}
	}
}

func TestOPTUnevenAreaSplit(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 6000, 13))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	st := buildStore(t, g, 128)
	for _, split := range []struct{ in, ex int }{
		{1, 7}, {7, 1}, {3, 5}, {0, 4}, {4, 0},
	} {
		res, err := RunFile(st, Options{
			Mode: Parallel, Threads: 2, MemoryPages: 8,
			InternalPages: split.in, ExternalPages: split.ex,
		})
		if err != nil {
			t.Fatalf("split %+v: %v", split, err)
		}
		if res.Triangles != want {
			t.Fatalf("split %+v: triangles = %d, want %d", split, res.Triangles, want)
		}
	}
}

func TestOPTWithSimulatedLatency(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(256, 3000, 15))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	res := runOn(t, g, 128, Options{
		Mode: Parallel, Threads: 2, MemoryPages: 6,
		Latency: ssd.Latency{PerRead: 200_000, PerPage: 50_000}, // 0.2ms + 0.05ms/page
	})
	if res.Triangles != want {
		t.Fatalf("triangles = %d, want %d", res.Triangles, want)
	}
}

func TestModelKindString(t *testing.T) {
	if EdgeIterator.String() != "EdgeIterator" || VertexIterator.String() != "VertexIterator" {
		t.Fatal("ModelKind.String wrong")
	}
	if ModelKind(99).String() != "UnknownModel" {
		t.Fatal("unknown ModelKind.String wrong")
	}
	if Serial.String() != "OPT_serial" || Parallel.String() != "OPT" {
		t.Fatal("Mode.String wrong")
	}
}
