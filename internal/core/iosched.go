package core

import (
	"fmt"
	"slices"
	"sync"

	"github.com/optlab/opt/internal/buffer"
	"github.com/optlab/opt/internal/events"
)

// extGroup is one coalesced external read: a maximal run of
// consecutive-page requests from the list L merged into a single vectored
// device submission. Segment i of the read covers reqs[i] and spans
// spans[i] pages.
type extGroup struct {
	first      uint32
	pages      int      // total pages = sum(spans)
	spans      []int    // page span per constituent, in segment order
	reqs       []extReq // constituents, ascending page order (aliases L)
	left       int      // constituents not yet retired
	prefetched bool     // issued while another read was already in flight
	data       []byte   // owned read buffer, recycled when left hits 0
}

// residentReq is a request whose chunk was already resident in the external
// pool when the request list was coalesced; it is served without I/O. The
// chunk is pinned from coalesce time until processing finishes.
type residentReq struct {
	c   *buffer.Chunk
	req extReq
}

// ioSched drives the external request list L of one iteration through the
// device (DESIGN.md §9). It replaces the one-read-at-a-time issue chain of
// Algorithm 9 lines 9–13 with a windowed scheduler: requests touching
// consecutive pages are coalesced into vectored reads, up to depth reads
// are kept in flight (bounded read-ahead), and pool-resident chunks are
// processed without touching the device. The Algorithm 4 loading order —
// the next iteration's internal pages last, for the Δin_io credit — is
// preserved at read granularity by issuing groups in descending page order.
type ioSched struct {
	r *runner
	s *sched // nil in Serial mode: processing runs on the callback thread

	mu        sync.Mutex
	queue     []extGroup // issue order (descending page); queue[idx:] unissued
	idx       int
	inflight  int  // coalesced reads submitted but not yet completed
	inPages   int  // pages admitted to the window and not yet fully retired
	remaining int  // constituent requests (incl. residents) not yet retired
	pumping   bool // a goroutine is inside the pump loop
	done      chan struct{}
}

func (r *runner) newIOSched(s *sched) *ioSched {
	return &ioSched{r: r, s: s, done: make(chan struct{})}
}

// start coalesces the request list, issues the initial read window, and
// then processes pool-resident requests — in that order, so the first reads
// are already in flight while resident chunks burn CPU. It returns without
// waiting for completions; wait blocks until every constituent has retired.
func (io *ioSched) start(reqs []extReq) {
	groups, residents := io.r.coalesce(reqs)
	io.mu.Lock()
	io.queue = groups
	io.idx = 0
	io.remaining = len(reqs)
	io.mu.Unlock()
	if len(reqs) == 0 {
		io.finish()
		return
	}
	io.pump()
	for i := range residents {
		io.processResident(residents[i])
	}
}

// wait blocks until the external phase of the iteration is done.
func (io *ioSched) wait() { <-io.done }

// pump issues queued groups while the read-ahead window has room. Only one
// goroutine pumps at a time; concurrent callers hand their wakeup to the
// active pumper, which re-checks the window after every issue.
func (io *ioSched) pump() {
	io.mu.Lock()
	if io.pumping {
		io.mu.Unlock()
		return
	}
	io.pumping = true
	io.mu.Unlock()
	for {
		g := io.admitOne()
		if g == nil {
			return
		}
		io.issueGroup(g)
	}
}

// admitOne pops the next group if the window has room — the first
// outstanding group is always admitted; further groups need a free
// read-ahead slot and page budget — and accounts it as in flight. When
// nothing can be admitted it releases the pumper role and returns nil,
// atomically with the final check so a concurrent budget release cannot be
// lost between the check and the release.
func (io *ioSched) admitOne() *extGroup {
	io.mu.Lock()
	defer io.mu.Unlock()
	if io.idx < len(io.queue) {
		g := &io.queue[io.idx]
		if io.inflight == 0 || (io.inflight < io.r.prefetchDepth && io.inPages+g.pages <= io.r.mEx) {
			io.idx++
			g.prefetched = io.inflight > 0
			io.inflight++
			io.inPages += g.pages
			return g
		}
	}
	io.pumping = false
	return nil
}

// issueGroup submits one coalesced read. Under cancellation the group is
// retired synchronously without touching the device; the pump loop then
// drains the rest of the queue the same way, without recursion.
func (io *ioSched) issueGroup(g *extGroup) {
	r := io.r
	if err := r.gctx.Err(); err != nil {
		r.fail(err)
		io.readDone(g, err)
		for range g.reqs {
			io.retire(g)
		}
		return
	}
	if len(g.reqs) > 1 {
		r.emit(events.Event{Kind: events.CoalescedRead, N: int64(g.pages)})
		if r.mx != nil {
			r.mx.AddCoalescedRead(int64(g.pages))
		}
	}
	if r.opts.DisableMicroOverlap {
		// Ablation: synchronous vectored read, no overlap — completions run
		// inline on the pumper.
		data, err := r.dev.ReadPages(g.first, g.pages)
		io.readDone(g, err)
		io.scatter(g, data, err)
		return
	}
	// Owned read: segment decode runs on scheduler workers after the
	// completion callback returns, so the buffer must outlive the callback.
	// The group keeps it until its last constituent retires.
	r.dev.AsyncReadOwned(g.first, g.pages, func(data []byte, err error) {
		g.data = data
		io.readDone(g, err)
		io.scatter(g, data, err)
	})
}

// scatter fans a synchronously completed group read out to its segments,
// mirroring ssd.AsyncReadScatter's slicing.
func (io *ioSched) scatter(g *extGroup, data []byte, err error) {
	if err != nil {
		for seg := range g.reqs {
			io.handleSeg(g, seg, nil, err)
		}
		return
	}
	pageSize := io.r.dev.PageSize()
	off := 0
	for seg, span := range g.spans {
		end := off + span*pageSize
		io.handleSeg(g, seg, data[off:end:end], nil)
		off = end
	}
}

// readDone retires one in-flight read, accounts the read-ahead outcome, and
// refills the window — before any segment is processed, so the next reads
// overlap this group's decode and intersection work.
func (io *ioSched) readDone(g *extGroup, err error) {
	r := io.r
	io.mu.Lock()
	io.inflight--
	io.mu.Unlock()
	if g.prefetched {
		kind := events.PrefetchHit
		if err != nil {
			kind = events.PrefetchWasted
		}
		r.emit(events.Event{Kind: kind, N: 1})
		if r.mx != nil {
			r.mx.Event(events.Event{Kind: kind, N: 1})
		}
	}
	io.pump()
}

// handleSeg consumes one segment of a completed group read: decode, insert
// into the external pool, run ExternalTriangle over the candidates, retire.
// In Parallel mode the CPU work runs as an external-class task; in Serial
// mode it runs on the caller (the device's callback thread).
func (io *ioSched) handleSeg(g *extGroup, seg int, data []byte, err error) {
	r := io.r
	req := g.reqs[seg]
	if err != nil {
		r.fail(fmt.Errorf("core: loading external pages [%d,+%d): %w", req.first, req.span, err))
		io.retire(g)
		return
	}
	work := func() {
		c, derr := r.decodeChunk(req.first, req.span, data)
		if derr != nil {
			r.fail(derr)
			io.retire(g)
			return
		}
		r.pool.Insert(c) // pinned once
		r.processExternal(c, req)
		r.pool.Unpin(c.FirstPage)
		io.retire(g)
	}
	if io.s != nil {
		io.s.submit(classExternal, work)
	} else {
		work()
	}
}

// processResident serves one request from a chunk pinned in the external
// pool at coalesce time — the Δin-style reuse path that needs no I/O.
func (io *ioSched) processResident(res residentReq) {
	r := io.r
	if r.mx != nil {
		r.mx.AddReusedPages(int64(res.c.NumPages))
	}
	work := func() {
		r.processExternal(res.c, res.req)
		r.pool.Unpin(res.c.FirstPage)
		io.retire(nil)
	}
	if io.s != nil {
		io.s.submit(classExternal, work)
	} else {
		work()
	}
}

// retire marks one constituent done; g is nil for residents. Retiring a
// group's last constituent frees its page budget and tries to refill the
// read-ahead window.
func (io *ioSched) retire(g *extGroup) {
	io.mu.Lock()
	freed := false
	var recycle []byte
	if g != nil {
		g.left--
		if g.left == 0 {
			io.inPages -= g.pages
			freed = true
			recycle, g.data = g.data, nil
		}
	}
	io.remaining--
	finished := io.remaining == 0
	io.mu.Unlock()
	if recycle != nil {
		io.r.dev.Recycle(recycle)
	}
	if finished {
		io.finish()
		return
	}
	if freed {
		io.pump()
	}
}

// finish closes the external phase exactly once per iteration: retire
// reaches zero exactly once, and the empty-list case calls it directly
// from start.
func (io *ioSched) finish() {
	close(io.done)
	if io.s != nil {
		io.s.close(classExternal)
	}
}

// coalesce partitions the ascending request list into groups of
// consecutive-page runs of at most maxCoalesce pages each, splitting out
// requests whose chunks are already pool-resident (pinned here, processed
// without I/O). Groups are returned in descending page order, preserving
// the Algorithm 4 loading order at read granularity. All returned slices
// alias runner scratch reused across iterations.
func (r *runner) coalesce(reqs []extReq) ([]extGroup, []residentReq) {
	groups := r.groupScratch[:0]
	residents := r.residentScratch[:0]
	if cap(r.spanScratch) < len(reqs) {
		r.spanScratch = make([]int, 0, len(reqs))
	}
	spans := r.spanScratch[:0]
	for i := 0; i < len(reqs); {
		if c := r.pool.Lookup(reqs[i].first); c != nil {
			residents = append(residents, residentReq{c: c, req: reqs[i]})
			i++
			continue
		}
		j := i + 1
		pages := reqs[i].span
		for j < len(reqs) &&
			reqs[j].first == reqs[j-1].first+uint32(reqs[j-1].span) &&
			pages+reqs[j].span <= r.maxCoalesce &&
			!r.pool.Contains(reqs[j].first) {
			pages += reqs[j].span
			j++
		}
		base := len(spans)
		for k := i; k < j; k++ {
			spans = append(spans, reqs[k].span)
		}
		groups = append(groups, extGroup{
			first: reqs[i].first,
			pages: pages,
			spans: spans[base:len(spans):len(spans)],
			reqs:  reqs[i:j:j],
			left:  j - i,
		})
		i = j
	}
	r.spanScratch = spans
	slices.Reverse(groups)
	r.groupScratch = groups
	r.residentScratch = residents
	return groups, residents
}
