package core

import (
	"bytes"
	"testing"
)

// FuzzReadNested feeds arbitrary bytes to the nested-representation
// decoder: it must return records or an error, never panic or allocate
// absurdly.
func FuzzReadNested(f *testing.F) {
	var buf bytes.Buffer
	nw := NewNestedWriter(&buf)
	nw.Emit(1, 2, []uint32{3, 4, 5})
	nw.Emit(9, 10, []uint32{11})
	if err := nw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 255, 255, 255, 255}) // huge k
	f.Add(buf.Bytes()[:7])

	f.Fuzz(func(t *testing.T, raw []byte) {
		var n int64
		err := ReadNested(bytes.NewReader(raw), func(u, v uint32, ws []uint32) error {
			n += int64(len(ws))
			return nil
		})
		_ = err
		if n < 0 {
			t.Fatal("negative count")
		}
	})
}
