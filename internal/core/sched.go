package core

import (
	"sync"
	"time"
)

// taskClass distinguishes the two thread roles of §3.2: internal
// triangulation (the main thread's job) and external triangulation (the
// callback thread's job).
type taskClass int

const (
	classInternal taskClass = iota
	classExternal
)

// task is one unit of triangulation work: a chunk's worth of records.
type task struct {
	class taskClass
	run   func()
}

// sched is the per-iteration work scheduler that realises the macro-level
// overlap and thread morphing. Workers have a home class — internal workers
// play the main thread, external workers play the callback thread. A worker
// whose home queue is empty "morphs" into the other type and steals from
// the other queue (§3.4), unless morphing is disabled (the Figure 4
// without-morphing configuration, where an idle thread stays idle).
type sched struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   [2][]task
	closed   [2]bool // no more tasks of this class will arrive
	inflight [2]int  // queued + running tasks per class
	morphing bool

	// Virtual-core mode: tasks execute on the real workers as usual, but
	// their measured durations are list-scheduled onto virtual cores
	// (respecting vMorph as the stealing policy). Several core counts can
	// be scheduled simultaneously from the same task stream, giving
	// internally consistent speed-up curves from a single run. This
	// reproduces the multi-core timing experiments on hosts with fewer
	// physical CPUs than the paper's 6-core machine; see DESIGN.md §3.
	virtual []int
	vMorph  bool
	vclocks [][]int64 // [set][core] nanoseconds

	// busy wall-clock accounting per worker HOME, for the Figure 4
	// thread-time series: without morphing each home only runs its own
	// class and the idle home shows near-zero time; with morphing the two
	// homes balance because idle workers steal the other class's tasks.
	workTime [2]int64 // nanoseconds, guarded by mu

	// morphs counts thread-morph transitions: tasks a worker executed
	// outside its home class (§3.4). Guarded by mu. Virtual mode leaves it
	// 0 — its single real worker must run both classes by construction, so
	// counting those steals would not reflect the morphing policy.
	morphs int64
}

func newSched(morphing bool) *sched {
	s := &sched{morphing: morphing}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// newVirtualSched returns a scheduler that executes tasks serially but
// accounts their durations on each core count in coreSet under the given
// morphing policy. The real execution always morphs (a single real worker
// must run both classes).
func newVirtualSched(policyMorph bool, coreSet []int) *sched {
	if len(coreSet) == 0 {
		coreSet = []int{1}
	}
	s := &sched{morphing: true, virtual: coreSet, vMorph: policyMorph}
	s.vclocks = make([][]int64, len(coreSet))
	for i, c := range coreSet {
		if c < 1 {
			c = 1
		}
		s.vclocks[i] = make([]int64, c)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// vHome reports the home class of virtual core i: even cores play the main
// thread, odd cores the callback thread.
func vHome(i int) taskClass {
	if i%2 == 1 {
		return classExternal
	}
	return classInternal
}

// assignVirtualLocked places a completed task of the given class and
// duration on the least-loaded eligible virtual core of every set. A
// single-core set always accepts both classes (one thread must run
// everything, as in OPT_serial).
func (s *sched) assignVirtualLocked(class taskClass, d int64) {
	for _, clocks := range s.vclocks {
		best := -1
		for i := range clocks {
			if !s.vMorph && len(clocks) > 1 && vHome(i) != class {
				continue
			}
			if best == -1 || clocks[i] < clocks[best] {
				best = i
			}
		}
		if best == -1 {
			best = 0
		}
		clocks[best] += d
	}
}

// submit enqueues one task.
func (s *sched) submit(class taskClass, run func()) {
	s.mu.Lock()
	s.queues[class] = append(s.queues[class], run0(run))
	s.inflight[class]++
	// Broadcast under the mutex: an unlocked notify can fire between a
	// worker's predicate check and its park, and that worker sleeps through
	// the wakeup.
	s.cond.Broadcast()
	s.mu.Unlock()
}

func run0(fn func()) task { return task{run: fn} }

// close marks a class as complete: no further submissions will arrive.
func (s *sched) close(class taskClass) {
	s.mu.Lock()
	s.closed[class] = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// done reports whether a class has finished all its work.
func (s *sched) doneLocked(class taskClass) bool {
	return s.closed[class] && s.inflight[class] == 0
}

// worker runs tasks until both classes are done. home determines which
// queue it prefers.
func (s *sched) worker(home taskClass) {
	other := 1 - home
	for {
		s.mu.Lock()
		var picked taskClass
		var fn func()
		for {
			if len(s.queues[home]) > 0 {
				picked = home
			} else if s.morphing && len(s.queues[other]) > 0 {
				picked = other
				if len(s.virtual) == 0 {
					s.morphs++
				}
			} else if s.doneLocked(home) && (s.morphing && s.doneLocked(other) ||
				!s.morphing) {
				// Home drained. Without morphing the worker retires once its
				// own class is done; with morphing it retires only when all
				// work is done.
				s.mu.Unlock()
				return
			} else {
				s.cond.Wait()
				continue
			}
			q := s.queues[picked]
			fn = q[len(q)-1].run
			s.queues[picked] = q[:len(q)-1]
			break
		}
		s.mu.Unlock()

		start := time.Now()
		fn()
		d := time.Since(start).Nanoseconds()

		s.mu.Lock()
		if len(s.virtual) > 0 {
			s.assignVirtualLocked(picked, d)
		} else {
			s.workTime[home] += d
		}
		s.inflight[picked]--
		if s.doneLocked(picked) {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// run starts the worker pool and blocks until every submitted task in both
// classes has completed. threads is split between the two home classes:
// even indices are internal workers (the main thread and its OpenMP-style
// helpers), odd indices are external workers (the callback thread's side).
// submitFn runs on the caller's goroutine and performs the submissions; it
// may keep submitting while workers run (the macro overlap).
func (s *sched) run(threads int, submitFn func()) {
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		home := classInternal
		if i%2 == 1 {
			home = classExternal
		}
		wg.Add(1)
		go func(h taskClass) {
			defer wg.Done()
			s.worker(h)
		}(home)
	}
	submitFn()
	wg.Wait()
}

// classWork returns the accumulated busy time of the workers whose home is
// the given class. In virtual mode it reports the first core set's maximum
// clock among cores of that home.
func (s *sched) classWork(class taskClass) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.virtual) > 0 {
		var mx int64
		for i, c := range s.vclocks[0] {
			if vHome(i) == class && c > mx {
				mx = c
			}
		}
		return time.Duration(mx)
	}
	return time.Duration(s.workTime[class])
}

// morphCount returns the number of thread-morph transitions recorded so
// far (tasks executed outside their worker's home class).
func (s *sched) morphCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.morphs
}

// maxClock returns the makespan of virtual core set `set`: the modelled
// duration of the overlapped triangulation phase on that many cores.
func (s *sched) maxClock(set int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var mx int64
	for _, c := range s.vclocks[set] {
		if c > mx {
			mx = c
		}
	}
	return time.Duration(mx)
}
