// Package core implements the paper's primary contribution: the OPT
// framework for overlapped and parallel disk-based triangulation
// (Algorithms 3, 4, 5, 7 and 9), with the pluggable iterator models that
// make it generic — EdgeIterator≻ (Algorithms 6, 8, 10) and
// VertexIterator≻ (Algorithms 11, 12, 13) — plus the two-level overlapping
// strategy, thread morphing and multi-core parallelism of §3.2–§3.5.
package core

import (
	"sync"

	"github.com/optlab/opt/internal/bits"
	"github.com/optlab/opt/internal/intersect"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/storage"
)

// ModelKind selects the iterator model plugged into the framework.
type ModelKind int

// Supported iterator models.
const (
	EdgeIterator ModelKind = iota
	VertexIterator
	// MGTInstance plugs Hu et al.'s MGT into the framework as the §3.5
	// degenerate instance: no internal triangulation, every adjacent
	// vertex an external candidate, vertex-iterator pair kernel. Pair it
	// with DisableMicroOverlap for the original's synchronous behaviour.
	MGTInstance
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case EdgeIterator:
		return "EdgeIterator"
	case VertexIterator:
		return "VertexIterator"
	case MGTInstance:
		return "MGTInstance"
	default:
		return "UnknownModel"
	}
}

// Model is the plug-in interface of the OPT framework (§3.2). Implementations
// must be safe for concurrent calls: the framework invokes them from
// multiple worker goroutines.
type Model interface {
	// InternalTriangle identifies the internal triangles contributed by the
	// internal-area record u (InternalTriangleImpl in Algorithm 5).
	InternalTriangle(ctx *Ctx, u storage.VertexRec)
	// ExternalCandidates reports the external candidate vertices derived
	// from the freshly loaded internal record u
	// (ExternalCandidateVertexImpl in Algorithm 7).
	ExternalCandidates(ctx *Ctx, u storage.VertexRec, emit func(v uint32))
	// ExternalTriangle identifies the external triangles contributed by the
	// external-area record v (ExternalTriangleImpl in Algorithm 9).
	ExternalTriangle(ctx *Ctx, v storage.VertexRec)
}

// NewModel returns the Model for kind.
func NewModel(kind ModelKind) Model {
	switch kind {
	case VertexIterator:
		return vertexIteratorModel{}
	case MGTInstance:
		return mgtModel{}
	default:
		return edgeIteratorModel{}
	}
}

// Ctx gives models access to the internal area, the output sink, and the
// cost counters for the current iteration. Because storage order matches
// id order, the internal area is a contiguous vertex range [loVertex,
// hiVertex): residency is one comparison and adjacency lookup one slice
// index. The area is immutable while triangulation runs, so reads need no
// locking.
type Ctx struct {
	store    *storage.Store
	loPage   uint32     // internal range start (inclusive)
	hiPage   uint32     // internal range end (exclusive)
	loVertex uint32     // first vertex whose record starts in the range
	hiVertex uint32     // one past the last such vertex
	adj      [][]uint32 // adj[v-loVertex] = n(v); reused across iterations
	out      Output
	mx       *metrics.Collector
	scratch  sync.Pool
	hubSets  sync.Pool // *bits.Set over the vertex space, for hub kernels
}

func newCtx(store *storage.Store, out Output, mx *metrics.Collector) *Ctx {
	c := &Ctx{store: store, out: out, mx: mx}
	c.scratch.New = func() any { b := make([]uint32, 0, 256); return &b }
	c.hubSets.New = func() any { return bits.NewSet(store.NumVertices) }
	return c
}

// beginIteration resets the internal area for a new page range.
func (c *Ctx) beginIteration(lo, hi uint32) {
	c.loPage, c.hiPage = lo, hi
	c.loVertex = c.store.FirstRecordOf(lo)
	c.hiVertex = c.store.FirstRecordOf(hi)
	n := int(c.hiVertex - c.loVertex)
	if cap(c.adj) < n {
		c.adj = make([][]uint32, n)
	} else {
		c.adj = c.adj[:n]
		for i := range c.adj {
			c.adj[i] = nil
		}
	}
}

// addInternal registers a decoded record in the internal area. It is called
// only from the load phase (single goroutine at a time per framework
// invariant) guarded by the caller.
func (c *Ctx) addInternal(rec storage.VertexRec) {
	c.adj[rec.ID-c.loVertex] = rec.Adj
}

// InInternal reports whether n(v) is resident in the internal area: one
// range comparison, thanks to the id-ordered storage layout.
func (c *Ctx) InInternal(v uint32) bool {
	return v >= c.loVertex && v < c.hiVertex
}

// InternalAdj returns n(v) from the internal area; v must satisfy
// InInternal.
func (c *Ctx) InternalAdj(v uint32) []uint32 {
	return c.adj[v-c.loVertex]
}

// Emit outputs the triangles ⟨u, v, {w…}⟩ in the nested representation.
func (c *Ctx) Emit(u, v uint32, ws []uint32) {
	c.out.Emit(u, v, ws)
	if c.mx != nil {
		c.mx.AddTriangles(int64(len(ws)))
	}
}

// countIntersect records one intersection under the Eq. 3 min cost model.
func (c *Ctx) countIntersect(a, b []uint32) {
	if c.mx != nil {
		c.mx.AddIntersect(intersect.MinCost(a, b))
	}
}

// getScratch borrows a reusable slice for intersection results.
func (c *Ctx) getScratch() *[]uint32 {
	return c.scratch.Get().(*[]uint32)
}

func (c *Ctx) putScratch(b *[]uint32) {
	*b = (*b)[:0]
	c.scratch.Put(b)
}

// hubDegree is the fixed-side adjacency length from which the edge-iterator
// kernels build a dense membership set and switch to the bitset probe of
// intersect.AdaptiveBitmap. The O(len) build amortises over the partner
// loop, which runs at least len iterations for a list this long.
const hubDegree = 256

// getHubSet borrows a cleared dense membership set over the vertex space.
// Callers fill it from a hub adjacency list and must return it through
// putHubSet with the same list so the clear stays sparse (O(|list|), not
// O(|V|)).
func (c *Ctx) getHubSet(list []uint32) *bits.Set {
	s := c.hubSets.Get().(*bits.Set)
	for _, x := range list {
		s.Add(int(x))
	}
	return s
}

func (c *Ctx) putHubSet(s *bits.Set, list []uint32) {
	for _, x := range list {
		s.Remove(int(x))
	}
	c.hubSets.Put(s)
}

// nsucc returns n≻(v): the suffix of adj with ids greater than v.
func nsucc(adj []uint32, v uint32) []uint32 {
	return adj[intersect.UpperBound(adj, v):]
}

// npred returns n≺(v): the prefix of adj with ids less than v.
func npred(adj []uint32, v uint32) []uint32 {
	return adj[:intersect.LowerBound(adj, v)]
}

// edgeIteratorModel is the EdgeIterator≻ instance of OPT (§3.2).
type edgeIteratorModel struct{}

// InternalTriangle is Algorithm 6: for every edge (u, v) with both
// adjacency lists internal, output n≻(u) ∩ n≻(v).
func (edgeIteratorModel) InternalTriangle(ctx *Ctx, u storage.VertexRec) {
	nsU := nsucc(u.Adj, u.ID)
	if len(nsU) == 0 {
		return
	}
	buf := ctx.getScratch()
	defer ctx.putScratch(buf)
	// u is the fixed side of every intersection in the loop; for hubs a
	// dense membership set turns each one into an O(|n≻(v)|) probe.
	var set *bits.Set
	if len(nsU) >= hubDegree {
		set = ctx.getHubSet(nsU)
		defer ctx.putHubSet(set, nsU)
	}
	for _, v := range nsU {
		if !ctx.InInternal(v) {
			continue
		}
		nsV := nsucc(ctx.InternalAdj(v), v)
		ctx.countIntersect(nsU, nsV)
		ws := intersect.AdaptiveBitmap((*buf)[:0], nsV, nsU, set)
		if len(ws) > 0 {
			ctx.Emit(u.ID, v, ws)
		}
		*buf = ws[:0] // retain growth so the steady state stays allocation-free
	}
}

// ExternalCandidates is Algorithm 8: v ∈ n≻(u) with n(v) outside the
// internal area must be fetched to the external area.
func (edgeIteratorModel) ExternalCandidates(ctx *Ctx, u storage.VertexRec, emit func(v uint32)) {
	for _, v := range nsucc(u.Adj, u.ID) {
		if !ctx.InInternal(v) {
			emit(v)
		}
	}
}

// ExternalTriangle is Algorithms 9 (lines 4–7) and 10: for the external
// record v, every u ∈ n≺(v) with n(u) internal forms V_req^v; intersect
// n≻(u) ∩ n≻(v) for each.
func (edgeIteratorModel) ExternalTriangle(ctx *Ctx, v storage.VertexRec) {
	nsV := nsucc(v.Adj, v.ID)
	buf := ctx.getScratch()
	defer ctx.putScratch(buf)
	// v is the fixed side here (Algorithm 10 intersects n≻(v) against every
	// internal partner u ∈ V_req^v), so hub handling mirrors Algorithm 6.
	var set *bits.Set
	if len(nsV) >= hubDegree {
		set = ctx.getHubSet(nsV)
		defer ctx.putHubSet(set, nsV)
	}
	for _, u := range npred(v.Adj, v.ID) {
		if !ctx.InInternal(u) {
			continue
		}
		nsU := nsucc(ctx.InternalAdj(u), u)
		ctx.countIntersect(nsU, nsV)
		ws := intersect.AdaptiveBitmap((*buf)[:0], nsU, nsV, set)
		if len(ws) > 0 {
			ctx.Emit(u, v.ID, ws)
		}
		*buf = ws[:0] // retain growth so the steady state stays allocation-free
	}
}

// vertexIteratorModel is the VertexIterator≻ instance of OPT (§3.5).
type vertexIteratorModel struct{}

// InternalTriangle is Algorithm 11: for the internal record u, check every
// ordered pair (v, w) ∈ n≻(u) × n≻(u) with n(v) internal against E_in.
func (vertexIteratorModel) InternalTriangle(ctx *Ctx, u storage.VertexRec) {
	vertexIteratorPairs(ctx, u)
}

// ExternalCandidates is Algorithm 12 (with the §3.5 filter): every
// u ∈ n≺(v) whose list is not internal is a candidate — its pairs can only
// be checked while v's list is resident.
func (vertexIteratorModel) ExternalCandidates(ctx *Ctx, v storage.VertexRec, emit func(u uint32)) {
	for _, u := range npred(v.Adj, v.ID) {
		if !ctx.InInternal(u) {
			emit(u)
		}
	}
}

// ExternalTriangle is Algorithm 13 (corrected per the §3.5 prose): for the
// external record u, check pairs (v, w) ∈ n≻(u) × n≻(u), id(v) ≺ id(w),
// with n(v) internal, against E_in.
func (vertexIteratorModel) ExternalTriangle(ctx *Ctx, u storage.VertexRec) {
	vertexIteratorPairs(ctx, u)
}

// vertexIteratorPairs performs the shared pair-checking kernel of
// Algorithms 11 and 13. A triangle Δuvw is reported exactly once over the
// whole run: in the single iteration whose internal area holds n(v).
func vertexIteratorPairs(ctx *Ctx, u storage.VertexRec) {
	ns := nsucc(u.Adj, u.ID)
	if len(ns) < 2 {
		return
	}
	buf := ctx.getScratch()
	defer ctx.putScratch(buf)
	for i, v := range ns[:len(ns)-1] {
		if !ctx.InInternal(v) {
			continue
		}
		adjV := ctx.InternalAdj(v)
		rest := ns[i+1:]
		if ctx.mx != nil {
			ctx.mx.AddIntersect(int64(len(rest)))
		}
		ws := (*buf)[:0]
		for _, w := range rest {
			if intersect.Contains(adjV, w) {
				ws = append(ws, w)
			}
		}
		if len(ws) > 0 {
			ctx.Emit(u.ID, v, ws)
		}
		*buf = ws[:0]
	}
}
