package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Output receives discovered triangles in the paper's nested representation:
// all triangles sharing the prefix (u, v) arrive as one ⟨u, v, {w₁…w_k}⟩
// record (§3.2, "Generating results"). Implementations must be safe for
// concurrent use.
type Output interface {
	Emit(u, v uint32, ws []uint32)
}

// CountingOutput counts triangles and discards them — the GraphChi-Tri
// comparison mode and the default for elapsed-time experiments (§5.2 notes
// the paper reports times excluding output writing).
type CountingOutput struct {
	n atomic.Int64
}

// Emit implements Output.
func (o *CountingOutput) Emit(_, _ uint32, ws []uint32) { o.n.Add(int64(len(ws))) }

// Triangles returns the number of triangles emitted.
func (o *CountingOutput) Triangles() int64 { return o.n.Load() }

// Triangle is one fully expanded triangle with id(U) < id(V) < id(W).
type Triangle struct {
	U, V, W uint32
}

// CollectingOutput accumulates expanded triangles for tests and the
// examples. Not intended for billion-triangle runs.
type CollectingOutput struct {
	mu  sync.Mutex
	tri []Triangle
}

// Emit implements Output.
func (o *CollectingOutput) Emit(u, v uint32, ws []uint32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, w := range ws {
		o.tri = append(o.tri, Triangle{U: u, V: v, W: w})
	}
}

// Triangles returns the collected triangles sorted lexicographically.
func (o *CollectingOutput) Triangles() []Triangle {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := append([]Triangle(nil), o.tri...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].W < out[j].W
	})
	return out
}

// FuncOutput adapts a function to Output. The function must be safe for
// concurrent use.
type FuncOutput func(u, v uint32, ws []uint32)

// Emit implements Output.
func (f FuncOutput) Emit(u, v uint32, ws []uint32) { f(u, v, ws) }

// NestedWriter streams nested-representation records to an io.Writer in a
// compact binary form: u, v, k, w₁…w_k as little-endian uint32. Each
// emitting goroutine accumulates into a private buffer that is flushed in
// bulk, reproducing the paper's buffered bulk-write scheme; the Table 3
// experiment writes through this sink to a second device.
type NestedWriter struct {
	mu      sync.Mutex
	w       *bufio.Writer
	err     error
	n       atomic.Int64
	bufPool sync.Pool
	bufs    struct {
		sync.Mutex
		all []*[]byte // every buffer ever created, for Close-time flushing
	}
	bytes atomic.Int64
}

// flushThreshold is the per-goroutine buffer size that triggers a bulk
// write to the underlying writer.
const flushThreshold = 1 << 16

// NewNestedWriter returns a NestedWriter over w.
func NewNestedWriter(w io.Writer) *NestedWriter {
	nw := &NestedWriter{w: bufio.NewWriterSize(w, 1<<20)}
	nw.bufPool.New = func() any {
		b := make([]byte, 0, flushThreshold+4096)
		bp := &b
		nw.bufs.Lock()
		nw.bufs.all = append(nw.bufs.all, bp)
		nw.bufs.Unlock()
		return bp
	}
	return nw
}

// Emit implements Output.
func (nw *NestedWriter) Emit(u, v uint32, ws []uint32) {
	bp := nw.bufPool.Get().(*[]byte)
	b := *bp
	var tmp [12]byte
	binary.LittleEndian.PutUint32(tmp[0:], u)
	binary.LittleEndian.PutUint32(tmp[4:], v)
	binary.LittleEndian.PutUint32(tmp[8:], uint32(len(ws)))
	b = append(b, tmp[:]...)
	for _, w := range ws {
		var wb [4]byte
		binary.LittleEndian.PutUint32(wb[:], w)
		b = append(b, wb[:]...)
	}
	nw.n.Add(int64(len(ws)))
	if len(b) >= flushThreshold {
		nw.flush(b)
		b = b[:0]
	}
	*bp = b
	nw.bufPool.Put(bp)
}

func (nw *NestedWriter) flush(b []byte) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.err != nil {
		return
	}
	n, err := nw.w.Write(b)
	nw.bytes.Add(int64(n))
	if err != nil {
		nw.err = err
	}
}

// Close flushes all buffers and returns the first write error, if any.
// Emitters must have stopped before Close is called.
func (nw *NestedWriter) Close() error {
	nw.bufs.Lock()
	all := nw.bufs.all
	nw.bufs.Unlock()
	for _, bp := range all {
		if len(*bp) > 0 {
			nw.flush(*bp)
			*bp = (*bp)[:0]
		}
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if err := nw.w.Flush(); err != nil && nw.err == nil {
		nw.err = err
	}
	return nw.err
}

// Triangles returns the number of triangles written.
func (nw *NestedWriter) Triangles() int64 { return nw.n.Load() }

// BytesWritten returns the number of payload bytes handed to the underlying
// writer so far (excluding data still in buffers).
func (nw *NestedWriter) BytesWritten() int64 { return nw.bytes.Load() }

// ReadNested decodes every record of a nested-representation stream,
// calling fn per record. It is the inverse of NestedWriter for tools and
// tests.
func ReadNested(r io.Reader, fn func(u, v uint32, ws []uint32) error) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		u := binary.LittleEndian.Uint32(hdr[0:])
		v := binary.LittleEndian.Uint32(hdr[4:])
		k := binary.LittleEndian.Uint32(hdr[8:])
		// Grow incrementally so a corrupt count cannot demand a huge
		// allocation before the stream runs dry.
		capHint := k
		if capHint > 4096 {
			capHint = 4096
		}
		ws := make([]uint32, 0, capHint)
		for i := uint32(0); i < k; i++ {
			var wb [4]byte
			if _, err := io.ReadFull(br, wb[:]); err != nil {
				return fmt.Errorf("core: nested record (%d, %d) truncated at %d of %d: %w", u, v, i, k, err)
			}
			ws = append(ws, binary.LittleEndian.Uint32(wb[:]))
		}
		if err := fn(u, v, ws); err != nil {
			return err
		}
	}
}
