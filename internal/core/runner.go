package core

import (
	"context"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// engineRunner adapts the OPT framework to the engine.Runner contract. One
// instance per Mode is registered at init, so both OPT variants flow
// through the same dispatch path as every baseline.
type engineRunner struct {
	mode Mode
}

func init() {
	engine.Register(engine.Info{
		Name:           Parallel.String(),
		ListsTriangles: true,
		Models:         true,
		Parallel:       true,
	}, engineRunner{mode: Parallel})
	engine.Register(engine.Info{
		Name:           Serial.String(),
		ListsTriangles: true,
		Models:         true,
	}, engineRunner{mode: Serial})
}

// modelKind maps the engine-level model selector onto the framework's.
func modelKind(m engine.Model) ModelKind {
	switch m {
	case engine.ModelVertex:
		return VertexIterator
	case engine.ModelMGTInstance:
		return MGTInstance
	default:
		return EdgeIterator
	}
}

// Run implements engine.Runner.
func (e engineRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts engine.Options) (*engine.Result, error) {
	mx := metrics.NewCollector()
	var out Output
	if opts.OnTriangles != nil {
		out = FuncOutput(opts.OnTriangles)
	}
	res, err := RunContext(ctx, st, dev, Options{
		Model:            modelKind(opts.Model),
		Mode:             e.mode,
		Threads:          opts.Threads,
		MemoryPages:      opts.MemoryPages,
		QueueDepth:       opts.QueueDepth,
		MaxCoalescePages: opts.MaxCoalescePages,
		PrefetchDepth:    opts.PrefetchDepth,
		Latency:          opts.Latency,
		DisableMorphing:  opts.DisableMorphing,
		Output:           out,
		Metrics:          mx,
		CollectIterStats: opts.CollectIterStats,
		Events:           opts.Events,
	})
	if res == nil {
		return nil, err
	}
	snap := mx.Snapshot()
	return &engine.Result{
		Triangles:    snap.Triangles,
		Iterations:   res.Iterations,
		Elapsed:      res.Elapsed,
		PagesRead:    snap.PagesRead,
		PagesWritten: snap.PagesWritten,
		ReusedPages:  snap.ReusedPages,
		IntersectOps: snap.IntersectOps,
		IterStats:    res.IterStats,
	}, err
}
