package core

import (
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
)

// TestVirtualCoresCorrectness: virtual scheduling must not change counts.
func TestVirtualCoresCorrectness(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 6000, 19))
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	st := buildStore(t, g, 128)
	for _, cores := range []int{1, 2, 6} {
		res, err := RunFile(st, Options{
			Mode: Parallel, VirtualCores: cores, MemoryPages: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Triangles != want {
			t.Fatalf("cores=%d: triangles = %d, want %d", cores, res.Triangles, want)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("cores=%d: modelled elapsed = %v", cores, res.Elapsed)
		}
	}
}

// TestVirtualCoreSetMonotone: from one run, the modelled elapsed must be
// non-increasing in the core count and the speed-up bounded by it.
func TestVirtualCoreSetMonotone(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(1024, 14_000, 23))
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 256)
	set := []int{1, 2, 3, 4, 5, 6}
	res, err := RunFile(st, Options{
		Mode: Parallel, VirtualCoreSet: set,
		MemoryPages: int(st.NumPages) * 15 / 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VirtualElapsed) != len(set) {
		t.Fatalf("VirtualElapsed has %d entries, want %d", len(res.VirtualElapsed), len(set))
	}
	if res.Elapsed != res.VirtualElapsed[1] {
		t.Fatalf("Elapsed %v != VirtualElapsed[1] %v", res.Elapsed, res.VirtualElapsed[1])
	}
	base := res.VirtualElapsed[1]
	prev := base
	for _, c := range set[1:] {
		cur := res.VirtualElapsed[c]
		if cur > prev {
			t.Fatalf("elapsed increased at %d cores: %v > %v", c, cur, prev)
		}
		speedup := float64(base) / float64(cur)
		if speedup > float64(c)+1e-9 {
			t.Fatalf("speed-up %v at %d cores exceeds core count", speedup, c)
		}
		prev = cur
	}
	// At 6 cores a decently parallel workload should beat 1 core clearly.
	if res.VirtualElapsed[6] >= base {
		t.Fatal("no modelled speed-up at 6 cores")
	}
}

// TestVirtualMorphingPolicy: without morphing, the virtual schedule cannot
// balance a workload that is almost entirely external, so its makespan at
// 2 cores stays near the 1-core one; with morphing it should drop.
func TestVirtualMorphingPolicy(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(1024, 14_000, 29))
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 256)
	mem := int(st.NumPages) * 15 / 100

	run := func(disable bool) *Result {
		res, err := RunFile(st, Options{
			Mode: Parallel, VirtualCores: 2, MemoryPages: mem,
			DisableMorphing: disable, CollectIterStats: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withMorph := run(false)
	noMorph := run(true)
	if withMorph.Triangles != noMorph.Triangles {
		t.Fatal("counts disagree")
	}
	// Morphing can only help the makespan (same tasks, strictly larger
	// eligibility sets). Allow measurement jitter between the two runs.
	if float64(withMorph.Elapsed) > 1.35*float64(noMorph.Elapsed) {
		t.Fatalf("morphing hurt: %v vs %v", withMorph.Elapsed, noMorph.Elapsed)
	}
}

// TestVirtualSchedUnit exercises the scheduler's virtual accounting with
// deterministic synthetic durations fed straight into the assignment
// logic (no wall-clock measurement, so no flakiness).
func TestVirtualSchedUnit(t *testing.T) {
	s := newVirtualSched(true, []int{1, 2, 4})
	for i := 0; i < 8; i++ {
		s.mu.Lock()
		s.assignVirtualLocked(classExternal, 1_000_000) // 1ms each
		s.mu.Unlock()
	}
	one, two, four := s.maxClock(0), s.maxClock(1), s.maxClock(2)
	if one != 8_000_000 {
		t.Fatalf("1-core makespan = %v, want 8ms", one)
	}
	if two != 4_000_000 {
		t.Fatalf("2-core makespan = %v, want 4ms", two)
	}
	if four != 2_000_000 {
		t.Fatalf("4-core makespan = %v, want 2ms", four)
	}
}

// TestVirtualSchedPolicyUnit: without morphing, external tasks land only
// on external-home virtual cores (odd indices).
func TestVirtualSchedPolicyUnit(t *testing.T) {
	s := newVirtualSched(false, []int{4})
	for i := 0; i < 6; i++ {
		s.mu.Lock()
		s.assignVirtualLocked(classExternal, 1_000_000)
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Cores 0 and 2 (internal home) must be empty; 1 and 3 carry 3ms each.
	clocks := s.vclocks[0]
	if clocks[0] != 0 || clocks[2] != 0 {
		t.Fatalf("internal-home cores got external work: %v", clocks)
	}
	if clocks[1] != 3_000_000 || clocks[3] != 3_000_000 {
		t.Fatalf("external-home cores unbalanced: %v", clocks)
	}
}

// TestVirtualSchedSingleCoreAcceptsBoth: a 1-core set takes both classes
// even without morphing (one thread must run everything).
func TestVirtualSchedSingleCoreAcceptsBoth(t *testing.T) {
	s := newVirtualSched(false, []int{1})
	s.mu.Lock()
	s.assignVirtualLocked(classInternal, 1_000_000)
	s.assignVirtualLocked(classExternal, 2_000_000)
	s.mu.Unlock()
	if got := s.maxClock(0); got != 3_000_000 {
		t.Fatalf("1-core makespan = %v, want 3ms", got)
	}
}
