package core

import "github.com/optlab/opt/internal/storage"

// mgtModel instantiates MGT inside the OPT framework, demonstrating the
// §3.5 genericity claim: (1) the internal triangulation does nothing,
// (2) every vertex adjacent to the internal area becomes an external
// candidate — without the "not internal" filter, so the block's own
// records flow through the external area exactly like the full rescan of
// the original MGT — and (3) the vertex-iterator pair kernel identifies
// all triangles. Combine it with Options.DisableMicroOverlap to reproduce
// MGT's synchronous I/O behaviour (§3.5 point 4); with asynchronous I/O
// left on, the instance is strictly better than the original, as the
// paper's Eq. 7 comparison anticipates.
//
// One refinement over the original MGT: instead of rescanning every page
// of the graph per block, the instance requests only the adjacency lists
// that can actually pair with the block (the neighbors of block vertices),
// which prunes the scan without changing the result.
type mgtModel struct{}

// InternalTriangle does nothing: MGT has no internal triangulation.
func (mgtModel) InternalTriangle(*Ctx, storage.VertexRec) {}

// ExternalCandidates emits every neighbor of the loaded record — lower and
// higher ids alike, internal or not.
func (mgtModel) ExternalCandidates(ctx *Ctx, v storage.VertexRec, emit func(u uint32)) {
	for _, u := range v.Adj {
		emit(u)
	}
	emit(v.ID) // the record itself pairs with other internal lists
}

// ExternalTriangle applies the vertex-iterator pair kernel: triangles
// Δuvw with n(v) in the current block are found from the external record
// u's ordered pairs.
func (mgtModel) ExternalTriangle(ctx *Ctx, u storage.VertexRec) {
	vertexIteratorPairs(ctx, u)
}
