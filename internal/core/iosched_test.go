package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/optlab/opt/internal/buffer"
	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
)

// newTestRunner builds a runner over st's own file device. The caller must
// invoke the returned cleanup.
func newTestRunner(t *testing.T, g *graph.Graph, pageSize int, opts Options) (*runner, func()) {
	t.Helper()
	st := buildStore(t, g, pageSize)
	dev, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(context.Background(), st, dev, opts)
	return r, func() {
		r.close()
		_ = dev.Close()
	}
}

// allVertices returns every vertex id of the store's graph, the V_ex of a
// hypothetical iteration with an empty internal area.
func allVertices(n int) []uint32 {
	vex := make([]uint32, n)
	for i := range vex {
		vex[i] = uint32(i)
	}
	return vex
}

// TestCoalesceGrouping drives buildRequests + coalesce directly and checks
// the structural invariants of the grouping: groups cover the request list
// exactly once, constituents within a group touch consecutive pages,
// no group exceeds the page cap, and groups come out in descending page
// order (the Algorithm 4 loading order at read granularity).
func TestCoalesceGrouping(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 5))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	const maxCoalesce = 4
	r, cleanup := newTestRunner(t, g, 128, Options{Mode: Serial, MemoryPages: 64, MaxCoalescePages: maxCoalesce})
	defer cleanup()

	reqs := r.buildRequests(allVertices(r.st.NumVertices))
	if len(reqs) == 0 {
		t.Fatal("empty request list")
	}
	groups, residents := r.coalesce(reqs)
	if len(residents) != 0 {
		t.Fatalf("residents = %d on a cold pool", len(residents))
	}

	total := 0
	multi := 0
	for gi, grp := range groups {
		if len(grp.reqs) != len(grp.spans) || grp.left != len(grp.reqs) {
			t.Fatalf("group %d: reqs=%d spans=%d left=%d", gi, len(grp.reqs), len(grp.spans), grp.left)
		}
		if grp.first != grp.reqs[0].first {
			t.Fatalf("group %d: first=%d, reqs[0].first=%d", gi, grp.first, grp.reqs[0].first)
		}
		pages := 0
		next := grp.first
		for si, req := range grp.reqs {
			if req.first != next {
				t.Fatalf("group %d seg %d: first=%d, want consecutive %d", gi, si, req.first, next)
			}
			if grp.spans[si] != req.span {
				t.Fatalf("group %d seg %d: span=%d, req.span=%d", gi, si, grp.spans[si], req.span)
			}
			next += uint32(req.span)
			pages += req.span
		}
		if pages != grp.pages {
			t.Fatalf("group %d: pages=%d, sum of spans=%d", gi, grp.pages, pages)
		}
		if len(grp.reqs) > 1 && pages > maxCoalesce {
			t.Fatalf("group %d: %d pages exceeds cap %d", gi, pages, maxCoalesce)
		}
		if gi > 0 && grp.first >= groups[gi-1].first {
			t.Fatalf("group %d: first=%d not descending after %d", gi, grp.first, groups[gi-1].first)
		}
		if len(grp.reqs) > 1 {
			multi++
		}
		total += len(grp.reqs)
	}
	if total != len(reqs) {
		t.Fatalf("groups cover %d requests, list has %d", total, len(reqs))
	}
	if multi == 0 {
		t.Fatal("no multi-request group formed on a dense request list")
	}
	// Flattening the descending groups and reversing must reproduce L.
	flat := make([]extReq, 0, total)
	for i := len(groups) - 1; i >= 0; i-- {
		flat = append(flat, groups[i].reqs...)
	}
	for i := range reqs {
		if flat[i].first != reqs[i].first {
			t.Fatalf("flattened groups diverge from L at %d: %d vs %d", i, flat[i].first, reqs[i].first)
		}
	}
}

// TestCoalesceSplitsAtResident checks that a pool-resident chunk is served
// without I/O and breaks the consecutive run it interrupts.
func TestCoalesceSplitsAtResident(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 5))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	r, cleanup := newTestRunner(t, g, 128, Options{Mode: Serial, MemoryPages: 64})
	defer cleanup()

	reqs := r.buildRequests(allVertices(r.st.NumVertices))
	if len(reqs) < 3 {
		t.Fatalf("need at least 3 requests, got %d", len(reqs))
	}
	mid := reqs[len(reqs)/2]
	r.pool.Insert(&buffer.Chunk{FirstPage: mid.first, NumPages: mid.span})
	groups, residents := r.coalesce(reqs)
	if len(residents) != 1 || residents[0].req.first != mid.first {
		t.Fatalf("residents = %+v, want exactly chunk %d", residents, mid.first)
	}
	if got := r.pool.PinCount(mid.first); got != 2 {
		t.Fatalf("resident pin count = %d, want 2 (insert + coalesce)", got)
	}
	total := 0
	for _, grp := range groups {
		for _, req := range grp.reqs {
			if req.first == mid.first {
				t.Fatalf("resident request %d also grouped for I/O", mid.first)
			}
			total++
		}
	}
	if total != len(reqs)-1 {
		t.Fatalf("groups cover %d requests, want %d", total, len(reqs)-1)
	}
}

// TestOPTCoalescingReducesReads is the headline acceptance check: on the
// default workload, coalescing plus read-ahead must cut the number of device
// read submissions by at least 3x against the uncoalesced scheduler, at
// identical triangle counts.
func TestOPTCoalescingReducesReads(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 42))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 128)
	budget := int(st.NumPages)/4 + 2

	run := func(opts Options) (*Result, *metrics.Collector) {
		mx := metrics.NewCollector()
		opts.Metrics = mx
		res, err := RunFile(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, mx
	}
	baseRes, baseMx := run(Options{Mode: Serial, MemoryPages: budget, MaxCoalescePages: 1, PrefetchDepth: 1})
	coalRes, coalMx := run(Options{Mode: Serial, MemoryPages: budget})

	if baseRes.Triangles != coalRes.Triangles {
		t.Fatalf("triangles diverge: baseline %d, coalesced %d", baseRes.Triangles, coalRes.Triangles)
	}
	if baseMx.CoalescedReads() != 0 {
		t.Fatalf("baseline coalesced %d reads with MaxCoalescePages=1", baseMx.CoalescedReads())
	}
	if coalMx.CoalescedReads() == 0 {
		t.Fatal("coalesced run recorded no coalesced reads")
	}
	if coalMx.CoalescedPages() <= coalMx.CoalescedReads() {
		t.Fatalf("coalesced pages %d should exceed coalesced reads %d", coalMx.CoalescedPages(), coalMx.CoalescedReads())
	}
	if base, coal := baseMx.AsyncReads(), coalMx.AsyncReads(); coal*3 > base {
		t.Fatalf("read submissions: baseline %d, coalesced %d — want >= 3x reduction", base, coal)
	}
	if base, coal := baseMx.PagesRead(), coalMx.PagesRead(); coal > base {
		t.Fatalf("coalescing increased pages read: %d > %d", coal, base)
	}
}

// TestOPTPrefetchAccounting checks that read-ahead actually happens (hits
// recorded) under the default PrefetchDepth and never happens when the
// window is one read deep.
func TestOPTPrefetchAccounting(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 42))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 128)
	budget := int(st.NumPages)/4 + 2

	mx := metrics.NewCollector()
	if _, err := RunFile(st, Options{Mode: Serial, MemoryPages: budget, MaxCoalescePages: 4, Metrics: mx}); err != nil {
		t.Fatal(err)
	}
	if mx.PrefetchHits() == 0 {
		t.Fatal("default read-ahead recorded no prefetch hits")
	}
	if mx.PrefetchWasted() != 0 {
		t.Fatalf("error-free run wasted %d prefetches", mx.PrefetchWasted())
	}

	mx = metrics.NewCollector()
	if _, err := RunFile(st, Options{Mode: Serial, MemoryPages: budget, PrefetchDepth: 1, Metrics: mx}); err != nil {
		t.Fatal(err)
	}
	if mx.PrefetchHits() != 0 || mx.PrefetchWasted() != 0 {
		t.Fatalf("PrefetchDepth=1 still prefetched: hits=%d wasted=%d", mx.PrefetchHits(), mx.PrefetchWasted())
	}
}

// TestOPTCoalescedReadFailure injects device faults into runs where
// coalescing is active. The error must surface, and the run must terminate
// cleanly — a double retirement of any constituent would close the
// scheduler's done channel twice and panic.
func TestOPTCoalescedReadFailure(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 5))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(t, g, 128)
	base, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = base.Close() }()

	for _, mode := range []Mode{Serial, Parallel} {
		for _, every := range []int64{1, 4, 9} {
			faulty := &ssd.FaultyDevice{PageDevice: base, FailEveryN: every}
			_, err := Run(st, faulty, Options{Mode: mode, Threads: 2, MemoryPages: 16})
			if !errors.Is(err, ssd.ErrInjected) {
				t.Fatalf("%v FailEveryN=%d: err = %v, want ErrInjected", mode, every, err)
			}
		}
	}
}

// TestOPTSchedulerKnobMatrix sweeps the I/O-scheduler knobs (including the
// synchronous ablation) and demands the reference triangle count from every
// combination.
func TestOPTSchedulerKnobMatrix(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 9))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	st := buildStore(t, g, 128)
	for _, mode := range []Mode{Serial, Parallel} {
		for _, coalesce := range []int{0, 1, 3} {
			for _, depth := range []int{0, 1, 2} {
				for _, sync := range []bool{false, true} {
					res, err := RunFile(st, Options{
						Mode: mode, Threads: 2, MemoryPages: 16,
						MaxCoalescePages: coalesce, PrefetchDepth: depth,
						DisableMicroOverlap: sync,
					})
					name := fmt.Sprintf("%v coalesce=%d depth=%d sync=%v", mode, coalesce, depth, sync)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if res.Triangles != want {
						t.Fatalf("%s: triangles = %d, want %d", name, res.Triangles, want)
					}
				}
			}
		}
	}
}

// TestExternalSteadyStateAllocs pins the zero-allocation guarantee of the
// external hot path: with scratch buffers and hub sets warmed up,
// ExternalTriangle (and its internal sibling) must not allocate.
func TestExternalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and randomises sync.Pool caching")
	}
	g := graph.Complete(600) // every adjacency list is a hub (599 >= hubDegree)
	st := buildStore(t, g, 512)
	dev, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	data, err := dev.ReadPages(0, int(st.NumPages))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(st, &CountingOutput{}, nil)
	ctx.beginIteration(0, st.NumPages)
	for _, rec := range recs {
		ctx.addInternal(rec)
	}
	model := edgeIteratorModel{}
	v := recs[100] // n≻ and n≺ both populated, hub-sized fixed side

	if allocs := testing.AllocsPerRun(10, func() { model.ExternalTriangle(ctx, v) }); allocs != 0 {
		t.Fatalf("ExternalTriangle: %v allocs/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { model.InternalTriangle(ctx, v) }); allocs != 0 {
		t.Fatalf("InternalTriangle: %v allocs/op at steady state, want 0", allocs)
	}
}

// TestBuildRequestsSteadyStateAllocs checks the other half of the
// zero-allocation contract: rebuilding the request list and regrouping it
// reuses the runner's scratch arrays once they have grown to size.
func TestBuildRequestsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	raw, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 5))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	r, cleanup := newTestRunner(t, g, 128, Options{Mode: Serial, MemoryPages: 64})
	defer cleanup()
	vex := allVertices(r.st.NumVertices)
	if allocs := testing.AllocsPerRun(10, func() {
		reqs := r.buildRequests(vex)
		r.coalesce(reqs)
	}); allocs != 0 {
		t.Fatalf("buildRequests+coalesce: %v allocs/op at steady state, want 0", allocs)
	}
}

func BenchmarkBuildAndCoalesce(b *testing.B) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 42))
	if err != nil {
		b.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(b, g, 128)
	dev, err := st.Device()
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	r := newRunner(context.Background(), st, dev, Options{Mode: Serial, MemoryPages: 64})
	defer r.close()
	vex := allVertices(st.NumVertices)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := r.buildRequests(vex)
		r.coalesce(reqs)
	}
}

func BenchmarkOPTSerialCoalesced(b *testing.B) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 42))
	if err != nil {
		b.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	st := buildStore(b, g, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFile(st, Options{Mode: Serial, MemoryPages: int(st.NumPages)/4 + 2}); err != nil {
			b.Fatal(err)
		}
	}
}
