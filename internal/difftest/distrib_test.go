package difftest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/optlab/opt/internal/cluster"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/server"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
	"github.com/optlab/opt/internal/testutil"
)

// Importing cluster also registers the Shard2D runner, adding it to the
// single-node differential and fault sweeps in this package.

// distFleet is a set of agent optds serving one store over real HTTP plus
// the coordinator-side dispatcher pointed at them.
type distFleet struct {
	agents []string
	client *http.Client
	stop   []func()
}

// newDistFleet starts n agent optds, each an httptest server over a real
// job manager with the store registered as "g". middleware (may be nil)
// wraps agent i's handler — the chaos seam for connection drops and
// delays. wrapDev (may be nil) wraps agent i's page devices.
func newDistFleet(t *testing.T, n int, storePath string, middleware func(i int, h http.Handler) http.Handler, wrapDev func(i int) func(ssd.PageDevice) ssd.PageDevice) *distFleet {
	t.Helper()
	f := &distFleet{client: &http.Client{Transport: &http.Transport{}}}
	for i := 0; i < n; i++ {
		cfg := server.Config{Workers: 2, QueueDepth: 32}
		if wrapDev != nil {
			cfg.WrapDevice = wrapDev(i)
		}
		mgr := server.New(cfg)
		if err := mgr.RegisterStore("g", storePath); err != nil {
			t.Fatal(err)
		}
		var h http.Handler = server.NewHandler(mgr)
		if middleware != nil {
			h = middleware(i, h)
		}
		ts := httptest.NewServer(h)
		f.agents = append(f.agents, ts.URL)
		f.stop = append(f.stop, func() {
			ts.Close()
			mgr.Drain(5 * time.Second)
		})
	}
	t.Cleanup(f.Close)
	return f
}

// Close tears the fleet down; safe to call twice.
func (f *distFleet) Close() {
	for _, stop := range f.stop {
		stop()
	}
	f.stop = nil
	f.client.CloseIdleConnections()
}

// run drives one distributed job through the coordinator over the wire.
func (f *distFleet) run(t *testing.T, cfg cluster.CoordinatorConfig) (*cluster.RunReport, error) {
	t.Helper()
	cfg.Agents = f.agents
	coord, err := cluster.NewCoordinator(cfg, &cluster.HTTPDispatcher{Client: f.client})
	if err != nil {
		t.Fatal(err)
	}
	return coord.Run(context.Background())
}

// buildStoreFile writes g to a store file and returns its path plus the
// digest agents must match.
func buildStoreFile(t *testing.T, g *graph.Graph, codec string) (string, string) {
	t.Helper()
	st, _ := buildStoreCodec(t, g, codec)
	return st.Path, cluster.DigestOf(st).Sum()
}

// TestDistributedEquivalence is the multi-node differential sweep: a
// coordinator over {1, 2, 4} real agent optds, for every workload ×
// codec × grid, must merge exactly the in-memory reference count with no
// retries, no duplicates, and no leaked goroutines.
func TestDistributedEquivalence(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, w := range workloads(t) {
		want := graph.CountTrianglesReference(w.g)
		for _, codec := range codecs {
			path, digest := buildStoreFile(t, w.g, codec)
			for _, agents := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%s/agents=%d", w.name, codec, agents), func(t *testing.T) {
					fleet := newDistFleet(t, agents, path, nil, nil)
					defer fleet.Close()
					for _, grid := range []int{1, 2, 4} {
						rep, err := fleet.run(t, cluster.CoordinatorConfig{
							Grid:        grid,
							Job:         fmt.Sprintf("eq-%d", grid),
							Store:       "g",
							Digest:      digest,
							Codec:       codec,
							MemoryPages: 8,
						})
						if err != nil {
							t.Fatalf("grid=%d: %v", grid, err)
						}
						if rep.Triangles != want {
							t.Fatalf("grid=%d: merged %d, reference %d", grid, rep.Triangles, want)
						}
						tasks := grid * (grid + 1) / 2
						if rep.Tasks != tasks || len(rep.PerTask) != tasks {
							t.Fatalf("grid=%d: task accounting off: %+v", grid, rep)
						}
						if rep.Retries != 0 || rep.Duplicates != 0 || len(rep.Failed) != 0 {
							t.Fatalf("grid=%d: healthy fleet reported failures: %+v", grid, rep)
						}
					}
				})
			}
		}
	}
	testutil.WaitGoroutines(t, baseline, "distributed equivalence sweep")
}

// TestDistributedDigestMismatch: an agent holding a different build of the
// graph must refuse the task inside the protocol frame, and a fleet where
// someone holds the right build must still converge on the exact count.
func TestDistributedDigestMismatch(t *testing.T) {
	g := graph.Complete(25)
	want := graph.CountTrianglesReference(g)
	path, digest := buildStoreFile(t, g, storage.CodecRaw)
	otherPath, _ := buildStoreFile(t, graph.Star(300), storage.CodecRaw)

	// Agent 0 serves the wrong graph under the same store name.
	fleet := newDistFleet(t, 1, otherPath, nil, nil)
	right := newDistFleet(t, 1, path, nil, nil)
	fleet.agents = append(fleet.agents, right.agents...)

	rep, err := fleet.run(t, cluster.CoordinatorConfig{
		Grid: 2, Job: "digest", Store: "g", Digest: digest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != want {
		t.Fatalf("merged %d, want %d — wrong-store agent contaminated the count", rep.Triangles, want)
	}
	if rep.Retries == 0 {
		t.Fatal("digest mismatch did not surface as a retried attempt")
	}
}

// TestDistributedChaosDeviceFault kills one agent's reads mid-fleet: every
// task it receives fails with an injected device error inside the result
// frame, the retry must land on the healthy agent, the merged count must
// stay exact, and the retries must surface as shard-retried events.
func TestDistributedChaosDeviceFault(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := workloads(t)[3].g // powerlaw
	want := graph.CountTrianglesReference(g)
	path, digest := buildStoreFile(t, g, storage.CodecDeltaVarint)

	wrapDev := func(i int) func(ssd.PageDevice) ssd.PageDevice {
		if i != 0 {
			return nil
		}
		return func(dev ssd.PageDevice) ssd.PageDevice {
			return &ssd.FaultyDevice{PageDevice: dev, FailEveryN: 1} // every read fails
		}
	}
	fleet := newDistFleet(t, 2, path, nil, wrapDev)

	var retried atomic.Int64
	rep, err := fleet.run(t, cluster.CoordinatorConfig{
		Grid: 2, Job: "chaos-dev", Store: "g", Digest: digest, Codec: storage.CodecDeltaVarint,
		Events: events.Func(func(e events.Event) {
			if e.Kind == events.ShardRetried {
				retried.Add(1)
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != want {
		t.Fatalf("merged %d, want %d", rep.Triangles, want)
	}
	if rep.Retries == 0 || retried.Load() == 0 {
		t.Fatalf("faulty agent produced no retries (report %+v, events %d)", rep, retried.Load())
	}
	if rep.Duplicates != 0 || len(rep.Failed) != 0 {
		t.Fatalf("unexpected duplicates/failures: %+v", rep)
	}
	fleet.Close()
	testutil.WaitGoroutines(t, baseline, "device-fault chaos")
}

// TestDistributedChaosAgentKill hard-kills one agent mid-job: after its
// first served task the agent's connections abort without a response (the
// crash case, not a polite error frame). Retries must land on the
// survivor and the merged count must stay exact.
func TestDistributedChaosAgentKill(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := graph.Complete(25)
	want := graph.CountTrianglesReference(g)
	path, digest := buildStoreFile(t, g, storage.CodecRaw)

	var served atomic.Int64
	middleware := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/tasks" && served.Add(1) > 1 {
				panic(http.ErrAbortHandler) // drop the connection cold
			}
			h.ServeHTTP(w, r)
		})
	}
	fleet := newDistFleet(t, 2, path, middleware, nil)

	rep, err := fleet.run(t, cluster.CoordinatorConfig{
		Grid: 4, Job: "chaos-kill", Store: "g", Digest: digest,
		SlotsPerAgent: 1, // serialise per agent so the kill lands mid-task-set
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != want {
		t.Fatalf("merged %d, want %d — a dropped connection corrupted the merge", rep.Triangles, want)
	}
	if rep.Retries == 0 {
		t.Fatalf("killed agent produced no retries: %+v", rep)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("tasks failed despite a healthy survivor: %+v", rep)
	}
	fleet.Close()
	testutil.WaitGoroutines(t, baseline, "agent-kill chaos")
}

// TestDistributedChaosStraggler delays one agent far past the straggler
// deadline: the speculative duplicate on the healthy agent wins, the slow
// agent's late result still arrives — and must land in the duplicate
// ledger, never the total.
func TestDistributedChaosStraggler(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := graph.Complete(25)
	want := graph.CountTrianglesReference(g)
	path, digest := buildStoreFile(t, g, storage.CodecRaw)

	middleware := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/tasks" {
				time.Sleep(300 * time.Millisecond) // well past StragglerAfter
			}
			h.ServeHTTP(w, r)
		})
	}
	fleet := newDistFleet(t, 2, path, middleware, nil)

	var mu sync.Mutex
	kinds := map[events.Kind]int{}
	rep, err := fleet.run(t, cluster.CoordinatorConfig{
		Grid: 1, Job: "chaos-straggler", Store: "g", Digest: digest,
		StragglerAfter: 50 * time.Millisecond,
		Events: events.Func(func(e events.Event) {
			mu.Lock()
			kinds[e.Kind]++
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != want {
		t.Fatalf("merged %d, want %d — the straggler's late result double-counted", rep.Triangles, want)
	}
	if rep.Stragglers == 0 {
		t.Fatalf("no speculative re-dispatch: %+v", rep)
	}
	if rep.Duplicates == 0 {
		t.Fatalf("late straggler result never reached the ledger: %+v", rep)
	}
	mu.Lock()
	if kinds[events.ShardMerged] != 1 {
		t.Fatalf("shard-merged events = %d, want exactly 1 for 1 task", kinds[events.ShardMerged])
	}
	mu.Unlock()
	fleet.Close()
	testutil.WaitGoroutines(t, baseline, "straggler chaos")
}
