// Package difftest is the repository's cross-algorithm conformance layer.
// Its tests drive every registered triangulation algorithm through the
// one engine dispatch path over a shared matrix of generated graphs
// (empty, star, clique, power-law, disconnected) and memory budgets,
// asserting all of them produce the in-memory reference count — the
// single differential sweep that replaces the ad-hoc per-pair comparisons
// the baseline packages used to carry. The fault sweep walks one injected
// device failure across every read position of a run and asserts each
// algorithm surfaces the error with a partial result and no leaked
// goroutines.
package difftest
