package difftest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/testutil"
)

// TestFaultSweepNative repeats the fault contract around the native Linux
// backend: FaultyDevice wrapping a native device (which demotes the async
// layer from the io_uring engine to the worker pool, since the wrapper
// hides the ring interface) must still surface exactly the injected error,
// a bounded partial result, and no goroutine leak. A reduced fault-position
// set keeps it cheap; the exhaustive sweep runs on the portable device.
func TestFaultSweepNative(t *testing.T) {
	if !ssd.NativeAvailable() {
		t.Skip("native backend unavailable on this platform")
	}
	raw, err := gen.RMAT(gen.DefaultRMAT(256, 3_000, 29))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	opts := engine.Options{MemoryPages: 4}

	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			st, dev := buildStoreBackend(t, g, codecs[0], ssd.BackendNative)
			clean := &ssd.FaultyDevice{PageDevice: dev}
			cleanOpts := opts
			cleanOpts.TempDir = t.TempDir()
			res, err := engine.Run(context.Background(), name, st, clean, cleanOpts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Triangles != want {
				t.Fatalf("clean native run counted %d, want %d", res.Triangles, want)
			}
			reads := clean.Reads()
			for _, k := range []int64{1, reads / 2} {
				if k < 1 {
					continue
				}
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					st, dev := buildStoreBackend(t, g, codecs[0], ssd.BackendNative)
					faulty := &ssd.FaultyDevice{PageDevice: dev, FailAt: k}
					failOpts := opts
					failOpts.TempDir = t.TempDir()
					res, err := engine.Run(context.Background(), name, st, faulty, failOpts)
					if faulty.Reads() < k {
						if err != nil {
							t.Fatalf("fault at %d never fired (%d reads) yet the run failed: %v", k, faulty.Reads(), err)
						}
						return
					}
					if err == nil {
						t.Fatalf("failing read %d surfaced no error (result %+v)", k, res)
					}
					if !errors.Is(err, ssd.ErrInjected) {
						t.Fatalf("error %v does not wrap the injected fault", err)
					}
					if res == nil || res.Triangles < 0 || res.Triangles > want {
						t.Fatalf("partial result %+v outside [0, %d]", res, want)
					}
					testutil.WaitGoroutines(t, baseline, fmt.Sprintf("native %s k=%d", name, k))
				})
			}
		})
	}
}

// TestFaultSweep walks a single injected read failure across the read
// schedule of every registered algorithm: for each failing position k the
// run must surface exactly one error (the injected one), hand back a
// partial Result bounded by the true count, and leak no goroutines —
// pinning the engine contract that failure behaves like cancellation, not
// like a silent miscount or a hang.
func TestFaultSweep(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(256, 3_000, 29))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.DegreeOrder(raw)
	want := graph.CountTrianglesReference(g)
	opts := engine.Options{MemoryPages: 4}

	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			// Clean run through a no-fault FaultyDevice: learns the total
			// read count R (the sweep domain) and re-checks the count.
			st, dev := buildStore(t, g)
			clean := &ssd.FaultyDevice{PageDevice: dev}
			cleanOpts := opts
			cleanOpts.TempDir = t.TempDir()
			res, err := engine.Run(context.Background(), name, st, clean, cleanOpts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Triangles != want {
				t.Fatalf("clean run counted %d, want %d", res.Triangles, want)
			}
			reads := clean.Reads()
			if reads == 0 {
				t.Fatal("clean run issued no reads; the sweep has no domain")
			}

			// Fail read k for the leading positions plus the middle and the
			// very last read, deduplicated.
			ks := []int64{reads / 2, reads}
			for k := int64(1); k <= reads && k <= 8; k++ {
				ks = append(ks, k)
			}
			seen := map[int64]bool{}
			for _, k := range ks {
				if k < 1 || seen[k] {
					continue
				}
				seen[k] = true
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					st, dev := buildStore(t, g)
					faulty := &ssd.FaultyDevice{PageDevice: dev, FailAt: k}
					failOpts := opts
					failOpts.TempDir = t.TempDir()
					res, err := engine.Run(context.Background(), name, st, faulty, failOpts)
					if faulty.Reads() < k {
						// Parallel coalescing and read-ahead make OPT's read
						// schedule nondeterministic, so this run legitimately
						// issued fewer reads than the clean one and the fault
						// never fired — then the count must be exact.
						if err != nil {
							t.Fatalf("fault at %d never fired (%d reads) yet the run failed: %v", k, faulty.Reads(), err)
						}
						if res.Triangles != want {
							t.Fatalf("fault at %d never fired yet the count is %d, want %d", k, res.Triangles, want)
						}
						return
					}
					if err == nil {
						t.Fatalf("failing read %d surfaced no error (result %+v)", k, res)
					}
					if !errors.Is(err, ssd.ErrInjected) {
						t.Fatalf("error %v does not wrap the injected fault", err)
					}
					if res == nil {
						t.Fatalf("failing read %d lost the partial result", k)
					}
					if res.Triangles < 0 || res.Triangles > want {
						t.Fatalf("partial count %d outside [0, %d]", res.Triangles, want)
					}
					if got := faulty.Reads(); got < k {
						t.Fatalf("device observed %d reads, the fault at %d never fired", got, k)
					}
					testutil.WaitGoroutines(t, baseline, fmt.Sprintf("%s k=%d", name, k))
				})
			}
		})
	}
}
