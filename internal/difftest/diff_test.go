package difftest

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"

	// Every algorithm package registers its Runner in init; the sweep
	// enumerates the registry, so importing one here adds it to the matrix.
	_ "github.com/optlab/opt/internal/baselines/cc"
	_ "github.com/optlab/opt/internal/baselines/gchi"
	_ "github.com/optlab/opt/internal/baselines/mgt"
	_ "github.com/optlab/opt/internal/core"
)

const pageSize = 128

// codecs is the page-codec axis of the sweep: every algorithm must produce
// identical counts whether the store pages are raw or delta+varint.
var codecs = []string{storage.CodecRaw, storage.CodecDeltaVarint}

func buildStore(t testing.TB, g *graph.Graph) (*storage.Store, *ssd.FileDevice) {
	return buildStoreCodec(t, g, storage.CodecRaw)
}

func buildStoreCodec(t testing.TB, g *graph.Graph, codec string) (*storage.Store, *ssd.FileDevice) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.optstore")
	st, err := storage.BuildFileCodec(path, g, pageSize, codec)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dev.Close() })
	return st, dev
}

// buildStoreBackend opens the store through an explicit device backend —
// the native-backend axis of the sweep.
func buildStoreBackend(t testing.TB, g *graph.Graph, codec string, backend ssd.Backend) (*storage.Store, ssd.PageDevice) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.optstore")
	st, err := storage.BuildFileCodec(path, g, pageSize, codec)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := st.DeviceBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dev.Close() })
	return st, dev
}

// disconnected stitches several components together: a K10 clique, a
// triangle-free 10-cycle, a K5, one extra triangle, and trailing isolated
// vertices — triangles must be found per component, never across them.
func disconnected(t testing.TB) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for u := 0; u < 10; u++ { // K10 on 0..9
		for v := u + 1; v < 10; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	for i := 0; i < 10; i++ { // 10-cycle on 20..29
		edges = append(edges, graph.Edge{U: uint32(20 + i), V: uint32(20 + (i+1)%10)})
	}
	for u := 40; u < 45; u++ { // K5 on 40..44
		for v := u + 1; v < 45; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	edges = append(edges, // one triangle on 50..52
		graph.Edge{U: 50, V: 51}, graph.Edge{U: 51, V: 52}, graph.Edge{U: 50, V: 52})
	g, err := graph.FromEdges(64, edges) // 53..63 isolated
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// workloads is the shared graph matrix of the differential sweep.
func workloads(t testing.TB) []struct {
	name string
	g    *graph.Graph
} {
	t.Helper()
	empty, err := graph.FromEdges(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 31))
	if err != nil {
		t.Fatal(err)
	}
	powerlaw, _ := graph.DegreeOrder(raw)
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", empty},
		{"star", graph.Star(300)},
		{"clique", graph.Complete(25)},
		{"powerlaw", powerlaw},
		{"disconnected", disconnected(t)},
	}
}

// TestAllAlgorithmsMatchReference is the differential sweep: every
// registered algorithm, over every workload, under every memory budget and
// page codec, must report exactly the in-memory reference count. One table
// replaces the per-pair comparisons (MGT vs reference, CC vs reference, …)
// the baseline tests used to duplicate, and automatically covers algorithms
// registered in the future.
func TestAllAlgorithmsMatchReference(t *testing.T) {
	algos := engine.Names()
	if len(algos) < 6 {
		t.Fatalf("registry has %d algorithms %v, want the full suite", len(algos), algos)
	}
	budgets := []int{0, 4, 16} // 0 -> the 15% default fraction
	for _, w := range workloads(t) {
		want := graph.CountTrianglesReference(w.g)
		for _, codec := range codecs {
			for _, budget := range budgets {
				for _, name := range algos {
					t.Run(fmt.Sprintf("%s/%s/m=%d/%s", w.name, codec, budget, name), func(t *testing.T) {
						st, dev := buildStoreCodec(t, w.g, codec)
						res, err := engine.Run(context.Background(), name, st, dev, engine.Options{
							MemoryPages: budget,
							TempDir:     t.TempDir(),
							Codec:       codec,
						})
						if err != nil {
							t.Fatal(err)
						}
						if res.Triangles != want {
							t.Fatalf("counted %d triangles, reference says %d", res.Triangles, want)
						}
						if res.Algorithm != name {
							t.Fatalf("result algorithm %q, want %q", res.Algorithm, name)
						}
					})
				}
			}
		}
	}
}

// TestNativeBackendMatchesReference is the backend axis of the sweep: every
// registered algorithm, over every workload and codec, must report the
// reference count when the store is served by the native Linux backend
// (io_uring or preadv, possibly O_DIRECT) instead of the portable file
// device. A reduced budget set keeps the doubled matrix affordable; the
// full budget sweep stays on the portable axis above.
func TestNativeBackendMatchesReference(t *testing.T) {
	if !ssd.NativeAvailable() {
		t.Skip("native backend unavailable on this platform")
	}
	for _, w := range workloads(t) {
		want := graph.CountTrianglesReference(w.g)
		for _, codec := range codecs {
			for _, name := range engine.Names() {
				t.Run(fmt.Sprintf("%s/%s/%s", w.name, codec, name), func(t *testing.T) {
					st, dev := buildStoreBackend(t, w.g, codec, ssd.BackendNative)
					res, err := engine.Run(context.Background(), name, st, dev, engine.Options{
						TempDir: t.TempDir(),
						Codec:   codec,
						Backend: string(ssd.BackendNative),
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Triangles != want {
						t.Fatalf("counted %d triangles, reference says %d", res.Triangles, want)
					}
				})
			}
		}
	}
}

// TestReferenceOracle anchors the sweep's oracle itself on closed-form
// counts, so a broken reference cannot silently vacuously pass the matrix.
func TestReferenceOracle(t *testing.T) {
	empty, err := graph.FromEdges(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"empty", empty, 0},
		{"star", graph.Star(300), 0},
		{"clique", graph.Complete(25), 25 * 24 * 23 / 6},
		// K10 + K5 + one triangle; the cycle and isolated vertices add none.
		{"disconnected", disconnected(t), 10*9*8/6 + 5*4*3/6 + 1},
	}
	for _, tc := range cases {
		if got := graph.CountTrianglesReference(tc.g); got != tc.want {
			t.Errorf("%s: reference = %d, want %d", tc.name, got, tc.want)
		}
	}
}
