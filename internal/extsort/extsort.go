// Package extsort provides a bounded-memory external merge sort over
// uint64 keys, the substrate behind the streaming store builder: edge
// lists larger than RAM are spilled as sorted runs to temporary files and
// merged with a k-way heap. The paper's premise is billion-edge graphs on
// a single PC; preprocessing them into the slotted-page store must not
// assume the edge list fits in memory.
package extsort

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"github.com/optlab/opt/internal/diskio"
)

// Sorter accumulates uint64 keys and streams them back in ascending order
// using at most ~8·RunSize bytes of memory plus merge buffers.
type Sorter struct {
	dir     string
	runSize int
	buf     []uint64
	runs    []string
	closed  bool

	ctx   context.Context
	ticks int // keys since the last context check
}

// ctxCheckInterval is how many keys pass between context checks: frequent
// enough to cancel a billion-edge sort promptly, rare enough to keep the
// check off the per-key fast path's profile.
const ctxCheckInterval = 1 << 16

// SetContext attaches a cancellation context: Push and Sort fail with the
// context's error soon (within ctxCheckInterval keys) after it is done.
func (s *Sorter) SetContext(ctx context.Context) { s.ctx = ctx }

// tick performs the periodic context check.
func (s *Sorter) tick() error {
	if s.ctx == nil {
		return nil
	}
	s.ticks++
	if s.ticks < ctxCheckInterval {
		return nil
	}
	s.ticks = 0
	return s.ctx.Err()
}

// DefaultRunSize is the default in-memory run length (keys).
const DefaultRunSize = 1 << 22 // 32 MiB of keys

// NewSorter creates a Sorter spilling runs into dir. runSize ≤ 0 selects
// DefaultRunSize.
func NewSorter(dir string, runSize int) *Sorter {
	if runSize <= 0 {
		runSize = DefaultRunSize
	}
	return &Sorter{dir: dir, runSize: runSize, buf: make([]uint64, 0, min(runSize, 1<<20))}
}

// Push adds one key.
func (s *Sorter) Push(key uint64) error {
	if s.closed {
		return fmt.Errorf("extsort: push after Sort")
	}
	if err := s.tick(); err != nil {
		return err
	}
	s.buf = append(s.buf, key)
	if len(s.buf) >= s.runSize {
		return s.spill()
	}
	return nil
}

// spill sorts the buffer and writes it as a run file.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	slices.Sort(s.buf)
	f, err := diskio.CreateTempRaw(s.dir, "extsort-run-*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var scratch [8]byte
	for _, k := range s.buf {
		binary.LittleEndian.PutUint64(scratch[:], k)
		if _, err := bw.Write(scratch[:]); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.runs = append(s.runs, f.Name())
	s.buf = s.buf[:0]
	return nil
}

// Sort finishes accumulation and calls fn for every key in ascending
// order (duplicates included). The Sorter cannot be reused afterwards;
// run files are removed.
func (s *Sorter) Sort(fn func(key uint64) error) error {
	if s.closed {
		return fmt.Errorf("extsort: Sort called twice")
	}
	s.closed = true
	defer s.cleanup()

	// Common case: everything fit in memory.
	if len(s.runs) == 0 {
		slices.Sort(s.buf)
		for _, k := range s.buf {
			if err := s.tick(); err != nil {
				return err
			}
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.spill(); err != nil {
		return err
	}

	// K-way merge over the run files.
	h := &mergeHeap{}
	readers := make([]*runReader, 0, len(s.runs))
	defer func() {
		for _, r := range readers {
			r.close()
		}
	}()
	for i, path := range s.runs {
		r, err := newRunReader(path)
		if err != nil {
			return err
		}
		readers = append(readers, r)
		k, ok, err := r.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, mergeItem{key: k, src: i})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(mergeItem)
		if err := s.tick(); err != nil {
			return err
		}
		if err := fn(it.key); err != nil {
			return err
		}
		k, ok, err := readers[it.src].next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, mergeItem{key: k, src: it.src})
		}
	}
	return nil
}

func (s *Sorter) cleanup() {
	for _, path := range s.runs {
		os.Remove(path)
	}
	s.runs = nil
	s.buf = nil
}

// Runs reports the number of spilled run files (for tests).
func (s *Sorter) Runs() int { return len(s.runs) }

type runReader struct {
	f  *diskio.RawFile
	br *bufio.Reader
}

func newRunReader(path string) (*runReader, error) {
	f, err := diskio.OpenRaw(filepath.Clean(path))
	if err != nil {
		return nil, err
	}
	return &runReader{f: f, br: bufio.NewReaderSize(f, 1<<20)}, nil
}

func (r *runReader) next() (uint64, bool, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		if err == io.EOF {
			return 0, false, nil
		}
		return 0, false, err
	}
	return binary.LittleEndian.Uint64(b[:]), true, nil
}

// close discards the read-only handle; run files are removed afterwards,
// so the error carries no information.
func (r *runReader) close() { _ = r.f.Close() }

type mergeItem struct {
	key uint64
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
