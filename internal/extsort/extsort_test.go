package extsort

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, s *Sorter) []uint64 {
	t.Helper()
	var out []uint64
	if err := s.Sort(func(k uint64) error {
		out = append(out, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSortInMemory(t *testing.T) {
	s := NewSorter(t.TempDir(), 100)
	for _, k := range []uint64{5, 3, 9, 1, 3} {
		if err := s.Push(k); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, s)
	want := []uint64{1, 3, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSortSpillsAndMerges(t *testing.T) {
	const n = 10_000
	s := NewSorter(t.TempDir(), 512) // force ~20 runs
	rng := rand.New(rand.NewSource(3))
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(2000))
		counts[k]++
		if err := s.Push(k); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() < 10 {
		t.Fatalf("expected many spilled runs, got %d", s.Runs())
	}
	got := collect(t, s)
	if len(got) != n {
		t.Fatalf("merged %d keys, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d: %d < %d", i, got[i], got[i-1])
		}
	}
	// Multiset preserved.
	for _, k := range got {
		counts[k]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("key %d count off by %d", k, c)
		}
	}
}

func TestSortEmpty(t *testing.T) {
	s := NewSorter(t.TempDir(), 0)
	if got := collect(t, s); len(got) != 0 {
		t.Fatalf("empty sorter yielded %v", got)
	}
}

func TestSorterMisuse(t *testing.T) {
	s := NewSorter(t.TempDir(), 10)
	_ = s.Push(1)
	if err := s.Sort(func(uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(2); err == nil {
		t.Fatal("Push after Sort: want error")
	}
	if err := s.Sort(func(uint64) error { return nil }); err == nil {
		t.Fatal("Sort twice: want error")
	}
}

func TestSortPropagatesCallbackError(t *testing.T) {
	s := NewSorter(t.TempDir(), 4)
	for i := 0; i < 20; i++ {
		_ = s.Push(uint64(i))
	}
	calls := 0
	err := s.Sort(func(uint64) error {
		calls++
		if calls == 3 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3", calls)
	}
}

var errStop = &stopErr{}

type stopErr struct{}

func (*stopErr) Error() string { return "stop" }

// Property: Sort is a permutation into ascending order, for arbitrary key
// multisets and run sizes.
func TestSortQuick(t *testing.T) {
	dir := t.TempDir()
	f := func(keys []uint64, runRaw uint8) bool {
		s := NewSorter(dir, 1+int(runRaw)%64)
		for _, k := range keys {
			if err := s.Push(k); err != nil {
				return false
			}
		}
		var got []uint64
		if err := s.Sort(func(k uint64) error { got = append(got, k); return nil }); err != nil {
			return false
		}
		if len(got) != len(keys) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
