package gchi

import (
	"context"

	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// engineRunner adapts GraphChi-Tri to the engine.Runner contract. It is a
// counting method, so its Info advertises ListsTriangles=false and the
// engine rejects Options.OnTriangles before dispatch.
type engineRunner struct{}

func init() {
	engine.Register(engine.Info{
		Name:     "GraphChi-Tri",
		Parallel: true,
	}, engineRunner{})
}

// Run implements engine.Runner.
func (engineRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts engine.Options) (*engine.Result, error) {
	mx := metrics.NewCollector()
	res, err := RunContext(ctx, st, dev, Options{
		MemoryPages: opts.MemoryPages,
		Threads:     opts.Threads,
		TempDir:     opts.TempDir,
		Latency:     opts.Latency,
		Metrics:     mx,
		Events:      opts.Events,
	})
	if res == nil {
		return nil, err
	}
	snap := mx.Snapshot()
	return &engine.Result{
		Triangles:    res.Triangles,
		Iterations:   res.Iterations,
		Elapsed:      res.Elapsed,
		PagesRead:    snap.PagesRead,
		PagesWritten: snap.PagesWritten,
		IntersectOps: snap.IntersectOps,
	}, err
}
