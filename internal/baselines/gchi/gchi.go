// Package gchi reproduces the behaviour of GraphChi's triangle-counting
// application (Kyrola et al., OSDI'12) as characterised in §4 of the OPT
// paper: an additional memory buffer pivots a part of the graph; at every
// odd iteration the pivot block is loaded and previously processed edges
// are removed (a full read plus a full write of the remaining graph), and
// at every even iteration triangles are identified by intersecting the
// pivot's adjacency lists against all adjacency lists (another full read).
// The enforced sequential-order processing limits its parallel fraction:
// only the per-batch intersection work is parallelised, with a barrier
// between batches, which is why its speed-up saturates below 2.5 in
// Figure 6 / Table 5.
//
// GraphChi-Tri is a counting method — it does not list triangles (§5.2).
package gchi

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/optlab/opt/internal/diskio"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/intersect"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Options configures a GraphChi-Tri run.
type Options struct {
	// MemoryPages is the buffer budget in input-store pages; half of it
	// forms the pivot buffer (the "additional memory buffer" of §4).
	MemoryPages int
	// Threads is the number of goroutines for the per-batch intersection
	// work ("execthreads"). 1 reproduces GraphChi-Tri_serial.
	Threads int
	// BatchRecords is the number of streamed records per parallel batch
	// (the sub-interval whose processing order is enforced). Default 256.
	BatchRecords int
	// VirtualCores, when positive, runs the batch region on one real
	// thread but list-schedules the measured per-record durations onto
	// this many virtual cores with a barrier per batch, modelling the
	// multi-core run on hosts with fewer physical CPUs (the same
	// substitution the OPT core uses; DESIGN.md §3). Threads is ignored.
	VirtualCores int
	// VirtualCoreSet models several core counts from the same run;
	// Result.VirtualElapsed reports each. Overrides VirtualCores.
	VirtualCoreSet []int
	// TempDir holds the working files. Defaults to the store's directory.
	TempDir string
	// Latency is the simulated device latency.
	Latency ssd.Latency
	// Metrics receives cost counters; optional.
	Metrics *metrics.Collector
	// Events receives progress events (iteration boundaries, page I/O);
	// optional.
	Events events.Sink
}

// Result reports a completed run.
type Result struct {
	Triangles  int64
	Iterations int // pivot blocks processed
	// Elapsed is the wall-clock time — or, with VirtualCores set, the
	// modelled elapsed with the batch regions scaled by their virtual
	// schedule.
	Elapsed time.Duration
	// BatchWork is the wall time spent inside the parallelisable per-batch
	// intersection region; BatchWork/Elapsed at Threads=1 estimates the
	// parallel fraction p of Table 5.
	BatchWork time.Duration
	// BatchVirtual is the virtual-schedule makespan of the batch regions
	// (set only with VirtualCores).
	BatchVirtual time.Duration
	// VirtualElapsed maps each entry of VirtualCoreSet to its modelled
	// elapsed time.
	VirtualElapsed map[int]time.Duration
}

// Run executes GraphChi-Tri over the store using base for the initial read.
func Run(st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	return RunContext(context.Background(), st, base, opts)
}

// RunContext is Run with cancellation: when ctx is done the run stops
// within one record of stream I/O and returns the partial Result
// accumulated over completed pivot blocks alongside an error satisfying
// errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MemoryPages <= 0 {
		opts.MemoryPages = int(st.NumPages)/4 + 2
	}
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	if opts.BatchRecords <= 0 {
		opts.BatchRecords = 256
	}
	if opts.TempDir == "" {
		opts.TempDir = filepath.Dir(st.Path)
	}
	if len(opts.VirtualCoreSet) == 0 && opts.VirtualCores > 0 {
		opts.VirtualCoreSet = []int{opts.VirtualCores}
	}
	dir, err := os.MkdirTemp(opts.TempDir, "gchi-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	cm := diskio.CostModel{
		PageSize: st.PageSize, Latency: opts.Latency, Metrics: opts.Metrics,
		Context: ctx, Events: opts.Events,
	}
	res := &Result{}
	emit := func(e events.Event) {
		if opts.Events != nil {
			e.Algorithm = "GraphChi-Tri"
			opts.Events.Event(e)
		}
	}
	finish := func(err error) (*Result, error) {
		res.Elapsed = time.Since(start)
		if opts.Metrics != nil {
			opts.Metrics.AddTriangles(res.Triangles)
		}
		return res, err
	}
	cur := filepath.Join(dir, "work-0.ccg")
	if err := convertStore(ctx, st, base, cur, cm, opts); err != nil {
		return finish(err)
	}

	pivotBytes := int64(opts.MemoryPages) * int64(st.PageSize) / 2
	if pivotBytes < int64(st.PageSize) {
		pivotBytes = int64(st.PageSize)
	}
	var virtualTotals []time.Duration
	iter := 0
	for {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		iter++
		if iter > st.NumVertices+2 {
			return finish(fmt.Errorf("gchi: no progress after %d iterations", iter))
		}
		itStart := time.Now()
		emit(events.Event{Kind: events.IterationStart, Iteration: iter - 1})
		// Even iteration: identify triangles against the pivot block.
		pivot, err := loadPivot(cur, pivotBytes, cm)
		if err != nil {
			return finish(err)
		}
		tris, batchWork, batchVirtual, err := identify(cur, pivot, cm, opts)
		res.Triangles += tris
		res.BatchWork += batchWork
		if tris > 0 {
			emit(events.Event{Kind: events.TrianglesFound, Iteration: iter - 1, N: tris})
		}
		if err != nil {
			emit(events.Event{Kind: events.IterationEnd, Iteration: iter - 1, N: tris, Elapsed: time.Since(itStart)})
			return finish(err)
		}
		if len(batchVirtual) > 0 {
			if virtualTotals == nil {
				virtualTotals = make([]time.Duration, len(batchVirtual))
			}
			for i, d := range batchVirtual {
				virtualTotals[i] += d
			}
		}
		// Odd iteration: remove processed edges, rewriting the remainder.
		next := filepath.Join(dir, fmt.Sprintf("work-%d.ccg", iter))
		edgesLeft, err := shrink(cur, next, pivot, cm)
		emit(events.Event{Kind: events.IterationEnd, Iteration: iter - 1, N: tris, Elapsed: time.Since(itStart)})
		if err != nil {
			return finish(err)
		}
		os.Remove(cur)
		cur = next
		res.Iterations++
		if edgesLeft == 0 {
			break
		}
	}
	res.Elapsed = time.Since(start)
	if len(opts.VirtualCoreSet) > 0 {
		// Replace the measured batch-region time with its virtual-core
		// makespan; everything else (streaming, decode, rewrite) is the
		// enforced-sequential remainder.
		wall := res.Elapsed
		res.VirtualElapsed = make(map[int]time.Duration, len(opts.VirtualCoreSet))
		for i, c := range opts.VirtualCoreSet {
			res.VirtualElapsed[c] = wall - res.BatchWork + virtualTotals[i]
		}
		res.BatchVirtual = virtualTotals[0]
		res.Elapsed = res.VirtualElapsed[opts.VirtualCoreSet[0]]
	}
	if opts.Metrics != nil {
		opts.Metrics.AddTriangles(res.Triangles)
	}
	return res, nil
}

// convertStore reads every store page through a latency-accounted device
// and writes the working file.
func convertStore(ctx context.Context, st *storage.Store, base ssd.PageDevice, path string, cm diskio.CostModel, opts Options) error {
	dev := ssd.NewAsyncDevice(base, ssd.AsyncOptions{
		QueueDepth: 1, Latency: opts.Latency, Metrics: opts.Metrics,
		Context: ctx, Events: opts.Events,
	})
	defer dev.Close()
	w, err := diskio.NewStreamWriter(path, cm)
	if err != nil {
		return err
	}
	var p uint32
	for p < st.NumPages {
		count := st.AlignedRange(p, 1)
		data, err := dev.ReadPages(p, count)
		if err != nil {
			return fmt.Errorf("gchi: reading pages [%d,+%d): %w", p, count, err)
		}
		recs, err := st.Decode(data)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if len(r.Adj) == 0 {
				continue
			}
			if err := w.WriteRecord(r.ID, r.Adj); err != nil {
				return err
			}
		}
		p += uint32(count)
	}
	return w.Close()
}

// loadPivot reads the pivot block (the id-order prefix) into memory,
// charging a partial pass over the file.
func loadPivot(path string, pivotBytes int64, cm diskio.CostModel) (map[uint32][]uint32, error) {
	r, err := diskio.NewStreamReader(path, cm)
	if err != nil {
		return nil, err
	}
	defer func() { _ = r.Close() }() // read-only pass; nothing to lose on close
	pivot := make(map[uint32][]uint32)
	var used int64
	for used < pivotBytes {
		id, adj, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		pivot[id] = adj
		used += int64(8 + 4*len(adj))
	}
	return pivot, nil
}

// identify streams the whole file and counts triangles whose lowest vertex
// is in the pivot: for each streamed record v, every u ∈ n≺(v) ∩ pivot
// contributes |n≻(u) ∩ n≻(v)| triangles. Batches of records are processed
// in parallel with a barrier between batches (the enforced sequential
// order).
func identify(path string, pivot map[uint32][]uint32, cm diskio.CostModel, opts Options) (int64, time.Duration, []time.Duration, error) {
	r, err := diskio.NewStreamReader(path, cm)
	if err != nil {
		return 0, 0, nil, err
	}
	defer func() { _ = r.Close() }() // read-only pass; nothing to lose on close

	type rec struct {
		id  uint32
		adj []uint32
	}
	var total int64
	var batchWork time.Duration
	batch := make([]rec, 0, opts.BatchRecords)
	partial := make([]int64, max(opts.Threads, 1))

	// countRecord is the per-record kernel shared by both execution modes.
	var buf []uint32
	countRecord := func(v rec) int64 {
		var local int64
		nsV := nsucc(v.adj, v.id)
		for _, u := range npred(v.adj, v.id) {
			adjU, ok := pivot[u]
			if !ok {
				continue
			}
			nsU := nsucc(adjU, u)
			if opts.Metrics != nil {
				opts.Metrics.AddIntersect(intersect.MinCost(nsU, nsV))
			}
			buf = intersect.Adaptive(buf[:0], nsU, nsV)
			local += int64(len(buf))
		}
		return local
	}

	// processBatchVirtual runs the batch serially, list-scheduling measured
	// per-record durations onto each virtual core set with a barrier at
	// the batch boundary (the enforced sequential order of §4).
	clockSets := make([][]time.Duration, len(opts.VirtualCoreSet))
	for i, c := range opts.VirtualCoreSet {
		if c < 1 {
			c = 1
		}
		clockSets[i] = make([]time.Duration, c)
	}
	batchVirtual := make([]time.Duration, len(opts.VirtualCoreSet))
	processBatchVirtual := func() {
		if len(batch) == 0 {
			return
		}
		batchStart := time.Now()
		for _, clocks := range clockSets {
			for i := range clocks {
				clocks[i] = 0
			}
		}
		for _, v := range batch {
			t0 := time.Now()
			total += countRecord(v)
			d := time.Since(t0)
			for _, clocks := range clockSets {
				least := 0
				for i := 1; i < len(clocks); i++ {
					if clocks[i] < clocks[least] {
						least = i
					}
				}
				clocks[least] += d
			}
		}
		for si, clocks := range clockSets {
			mx := clocks[0]
			for _, c := range clocks[1:] {
				if c > mx {
					mx = c
				}
			}
			batchVirtual[si] += mx
		}
		batchWork += time.Since(batchStart)
		batch = batch[:0]
	}

	processBatch := func() {
		if len(opts.VirtualCoreSet) > 0 {
			processBatchVirtual()
			return
		}
		if len(batch) == 0 {
			return
		}
		batchStart := time.Now()
		defer func() { batchWork += time.Since(batchStart) }()
		var wg sync.WaitGroup
		for t := 0; t < opts.Threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf []uint32
				var local int64
				for i := t; i < len(batch); i += opts.Threads {
					v := batch[i]
					nsV := nsucc(v.adj, v.id)
					for _, u := range npred(v.adj, v.id) {
						adjU, ok := pivot[u]
						if !ok {
							continue
						}
						nsU := nsucc(adjU, u)
						if opts.Metrics != nil {
							opts.Metrics.AddIntersect(intersect.MinCost(nsU, nsV))
						}
						buf = intersect.Adaptive(buf[:0], nsU, nsV)
						local += int64(len(buf))
					}
				}
				partial[t] += local
			}()
		}
		wg.Wait() // barrier: sequential-order enforcement between batches
		batch = batch[:0]
	}

	for {
		id, adj, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, nil, err
		}
		batch = append(batch, rec{id: id, adj: adj})
		if len(batch) >= opts.BatchRecords {
			processBatch()
		}
	}
	processBatch()
	for _, x := range partial {
		total += x
	}
	return total, batchWork, batchVirtual, nil
}

// shrink streams the whole file once more and writes the remainder with
// every pivot-incident edge removed.
func shrink(curPath, nextPath string, pivot map[uint32][]uint32, cm diskio.CostModel) (int64, error) {
	r, err := diskio.NewStreamReader(curPath, cm)
	if err != nil {
		return 0, err
	}
	defer func() { _ = r.Close() }() // read-only pass; nothing to lose on close
	w, err := diskio.NewStreamWriter(nextPath, cm)
	if err != nil {
		return 0, err
	}
	var edgesLeft int64
	for {
		id, adj, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if _, inPivot := pivot[id]; inPivot {
			continue
		}
		kept := adj[:0]
		for _, x := range adj {
			if _, ok := pivot[x]; !ok {
				kept = append(kept, x)
			}
		}
		if len(kept) > 0 {
			if err := w.WriteRecord(id, kept); err != nil {
				return 0, err
			}
			edgesLeft += int64(len(nsucc(kept, id)))
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return edgesLeft, nil
}

func nsucc(adj []uint32, v uint32) []uint32 { return adj[intersect.UpperBound(adj, v):] }
func npred(adj []uint32, v uint32) []uint32 { return adj[:intersect.LowerBound(adj, v)] }
