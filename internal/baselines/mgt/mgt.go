// Package mgt implements the MGT baseline (Hu, Tao, Chung — "Massive graph
// triangulation", SIGMOD'13) as characterised in §3.5 of the OPT paper: an
// instance of the framework in which (1) no work happens in the internal
// triangulation, (2) every vertex is an external candidate, (3) the
// vertex-iterator external kernel is used, and (4) all I/O is synchronous.
//
// Per memory block B (the buffer's worth of adjacency lists), MGT scans the
// entire graph once and, for every scanned record u, checks the ordered
// pairs (v, w) ∈ n≻(u) × n≻(u) with n(v) ∈ B against the in-memory edges.
// A triangle Δuvw is found in exactly the block that holds n(v), so the
// I/O cost is (1 + ⌈P(G)/m⌉)·cP(G) reads and zero writes (Eq. 7).
package mgt

import (
	"context"
	"fmt"
	"time"

	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/intersect"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Options configures an MGT run.
type Options struct {
	// MemoryPages is the buffer budget m in pages (the whole buffer forms
	// the block; MGT has no external area). Defaults to a quarter of the
	// store.
	MemoryPages int
	// ScanPages is the number of pages fetched per synchronous scan read
	// (MGT streams the graph; 1 models the paper's page-at-a-time scan,
	// larger values model read-ahead). Default 1.
	ScanPages int
	// Latency is the simulated device latency.
	Latency ssd.Latency
	// Output receives triangles; nil counts only.
	Output core.Output
	// Metrics receives cost counters; optional.
	Metrics *metrics.Collector
	// Events receives progress events (block boundaries, page I/O);
	// optional.
	Events events.Sink
}

// Result reports a completed MGT run.
type Result struct {
	Triangles int64
	Blocks    int
	Elapsed   time.Duration
}

// Run executes MGT over the store using base for page I/O.
func Run(st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	return RunContext(context.Background(), st, base, opts)
}

// RunContext is Run with cancellation: when ctx is done the run stops at
// the next block or scan read and returns the partial Result accumulated so
// far alongside an error satisfying errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MemoryPages <= 0 {
		opts.MemoryPages = int(st.NumPages)/4 + 2
	}
	if opts.ScanPages <= 0 {
		opts.ScanPages = 1
	}
	out := opts.Output
	var counts *core.CountingOutput
	if out == nil {
		counts = &core.CountingOutput{}
		out = counts
	}
	dev := ssd.NewAsyncDevice(base, ssd.AsyncOptions{
		QueueDepth: 1, // MGT is strictly synchronous
		Latency:    opts.Latency,
		Metrics:    opts.Metrics,
		Context:    ctx,
		Events:     opts.Events,
	})
	defer dev.Close()

	emit := func(e events.Event) {
		if opts.Events != nil {
			e.Algorithm = "MGT"
			opts.Events.Event(e)
		}
	}
	start := time.Now()
	res := &Result{}
	finish := func(err error) (*Result, error) {
		res.Elapsed = time.Since(start)
		if opts.Metrics != nil {
			opts.Metrics.AddTriangles(res.Triangles)
		}
		return res, err
	}
	var lo uint32
	for lo < st.NumPages {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		count := opts.MemoryPages
		if rem := int(st.NumPages - lo); count > rem {
			count = rem
		}
		count = st.AlignedRange(lo, count)
		hi := lo + uint32(count)

		blkStart := time.Now()
		emit(events.Event{Kind: events.IterationStart, Iteration: res.Blocks, N: int64(count)})
		block, err := loadBlock(st, dev, lo, hi)
		if err != nil {
			return finish(err)
		}
		t, err := scan(st, dev, block, opts, out)
		res.Triangles += t
		if t > 0 {
			emit(events.Event{Kind: events.TrianglesFound, Iteration: res.Blocks, N: t})
		}
		emit(events.Event{Kind: events.IterationEnd, Iteration: res.Blocks, N: t, Elapsed: time.Since(blkStart)})
		if err != nil {
			return finish(err)
		}
		res.Blocks++
		lo = hi
	}
	return finish(nil)
}

// block holds the adjacency lists of one memory block.
type block struct {
	adj    map[uint32][]uint32
	lo, hi uint32 // page range, for the constant-time residency test
	st     *storage.Store
}

func (b *block) contains(v uint32) bool {
	p := b.st.FirstPageOf(v)
	return p >= b.lo && p < b.hi
}

func loadBlock(st *storage.Store, dev *ssd.AsyncDevice, lo, hi uint32) (*block, error) {
	data, err := dev.ReadPages(lo, int(hi-lo))
	if err != nil {
		return nil, fmt.Errorf("mgt: loading block [%d, %d): %w", lo, hi, err)
	}
	recs, err := st.Decode(data)
	if err != nil {
		return nil, err
	}
	b := &block{adj: make(map[uint32][]uint32, len(recs)), lo: lo, hi: hi, st: st}
	for _, r := range recs {
		b.adj[r.ID] = r.Adj
	}
	return b, nil
}

// scan streams the whole graph synchronously and applies the
// vertex-iterator pair kernel against the block.
func scan(st *storage.Store, dev *ssd.AsyncDevice, b *block, opts Options, out core.Output) (int64, error) {
	var total int64
	var ws []uint32
	var p uint32
	for p < st.NumPages {
		// MGT re-reads every page of the graph per block, including the
		// block's own pages: the strict (1 + ⌈P/m⌉)·P(G) behaviour of Eq. 7.
		count := st.AlignedRange(p, opts.ScanPages)
		data, err := dev.ReadPages(p, count)
		if err != nil {
			return 0, fmt.Errorf("mgt: scanning pages [%d,+%d): %w", p, count, err)
		}
		recs, err := st.Decode(data)
		if err != nil {
			return 0, err
		}
		for _, u := range recs {
			ns := nsucc(u.Adj, u.ID)
			for i, v := range ns {
				if !b.contains(v) {
					continue
				}
				rest := ns[i+1:]
				if len(rest) == 0 {
					continue
				}
				if opts.Metrics != nil {
					opts.Metrics.AddIntersect(int64(len(rest)))
				}
				adjV := b.adj[v]
				ws = ws[:0]
				for _, w := range rest {
					if intersect.Contains(adjV, w) {
						ws = append(ws, w)
					}
				}
				if len(ws) > 0 {
					total += int64(len(ws))
					out.Emit(u.ID, v, ws)
				}
			}
		}
		p += uint32(count)
	}
	return total, nil
}

func nsucc(adj []uint32, v uint32) []uint32 {
	return adj[intersect.UpperBound(adj, v):]
}
