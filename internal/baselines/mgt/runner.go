package mgt

import (
	"context"

	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// engineRunner adapts MGT to the engine.Runner contract.
type engineRunner struct{}

func init() {
	engine.Register(engine.Info{
		Name:           "MGT",
		ListsTriangles: true,
	}, engineRunner{})
}

// Run implements engine.Runner.
func (engineRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts engine.Options) (*engine.Result, error) {
	mx := metrics.NewCollector()
	var out core.Output
	if opts.OnTriangles != nil {
		out = core.FuncOutput(opts.OnTriangles)
	}
	res, err := RunContext(ctx, st, dev, Options{
		MemoryPages: opts.MemoryPages,
		Latency:     opts.Latency,
		Output:      out,
		Metrics:     mx,
		Events:      opts.Events,
	})
	if res == nil {
		return nil, err
	}
	snap := mx.Snapshot()
	return &engine.Result{
		Triangles:    res.Triangles,
		Iterations:   res.Blocks,
		Elapsed:      res.Elapsed,
		PagesRead:    snap.PagesRead,
		PagesWritten: snap.PagesWritten,
		IntersectOps: snap.IntersectOps,
	}, err
}
