package inmem

import (
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/metrics"
)

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rmat, err := gen.RMAT(gen.DefaultRMAT(1<<10, 15_000, 77))
	if err != nil {
		t.Fatal(err)
	}
	ordered, _ := graph.DegreeOrder(rmat)
	hk, err := gen.HolmeKim(gen.HolmeKimParams{NumVertices: 800, M: 6, TriadProb: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"paper": graph.PaperExample(),
		"k25":   graph.Complete(25),
		"cycle": graph.Cycle(100),
		"star":  graph.Star(100),
		"rmat":  ordered,
		"hk":    hk,
	}
}

func TestAllMethodsAgree(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := graph.CountTrianglesReference(g)
		if got := EdgeIteratorCount(g, nil, nil); got != want {
			t.Errorf("%s: EdgeIterator = %d, want %d", name, got, want)
		}
		if got := VertexIteratorCount(g, nil, nil); got != want {
			t.Errorf("%s: VertexIterator = %d, want %d", name, got, want)
		}
		if got := AYZCount(g, nil); got != want {
			t.Errorf("%s: AYZ = %d, want %d", name, got, want)
		}
		for _, threads := range []int{1, 2, 4} {
			if got := EdgeIteratorParallel(g, threads, nil); got != want {
				t.Errorf("%s: EdgeIteratorParallel(%d) = %d, want %d", name, threads, got, want)
			}
		}
	}
}

func TestEdgeIteratorEmitsNested(t *testing.T) {
	g := graph.PaperExample()
	var recs int
	var tris int
	EdgeIteratorCount(g, func(u, v uint32, ws []uint32) {
		recs++
		tris += len(ws)
		if u >= v {
			t.Errorf("emit (u=%d, v=%d) violates ordering", u, v)
		}
		for _, w := range ws {
			if w <= v {
				t.Errorf("emit w=%d <= v=%d", w, v)
			}
		}
	}, nil)
	if tris != 5 {
		t.Fatalf("emitted %d triangles, want 5", tris)
	}
	if recs > tris {
		t.Fatalf("nested representation degenerate: %d records for %d triangles", recs, tris)
	}
}

func TestVertexIteratorEmits(t *testing.T) {
	g := graph.Complete(5)
	var tris int
	VertexIteratorCount(g, func(_, _ uint32, ws []uint32) { tris += len(ws) }, nil)
	if tris != 10 {
		t.Fatalf("emitted %d triangles, want 10", tris)
	}
}

func TestMetricsCostModel(t *testing.T) {
	g := graph.PaperExample()
	mx := metrics.NewCollector()
	EdgeIteratorCount(g, nil, mx)
	if mx.Triangles() != 5 {
		t.Fatalf("metrics triangles = %d", mx.Triangles())
	}
	if mx.Intersections() != int64(g.NumEdges()) {
		t.Fatalf("intersections = %d, want one per edge = %d", mx.Intersections(), g.NumEdges())
	}
	if mx.IntersectOps() == 0 {
		t.Fatal("IntersectOps = 0")
	}
	// Both iterators record their cost; the VI collector must also be
	// populated. (The paper's ~20% EI-vs-VI wall-time gap comes from the
	// heavier per-operation cost of VI's pair probes, not the op count.)
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 8000, 5))
	og, _ := graph.DegreeOrder(raw)
	mxVI := metrics.NewCollector()
	VertexIteratorCount(og, nil, mxVI)
	if mxVI.IntersectOps() == 0 {
		t.Fatal("VI recorded no cost")
	}
}

func TestDegreeOrderingReducesCost(t *testing.T) {
	// The Schank–Wagner heuristic must reduce the Eq. 3 cost on power-law
	// graphs (§2.2).
	raw, _ := gen.RMAT(gen.DefaultRMAT(1<<11, 30_000, 9))
	ordered, _ := graph.DegreeOrder(raw)
	mxRaw := metrics.NewCollector()
	mxOrd := metrics.NewCollector()
	EdgeIteratorCount(raw, nil, mxRaw)
	EdgeIteratorCount(ordered, nil, mxOrd)
	if mxOrd.IntersectOps() >= mxRaw.IntersectOps() {
		t.Fatalf("degree ordering did not reduce cost: %d >= %d",
			mxOrd.IntersectOps(), mxRaw.IntersectOps())
	}
}

func TestIdeal(t *testing.T) {
	g := graph.PaperExample()
	mx := metrics.NewCollector()
	res := Ideal(g, 42, nil, mx)
	if res.Triangles != 5 {
		t.Fatalf("Ideal triangles = %d, want 5", res.Triangles)
	}
	if res.PagesRead != 42 || mx.PagesRead() != 42 {
		t.Fatalf("Ideal pages = %d / %d, want 42", res.PagesRead, mx.PagesRead())
	}
}

func TestAYZHighDegreeSplit(t *testing.T) {
	// A dense core plus sparse periphery exercises both AYZ steps.
	b := graph.NewBuilder(60)
	// K12 core (high degree).
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			_ = b.AddEdge(uint32(u), uint32(v))
		}
	}
	// Periphery triangles touching the core.
	for i := 12; i < 58; i += 2 {
		_ = b.AddEdge(uint32(i), uint32(i+1))
		_ = b.AddEdge(uint32(i), uint32(i%12))
		_ = b.AddEdge(uint32(i+1), uint32(i%12))
	}
	g := b.Build()
	want := graph.CountTrianglesReference(g)
	if got := AYZCount(g, nil); got != want {
		t.Fatalf("AYZ = %d, want %d", got, want)
	}
}

func TestForwardMatchesReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := graph.CountTrianglesReference(g)
		if got := ForwardCount(g, nil, nil); got != want {
			t.Errorf("%s: Forward = %d, want %d", name, got, want)
		}
	}
}

func TestForwardEmitsOrderedTriangles(t *testing.T) {
	g := graph.PaperExample()
	seen := map[[3]uint32]bool{}
	ForwardCount(g, func(u, v uint32, ws []uint32) {
		for _, w := range ws {
			if !(u < v && v < w) {
				t.Errorf("unordered triangle (%d,%d,%d)", u, v, w)
			}
			key := [3]uint32{u, v, w}
			if seen[key] {
				t.Errorf("duplicate triangle %v", key)
			}
			seen[key] = true
		}
	}, nil)
	if len(seen) != 5 {
		t.Fatalf("Forward emitted %d triangles, want 5", len(seen))
	}
}

func TestForwardMetrics(t *testing.T) {
	g := graph.Complete(10)
	mx := metrics.NewCollector()
	if got := ForwardCount(g, nil, mx); got != 120 {
		t.Fatalf("Forward(K10) = %d, want 120", got)
	}
	if mx.Triangles() != 120 || mx.Intersections() == 0 {
		t.Fatalf("metrics not recorded: %+v", mx.Snapshot())
	}
}
