// Package inmem implements the in-memory triangulation baselines of §2.2
// and §5.3: VertexIterator≻ (Algorithm 1), EdgeIterator≻ (Algorithm 2), and
// the AYZ matrix-multiplication counting method of Alon, Yuster & Zwick [2].
// It also provides Ideal: the cost-model reference method that loads the
// whole graph once and triangulates in memory (Eq. 6).
package inmem

import (
	"math"
	"runtime"
	"sync"

	"github.com/optlab/opt/internal/bits"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/intersect"
	"github.com/optlab/opt/internal/metrics"
)

// Emit receives nested-representation triangles. A nil Emit counts only.
type Emit func(u, v uint32, ws []uint32)

// EdgeIteratorCount runs Algorithm 2: for each edge (u, v), output
// n≻(u) ∩ n≻(v). Returns the triangle count.
func EdgeIteratorCount(g *graph.Graph, emit Emit, mx *metrics.Collector) int64 {
	var total int64
	var buf []uint32
	g.Edges(func(u, v graph.VertexID) bool {
		nsU := g.NeighborsAfter(u)
		nsV := g.NeighborsAfter(v)
		if mx != nil {
			mx.AddIntersect(intersect.MinCost(nsU, nsV))
		}
		buf = intersect.Adaptive(buf[:0], nsU, nsV)
		if len(buf) > 0 {
			total += int64(len(buf))
			if emit != nil {
				emit(uint32(u), uint32(v), buf)
			}
		}
		return true
	})
	if mx != nil {
		mx.AddTriangles(total)
	}
	return total
}

// VertexIteratorCount runs Algorithm 1: for each vertex u and ordered pair
// (v, w) ∈ n≻(u) × n≻(u), test (v, w) ∈ E.
func VertexIteratorCount(g *graph.Graph, emit Emit, mx *metrics.Collector) int64 {
	var total int64
	var buf []uint32
	n := g.NumVertices()
	for ui := 0; ui < n; ui++ {
		u := graph.VertexID(ui)
		ns := g.NeighborsAfter(u)
		for i, v := range ns {
			rest := ns[i+1:]
			if len(rest) == 0 {
				continue
			}
			if mx != nil {
				mx.AddIntersect(int64(len(rest)))
			}
			buf = buf[:0]
			adjV := g.Neighbors(v)
			for _, w := range rest {
				if intersect.Contains(adjV, w) {
					buf = append(buf, w)
				}
			}
			if len(buf) > 0 {
				total += int64(len(buf))
				if emit != nil {
					emit(uint32(u), v, buf)
				}
			}
		}
	}
	if mx != nil {
		mx.AddTriangles(total)
	}
	return total
}

// EdgeIteratorParallel runs Algorithm 2 with the edge loop partitioned over
// vertices across threads goroutines.
func EdgeIteratorParallel(g *graph.Graph, threads int, mx *metrics.Collector) int64 {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	var wg sync.WaitGroup
	totals := make([]int64, threads)
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []uint32
			var local int64
			for ui := t; ui < n; ui += threads {
				u := graph.VertexID(ui)
				nsU := g.NeighborsAfter(u)
				for _, v := range nsU {
					nsV := g.NeighborsAfter(v)
					if mx != nil {
						mx.AddIntersect(intersect.MinCost(nsU, nsV))
					}
					buf = intersect.Adaptive(buf[:0], nsU, nsV)
					local += int64(len(buf))
				}
			}
			totals[t] = local
		}()
	}
	wg.Wait()
	var total int64
	for _, x := range totals {
		total += x
	}
	if mx != nil {
		mx.AddTriangles(total)
	}
	return total
}

// AYZCount implements the counting method of Alon, Yuster & Zwick:
// vertices are split at threshold Δ = |E|^((ω−1)/(ω+1)) into low- and
// high-degree sets; triangles among high-degree vertices are counted via
// boolean matrix multiplication (bitset rows), and triangles containing at
// least one low-degree vertex via the vertex-iterator with the ordering
// constraint. It counts only — AYZ is not a listing method (§5.3).
func AYZCount(g *graph.Graph, mx *metrics.Collector) int64 {
	const omega = 2.804 // Strassen exponent, as in the paper
	n := g.NumVertices()
	m := float64(g.NumEdges())
	delta := int(math.Pow(m, (omega-1)/(omega+1)))
	if delta < 1 {
		delta = 1
	}

	// Partition: high = degree > Δ.
	high := make([]uint32, 0)
	isHigh := bits.NewSet(n)
	for v := 0; v < n; v++ {
		if g.Degree(graph.VertexID(v)) > delta {
			high = append(high, uint32(v))
			isHigh.Add(v)
		}
	}

	// Step 1: triangles entirely within the high-degree induced subgraph,
	// via trace(A³)/6 computed as Σ_{(u,v)∈E_high} |N_high(u) ∩ N_high(v)| / 3,
	// with bitset rows playing the boolean matrix product.
	hidx := make(map[uint32]int, len(high))
	for i, v := range high {
		hidx[v] = i
	}
	rows := make([]*bits.Set, len(high))
	for i, v := range high {
		row := bits.NewSet(len(high))
		for _, w := range g.Neighbors(v) {
			if j, ok := hidx[w]; ok {
				row.Add(j)
			}
		}
		rows[i] = row
	}
	var highTris int64
	for i, v := range high {
		for _, w := range g.Neighbors(v) {
			if j, ok := hidx[w]; ok && j > i {
				c := int64(rows[i].AndCount(rows[j]))
				if mx != nil {
					mx.AddIntersect(c)
				}
				highTris += c
			}
		}
	}
	highTris /= 3

	// Step 2: triangles with at least one low-degree vertex, counted with
	// the ordering-constrained vertex iterator restricted to u low-degree
	// OR (u high but v or w low). Iterating u over all vertices with the
	// ordering constraint and skipping all-high triangles keeps each
	// triangle counted exactly once.
	var lowTris int64
	for ui := 0; ui < n; ui++ {
		u := graph.VertexID(ui)
		ns := g.NeighborsAfter(u)
		for i, v := range ns {
			rest := ns[i+1:]
			if len(rest) == 0 {
				continue
			}
			if mx != nil {
				mx.AddIntersect(int64(len(rest)))
			}
			adjV := g.Neighbors(v)
			for _, w := range rest {
				if !intersect.Contains(adjV, w) {
					continue
				}
				if isHigh.Contains(int(u)) && isHigh.Contains(int(v)) && isHigh.Contains(int(w)) {
					continue // counted in step 1
				}
				lowTris++
			}
		}
	}
	total := highTris + lowTris
	if mx != nil {
		mx.AddTriangles(total)
	}
	return total
}

// IdealResult reports an Ideal run (Eq. 6): the I/O cost of reading the
// graph once plus the in-memory CPU cost.
type IdealResult struct {
	Triangles int64
	PagesRead int64
}

// Ideal triangulates g as the ideal method: it charges one sequential read
// of all pages (P(G)) to the metrics collector and then runs the in-memory
// EdgeIterator≻. loadPages is P(G) for the store representation in use.
func Ideal(g *graph.Graph, loadPages int64, emit Emit, mx *metrics.Collector) IdealResult {
	if mx != nil {
		mx.AddPagesRead(loadPages)
	}
	t := EdgeIteratorCount(g, emit, mx)
	return IdealResult{Triangles: t, PagesRead: loadPages}
}
