package inmem

import (
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/intersect"
	"github.com/optlab/opt/internal/metrics"
)

// ForwardCount implements the compact-forward algorithm (Latapy, TCS 2008
// — reference [24] of the paper): vertices are processed in id order while
// growing per-vertex prefix lists A(v) ⊆ n≺(v); for every edge (u, v) with
// u ≺ v, the triangles through it with both other corners already
// processed are |A(u) ∩ A(v)|. Each triangle Δxyz is found exactly once,
// when its highest-ordered edge (y, z) is processed: both A-lists then
// contain x. Under the degree ordering it matches EdgeIterator≻'s O(α|E|)
// bound with a smaller working set.
func ForwardCount(g *graph.Graph, emit Emit, mx *metrics.Collector) int64 {
	n := g.NumVertices()
	a := make([][]uint32, n) // A(v): processed neighbors of v with lower id
	var total int64
	var buf []uint32
	for ui := 0; ui < n; ui++ {
		u := graph.VertexID(ui)
		for _, v := range g.NeighborsAfter(u) {
			au, av := a[u], a[v]
			if mx != nil {
				mx.AddIntersect(intersect.MinCost(au, av))
			}
			buf = intersect.Adaptive(buf[:0], au, av)
			if len(buf) > 0 {
				total += int64(len(buf))
				if emit != nil {
					// buf holds the lowest corners x of triangles Δxuv.
					for _, x := range buf {
						emit(x, uint32(u), []uint32{v})
					}
				}
			}
			// u is now processed: it joins A(v) (ids arrive in order, so
			// A(v) stays sorted).
			a[v] = append(a[v], uint32(u))
		}
	}
	if mx != nil {
		mx.AddTriangles(total)
	}
	return total
}
