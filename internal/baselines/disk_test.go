// Package baselines_test checks the I/O-cost orderings the paper's
// analysis predicts for the disk-based baselines (Eq. 7, the
// slow-group/fast-group split of §5.5) plus their listing and
// failure-surface behaviour. Count cross-validation against the in-memory
// reference lives in internal/difftest, which sweeps every registered
// algorithm over one shared graph × budget matrix.
package baselines_test

import (
	"path/filepath"
	"testing"

	"github.com/optlab/opt/internal/baselines/cc"
	"github.com/optlab/opt/internal/baselines/gchi"
	"github.com/optlab/opt/internal/baselines/mgt"
	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

func buildStore(t testing.TB, g *graph.Graph, pageSize int) (*storage.Store, *ssd.FileDevice) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.optstore")
	st, err := storage.BuildFile(path, g, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := st.Device()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dev.Close() })
	return st, dev
}

func TestMGTIOCostEq7(t *testing.T) {
	// MGT's read I/O is (1 + #blocks) · P(G): one block-load pass plus one
	// full scan per block.
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 8000, 3))
	g, _ := graph.DegreeOrder(raw)
	st, dev := buildStore(t, g, 128)
	mx := metrics.NewCollector()
	res, err := mgt.Run(st, dev, mgt.Options{MemoryPages: int(st.NumPages) / 4, Metrics: mx})
	if err != nil {
		t.Fatal(err)
	}
	wantPages := int64(res.Blocks+1) * int64(st.NumPages)
	if got := mx.PagesRead(); got != wantPages {
		t.Fatalf("MGT pages read = %d, want (1+%d)·%d = %d", got, res.Blocks, st.NumPages, wantPages)
	}
	if mx.PagesWritten() != 0 {
		t.Fatalf("MGT wrote %d pages; it must be read-only", mx.PagesWritten())
	}
}

func TestCCListsTriangles(t *testing.T) {
	g := graph.PaperExample()
	for _, variant := range []cc.Variant{cc.Seq, cc.DS} {
		st, dev := buildStore(t, g, 64)
		out := &core.CollectingOutput{}
		if _, err := cc.Run(st, dev, cc.Options{Variant: variant, MemoryPages: 2, Output: out, TempDir: t.TempDir()}); err != nil {
			t.Fatal(err)
		}
		tris := out.Triangles()
		if len(tris) != 5 {
			t.Fatalf("%v listed %d triangles, want 5: %v", variant, len(tris), tris)
		}
		// CC-DS emits in original ids: check the known set.
		want := []core.Triangle{{U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 5}, {U: 2, V: 5, W: 6}, {U: 2, V: 6, W: 7}, {U: 3, V: 4, W: 5}}
		for i := range want {
			if tris[i] != want[i] {
				t.Fatalf("%v triangles = %v, want %v", variant, tris, want)
			}
		}
	}
}

func TestCCWritesRemainders(t *testing.T) {
	// The slow-group signature: CC writes remainder files every iteration.
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 8000, 3))
	g, _ := graph.DegreeOrder(raw)
	st, dev := buildStore(t, g, 128)
	mx := metrics.NewCollector()
	res, err := cc.Run(st, dev, cc.Options{MemoryPages: int(st.NumPages) / 5, Metrics: mx, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations = %d, want >= 2 with a small buffer", res.Iterations)
	}
	if mx.PagesWritten() == 0 {
		t.Fatal("CC wrote no pages; the remainder rewrite is missing")
	}
	if mx.PagesRead() <= int64(st.NumPages) {
		t.Fatalf("CC read %d pages, want more than one pass (%d)", mx.PagesRead(), st.NumPages)
	}
}

func TestGraphChiDoesMoreIOThanCC(t *testing.T) {
	// GraphChi-Tri pays two read passes plus a write per pivot block at
	// half the buffer; with equal budgets its total I/O exceeds CC's.
	raw, _ := gen.RMAT(gen.DefaultRMAT(512, 8000, 17))
	g, _ := graph.DegreeOrder(raw)
	budget := 8

	stCC, devCC := buildStore(t, g, 128)
	mxCC := metrics.NewCollector()
	if _, err := cc.Run(stCC, devCC, cc.Options{MemoryPages: budget, Metrics: mxCC, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	stG, devG := buildStore(t, g, 128)
	mxG := metrics.NewCollector()
	if _, err := gchi.Run(stG, devG, gchi.Options{MemoryPages: budget, Metrics: mxG, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	ioCC := mxCC.PagesRead() + mxCC.PagesWritten()
	ioG := mxG.PagesRead() + mxG.PagesWritten()
	if ioG <= ioCC {
		t.Fatalf("GraphChi I/O %d <= CC I/O %d; expected more", ioG, ioCC)
	}
}

func TestSlowGroupVsFastGroupIO(t *testing.T) {
	// §5.5: the fast group (MGT) performs read-only I/O; the slow group
	// (CC, GraphChi) reads AND writes, and with a small buffer the slow
	// group's total I/O exceeds MGT's.
	raw, _ := gen.RMAT(gen.DefaultRMAT(1024, 16000, 23))
	g, _ := graph.DegreeOrder(raw)
	budget := 6

	stM, devM := buildStore(t, g, 128)
	mxM := metrics.NewCollector()
	if _, err := mgt.Run(stM, devM, mgt.Options{MemoryPages: budget, Metrics: mxM}); err != nil {
		t.Fatal(err)
	}
	stC, devC := buildStore(t, g, 128)
	mxC := metrics.NewCollector()
	if _, err := cc.Run(stC, devC, cc.Options{MemoryPages: budget, Metrics: mxC, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if mxC.PagesWritten() == 0 || mxM.PagesWritten() != 0 {
		t.Fatalf("write split wrong: CC wrote %d, MGT wrote %d", mxC.PagesWritten(), mxM.PagesWritten())
	}
}

func TestBaselinesOnFaultyDevice(t *testing.T) {
	raw, _ := gen.RMAT(gen.DefaultRMAT(256, 3000, 29))
	g, _ := graph.DegreeOrder(raw)
	st, dev := buildStore(t, g, 128)
	faulty := &ssd.FaultyDevice{PageDevice: dev, FailEveryN: 5}
	if _, err := mgt.Run(st, faulty, mgt.Options{MemoryPages: 4}); err == nil {
		t.Error("MGT on faulty device: want error")
	}
	faulty2 := &ssd.FaultyDevice{PageDevice: dev, FailEveryN: 3}
	if _, err := cc.Run(st, faulty2, cc.Options{MemoryPages: 4, TempDir: t.TempDir()}); err == nil {
		t.Error("CC on faulty device: want error")
	}
	faulty3 := &ssd.FaultyDevice{PageDevice: dev, FailEveryN: 3}
	if _, err := gchi.Run(st, faulty3, gchi.Options{MemoryPages: 4, TempDir: t.TempDir()}); err == nil {
		t.Error("GraphChi on faulty device: want error")
	}
}
