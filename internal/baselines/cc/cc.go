// Package cc implements the Chu–Cheng style iterative disk-based
// triangulation baselines of §4/§5 (CC-Seq and CC-DS, from "Triangle
// listing in massive networks", KDD'11). The defining I/O behaviour — the
// reason these methods form the paper's "slow group" — is that every
// iteration reads the whole current graph AND writes the remaining edges
// back to disk, shrinking the file until no edges remain.
//
// Per iteration: a partition M of adjacency lists is loaded until the
// memory budget fills; all triangles whose lowest-ordered vertex lies in M
// are listed (intra-M edges by direct intersection, cross edges by
// streaming the rest of the file); then every edge with its lower endpoint
// in M is dropped and the remainder (isolated vertices removed) is
// rewritten.
//
// CC-Seq takes partitions in id order. CC-DS models the degree-set
// heuristic: vertices are pre-permuted so high-degree vertices come first,
// killing more edges per early iteration. Both keep the exactly-once
// counting guarantee because triangle ownership follows the processing
// order.
package cc

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/diskio"
	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/intersect"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Variant selects the partitioning heuristic.
type Variant int

// Variants.
const (
	Seq Variant = iota // sequential partitions (CC-Seq)
	DS                 // degree-set heuristic (CC-DS)
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == DS {
		return "CC-DS"
	}
	return "CC-Seq"
}

// Options configures a CC run.
type Options struct {
	Variant Variant
	// MemoryPages is the buffer budget in pages of the input store's page
	// size. Defaults to a quarter of the store.
	MemoryPages int
	// TempDir holds the per-iteration remainder files. Defaults to the
	// store's directory.
	TempDir string
	// Latency is the simulated device latency, charged per page of
	// remainder-file I/O as well as for the initial store read.
	Latency ssd.Latency
	// Output receives triangles (in the ids of the input store); nil counts
	// only.
	Output core.Output
	// Metrics receives cost counters; optional.
	Metrics *metrics.Collector
	// Events receives progress events (iteration boundaries, page I/O);
	// optional.
	Events events.Sink

	// ctx is the run's cancellation context, set by RunContext and
	// propagated to every stream and device the run opens.
	ctx context.Context
}

// Result reports a completed CC run.
type Result struct {
	Triangles  int64
	Iterations int
	Elapsed    time.Duration
}

// Run executes CC over the store using base for the initial read.
func Run(st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	return RunContext(context.Background(), st, base, opts)
}

// RunContext is Run with cancellation: when ctx is done the run stops
// within one record of stream I/O and returns the partial Result
// accumulated over completed iterations alongside an error satisfying
// errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, st *storage.Store, base ssd.PageDevice, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.ctx = ctx
	if opts.MemoryPages <= 0 {
		opts.MemoryPages = int(st.NumPages)/4 + 2
	}
	if opts.TempDir == "" {
		opts.TempDir = filepath.Dir(st.Path)
	}
	out := opts.Output
	if out == nil {
		out = &core.CountingOutput{}
	}
	dir, err := os.MkdirTemp(opts.TempDir, "cc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	res := &Result{}
	emit := func(e events.Event) {
		if opts.Events != nil {
			e.Algorithm = opts.Variant.String()
			opts.Events.Event(e)
		}
	}
	finish := func(err error) (*Result, error) {
		res.Elapsed = time.Since(start)
		if opts.Metrics != nil {
			opts.Metrics.AddTriangles(res.Triangles)
		}
		return res, err
	}

	// Convert the input store into the iteration stream format. The read
	// of the input is charged through the device; the conversion write is
	// the first remainder write (for CC-DS it also applies the
	// degree-descending permutation, derivable from the store directory
	// without touching data pages).
	var toOrig []graph.VertexID
	var perm []graph.VertexID // original id -> processing id
	if opts.Variant == DS {
		perm, toOrig = dsPermutation(st)
	}
	cur := filepath.Join(dir, "iter-0.ccg")
	if err := convertStore(st, base, cur, perm, opts); err != nil {
		return finish(err)
	}

	budgetBytes := int64(opts.MemoryPages) * int64(st.PageSize)
	iter := 0
	for {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		iter++
		if iter > st.NumVertices+2 {
			return finish(fmt.Errorf("cc: no progress after %d iterations", iter))
		}
		itStart := time.Now()
		emit(events.Event{Kind: events.IterationStart, Iteration: iter - 1})
		next := filepath.Join(dir, fmt.Sprintf("iter-%d.ccg", iter))
		tris, edgesLeft, err := iterate(cur, next, st.PageSize, budgetBytes, opts, out, toOrig)
		res.Triangles += tris
		if tris > 0 {
			emit(events.Event{Kind: events.TrianglesFound, Iteration: iter - 1, N: tris})
		}
		emit(events.Event{Kind: events.IterationEnd, Iteration: iter - 1, N: tris, Elapsed: time.Since(itStart)})
		if err != nil {
			return finish(err)
		}
		res.Iterations = iter
		os.Remove(cur)
		cur = next
		if edgesLeft == 0 {
			break
		}
	}
	return finish(nil)
}

// dsPermutation computes the degree-descending relabeling from the store
// directory. perm maps original -> processing id; toOrig is the inverse.
func dsPermutation(st *storage.Store) (perm, toOrig []graph.VertexID) {
	n := st.NumVertices
	toOrig = make([]graph.VertexID, n)
	for i := range toOrig {
		toOrig[i] = graph.VertexID(i)
	}
	sort.SliceStable(toOrig, func(i, j int) bool {
		di, dj := st.DegreeOf(toOrig[i]), st.DegreeOf(toOrig[j])
		if di != dj {
			return di > dj
		}
		return toOrig[i] < toOrig[j]
	})
	perm = make([]graph.VertexID, n)
	for rank, orig := range toOrig {
		perm[orig] = graph.VertexID(rank)
	}
	return perm, toOrig
}

// convertStore reads every page of st through a latency-accounted device
// and writes the stream-format working file (applying perm when non-nil).
func convertStore(st *storage.Store, base ssd.PageDevice, path string, perm []graph.VertexID, opts Options) error {
	dev := ssd.NewAsyncDevice(base, ssd.AsyncOptions{
		QueueDepth: 1, Latency: opts.Latency, Metrics: opts.Metrics,
		Context: opts.ctx, Events: opts.Events,
	})
	defer dev.Close()
	w, err := newStreamWriter(path, st.PageSize, opts)
	if err != nil {
		return err
	}
	// With a permutation the records must be emitted in processing order;
	// buffer them. Without one, stream directly.
	var buffered map[uint32][]uint32
	if perm != nil {
		buffered = make(map[uint32][]uint32, st.NumVertices)
	}
	var p uint32
	for p < st.NumPages {
		count := st.AlignedRange(p, 1)
		data, err := dev.ReadPages(p, count)
		if err != nil {
			return fmt.Errorf("cc: reading pages [%d,+%d): %w", p, count, err)
		}
		recs, err := st.Decode(data)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if len(r.Adj) == 0 {
				continue
			}
			if perm == nil {
				if err := w.WriteRecord(r.ID, r.Adj); err != nil {
					return err
				}
				continue
			}
			adj := make([]uint32, len(r.Adj))
			for i, x := range r.Adj {
				adj[i] = uint32(perm[x])
			}
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
			buffered[uint32(perm[r.ID])] = adj
		}
		p += uint32(count)
	}
	if perm != nil {
		ids := make([]uint32, 0, len(buffered))
		for id := range buffered {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := w.WriteRecord(id, buffered[id]); err != nil {
				return err
			}
		}
	}
	return w.Close()
}

// iterate performs one partition-identify-shrink round: read curPath,
// write the shrunken remainder to nextPath, and return the triangles found
// plus the number of edges remaining.
func iterate(curPath, nextPath string, pageSize int, budgetBytes int64, opts Options, out core.Output, toOrig []graph.VertexID) (int64, int64, error) {
	r, err := newStreamReader(curPath, pageSize, opts)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = r.Close() }() // read-only pass; nothing to lose on close

	// Partition M: records in order until the memory budget fills.
	inM := make(map[uint32][]uint32)
	var mOrder []uint32
	var usedBytes int64
	for usedBytes < budgetBytes {
		id, adj, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		inM[id] = adj
		mOrder = append(mOrder, id)
		usedBytes += int64(8 + 4*len(adj))
	}

	emit := func(u, v uint32, ws []uint32) {
		if toOrig != nil {
			// The (u, v, w) roles follow the processing order; after mapping
			// back to original ids each triangle's corners must be re-sorted
			// so id(u) < id(v) < id(w) holds in the output.
			ou, ov := uint32(toOrig[u]), uint32(toOrig[v])
			for _, w := range ws {
				c := [3]uint32{ou, ov, uint32(toOrig[w])}
				sort.Slice(c[:], func(i, j int) bool { return c[i] < c[j] })
				out.Emit(c[0], c[1], c[2:3])
			}
			return
		}
		out.Emit(u, v, ws)
	}

	var tris int64
	var buf []uint32
	intersectEmit := func(u uint32, adjU []uint32, v uint32, adjV []uint32) {
		nsU := nsucc(adjU, u)
		nsV := nsucc(adjV, v)
		if opts.Metrics != nil {
			opts.Metrics.AddIntersect(intersect.MinCost(nsU, nsV))
		}
		buf = intersect.Adaptive(buf[:0], nsU, nsV)
		if len(buf) > 0 {
			tris += int64(len(buf))
			emit(u, v, buf)
		}
	}

	// Intra-M triangles.
	for _, u := range mOrder {
		adjU := inM[u]
		for _, v := range nsucc(adjU, u) {
			if adjV, ok := inM[v]; ok {
				intersectEmit(u, adjU, v, adjV)
			}
		}
	}

	// Stream the rest; find cross triangles and write the remainder.
	w, err := newStreamWriter(nextPath, pageSize, opts)
	if err != nil {
		return 0, 0, err
	}
	var edgesLeft int64
	for {
		id, adj, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		for _, u := range npred(adj, id) {
			if adjU, ok := inM[u]; ok {
				intersectEmit(u, adjU, id, adj)
			}
		}
		// Remainder: drop neighbors in M. With prefix partitions every
		// neighbor in M is a lower id, so filtering n≺ suffices, but filter
		// generally for safety.
		kept := adj[:0]
		for _, x := range adj {
			if _, ok := inM[x]; !ok {
				kept = append(kept, x)
			}
		}
		if len(kept) > 0 {
			if err := w.WriteRecord(id, kept); err != nil {
				return 0, 0, err
			}
			edgesLeft += int64(len(nsucc(kept, id)))
		}
	}
	if err := w.Close(); err != nil {
		return 0, 0, err
	}
	return tris, edgesLeft, nil
}

func nsucc(adj []uint32, v uint32) []uint32 { return adj[intersect.UpperBound(adj, v):] }
func npred(adj []uint32, v uint32) []uint32 { return adj[:intersect.LowerBound(adj, v)] }

// newStreamWriter adapts the package options to the shared stream format.
func newStreamWriter(path string, pageSize int, opts Options) (*diskio.StreamWriter, error) {
	return diskio.NewStreamWriter(path, diskio.CostModel{
		PageSize: pageSize, Latency: opts.Latency, Metrics: opts.Metrics,
		Context: opts.ctx, Events: opts.Events,
	})
}

// newStreamReader adapts the package options to the shared stream format.
func newStreamReader(path string, pageSize int, opts Options) (*diskio.StreamReader, error) {
	return diskio.NewStreamReader(path, diskio.CostModel{
		PageSize: pageSize, Latency: opts.Latency, Metrics: opts.Metrics,
		Context: opts.ctx, Events: opts.Events,
	})
}
