package cc

import (
	"context"

	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/engine"
	"github.com/optlab/opt/internal/metrics"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// engineRunner adapts one CC variant to the engine.Runner contract.
type engineRunner struct {
	variant Variant
}

func init() {
	engine.Register(engine.Info{
		Name:           Seq.String(),
		ListsTriangles: true,
	}, engineRunner{variant: Seq})
	engine.Register(engine.Info{
		Name:           DS.String(),
		ListsTriangles: true,
	}, engineRunner{variant: DS})
}

// Run implements engine.Runner.
func (e engineRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts engine.Options) (*engine.Result, error) {
	mx := metrics.NewCollector()
	var out core.Output
	if opts.OnTriangles != nil {
		out = core.FuncOutput(opts.OnTriangles)
	}
	res, err := RunContext(ctx, st, dev, Options{
		Variant:     e.variant,
		MemoryPages: opts.MemoryPages,
		TempDir:     opts.TempDir,
		Latency:     opts.Latency,
		Output:      out,
		Metrics:     mx,
		Events:      opts.Events,
	})
	if res == nil {
		return nil, err
	}
	snap := mx.Snapshot()
	return &engine.Result{
		Triangles:    res.Triangles,
		Iterations:   res.Iterations,
		Elapsed:      res.Elapsed,
		PagesRead:    snap.PagesRead,
		PagesWritten: snap.PagesWritten,
		IntersectOps: snap.IntersectOps,
	}, err
}
