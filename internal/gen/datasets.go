package gen

import (
	"fmt"
	"sort"

	"github.com/optlab/opt/internal/graph"
)

// DatasetSpec describes one of the paper's five real-world datasets
// (Table 2) and the R-MAT proxy we substitute for it. Scale 1.0 would
// reproduce the original vertex count; the experiment harness uses small
// scales so sweeps finish on commodity hardware, keeping the density
// |E|/|V| of the original.
type DatasetSpec struct {
	Name          string
	PaperVertices int64
	PaperEdges    int64
	PaperTris     int64
	Density       float64 // |E| / |V| of the original
	Seed          int64
}

// Datasets lists the Table 2 datasets in paper order.
var Datasets = []DatasetSpec{
	{Name: "lj", PaperVertices: 4_847_571, PaperEdges: 68_993_773, PaperTris: 285_730_264, Seed: 101},
	{Name: "orkut", PaperVertices: 3_072_627, PaperEdges: 223_534_301, PaperTris: 627_584_181, Seed: 102},
	{Name: "twitter", PaperVertices: 41_652_230, PaperEdges: 1_468_365_182, PaperTris: 34_824_916_864, Seed: 103},
	{Name: "uk", PaperVertices: 105_896_555, PaperEdges: 3_738_733_648, PaperTris: 286_701_284_103, Seed: 104},
	{Name: "yahoo", PaperVertices: 1_413_511_394, PaperEdges: 6_636_600_779, PaperTris: 85_782_928_684, Seed: 105},
}

func init() {
	for i := range Datasets {
		d := &Datasets[i]
		d.Density = float64(d.PaperEdges) / float64(d.PaperVertices)
	}
}

// DatasetByName returns the spec with the given name.
func DatasetByName(name string) (DatasetSpec, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(Datasets))
	for i, d := range Datasets {
		names[i] = d.Name
	}
	sort.Strings(names)
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// Proxy generates the R-MAT proxy of the dataset at the given vertex count,
// preserving the original's edge density. The result is degree-ordered, as
// every method in the paper assumes (§5.1).
func (d DatasetSpec) Proxy(numVertices int) (*graph.Graph, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("gen: proxy size %d, want > 0", numVertices)
	}
	edges := int64(float64(numVertices) * d.Density)
	g, err := RMAT(DefaultRMAT(numVertices, edges, d.Seed))
	if err != nil {
		return nil, err
	}
	og, _ := graph.DegreeOrder(g)
	return og, nil
}
