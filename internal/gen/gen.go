// Package gen provides the synthetic graph generators used by the
// experiments: R-MAT (Chakrabarti et al., SDM'04) for the scale-free
// workloads of Figs. 7a/7b and the real-dataset proxies, Erdős–Rényi as the
// degenerate R-MAT case, and Holme–Kim (Phys. Rev. E 2002) for the
// tunable-clustering sweep of Fig. 7c.
//
// All generators are deterministic given a seed and return simplified
// undirected graphs (no self-loops, no multi-edges).
package gen

import (
	"fmt"
	"math/rand"

	"github.com/optlab/opt/internal/graph"
)

// RMATParams configures the recursive matrix generator. The four quadrant
// probabilities must be positive and sum to 1. The paper uses the GTgraph
// defaults a=0.45, b=0.15, c=0.15, d=0.25.
type RMATParams struct {
	NumVertices int   // rounded up to a power of two internally
	NumEdges    int64 // number of edge samples (before simplification)
	A, B, C, D  float64
	Seed        int64
	// Noise perturbs the quadrant probabilities at each recursion level,
	// as in the original implementation, to avoid degenerate staircase
	// structure. 0 disables it; GTgraph uses 0.1.
	Noise float64
}

// DefaultRMAT returns the GTgraph default parameters used in §5.8 for the
// given scale.
func DefaultRMAT(numVertices int, numEdges int64, seed int64) RMATParams {
	return RMATParams{
		NumVertices: numVertices,
		NumEdges:    numEdges,
		A:           0.45, B: 0.15, C: 0.15, D: 0.25,
		Seed:  seed,
		Noise: 0.1,
	}
}

// RMAT generates an R-MAT graph. Edge endpoints are sampled by the
// recursive quadrant descent; the sampled multigraph is then simplified, so
// the resulting |E| is slightly below NumEdges for dense parameterisations.
func RMAT(p RMATParams) (*graph.Graph, error) {
	if p.NumVertices <= 0 {
		return nil, fmt.Errorf("gen: RMAT NumVertices = %d, want > 0", p.NumVertices)
	}
	if p.NumEdges < 0 {
		return nil, fmt.Errorf("gen: RMAT NumEdges = %d, want >= 0", p.NumEdges)
	}
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 || sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%v, %v, %v, %v) must be positive and sum to 1",
			p.A, p.B, p.C, p.D)
	}
	levels := 0
	for 1<<levels < p.NumVertices {
		levels++
	}
	n := p.NumVertices
	rng := rand.New(rand.NewSource(p.Seed))
	b := graph.NewBuilder(n)
	for i := int64(0); i < p.NumEdges; i++ {
		u, v := rmatSample(rng, levels, p)
		if int(u) >= n || int(v) >= n {
			// The power-of-two grid may exceed n; resample into range by
			// rejection to keep the distribution shape.
			i--
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

func rmatSample(rng *rand.Rand, levels int, p RMATParams) (graph.VertexID, graph.VertexID) {
	var u, v uint32
	a, bb, c := p.A, p.B, p.C
	for l := 0; l < levels; l++ {
		ra, rb, rc := a, bb, c
		if p.Noise > 0 {
			ra = mutate(rng, a, p.Noise)
			rb = mutate(rng, bb, p.Noise)
			rc = mutate(rng, c, p.Noise)
			rd := mutate(rng, 1-a-bb-c, p.Noise)
			norm := ra + rb + rc + rd
			ra, rb, rc = ra/norm, rb/norm, rc/norm
		}
		r := rng.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < ra:
			// quadrant a: (0,0)
		case r < ra+rb:
			v |= 1
		case r < ra+rb+rc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

func mutate(rng *rand.Rand, x, noise float64) float64 {
	return x * (1 - noise/2 + rng.Float64()*noise)
}

// ErdosRenyi generates a G(n, m) random graph: m edge samples drawn
// uniformly, simplified.
func ErdosRenyi(n int, m int64, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi n = %d, want > 0", n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := int64(0); i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// HolmeKimParams configures the growing scale-free generator with tunable
// clustering [19]. Each new vertex attaches M edges; after each
// preferential attachment, with probability TriadProb a "triad formation"
// step connects the new vertex to a random neighbor of the previous target,
// closing a triangle. Larger TriadProb yields a larger clustering
// coefficient at (nearly) constant density.
type HolmeKimParams struct {
	NumVertices int
	M           int     // edges added per new vertex (average degree ≈ 2M)
	TriadProb   float64 // probability of triad formation after each PA step
	Seed        int64
}

// HolmeKim generates a Holme–Kim graph.
func HolmeKim(p HolmeKimParams) (*graph.Graph, error) {
	if p.NumVertices <= 0 || p.M <= 0 {
		return nil, fmt.Errorf("gen: HolmeKim needs NumVertices > 0 and M > 0, got %d, %d",
			p.NumVertices, p.M)
	}
	if p.TriadProb < 0 || p.TriadProb > 1 {
		return nil, fmt.Errorf("gen: HolmeKim TriadProb = %v, want in [0, 1]", p.TriadProb)
	}
	n := p.NumVertices
	m := p.M
	if m >= n {
		m = n - 1
	}
	rng := rand.New(rand.NewSource(p.Seed))

	adj := make([]map[uint32]struct{}, n)
	for i := range adj {
		adj[i] = make(map[uint32]struct{})
	}
	// repeated holds each vertex once per degree unit: sampling from it is
	// preferential attachment.
	var repeated []uint32
	addEdge := func(u, v uint32) bool {
		if u == v {
			return false
		}
		if _, dup := adj[u][v]; dup {
			return false
		}
		adj[u][v] = struct{}{}
		adj[v][u] = struct{}{}
		repeated = append(repeated, u, v)
		return true
	}

	// Seed clique of m+1 vertices.
	seedSize := m + 1
	for u := 0; u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			addEdge(uint32(u), uint32(v))
		}
	}
	for u := seedSize; u < n; u++ {
		var lastTarget uint32
		hasLast := false
		added := 0
		attempts := 0
		for added < m && attempts < 50*m {
			attempts++
			var target uint32
			if hasLast && rng.Float64() < p.TriadProb {
				// Triad formation: pick a random neighbor of lastTarget.
				nbrs := adj[lastTarget]
				if len(nbrs) > 0 {
					k := rng.Intn(len(nbrs))
					for w := range nbrs {
						if k == 0 {
							target = w
							break
						}
						k--
					}
				} else {
					target = repeated[rng.Intn(len(repeated))]
				}
			} else {
				target = repeated[rng.Intn(len(repeated))]
			}
			if addEdge(uint32(u), target) {
				lastTarget = target
				hasLast = true
				added++
			}
		}
	}

	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := range adj[u] {
			if uint32(u) < v {
				if err := b.AddEdge(uint32(u), v); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}
