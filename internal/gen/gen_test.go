package gen

import (
	"math"
	"testing"

	"github.com/optlab/opt/internal/graph"
)

func TestRMATBasic(t *testing.T) {
	g, err := RMAT(DefaultRMAT(1<<12, 40_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<12 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 20_000 || g.NumEdges() > 40_000 {
		t.Fatalf("NumEdges = %d, want in (20000, 40000]", g.NumEdges())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(DefaultRMAT(1024, 5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(DefaultRMAT(1024, 5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	if graph.CountTrianglesReference(a) != graph.CountTrianglesReference(b) {
		t.Fatal("same seed produced different triangle counts")
	}
	c, err := RMAT(DefaultRMAT(1024, 5000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() == c.NumEdges() && graph.CountTrianglesReference(a) == graph.CountTrianglesReference(c) {
		t.Log("warning: different seeds produced identical stats (possible but unlikely)")
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// R-MAT with default parameters is heavily skewed: the max degree should
	// far exceed the average.
	g, err := RMAT(DefaultRMAT(1<<12, 60_000, 3))
	if err != nil {
		t.Fatal(err)
	}
	s := graph.BasicStats(g)
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Fatalf("max degree %d not skewed vs avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestRMATNonPowerOfTwo(t *testing.T) {
	g, err := RMAT(DefaultRMAT(1000, 4000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("NumVertices = %d, want 1000", g.NumVertices())
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATParams{NumVertices: 0, NumEdges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25}); err == nil {
		t.Error("zero vertices: want error")
	}
	if _, err := RMAT(RMATParams{NumVertices: 10, NumEdges: -1, A: 0.25, B: 0.25, C: 0.25, D: 0.25}); err == nil {
		t.Error("negative edges: want error")
	}
	if _, err := RMAT(RMATParams{NumVertices: 10, NumEdges: 1, A: 0.9, B: 0.2, C: 0.2, D: 0.2}); err == nil {
		t.Error("probabilities > 1: want error")
	}
	if _, err := RMAT(RMATParams{NumVertices: 10, NumEdges: 1, A: 1, B: 0, C: 0, D: 0}); err == nil {
		t.Error("zero quadrant: want error")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(2000, 10_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// Simplification removes few edges at this density.
	if g.NumEdges() < 9_500 {
		t.Fatalf("NumEdges = %d, want close to 10000", g.NumEdges())
	}
	if _, err := ErdosRenyi(0, 5, 1); err == nil {
		t.Error("n=0: want error")
	}
}

func TestHolmeKimClusteringControl(t *testing.T) {
	// Clustering coefficient should increase markedly with TriadProb.
	low, err := HolmeKim(HolmeKimParams{NumVertices: 3000, M: 5, TriadProb: 0.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := HolmeKim(HolmeKimParams{NumVertices: 3000, M: 5, TriadProb: 0.9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ccLow := graph.AverageClusteringCoefficient(low)
	ccHigh := graph.AverageClusteringCoefficient(high)
	if ccHigh < ccLow+0.05 {
		t.Fatalf("clustering not controlled: p=0 gives %.3f, p=0.9 gives %.3f", ccLow, ccHigh)
	}
	// Density stays roughly constant (≈ M per vertex).
	dLow := float64(low.NumEdges()) / float64(low.NumVertices())
	dHigh := float64(high.NumEdges()) / float64(high.NumVertices())
	if math.Abs(dLow-dHigh) > 1.0 {
		t.Fatalf("density drifted with TriadProb: %.2f vs %.2f", dLow, dHigh)
	}
}

func TestHolmeKimValidation(t *testing.T) {
	if _, err := HolmeKim(HolmeKimParams{NumVertices: 0, M: 2}); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := HolmeKim(HolmeKimParams{NumVertices: 10, M: 0}); err == nil {
		t.Error("M=0: want error")
	}
	if _, err := HolmeKim(HolmeKimParams{NumVertices: 10, M: 2, TriadProb: 1.5}); err == nil {
		t.Error("TriadProb=1.5: want error")
	}
}

func TestHolmeKimMLargerThanN(t *testing.T) {
	g, err := HolmeKim(HolmeKimParams{NumVertices: 4, M: 10, TriadProb: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to K4.
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6 (K4)", g.NumEdges())
	}
}

func TestDatasetSpecs(t *testing.T) {
	if len(Datasets) != 5 {
		t.Fatalf("Datasets = %d entries, want 5", len(Datasets))
	}
	// Table 2 densities.
	wantDensity := map[string]float64{
		"lj": 14.2, "orkut": 72.7, "twitter": 35.3, "uk": 35.3, "yahoo": 4.7,
	}
	for _, d := range Datasets {
		if math.Abs(d.Density-wantDensity[d.Name]) > 0.5 {
			t.Errorf("%s density = %.1f, want ≈%.1f", d.Name, d.Density, wantDensity[d.Name])
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset: want error")
	}
	d, err := DatasetByName("lj")
	if err != nil || d.Name != "lj" {
		t.Fatalf("DatasetByName(lj) = %+v, %v", d, err)
	}
}

func TestProxyPreservesDensityAndOrdering(t *testing.T) {
	d, _ := DatasetByName("lj")
	g, err := d.Proxy(20_000)
	if err != nil {
		t.Fatal(err)
	}
	density := float64(g.NumEdges()) / float64(g.NumVertices())
	// Simplification loses some sampled edges; allow 40% slack below.
	if density < d.Density*0.6 || density > d.Density*1.05 {
		t.Fatalf("proxy density = %.1f, original %.1f", density, d.Density)
	}
	if !graph.IsDegreeOrdered(g) {
		t.Fatal("proxy not degree ordered")
	}
	if _, err := d.Proxy(0); err == nil {
		t.Error("Proxy(0): want error")
	}
}
