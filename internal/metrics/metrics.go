// Package metrics collects the cost counters used throughout the OPT
// reproduction: page reads and writes, intersection operations (the
// min(|n≻(u)|, |n≻(v)|) CPU-cost model of Eq. 3 in the paper), and wall-clock
// phase timers. All counters are safe for concurrent use.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/optlab/opt/internal/events"
)

// Collector accumulates cost counters for one algorithm run.
type Collector struct {
	pagesRead     atomic.Int64
	pagesWritten  atomic.Int64
	asyncReads    atomic.Int64
	syncReads     atomic.Int64
	intersectOps  atomic.Int64 // min-model CPU operations
	intersectCall atomic.Int64 // number of adjacency-list intersections
	triangles     atomic.Int64
	reusedPages   atomic.Int64 // internal-area loads served from buffered frames (Δin_io)
	ioWait        atomic.Int64 // nanoseconds spent blocked on I/O completion
	parallelWork  atomic.Int64 // nanoseconds of parallelisable work (intersections)
	serialWork    atomic.Int64 // nanoseconds of inherently serial work
	iterations    atomic.Int64 // completed outer-loop iterations (event-fed)
	morphs        atomic.Int64 // thread-morph transitions (event-fed)

	// I/O-scheduler counters (DESIGN.md §9).
	coalescedReads atomic.Int64 // vectored reads that merged ≥2 chunk requests
	coalescedPages atomic.Int64 // pages covered by those reads
	prefetchHits   atomic.Int64 // read-ahead completions whose data was consumed
	prefetchWasted atomic.Int64 // read-ahead completions whose data was dropped

	// Native-backend counters (DESIGN.md §14).
	submittedBatches atomic.Int64 // io_uring_enter calls that pushed ≥1 SQE
	batchedReads     atomic.Int64 // SQEs covered by those batches
	ringDepth        atomic.Int64 // SQ entries of the active ring (0 = no ring)
	directFallbacks  atomic.Int64 // O_DIRECT opens that fell back to buffered

	// Distributed-coordinator counters (DESIGN.md §15).
	shardsDispatched atomic.Int64 // shard-pair task dispatches (incl. retries)
	shardsRetried    atomic.Int64 // re-dispatches after agent loss / stragglers
	shardsMerged     atomic.Int64 // task results merged exactly once
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// AddPagesRead records n page reads.
func (c *Collector) AddPagesRead(n int64) { c.pagesRead.Add(n) }

// AddPagesWritten records n page writes.
func (c *Collector) AddPagesWritten(n int64) { c.pagesWritten.Add(n) }

// AddAsyncReads records n asynchronous read submissions.
func (c *Collector) AddAsyncReads(n int64) { c.asyncReads.Add(n) }

// AddSyncReads records n synchronous read calls.
func (c *Collector) AddSyncReads(n int64) { c.syncReads.Add(n) }

// AddIntersect records one adjacency-list intersection whose min-model cost
// is ops (= min(|a|, |b|) under the hash model of Eq. 3).
func (c *Collector) AddIntersect(ops int64) {
	c.intersectCall.Add(1)
	c.intersectOps.Add(ops)
}

// AddTriangles records n discovered triangles.
func (c *Collector) AddTriangles(n int64) { c.triangles.Add(n) }

// AddReusedPages records n internal-area page loads that were served from
// frames already resident in the buffer (the Δin_io credit of §3.3).
func (c *Collector) AddReusedPages(n int64) { c.reusedPages.Add(n) }

// AddCoalescedRead records one vectored read that merged several chunk
// requests into a single device submission covering pages pages.
func (c *Collector) AddCoalescedRead(pages int64) {
	c.coalescedReads.Add(1)
	c.coalescedPages.Add(pages)
}

// AddPrefetchHits records n read-ahead completions whose data was consumed.
func (c *Collector) AddPrefetchHits(n int64) { c.prefetchHits.Add(n) }

// AddPrefetchWasted records n read-ahead completions whose data was dropped
// (cancellation or read failure before processing).
func (c *Collector) AddPrefetchWasted(n int64) { c.prefetchWasted.Add(n) }

// AddSubmittedBatch records one io_uring submission batch covering n SQEs.
func (c *Collector) AddSubmittedBatch(n int64) {
	c.submittedBatches.Add(1)
	c.batchedReads.Add(n)
}

// SetRingDepth records the SQ-entry depth of the active completion ring.
// The maximum sticks, so a run over several devices reports the deepest.
func (c *Collector) SetRingDepth(n int64) {
	for {
		cur := c.ringDepth.Load()
		if n <= cur || c.ringDepth.CompareAndSwap(cur, n) {
			return
		}
	}
}

// AddDirectFallbacks records n O_DIRECT opens that fell back to buffered I/O.
func (c *Collector) AddDirectFallbacks(n int64) { c.directFallbacks.Add(n) }

// AddIOWait records d spent blocked waiting for I/O.
func (c *Collector) AddIOWait(d time.Duration) { c.ioWait.Add(int64(d)) }

// AddParallelWork records d of parallelisable CPU work.
func (c *Collector) AddParallelWork(d time.Duration) { c.parallelWork.Add(int64(d)) }

// AddSerialWork records d of inherently serial work.
func (c *Collector) AddSerialWork(d time.Duration) { c.serialWork.Add(int64(d)) }

// Event implements events.Sink, so a Collector can be attached directly to
// the execution engine's event layer and accumulate progress counters.
// Counter-bearing kinds map onto the corresponding counters; attach a
// Collector EITHER as an event sink OR as the direct Metrics collaborator
// of a run, never both, or I/O and triangle counts double.
func (c *Collector) Event(e events.Event) {
	switch e.Kind {
	case events.PagesRead:
		c.AddPagesRead(e.N)
	case events.PagesWritten:
		c.AddPagesWritten(e.N)
	case events.TrianglesFound:
		c.AddTriangles(e.N)
	case events.IterationEnd:
		c.iterations.Add(1)
	case events.Morph:
		c.morphs.Add(e.N)
	case events.CoalescedRead:
		c.AddCoalescedRead(e.N)
	case events.PrefetchHit:
		c.AddPrefetchHits(e.N)
	case events.PrefetchWasted:
		c.AddPrefetchWasted(e.N)
	case events.SubmittedBatch:
		c.AddSubmittedBatch(e.N)
	case events.RingDepth:
		c.SetRingDepth(e.N)
	case events.DirectFallback:
		c.AddDirectFallbacks(e.N)
	case events.ShardDispatched:
		c.shardsDispatched.Add(1)
	case events.ShardRetried:
		c.shardsRetried.Add(1)
	case events.ShardMerged:
		c.shardsMerged.Add(1)
	}
}

// ShardsDispatched returns the shard-pair task dispatches observed
// (retries included).
func (c *Collector) ShardsDispatched() int64 { return c.shardsDispatched.Load() }

// ShardsRetried returns the shard-pair re-dispatches observed.
func (c *Collector) ShardsRetried() int64 { return c.shardsRetried.Load() }

// ShardsMerged returns the shard-pair results merged into the total.
func (c *Collector) ShardsMerged() int64 { return c.shardsMerged.Load() }

// Iterations returns the number of IterationEnd events observed.
func (c *Collector) Iterations() int64 { return c.iterations.Load() }

// Morphs returns the number of thread-morph transitions observed.
func (c *Collector) Morphs() int64 { return c.morphs.Load() }

// PagesRead returns the page-read count.
func (c *Collector) PagesRead() int64 { return c.pagesRead.Load() }

// PagesWritten returns the page-write count.
func (c *Collector) PagesWritten() int64 { return c.pagesWritten.Load() }

// AsyncReads returns the asynchronous read submission count.
func (c *Collector) AsyncReads() int64 { return c.asyncReads.Load() }

// SyncReads returns the synchronous read count.
func (c *Collector) SyncReads() int64 { return c.syncReads.Load() }

// IntersectOps returns the accumulated min-model CPU cost.
func (c *Collector) IntersectOps() int64 { return c.intersectOps.Load() }

// Intersections returns the number of adjacency-list intersections executed.
func (c *Collector) Intersections() int64 { return c.intersectCall.Load() }

// Triangles returns the number of triangles recorded.
func (c *Collector) Triangles() int64 { return c.triangles.Load() }

// ReusedPages returns the Δin_io page-reuse credit.
func (c *Collector) ReusedPages() int64 { return c.reusedPages.Load() }

// CoalescedReads returns the number of vectored reads that merged several
// chunk requests.
func (c *Collector) CoalescedReads() int64 { return c.coalescedReads.Load() }

// CoalescedPages returns the pages covered by coalesced reads.
func (c *Collector) CoalescedPages() int64 { return c.coalescedPages.Load() }

// PrefetchHits returns the read-ahead completions whose data was consumed.
func (c *Collector) PrefetchHits() int64 { return c.prefetchHits.Load() }

// PrefetchWasted returns the read-ahead completions whose data was dropped.
func (c *Collector) PrefetchWasted() int64 { return c.prefetchWasted.Load() }

// SubmittedBatches returns the number of io_uring submission batches.
func (c *Collector) SubmittedBatches() int64 { return c.submittedBatches.Load() }

// BatchedReads returns the SQEs covered by submission batches.
func (c *Collector) BatchedReads() int64 { return c.batchedReads.Load() }

// RingDepth returns the deepest completion ring observed (0 = no ring).
func (c *Collector) RingDepth() int64 { return c.ringDepth.Load() }

// DirectFallbacks returns the O_DIRECT opens that fell back to buffered I/O.
func (c *Collector) DirectFallbacks() int64 { return c.directFallbacks.Load() }

// IOWait returns the total time spent blocked on I/O.
func (c *Collector) IOWait() time.Duration { return time.Duration(c.ioWait.Load()) }

// ParallelFraction returns p, the fraction of recorded work that is
// parallelisable, used for the Amdahl analysis of Table 5. It returns 0 when
// no work has been recorded.
func (c *Collector) ParallelFraction() float64 {
	p := float64(c.parallelWork.Load())
	s := float64(c.serialWork.Load())
	if p+s == 0 {
		return 0
	}
	return p / (p + s)
}

// Reset zeroes every counter.
func (c *Collector) Reset() {
	c.pagesRead.Store(0)
	c.pagesWritten.Store(0)
	c.asyncReads.Store(0)
	c.syncReads.Store(0)
	c.intersectOps.Store(0)
	c.intersectCall.Store(0)
	c.triangles.Store(0)
	c.reusedPages.Store(0)
	c.ioWait.Store(0)
	c.parallelWork.Store(0)
	c.serialWork.Store(0)
	c.iterations.Store(0)
	c.morphs.Store(0)
	c.coalescedReads.Store(0)
	c.coalescedPages.Store(0)
	c.prefetchHits.Store(0)
	c.prefetchWasted.Store(0)
	c.submittedBatches.Store(0)
	c.batchedReads.Store(0)
	c.ringDepth.Store(0)
	c.directFallbacks.Store(0)
	c.shardsDispatched.Store(0)
	c.shardsRetried.Store(0)
	c.shardsMerged.Store(0)
}

// Snapshot is an immutable copy of a Collector's counters. The JSON tags
// make it the per-job metrics export of the optd status API; durations
// marshal as nanoseconds.
type Snapshot struct {
	PagesRead      int64         `json:"pages_read"`
	PagesWritten   int64         `json:"pages_written"`
	AsyncReads     int64         `json:"async_reads"`
	SyncReads      int64         `json:"sync_reads"`
	IntersectOps   int64         `json:"intersect_ops"`
	Intersections  int64         `json:"intersections"`
	Triangles      int64         `json:"triangles"`
	ReusedPages    int64         `json:"reused_pages"`
	Iterations     int64         `json:"iterations"`
	Morphs         int64         `json:"morphs"`
	CoalescedReads int64         `json:"coalesced_reads"`
	CoalescedPages int64         `json:"coalesced_pages"`
	PrefetchHits   int64         `json:"prefetch_hits"`
	PrefetchWasted int64         `json:"prefetch_wasted"`

	SubmittedBatches int64 `json:"submitted_batches"`
	BatchedReads     int64 `json:"batched_reads"`
	RingDepth        int64 `json:"ring_depth"`
	DirectFallbacks  int64 `json:"direct_fallbacks"`

	ShardsDispatched int64 `json:"shards_dispatched"`
	ShardsRetried    int64 `json:"shards_retried"`
	ShardsMerged     int64 `json:"shards_merged"`

	IOWait         time.Duration `json:"io_wait_ns"`
	ParallelWork   time.Duration `json:"parallel_work_ns"`
	SerialWork     time.Duration `json:"serial_work_ns"`
}

// Snapshot returns a copy of the current counter values.
func (c *Collector) Snapshot() Snapshot {
	return Snapshot{
		PagesRead:      c.pagesRead.Load(),
		PagesWritten:   c.pagesWritten.Load(),
		AsyncReads:     c.asyncReads.Load(),
		SyncReads:      c.syncReads.Load(),
		IntersectOps:   c.intersectOps.Load(),
		Intersections:  c.intersectCall.Load(),
		Triangles:      c.triangles.Load(),
		ReusedPages:    c.reusedPages.Load(),
		Iterations:     c.iterations.Load(),
		Morphs:         c.morphs.Load(),
		CoalescedReads: c.coalescedReads.Load(),
		CoalescedPages: c.coalescedPages.Load(),
		PrefetchHits:   c.prefetchHits.Load(),
		PrefetchWasted: c.prefetchWasted.Load(),

		SubmittedBatches: c.submittedBatches.Load(),
		BatchedReads:     c.batchedReads.Load(),
		RingDepth:        c.ringDepth.Load(),
		DirectFallbacks:  c.directFallbacks.Load(),

		ShardsDispatched: c.shardsDispatched.Load(),
		ShardsRetried:    c.shardsRetried.Load(),
		ShardsMerged:     c.shardsMerged.Load(),

		IOWait:         time.Duration(c.ioWait.Load()),
		ParallelWork:   time.Duration(c.parallelWork.Load()),
		SerialWork:     time.Duration(c.serialWork.Load()),
	}
}

// String formats the snapshot for logs and experiment output.
func (s Snapshot) String() string {
	out := fmt.Sprintf("reads=%d writes=%d async=%d sync=%d ops=%d tri=%d reused=%d coalesced=%d(%dp) prefetch=%d/%dw iowait=%v",
		s.PagesRead, s.PagesWritten, s.AsyncReads, s.SyncReads, s.IntersectOps, s.Triangles, s.ReusedPages,
		s.CoalescedReads, s.CoalescedPages, s.PrefetchHits, s.PrefetchWasted, s.IOWait)
	if s.RingDepth > 0 || s.SubmittedBatches > 0 || s.DirectFallbacks > 0 {
		out += fmt.Sprintf(" ring=%d batches=%d(%dr) directfb=%d",
			s.RingDepth, s.SubmittedBatches, s.BatchedReads, s.DirectFallbacks)
	}
	if s.ShardsDispatched > 0 || s.ShardsMerged > 0 {
		out += fmt.Sprintf(" shards=%d/%dd retried=%d",
			s.ShardsMerged, s.ShardsDispatched, s.ShardsRetried)
	}
	return out
}

// AmdahlBound returns the theoretical speed-up upper bound 1/((1-p)+p/c) for
// parallel fraction p on c cores (Table 5). It returns 1 for c < 1 or p
// outside (0, 1].
func AmdahlBound(p float64, c int) float64 {
	if c < 1 || p <= 0 || p > 1 {
		return 1
	}
	return 1 / ((1 - p) + p/float64(c))
}

// Stopwatch measures one named phase.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
