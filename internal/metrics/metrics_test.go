package metrics

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/optlab/opt/internal/events"
)

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	c.AddPagesRead(3)
	c.AddPagesRead(2)
	c.AddPagesWritten(1)
	c.AddAsyncReads(4)
	c.AddSyncReads(5)
	c.AddIntersect(7)
	c.AddIntersect(3)
	c.AddTriangles(11)
	c.AddReusedPages(2)
	c.AddIOWait(50 * time.Millisecond)

	if got := c.PagesRead(); got != 5 {
		t.Errorf("PagesRead = %d, want 5", got)
	}
	if got := c.PagesWritten(); got != 1 {
		t.Errorf("PagesWritten = %d, want 1", got)
	}
	if got := c.AsyncReads(); got != 4 {
		t.Errorf("AsyncReads = %d, want 4", got)
	}
	if got := c.SyncReads(); got != 5 {
		t.Errorf("SyncReads = %d, want 5", got)
	}
	if got := c.IntersectOps(); got != 10 {
		t.Errorf("IntersectOps = %d, want 10", got)
	}
	if got := c.Intersections(); got != 2 {
		t.Errorf("Intersections = %d, want 2", got)
	}
	if got := c.Triangles(); got != 11 {
		t.Errorf("Triangles = %d, want 11", got)
	}
	if got := c.ReusedPages(); got != 2 {
		t.Errorf("ReusedPages = %d, want 2", got)
	}
	if got := c.IOWait(); got != 50*time.Millisecond {
		t.Errorf("IOWait = %v, want 50ms", got)
	}
}

func TestCollectorSchedulerCounters(t *testing.T) {
	c := NewCollector()
	c.AddCoalescedRead(4) // one read covering 4 pages
	c.AddCoalescedRead(2)
	c.AddPrefetchHits(3)
	c.AddPrefetchWasted(1)
	if got := c.CoalescedReads(); got != 2 {
		t.Errorf("CoalescedReads = %d, want 2", got)
	}
	if got := c.CoalescedPages(); got != 6 {
		t.Errorf("CoalescedPages = %d, want 6", got)
	}
	if got := c.PrefetchHits(); got != 3 {
		t.Errorf("PrefetchHits = %d, want 3", got)
	}
	if got := c.PrefetchWasted(); got != 1 {
		t.Errorf("PrefetchWasted = %d, want 1", got)
	}

	// The same counters accumulate through the event-sink path.
	c.Event(events.Event{Kind: events.CoalescedRead, N: 8})
	c.Event(events.Event{Kind: events.PrefetchHit, N: 2})
	c.Event(events.Event{Kind: events.PrefetchWasted, N: 1})
	s := c.Snapshot()
	if s.CoalescedReads != 3 || s.CoalescedPages != 14 || s.PrefetchHits != 5 || s.PrefetchWasted != 2 {
		t.Fatalf("snapshot after events: %+v", s)
	}

	c.Reset()
	s = c.Snapshot()
	if s.CoalescedReads != 0 || s.CoalescedPages != 0 || s.PrefetchHits != 0 || s.PrefetchWasted != 0 {
		t.Fatalf("Reset left scheduler counters: %+v", s)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.AddPagesRead(9)
	c.AddTriangles(9)
	c.Reset()
	s := c.Snapshot()
	if s.PagesRead != 0 || s.Triangles != 0 {
		t.Fatalf("after Reset: %+v", s)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddPagesRead(1)
				c.AddIntersect(2)
				c.AddTriangles(1)
			}
		}()
	}
	wg.Wait()
	if got := c.PagesRead(); got != 8000 {
		t.Errorf("PagesRead = %d, want 8000", got)
	}
	if got := c.IntersectOps(); got != 16000 {
		t.Errorf("IntersectOps = %d, want 16000", got)
	}
	if got := c.Triangles(); got != 8000 {
		t.Errorf("Triangles = %d, want 8000", got)
	}
}

func TestParallelFraction(t *testing.T) {
	c := NewCollector()
	if got := c.ParallelFraction(); got != 0 {
		t.Fatalf("empty ParallelFraction = %v, want 0", got)
	}
	c.AddParallelWork(900 * time.Millisecond)
	c.AddSerialWork(100 * time.Millisecond)
	if got := c.ParallelFraction(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("ParallelFraction = %v, want 0.9", got)
	}
}

func TestAmdahlBound(t *testing.T) {
	cases := []struct {
		p    float64
		c    int
		want float64
	}{
		{1.0, 6, 6},
		{0.5, 2, 1 / (0.5 + 0.25)},
		{0.961, 6, 1 / ((1 - 0.961) + 0.961/6)}, // Table 5 LJ row: ~5.03
		{0, 6, 1},
		{-1, 6, 1},
		{1.5, 6, 1},
		{0.9, 0, 1},
	}
	for _, tc := range cases {
		if got := AmdahlBound(tc.p, tc.c); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("AmdahlBound(%v, %d) = %v, want %v", tc.p, tc.c, got, tc.want)
		}
	}
	// Paper Table 5 sanity: p=0.961 on 6 cores bounds speed-up near 5.03.
	if got := AmdahlBound(0.961, 6); math.Abs(got-5.03) > 0.02 {
		t.Errorf("Table 5 LJ bound = %v, want ≈5.03", got)
	}
}

func TestSnapshotString(t *testing.T) {
	c := NewCollector()
	c.AddPagesRead(1)
	if s := c.Snapshot().String(); s == "" {
		t.Fatal("Snapshot.String is empty")
	}
}

func TestCollectorEventSink(t *testing.T) {
	c := NewCollector()
	c.Event(events.Event{Kind: events.PagesRead, N: 3})
	c.Event(events.Event{Kind: events.PagesWritten, N: 2})
	c.Event(events.Event{Kind: events.TrianglesFound, N: 5})
	c.Event(events.Event{Kind: events.IterationEnd})
	c.Event(events.Event{Kind: events.IterationEnd})
	c.Event(events.Event{Kind: events.Morph, N: 4})
	c.Event(events.Event{Kind: events.RunStart}) // boundary kinds are ignored

	if got := c.PagesRead(); got != 3 {
		t.Errorf("PagesRead = %d, want 3", got)
	}
	if got := c.PagesWritten(); got != 2 {
		t.Errorf("PagesWritten = %d, want 2", got)
	}
	if got := c.Triangles(); got != 5 {
		t.Errorf("Triangles = %d, want 5", got)
	}
	if got := c.Iterations(); got != 2 {
		t.Errorf("Iterations = %d, want 2", got)
	}
	if got := c.Morphs(); got != 4 {
		t.Errorf("Morphs = %d, want 4", got)
	}
	s := c.Snapshot()
	if s.Iterations != 2 || s.Morphs != 4 {
		t.Errorf("Snapshot iterations/morphs = %d/%d, want 2/4", s.Iterations, s.Morphs)
	}
	c.Reset()
	if c.Iterations() != 0 || c.Morphs() != 0 {
		t.Error("Reset did not clear event-sourced counters")
	}
}

func TestStopwatch(t *testing.T) {
	sw := StartStopwatch()
	time.Sleep(5 * time.Millisecond)
	if got := sw.Elapsed(); got < 5*time.Millisecond {
		t.Fatalf("Elapsed = %v, want >= 5ms", got)
	}
}
