// Package intersect provides the sorted-adjacency-list intersection kernels
// at the heart of every triangulation method in this repository. All inputs
// are strictly increasing []uint32 slices (vertex ids under the degree-based
// ordering). The package also exposes MinCost, the CPU-cost model of Eq. 3
// in the paper: with an O(1) membership hash, intersecting n≻(u) and n≻(v)
// costs min(|n≻(u)|, |n≻(v)|) operations.
package intersect

import (
	"sort"

	"github.com/optlab/opt/internal/bits"
)

// MinCost returns the Eq. 3 cost model value min(len(a), len(b)).
func MinCost(a, b []uint32) int64 {
	if len(a) < len(b) {
		return int64(len(a))
	}
	return int64(len(b))
}

// Merge intersects two sorted slices with a linear merge scan, appending the
// common elements to dst and returning it. dst may be nil.
func Merge(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// MergeCount returns |a ∩ b| using a linear merge scan.
func MergeCount(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Galloping intersects a short sorted slice a against a long sorted slice b
// using exponential (galloping) search, appending common elements to dst.
// It is preferable when len(b) >> len(a).
func Galloping(dst, a, b []uint32) []uint32 {
	lo := 0
	for _, x := range a {
		// Gallop forward to find the range that may contain x.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search within (lo-1, hi].
		k := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= x })
		if k < len(b) && b[k] == x {
			dst = append(dst, x)
			lo = k + 1
		} else {
			lo = k
		}
		if lo >= len(b) {
			break
		}
	}
	return dst
}

// gallopRatio is the length ratio beyond which Adaptive switches from the
// merge scan to galloping search.
const gallopRatio = 32

// Adaptive intersects a and b, choosing merge or galloping by the length
// ratio, appending common elements to dst.
func Adaptive(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a)*gallopRatio < len(b) {
		return Galloping(dst, a, b)
	}
	return Merge(dst, a, b)
}

// bitmapRatio is the length ratio beyond which AdaptiveBitmap prefers the
// bitset probe over merge/galloping: probing is O(len(a)) with a ~1-cycle
// membership test, so it wins once the fixed side b (the hub list backing
// set) is much longer than the streamed side a.
const bitmapRatio = 8

// Bitmap intersects a against b using a prebuilt dense membership set over
// b's elements: every x ∈ a with set.Contains(x) is appended to dst. It is
// the kernel of choice for hub vertices, where one long adjacency list is
// intersected against many short ones and the O(|b|) set build amortises
// across partners. set must contain exactly the elements of b; a nil set
// falls back to Adaptive.
func Bitmap(dst, a, b []uint32, set *bits.Set) []uint32 {
	if set == nil {
		return Adaptive(dst, a, b)
	}
	for _, x := range a {
		if set.Contains(int(x)) {
			dst = append(dst, x)
		}
	}
	return dst
}

// AdaptiveBitmap intersects a and b like Adaptive, but when set is a
// prebuilt membership set over b and b dominates a by bitmapRatio it uses
// the constant-time bitset probe instead. The caller owns the set's
// lifecycle (build once per hub list, clear after).
func AdaptiveBitmap(dst, a, b []uint32, set *bits.Set) []uint32 {
	if set != nil && len(a)*bitmapRatio <= len(b) {
		return Bitmap(dst, a, b, set)
	}
	return Adaptive(dst, a, b)
}

// AdaptiveCount returns |a ∩ b| using the adaptive strategy.
func AdaptiveCount(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a)*gallopRatio < len(b) {
		n := 0
		lo := 0
		for _, x := range a {
			step := 1
			hi := lo
			for hi < len(b) && b[hi] < x {
				lo = hi + 1
				hi += step
				step <<= 1
			}
			if hi > len(b) {
				hi = len(b)
			}
			k := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= x })
			if k < len(b) && b[k] == x {
				n++
				lo = k + 1
			} else {
				lo = k
			}
			if lo >= len(b) {
				break
			}
		}
		return n
	}
	return MergeCount(a, b)
}

// HashCount returns |a ∩ b| by probing set membership of the shorter list's
// elements in a map built over the longer list. It exists to make the Eq. 3
// hash-model cost concrete and as an ablation comparator; the sorted kernels
// above are faster in practice.
func HashCount(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	m := make(map[uint32]struct{}, len(b))
	for _, x := range b {
		m[x] = struct{}{}
	}
	n := 0
	for _, x := range a {
		if _, ok := m[x]; ok {
			n++
		}
	}
	return n
}

// Contains reports whether sorted slice a contains x, by binary search.
func Contains(a []uint32, x uint32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}

// UpperBound returns the index of the first element of sorted slice a that
// is strictly greater than x. The suffix a[UpperBound(a,x):] is n≻ relative
// to x; the prefix a[:LowerBound(a,x)] is n≺.
func UpperBound(a []uint32, x uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > x })
}

// LowerBound returns the index of the first element of sorted slice a that
// is greater than or equal to x.
func LowerBound(a []uint32, x uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= x })
}
