package intersect

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/optlab/opt/internal/bits"
)

func sortedUnique(xs []uint32) []uint32 {
	if len(xs) == 0 {
		return nil
	}
	s := append([]uint32(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func naiveIntersect(a, b []uint32) []uint32 {
	set := make(map[uint32]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var out []uint32
	for _, x := range b {
		if set[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestMergeBasic(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9}
	b := []uint32{3, 4, 5, 9, 10}
	want := []uint32{3, 5, 9}
	if got := Merge(nil, a, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	if got := MergeCount(a, b); got != 3 {
		t.Fatalf("MergeCount = %d, want 3", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil, nil, []uint32{1, 2}); got != nil {
		t.Fatalf("Merge(nil, ...) = %v, want nil", got)
	}
	if got := MergeCount([]uint32{1}, nil); got != 0 {
		t.Fatalf("MergeCount = %d, want 0", got)
	}
}

func TestMergeAppendsToDst(t *testing.T) {
	dst := []uint32{99}
	got := Merge(dst, []uint32{1, 2}, []uint32{2, 3})
	want := []uint32{99, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge with dst = %v, want %v", got, want)
	}
}

func TestGallopingBasic(t *testing.T) {
	a := []uint32{5, 100, 900}
	b := make([]uint32, 0, 1000)
	for i := uint32(0); i < 1000; i++ {
		b = append(b, i)
	}
	want := []uint32{5, 100, 900}
	if got := Galloping(nil, a, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("Galloping = %v, want %v", got, want)
	}
}

func TestGallopingNoMatch(t *testing.T) {
	a := []uint32{1, 3}
	b := []uint32{0, 2, 4}
	if got := Galloping(nil, a, b); len(got) != 0 {
		t.Fatalf("Galloping = %v, want empty", got)
	}
}

func TestKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(50), rng.Intn(2000)
		a := make([]uint32, na)
		b := make([]uint32, nb)
		for i := range a {
			a[i] = uint32(rng.Intn(3000))
		}
		for i := range b {
			b[i] = uint32(rng.Intn(3000))
		}
		sa, sb := sortedUnique(a), sortedUnique(b)
		want := naiveIntersect(sa, sb)
		wantLen := len(want)

		checks := map[string][]uint32{
			"Merge":     Merge(nil, sa, sb),
			"Galloping": Galloping(nil, sa, sb),
			"Adaptive":  Adaptive(nil, sa, sb),
		}
		for name, got := range checks {
			if len(got) == 0 && wantLen == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: %s = %v, want %v", trial, name, got, want)
			}
		}
		counts := map[string]int{
			"MergeCount":    MergeCount(sa, sb),
			"AdaptiveCount": AdaptiveCount(sa, sb),
			"HashCount":     HashCount(sa, sb),
		}
		for name, got := range counts {
			if got != wantLen {
				t.Fatalf("trial %d: %s = %d, want %d", trial, name, got, wantLen)
			}
		}
	}
}

// Property: intersection is commutative and bounded by min length, for all
// kernels, via testing/quick.
func TestIntersectionProperties(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := sortedUnique(xs), sortedUnique(ys)
		n1 := AdaptiveCount(a, b)
		n2 := AdaptiveCount(b, a)
		if n1 != n2 {
			return false
		}
		if int64(n1) > MinCost(a, b) {
			return false
		}
		return n1 == MergeCount(a, b) && n1 == HashCount(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: A ∩ A = A.
func TestIntersectionSelf(t *testing.T) {
	f := func(xs []uint32) bool {
		a := sortedUnique(xs)
		got := Adaptive(nil, a, a)
		if len(a) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCost(t *testing.T) {
	if got := MinCost([]uint32{1, 2, 3}, []uint32{1}); got != 1 {
		t.Fatalf("MinCost = %d, want 1", got)
	}
	if got := MinCost(nil, []uint32{1}); got != 0 {
		t.Fatalf("MinCost = %d, want 0", got)
	}
}

func TestContains(t *testing.T) {
	a := []uint32{2, 4, 6, 8}
	for _, x := range a {
		if !Contains(a, x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint32{0, 1, 3, 5, 7, 9} {
		if Contains(a, x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains on nil = true")
	}
}

func TestBounds(t *testing.T) {
	a := []uint32{10, 20, 20, 30}
	if got := UpperBound(a, 20); got != 3 {
		t.Errorf("UpperBound(20) = %d, want 3", got)
	}
	if got := LowerBound(a, 20); got != 1 {
		t.Errorf("LowerBound(20) = %d, want 1", got)
	}
	if got := UpperBound(a, 5); got != 0 {
		t.Errorf("UpperBound(5) = %d, want 0", got)
	}
	if got := UpperBound(a, 99); got != 4 {
		t.Errorf("UpperBound(99) = %d, want 4", got)
	}
	if got := LowerBound(a, 31); got != 4 {
		t.Errorf("LowerBound(31) = %d, want 4", got)
	}
}

// makeSet builds a membership set over the elements of b, as the hub path
// in core does once per hub adjacency list.
func makeSet(b []uint32, universe int) *bits.Set {
	s := bits.NewSet(universe)
	for _, x := range b {
		s.Add(int(x))
	}
	return s
}

func TestBitmapAgreesWithMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(60), rng.Intn(2000)
		a := make([]uint32, na)
		b := make([]uint32, nb)
		for i := range a {
			a[i] = uint32(rng.Intn(3000))
		}
		for i := range b {
			b[i] = uint32(rng.Intn(3000))
		}
		sa, sb := sortedUnique(a), sortedUnique(b)
		set := makeSet(sb, 3000)
		want := Merge(nil, sa, sb)
		if got := Bitmap(nil, sa, sb, set); !reflect.DeepEqual(got, want) && len(got)+len(want) > 0 {
			t.Fatalf("trial %d: Bitmap = %v, want %v", trial, got, want)
		}
		if got := AdaptiveBitmap(nil, sa, sb, set); !reflect.DeepEqual(got, want) && len(got)+len(want) > 0 {
			t.Fatalf("trial %d: AdaptiveBitmap = %v, want %v", trial, got, want)
		}
	}
}

func TestBitmapNilSetFallsBack(t *testing.T) {
	a := []uint32{1, 3, 5}
	b := []uint32{3, 4, 5}
	want := []uint32{3, 5}
	if got := Bitmap(nil, a, b, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("Bitmap(nil set) = %v, want %v", got, want)
	}
	if got := AdaptiveBitmap(nil, a, b, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("AdaptiveBitmap(nil set) = %v, want %v", got, want)
	}
}

func TestBitmapAppendsToDst(t *testing.T) {
	dst := []uint32{42}
	b := []uint32{2, 3}
	got := Bitmap(dst, []uint32{1, 2}, b, makeSet(b, 8))
	want := []uint32{42, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Bitmap with dst = %v, want %v", got, want)
	}
}

// AdaptiveBitmap must only consult the set when b dominates a by
// bitmapRatio; a set deliberately inconsistent with b exposes which branch
// ran.
func TestAdaptiveBitmapRatioGate(t *testing.T) {
	poison := bits.NewSet(100) // empty: Bitmap through it finds nothing
	a := seq(0, 10, 1)
	bLong := seq(0, 90, 1) // len 90 >= 10*bitmapRatio
	if got := AdaptiveBitmap(nil, a, bLong, poison); len(got) != 0 {
		t.Fatalf("skewed AdaptiveBitmap ignored the set: got %v", got)
	}
	bShort := seq(0, 20, 1) // below the ratio: must use merge, not the set
	if got := AdaptiveBitmap(nil, a, bShort, poison); len(got) != 10 {
		t.Fatalf("balanced AdaptiveBitmap used the set: got %v", got)
	}
}

func BenchmarkBitmapSkewed(b *testing.B) {
	x := seq(0, 100, 1)
	y := seq(0, 1000000, 3)
	set := makeSet(y, 1000000)
	dst := make([]uint32, 0, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = Bitmap(dst[:0], x, y, set)
	}
	_ = dst
}

func BenchmarkMergeSimilarLengths(b *testing.B) {
	x := seq(0, 10000, 2)
	y := seq(1, 10000, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeCount(x, y)
	}
}

func BenchmarkGallopingSkewed(b *testing.B) {
	x := seq(0, 100, 1)
	y := seq(0, 1000000, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AdaptiveCount(x, y)
	}
}

func seq(start, end, step uint32) []uint32 {
	var out []uint32
	for i := start; i < end; i += step {
		out = append(out, i)
	}
	return out
}
