package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// NewEventkind builds the eventkind analyzer for the events package at the
// given import path: every expression of type events.Kind must trace back
// to a constant declared in that package, keeping the PR-1 event
// vocabulary closed. Literals, conversions (events.Kind(42)) and constants
// declared elsewhere with values outside the declared set all mint kinds
// no Sink knows how to interpret.
//
// Variables and parameters of type Kind pass freely — emit helpers thread
// kinds they received — and a constant alias in another package
// (EventRunStart = events.RunStart) is legal because its value is in the
// declared vocabulary. The events package itself is skipped: it is where
// the vocabulary is declared.
func NewEventkind(eventsPath string) *Analyzer {
	ek := &eventkind{path: eventsPath}
	return &Analyzer{
		Name: "eventkind",
		Doc:  "events.Event emissions must use kinds from the declared events vocabulary",
		Run:  ek.run,
	}
}

type eventkind struct {
	path string
}

func (ek *eventkind) run(pass *Pass) {
	if pathWithin(pass.Pkg.Path, ek.path) {
		return
	}
	eventsPkg := findImport(pass.Pkg.Types, ek.path)
	if eventsPkg == nil {
		return // package doesn't touch the event layer
	}
	kindObj, ok := eventsPkg.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}
	kindType := kindObj.Type()
	vocab := declaredKinds(eventsPkg, kindType)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			tv, has := pass.Pkg.Info.Types[e]
			if !has || tv.Type == nil || !types.Identical(tv.Type, kindType) {
				return true
			}
			switch x := e.(type) {
			case *ast.Ident:
				ek.checkNamed(pass, e, pass.Pkg.Info.Uses[x], eventsPkg, vocab)
				return false
			case *ast.SelectorExpr:
				ek.checkNamed(pass, e, pass.Pkg.Info.Uses[x.Sel], eventsPkg, vocab)
				return false
			case *ast.CallExpr:
				if funTV, ok := pass.Pkg.Info.Types[x.Fun]; ok && funTV.IsType() {
					pass.Reportf(e.Pos(), "conversion mints an event kind outside the declared vocabulary; use an events package constant")
					return false
				}
				return true // a function returning Kind is fine; still scan its args
			case *ast.BasicLit:
				pass.Reportf(e.Pos(), "literal event kind; use an events package constant")
				return false
			default:
				if tv.Value != nil {
					pass.Reportf(e.Pos(), "computed constant event kind; use an events package constant")
					return false
				}
				return true
			}
		})
	}
}

// checkNamed validates an identifier or selector of type Kind: constants
// must be declared in the events package or carry a declared value.
func (ek *eventkind) checkNamed(pass *Pass, e ast.Expr, obj types.Object, eventsPkg *types.Package, vocab map[int64]bool) {
	c, isConst := obj.(*types.Const)
	if !isConst {
		return // variables, parameters, fields, results: kinds thread freely
	}
	if c.Pkg() == eventsPkg {
		return
	}
	if v, exact := constant.Int64Val(c.Val()); exact && vocab[v] {
		return // value-preserving alias of a declared kind
	}
	pass.Reportf(e.Pos(), "constant %s has a kind value outside the declared events vocabulary", c.Name())
}

// declaredKinds collects the values of the Kind constants declared in the
// events package.
func declaredKinds(pkg *types.Package, kindType types.Type) map[int64]bool {
	vocab := map[int64]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, isConst := scope.Lookup(name).(*types.Const)
		if !isConst || !types.Identical(c.Type(), kindType) {
			continue
		}
		if v, exact := constant.Int64Val(c.Val()); exact {
			vocab[v] = true
		}
	}
	return vocab
}

// findImport locates the package with the given path in pkg's transitive
// imports.
func findImport(pkg *types.Package, path string) *types.Package {
	if pkg == nil {
		return nil
	}
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}
