package lint

// Default returns the standard analyzer suite for the OPT repository,
// configured against the given module path. The per-analyzer package sets
// encode PR-1's layering decisions; DESIGN.md ("Enforced invariants") maps
// each rule to the paper section it protects.
func Default(module string) []*Analyzer {
	return []*Analyzer{
		NewCtxflow(),
		NewLockheld([]string{
			module + "/internal/core",
			module + "/internal/ssd",
			module + "/internal/engine",
		}),
		NewIoconfine([]string{
			// internal/ssd covers the native Linux backend too: the raw
			// io_uring/preadv/O_DIRECT syscalls in native_linux.go stay
			// confined behind the PageDevice contract, so the allowlist
			// needs no new entry for them.
			module + "/internal/ssd",
			module + "/internal/diskio",
			module + "/internal/storage",
			module + "/cmd",
		}),
		NewClosecheck([]string{
			module + "/internal/ssd",
			module + "/internal/diskio",
			module + "/internal/storage",
		}),
		NewEventkind(module + "/internal/events"),
		NewCancelfree(),
		NewPoolpair(module + "/internal/buffer"),
		NewAtomicfield(),
		NewCondguard(),
		NewGojoin(),
		// arenaescape skips the arena's own packages: buffer defines the
		// chunk lifecycle and storage's decoders hand slices out by design.
		NewArenaescape(
			module+"/internal/buffer",
			module+"/internal/storage",
		),
		// The whole-module concurrency layer (DESIGN.md §16). chanflow skips
		// the packages lockheld already polices with the stricter
		// no-blocking-at-all rule, so every site gets exactly one finding.
		NewLockorder(),
		NewChanflow([]string{
			module + "/internal/core",
			module + "/internal/ssd",
			module + "/internal/engine",
		}),
		NewWaitjoin(),
	}
}
