package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests:
// one run, one rule descriptor per analyzer, one result per finding with
// a physical location. Finding filenames should already be relative to
// the repo root (call Relativize first) — code scanning matches
// annotations to checkout-relative URIs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log. analyzers supplies
// the rule descriptors; findings under rules not in the list (the
// suppression pseudo-rule) get a descriptor synthesized on the fly.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	addRule := func(id, doc string) int {
		if i, ok := ruleIndex[id]; ok {
			return i
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
		return len(rules) - 1
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule(SuppressRule, "optlint:ignore directives must carry a reason and suppress a live finding")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: addRule(f.Rule, f.Rule),
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(f.Pos.Filename)},
					Region: sarifRegion{
						StartLine:   max(f.Pos.Line, 1),
						StartColumn: max(f.Pos.Column, 1),
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "optlint",
				InformationURI: "https://github.com/optlab/opt",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a filename as the forward-slash relative URI code
// scanning expects.
func sarifURI(name string) string {
	return strings.TrimPrefix(filepath.ToSlash(name), "./")
}
