package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Abstract lock facts (DESIGN.md §16). Where lockheld and the must-held
// dataflow key locks by their *printed receiver expression* — precise
// enough inside one function, meaningless across functions — this file
// names locks by a universe-independent abstract identity so facts can
// travel through FuncSummary and meet in a module-wide lock-order graph:
//
//	pkgpath.varname         package-level mutex variable
//	pkgpath.Type.field      struct-field mutex, keyed by the type that
//	                        declares the field (any selector depth: j.mu
//	                        and job.mu on the same type are one lock)
//	pkgpath.Type.Mutex      a promoted Lock through an embedded mutex
//
// A receiver expression that cannot be named this way (a local mutex
// value, a map entry, a pointer stored in an interface) yields identity
// "" and simply contributes no abstract fact — conservative for false
// positives, which is the house rule for every optlint analyzer.

// LockSite is one source position carried inside cached summaries.
type LockSite struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (s LockSite) String() string {
	return fmt.Sprintf("%s:%d:%d", s.File, s.Line, s.Col)
}

// position converts the site to a token.Position for direct reporting.
func (s LockSite) position() token.Position {
	return token.Position{Filename: s.File, Line: s.Line, Column: s.Col}
}

// compare orders sites lexicographically by (file, line, col).
func (s LockSite) compare(o LockSite) int {
	if s.File != o.File {
		return strings.Compare(s.File, o.File)
	}
	if s.Line != o.Line {
		return s.Line - o.Line
	}
	return s.Col - o.Col
}

// LockAcq is one may-acquire fact: the function (or a callee reached via
// Chain) may acquire Lock in the caller's dynamic extent.
type LockAcq struct {
	Lock string `json:"lock"`
	// Write is true for Lock, false for RLock.
	Write bool `json:"write,omitempty"`
	// Site is the position of the acquiring Lock/RLock call itself.
	Site LockSite `json:"site"`
	// Chain lists the callee keys from the summarized function down to
	// the function containing the call at Site; empty for a direct
	// acquisition.
	Chain []string `json:"chain,omitempty"`
}

// describe renders "pkg.B at file:1:2 (via f → g)" for witness messages.
func (a LockAcq) describe() string {
	mode := ""
	if !a.Write {
		mode = " (read)"
	}
	via := ""
	if len(a.Chain) > 0 {
		via = " via " + strings.Join(a.Chain, " → ")
	}
	return fmt.Sprintf("%s%s at %s%s", a.Lock, mode, a.Site, via)
}

// compare gives the canonical preference order among facts for the same
// lock: shortest chain first, then site, then chain spelling — so the
// fixpoint always converges on one representative witness.
func (a LockAcq) compare(b LockAcq) int {
	if len(a.Chain) != len(b.Chain) {
		return len(a.Chain) - len(b.Chain)
	}
	if c := a.Site.compare(b.Site); c != 0 {
		return c
	}
	return strings.Compare(strings.Join(a.Chain, "→"), strings.Join(b.Chain, "→"))
}

// LockEdge is one acquisition-order fact: while Held (acquired in this
// function at HeldSite) is definitely held, the function may acquire
// Acq.Lock (directly or through Acq.Chain).
type LockEdge struct {
	Held     string   `json:"held"`
	HeldSite LockSite `json:"heldSite"`
	Acq      LockAcq  `json:"acq"`
}

// LockReport is a finding computed during summary construction (self
// deadlock, read-to-write upgrade) and kept in the cache so warm runs
// still report it; the lockorder analyzer replays it.
type LockReport struct {
	Site LockSite `json:"site"`
	Msg  string   `json:"msg"`
}

// Caps keeping summaries bounded under recursion and deterministic under
// the SCC fixpoint's DeepEqual convergence test.
const (
	maxLockChain = 6  // call-chain hops a lifted acquire may record
	maxLockFacts = 64 // Acquires / AcqEdges entries per function
)

// --- abstract identity resolution ------------------------------------------

// mutexOpAbs classifies call as an abstract mutex acquire/release. It is
// the identity-aware twin of mutexOp: id is the abstract lock name ("" if
// unresolvable), write distinguishes Lock/Unlock from RLock/RUnlock.
func mutexOpAbs(info *types.Info, call *ast.CallExpr) (id string, write bool, op int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, opNone
	}
	switch sel.Sel.Name {
	case "Lock":
		op, write = opLock, true
	case "RLock":
		op, write = opLock, false
	case "Unlock":
		op, write = opUnlock, true
	case "RUnlock":
		op, write = opUnlock, false
	default:
		return "", false, opNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false, opNone
	}
	pkg, typ, ok := methodOn(fn)
	if !ok || pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return "", false, opNone
	}
	// A promoted method (type T struct{ sync.Mutex }; t.Lock()) reaches the
	// mutex through embedded fields recorded in the selection's index path.
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		if id := fieldPathIdent(s.Recv(), s.Index()[:len(s.Index())-1]); id != "" {
			return id, write, op
		}
		return "", false, op
	}
	return lockIdentOf(info, sel.X), write, op
}

// lockIdentOf names the mutex denoted by receiver expression e, "" when
// it has no stable abstract identity.
func lockIdentOf(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockIdentOf(info, x.X)
		}
	case *ast.StarExpr:
		return lockIdentOf(info, x.X)
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return pkgLevelVarIdent(v)
		}
	case *ast.SelectorExpr:
		// Qualified package-level var (otherpkg.Mu).
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			if id := pkgLevelVarIdent(v); id != "" {
				return id
			}
		}
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return fieldPathIdent(s.Recv(), s.Index())
		}
	}
	return ""
}

// pkgLevelVarIdent names a package-level variable "pkgpath.name", "" for
// locals, parameters and fields.
func pkgLevelVarIdent(v *types.Var) string {
	if v == nil || v.IsField() || v.Pkg() == nil {
		return ""
	}
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// fieldPathIdent walks a selection index path from recv and names the
// final field as "declaringPkg.DeclaringType.field". The declaring type
// is the *named struct that immediately holds the field*, so a mutex in
// an embedded type is one lock no matter which outer type it is reached
// through.
func fieldPathIdent(recv types.Type, index []int) string {
	t := recv
	id := ""
	for _, i := range index {
		for {
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
				continue
			}
			break
		}
		pkg, name, named := namedDef(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return ""
		}
		f := st.Field(i)
		if !named {
			return "" // anonymous struct owner: no stable name
		}
		id = pkg + "." + name + "." + f.Name()
		t = f.Type()
	}
	return id
}

// --- abstract must-held analysis -------------------------------------------

// absHeld records how an abstract lock is held: Write distinguishes a
// write hold from a read hold, Pos is the acquiring call.
type absHeld struct {
	Write bool
	Pos   token.Pos
}

type absLockset map[string]absHeld

func (s absLockset) clone() absLockset {
	c := make(absLockset, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s absLockset) equal(o absLockset) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		ov, ok := o[k]
		if !ok || ov.Write != v.Write {
			return false
		}
	}
	return true
}

// intersectAbs keeps locks held on both paths; a lock write-held on only
// one path demotes to a read hold (must-semantics on the mode bit too).
func intersectAbs(a, b absLockset) absLockset {
	out := absLockset{}
	for k, v := range a {
		if ov, ok := b[k]; ok {
			out[k] = absHeld{Write: v.Write && ov.Write, Pos: v.Pos}
		}
	}
	return out
}

// applyAbsLockOps folds every abstract mutex op contained in node n into
// held, in source order, without descending into function literals,
// deferred calls, or spawned goroutines.
func applyAbsLockOps(n ast.Node, info *types.Info, held absLockset) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			id, write, op := mutexOpAbs(info, c)
			if id == "" {
				return true
			}
			switch op {
			case opLock:
				if prev, ok := held[id]; ok && prev.Write {
					// Keep the stronger (and earlier) hold.
					return true
				}
				held[id] = absHeld{Write: write, Pos: c.Pos()}
			case opUnlock:
				delete(held, id)
			}
		}
		return true
	})
}

// heldAbstractLocks runs the forward must-analysis over g with abstract
// identities: the result maps every recorded node to the abstract locks
// definitely held when the node begins executing. Merges intersect, and
// deferred unlocks keep the lock held to the end of the function, exactly
// like heldLocks.
func heldAbstractLocks(g *cfg, info *types.Info) map[ast.Node]absLockset {
	heldAt := map[ast.Node]absLockset{}
	in := map[*cfgBlock]absLockset{g.entry: {}}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		cur := in[blk].clone()
		for _, n := range blk.nodes {
			if prev, ok := heldAt[n]; !ok || !prev.equal(cur) {
				heldAt[n] = cur.clone()
			}
			applyAbsLockOps(n, info, cur)
		}
		for _, succ := range blk.succs {
			next, seen := in[succ]
			if !seen {
				in[succ] = cur.clone()
				work = append(work, succ)
				continue
			}
			merged := intersectAbs(next, cur)
			if !merged.equal(next) {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}
	return heldAt
}

// --- summary scan -----------------------------------------------------------

// scanLockFacts computes the abstract lock facts of fi: which locks the
// function may acquire (directly or through callees), which acquisition
// edges it creates ("acquires B while A is definitely held"), and the
// conflicts it proves outright (acquiring a lock already held — the
// self-deadlock and read-to-write-upgrade classes go/sync turns into a
// permanent park at run time).
func (p *Program) scanLockFacts(fi *FuncInfo, s *FuncSummary) {
	info := fi.Pkg.Info
	fset := fi.Pkg.Fset

	// Fast pre-pass: collect the body's direct mutex ops and summarized
	// callees so lock-free functions skip the dataflow entirely.
	type acqOp struct {
		call  *ast.CallExpr
		id    string
		write bool
	}
	var directAcqs []acqOp
	var calls []*ast.CallExpr
	hasLockOps := false
	lockBodyOps(fi.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, write, op := mutexOpAbs(info, call); op != opNone {
			hasLockOps = true
			if op == opLock && id != "" {
				directAcqs = append(directAcqs, acqOp{call, id, write})
			}
			return
		}
		if key, ok := p.staticCallee(info, call); ok {
			if cs := p.Summaries[key]; cs != nil && len(cs.Acquires) > 0 {
				calls = append(calls, call)
			}
		}
	})

	acqs := map[string]LockAcq{}   // key: lock + mode
	edges := map[string]LockEdge{} // key: held + acquired lock
	var reports []LockReport

	site := func(pos token.Pos) LockSite {
		ps := fset.Position(pos)
		return LockSite{File: ps.Filename, Line: ps.Line, Col: ps.Column}
	}
	addAcq := func(a LockAcq) {
		key := a.Lock
		if a.Write {
			key += "/w"
		}
		if prev, ok := acqs[key]; !ok || a.compare(prev) < 0 {
			acqs[key] = a
		}
	}
	addEdge := func(e LockEdge) {
		key := e.Held + "\x00" + e.Acq.Lock
		if prev, ok := edges[key]; !ok || e.Acq.compare(prev.Acq) < 0 {
			edges[key] = e
		}
	}
	addReport := func(pos token.Pos, msg string) {
		reports = append(reports, LockReport{Site: site(pos), Msg: msg})
	}
	// conflict reports acquiring `a` while the same lock is already held
	// as `h`; a read hold re-entered by a read acquire is the one benign
	// combination.
	conflict := func(callPos token.Pos, a LockAcq, h absHeld) {
		if !a.Write && !h.Write {
			return
		}
		heldMode := "held"
		if !h.Write {
			heldMode = "read-held"
		}
		switch {
		case len(a.Chain) > 0:
			addReport(callPos, fmt.Sprintf("call acquires %s while the same lock is already %s (acquired at %s): guaranteed self-deadlock", a.describe(), heldMode, site(h.Pos)))
		case a.Write && !h.Write:
			addReport(callPos, fmt.Sprintf("%s of %s upgrades a read hold (RLock at %s) to a write hold: guaranteed self-deadlock", "Lock", a.Lock, site(h.Pos)))
		case a.Write:
			addReport(callPos, fmt.Sprintf("Lock of %s while the same lock is already held (acquired at %s): guaranteed self-deadlock", a.Lock, site(h.Pos)))
		default:
			addReport(callPos, fmt.Sprintf("RLock of %s while the same lock is write-held (Lock at %s): guaranteed self-deadlock", a.Lock, site(h.Pos)))
		}
	}

	// Lifted acquires flow in from callees whether or not any lock is held
	// here; edges and conflicts additionally need the must-held sets.
	var g *cfg
	var heldAt map[ast.Node]absLockset
	if hasLockOps && (len(directAcqs) > 0 || len(calls) > 0) {
		g = fi.cfg()
		heldAt = heldAbstractLocks(g, info)
	}
	// heldFor finds the must-held set in force at call: the set recorded
	// for the innermost CFG node containing it (lockHeldAt's containment
	// search, over the deterministic g.blocks order).
	heldFor := func(call *ast.CallExpr) absLockset {
		if heldAt == nil {
			return nil
		}
		var best ast.Node
		var bestHeld absLockset
		for _, blk := range g.blocks {
			for _, n := range blk.nodes {
				if n.Pos() <= call.Pos() && call.End() <= n.End() {
					if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
						best = n
						bestHeld = heldAt[n]
					}
				}
			}
		}
		if best == nil {
			return nil
		}
		cur := bestHeld.clone()
		// Replay ops textually before the call within the node (e.g. an
		// earlier Lock in the same statement).
		ast.Inspect(best, func(x ast.Node) bool {
			switch c := x.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if c == call || c.Pos() >= call.Pos() {
					return true
				}
				if id, write, op := mutexOpAbs(info, c); id != "" {
					switch op {
					case opLock:
						if prev, ok := cur[id]; !ok || !prev.Write {
							cur[id] = absHeld{Write: write, Pos: c.Pos()}
						}
					case opUnlock:
						delete(cur, id)
					}
				}
			}
			return true
		})
		return cur
	}

	for _, a := range directAcqs {
		fact := LockAcq{Lock: a.id, Write: a.write, Site: site(a.call.Pos())}
		addAcq(fact)
		for heldID, h := range heldFor(a.call) {
			if heldID == a.id {
				conflict(a.call.Pos(), fact, h)
				continue
			}
			addEdge(LockEdge{Held: heldID, HeldSite: site(h.Pos), Acq: fact})
		}
	}
	for _, call := range calls {
		key, _ := p.staticCallee(info, call)
		cs := p.Summaries[key]
		held := heldFor(call)
		for _, a := range cs.Acquires {
			if len(a.Chain)+1 > maxLockChain {
				continue // recursion guard: deep chains stop propagating
			}
			lifted := LockAcq{
				Lock:  a.Lock,
				Write: a.Write,
				Site:  a.Site,
				Chain: append([]string{key}, a.Chain...),
			}
			addAcq(lifted)
			for heldID, h := range held {
				if heldID == a.Lock {
					conflict(call.Pos(), lifted, h)
					continue
				}
				addEdge(LockEdge{Held: heldID, HeldSite: site(h.Pos), Acq: lifted})
			}
		}
	}

	s.Acquires = canonicalAcqs(acqs)
	s.AcqEdges = canonicalEdges(edges)
	sort.Slice(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if c := a.Site.compare(b.Site); c != 0 {
			return c < 0
		}
		return a.Msg < b.Msg
	})
	if len(reports) > maxLockFacts {
		reports = reports[:maxLockFacts]
	}
	s.LockReports = reports
}

// canonicalAcqs orders and bounds an acquire-fact map.
func canonicalAcqs(m map[string]LockAcq) []LockAcq {
	if len(m) == 0 {
		return nil
	}
	out := make([]LockAcq, 0, len(m))
	for _, a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Lock != b.Lock {
			return a.Lock < b.Lock
		}
		if a.Write != b.Write {
			return b.Write // write facts first
		}
		return a.compare(b) < 0
	})
	if len(out) > maxLockFacts {
		out = out[:maxLockFacts]
	}
	return out
}

// canonicalEdges orders and bounds an edge map.
func canonicalEdges(m map[string]LockEdge) []LockEdge {
	if len(m) == 0 {
		return nil
	}
	out := make([]LockEdge, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Held != b.Held {
			return a.Held < b.Held
		}
		if a.Acq.Lock != b.Acq.Lock {
			return a.Acq.Lock < b.Acq.Lock
		}
		return a.Acq.compare(b.Acq) < 0
	})
	if len(out) > maxLockFacts {
		out = out[:maxLockFacts]
	}
	return out
}

// lockBodyOps visits every node of body outside nested function literals,
// deferred calls, and go statements — the regions whose lock operations do
// not execute within the function's own locked extent at that point.
func lockBodyOps(body *ast.BlockStmt, visit func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		if n == nil {
			return true
		}
		visit(n)
		return true
	})
}
