package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ioFuncs are the os functions that open raw file handles or perform whole
// file data I/O. Metadata operations (Stat, Remove, MkdirTemp, …) are not
// data-path I/O and stay legal everywhere.
var ioFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"NewFile": true, "Pipe": true, "ReadFile": true, "WriteFile": true,
}

// NewIoconfine builds the ioconfine analyzer: direct os file access
// (os.Open and friends, the os.File type) and any use of syscall are
// confined to the packages under the allowed path prefixes. Everything
// else must reach disk through the internal/ssd and internal/diskio
// layers, where page accounting, simulated latency and cancellation live —
// an unconfined file handle is I/O the paper's cost model cannot see.
// Test files are exempt: fixtures legitimately create scratch files.
func NewIoconfine(allow []string) *Analyzer {
	io := &ioconfine{allow: allow}
	return &Analyzer{
		Name: "ioconfine",
		Doc:  "direct os file access and syscall use are confined to the I/O-layer packages",
		Run:  io.run,
	}
}

type ioconfine struct {
	allow []string
}

func (io *ioconfine) run(pass *Pass) {
	if anyPathWithin(pass.Pkg.Path, io.allow) {
		return
	}
	for i, file := range pass.Pkg.Files {
		if pass.Pkg.IsTest[i] {
			continue
		}
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				if path == "syscall" || strings.HasPrefix(path, "syscall/") {
					pass.Reportf(imp.Pos(), "import of %q outside the I/O layer (allowed under: %s)", path, strings.Join(io.allow, ", "))
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			switch obj := pass.Pkg.Info.Uses[sel.Sel].(type) {
			case *types.Func:
				if ioFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "os.%s outside the I/O layer; route disk access through internal/ssd or internal/diskio", obj.Name())
				}
			case *types.TypeName:
				if obj.Name() == "File" {
					pass.Reportf(sel.Pos(), "os.File outside the I/O layer; hold a device or stream from internal/ssd or internal/diskio instead")
				}
			}
			return true
		})
	}
}
