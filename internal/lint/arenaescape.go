package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// arenaescape: no value derived from a pooled chunk's arena
// (Chunk.Recs, Chunk.Arena, or the storage.DecodeAppend family that fills
// them) may be live after the chunk goes back to the pool. PutChunk hands
// the arena to the next decode, so a retained Record.Adj slice is a silent
// use-after-recycle no test reliably catches (DESIGN.md §13).
//
// The engine is a per-function may-alias taint analysis: every chunk-typed
// variable is an arena origin; selecting a field of a chunk, decoding into
// its arena, or flowing a tainted value through assignments, ranges,
// slices, indexes, appends (when elements carry references) and
// summary-described callees propagates the origin set; converting, copying
// element-by-element, or passing through an unknown callee (slices.Clone —
// the sanctioned remedy) drops it. Three patterns are findings:
//
//	A. a tainted value (or the chunk itself) is used after a PutChunk of
//	   its origin, with no rebinding in between;
//	B. a tainted value escapes the frame (field/global store, channel
//	   send, goroutine capture, callee that retains an alias) and a
//	   PutChunk of its origin is reachable afterwards;
//	C. the PutChunk is deferred and a tainted value is returned or
//	   escapes — the release runs at function exit, after both.
//
// The same engine, run with parameter slots, produces the AliasEscapes and
// ResultAlias summary facts interprocedural callers consume.

// maxSteps caps the recorded derivation path of one taint.
const maxSteps = 8

// taintPath records one origin and how the value derived from it, oldest
// step first ("c.Recs (opt.go:12)" …).
type taintPath struct {
	origin types.Object
	steps  []string
}

// taintSet maps each arena origin a value may alias to its derivation.
// Per-origin paths are first-wins, so growing the set never rewrites an
// existing path and the fixpoint stays deterministic.
type taintSet map[types.Object]*taintPath

// mergeTaint folds src into dst, appending step (when non-empty) to each
// newly adopted path.
func mergeTaint(dst, src taintSet, step string) bool {
	changed := false
	for o, pth := range src {
		if dst[o] != nil {
			continue
		}
		steps := pth.steps
		if step != "" && (len(steps) == 0 || steps[len(steps)-1] != step) {
			steps = append(append([]string{}, steps...), step)
			if len(steps) > maxSteps {
				steps = steps[:maxSteps]
			}
		}
		dst[o] = &taintPath{origin: o, steps: steps}
		changed = true
	}
	return changed
}

// addOrigin seeds dst with origin o at derivation step.
func addOrigin(dst taintSet, o types.Object, step string) {
	if dst[o] == nil {
		dst[o] = &taintPath{origin: o, steps: []string{step}}
	}
}

// carriesRef reports whether a value of type t can alias backing memory: a
// scalar or string copy severs the arena, a slice/pointer/struct-with-
// slice does not.
func carriesRef(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return carriesRef(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Tuple:
		return false
	}
	return true // slice, pointer, map, chan, func, interface, or unknown
}

// isChunkType reports whether t is buffer.Chunk or *buffer.Chunk.
func isChunkType(t types.Type) bool {
	if t == nil {
		return false
	}
	pkg, name, ok := namedDef(t)
	return ok && name == "Chunk" && pathSuffixWithin(pkg, "internal/buffer")
}

// arenaFlow is the taint state of one function body.
type arenaFlow struct {
	p     *Program
	pkg   *Package
	info  *types.Info
	body  *ast.BlockStmt
	slots map[types.Object]int      // param/receiver → summary slot; nil in analyzer mode
	env   map[types.Object]taintSet // variable → arena origins its value may alias
	local map[types.Object]bool     // objects defined inside this body
}

// newArenaFlow builds the taint environment for body by iterating the
// flow-insensitive propagation to a fixpoint.
func newArenaFlow(p *Program, pkg *Package, body *ast.BlockStmt, slots map[types.Object]int) *arenaFlow {
	a := &arenaFlow{
		p: p, pkg: pkg, info: pkg.Info, body: body, slots: slots,
		env:   map[types.Object]taintSet{},
		local: map[types.Object]bool{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.info.Defs[id]; obj != nil {
				a.local[obj] = true
			}
		}
		return true
	})
	for i := 0; i < 16; i++ {
		if !a.propagate() {
			break
		}
	}
	return a
}

func (a *arenaFlow) objOf(id *ast.Ident) types.Object {
	if obj := a.info.Uses[id]; obj != nil {
		return obj
	}
	return a.info.Defs[id]
}

// chunkIdent returns the chunk object e names (through parens, &, *), nil
// otherwise.
func (a *arenaFlow) chunkIdent(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			if obj := a.objOf(x); obj != nil && isChunkType(obj.Type()) {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

func (a *arenaFlow) posStr(pos token.Pos) string {
	p := a.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (a *arenaFlow) step(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return fmt.Sprintf("%s (%s)", s, a.posStr(e.Pos()))
}

// propagate runs one round of taint propagation over the body's own
// statements (nested literals are separate frames) and reports whether the
// environment grew.
func (a *arenaFlow) propagate() bool {
	changed := false
	topLevelStmts(a.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
				rts := a.tupleTaints(st.Rhs[0], len(st.Lhs))
				for i, lhs := range st.Lhs {
					changed = a.bindLHS(lhs, rts[i]) || changed
				}
				break
			}
			for i, lhs := range st.Lhs {
				if i < len(st.Rhs) {
					changed = a.bindLHS(lhs, a.taintOf(st.Rhs[i])) || changed
				}
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				break
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) > 1 && len(vs.Values) == 1 {
					rts := a.tupleTaints(vs.Values[0], len(vs.Names))
					for i, name := range vs.Names {
						changed = a.bind(name, rts[i]) || changed
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						changed = a.bind(name, a.taintOf(vs.Values[i])) || changed
					}
				}
			}
		case *ast.RangeStmt:
			t := a.taintOf(st.X)
			if len(t) == 0 {
				break
			}
			for _, ve := range []ast.Expr{st.Key, st.Value} {
				if id, ok := ve.(*ast.Ident); ok {
					changed = a.bind(id, t) || changed
				}
			}
		}
		return true
	})
	return changed
}

// bindLHS routes one assignment target: identifiers extend the
// environment; a store into a field of a *local* struct taints that local
// (the alias now lives inside it); anything else is an escape handled by
// collectEscapes.
func (a *arenaFlow) bindLHS(lhs ast.Expr, t taintSet) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return a.bind(id, t)
	}
	if root := rootIdent(lhs); root != nil {
		if obj := a.objOf(root); obj != nil && a.local[obj] && !isChunkType(obj.Type()) {
			return a.bindObj(obj, root, t)
		}
	}
	return false
}

func (a *arenaFlow) bind(id *ast.Ident, t taintSet) bool {
	if id.Name == "_" || len(t) == 0 {
		return false
	}
	obj := a.objOf(id)
	if obj == nil {
		return false
	}
	return a.bindObj(obj, id, t)
}

func (a *arenaFlow) bindObj(obj types.Object, at *ast.Ident, t taintSet) bool {
	if !carriesRef(obj.Type()) {
		return false
	}
	if a.env[obj] == nil {
		a.env[obj] = taintSet{}
	}
	return mergeTaint(a.env[obj], t, a.step(at))
}

// taintOf computes the arena origins the value of e may alias.
func (a *arenaFlow) taintOf(e ast.Expr) taintSet {
	if e == nil {
		return nil
	}
	e = ast.Unparen(e)
	if tv, ok := a.info.Types[e]; ok && tv.Type != nil && !carriesRef(tv.Type) {
		return nil // a scalar (or string) copy severs the alias
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := a.objOf(x)
		if obj == nil {
			return nil
		}
		out := taintSet{}
		mergeTaint(out, a.env[obj], "")
		if a.slots != nil && !isChunkType(obj.Type()) {
			if _, isParam := a.slots[obj]; isParam {
				addOrigin(out, obj, a.step(x))
			}
		}
		return out
	case *ast.SelectorExpr:
		if sel, ok := a.info.Selections[x]; ok && sel.Kind() != types.FieldVal {
			return nil // method value: not arena memory
		}
		out := taintSet{}
		mergeTaint(out, a.taintOf(x.X), "")
		if o := a.chunkIdent(x.X); o != nil {
			addOrigin(out, o, a.step(x))
		}
		return out
	case *ast.IndexExpr:
		return a.taintOf(x.X)
	case *ast.SliceExpr:
		return a.taintOf(x.X)
	case *ast.StarExpr:
		out := taintSet{}
		mergeTaint(out, a.taintOf(x.X), "")
		if o := a.chunkIdent(x.X); o != nil {
			addOrigin(out, o, a.step(x))
		}
		return out
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return nil // receive, not, …
		}
		out := taintSet{}
		mergeTaint(out, a.taintOf(x.X), "")
		if o := a.chunkIdent(x.X); o != nil {
			addOrigin(out, o, a.step(x))
		}
		return out
	case *ast.TypeAssertExpr:
		return a.taintOf(x.X)
	case *ast.CallExpr:
		if rts := a.callTaints(x); len(rts) > 0 {
			return rts[0]
		}
		return nil
	case *ast.CompositeLit:
		out := taintSet{}
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			mergeTaint(out, a.taintOf(el), "")
		}
		return out
	}
	return nil
}

// tupleTaints is taintOf for a multi-value right-hand side, padded to n.
func (a *arenaFlow) tupleTaints(rhs ast.Expr, n int) []taintSet {
	out := make([]taintSet, n)
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		for i, t := range a.callTaints(x) {
			if i < n {
				out[i] = t
			}
		}
	case *ast.TypeAssertExpr:
		out[0] = a.taintOf(x.X) // v, ok := e.(T)
	case *ast.IndexExpr:
		out[0] = a.taintOf(x.X) // v, ok := m[k]
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			break // v, ok := <-ch: unknown provenance
		}
	default:
		if n == 1 {
			out[0] = a.taintOf(rhs)
		}
	}
	return out
}

// callTaints computes per-result taint of a call: the DecodeAppend
// intrinsics alias their first two arguments, append aliases its base (and
// its element args when elements carry references), conversions pass
// through, in-program callees contribute their ResultAlias summaries, and
// unknown callees sever the taint — which is exactly why slices.Clone is
// the remedy the findings suggest.
func (a *arenaFlow) callTaints(call *ast.CallExpr) []taintSet {
	info := a.info
	if isDecodeAppendCall(info, call) && len(call.Args) >= 2 {
		out := make([]taintSet, 3)
		for i := 0; i < 2; i++ {
			ts := taintSet{}
			mergeTaint(ts, a.taintOf(call.Args[i]), a.step(call.Args[i]))
			if o := a.chunkIdent(call.Args[i]); o != nil {
				addOrigin(ts, o, a.step(call.Args[i]))
			}
			out[i] = ts
		}
		return out
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				out := taintSet{}
				mergeTaint(out, a.taintOf(call.Args[0]), "")
				if tv, ok := info.Types[call]; ok && sliceElemCarriesRef(tv.Type) {
					for _, arg := range call.Args[1:] {
						mergeTaint(out, a.taintOf(arg), a.step(arg))
					}
				}
				return []taintSet{out}
			}
			return nil
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && carriesRef(tv.Type) {
			return []taintSet{a.taintOf(call.Args[0])}
		}
		return nil
	}
	if key, ok := a.p.staticCallee(info, call); ok {
		if cs := a.p.Summaries[key]; cs != nil && len(cs.ResultAlias) > 0 {
			out := make([]taintSet, len(cs.ResultAlias))
			for i, slotIdxs := range cs.ResultAlias {
				if len(slotIdxs) == 0 {
					continue
				}
				ts := taintSet{}
				for _, slot := range slotIdxs {
					arg := a.argForSlot(cs, call, slot)
					if arg == nil {
						continue
					}
					via := fmt.Sprintf("via %s (%s)", key, a.posStr(call.Pos()))
					mergeTaint(ts, a.taintOf(arg), via)
					if o := a.chunkIdent(arg); o != nil {
						addOrigin(ts, o, via)
					}
				}
				out[i] = ts
			}
			return out
		}
	}
	return nil
}

// argForSlot maps a summary slot back to the call-site expression filling
// it (the receiver for slot 0 of a method).
func (a *arenaFlow) argForSlot(cs *FuncSummary, call *ast.CallExpr, slot int) ast.Expr {
	base := 0
	if cs.HasRecv {
		base = 1
		if slot == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
	}
	if i := slot - base; i >= 0 && i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

func sliceElemCarriesRef(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && carriesRef(sl.Elem())
}

// --- events ----------------------------------------------------------------

// putEvent is one release of a chunk: the CFG node holding the call, the
// released chunk's object, and whether the release is deferred to function
// exit.
type putEvent struct {
	node     ast.Node
	call     *ast.CallExpr
	origin   types.Object
	deferred bool
}

// collectPuts finds every release of a named chunk among g's nodes —
// PutChunk itself or an in-program callee whose summary releases that
// argument. Releases inside plain nested literals belong to the literal's
// own frame; releases inside a deferred literal run at this frame's exit.
func (a *arenaFlow) collectPuts(g *cfg) []putEvent {
	var puts []putEvent
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			_, isDefer := n.(*ast.DeferStmt)
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok && !isDefer {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if o := a.releasedChunk(call); o != nil {
					puts = append(puts, putEvent{node: n, call: call, origin: o, deferred: isDefer})
				}
				return true
			})
		}
	}
	return puts
}

// releasedChunk returns the chunk object call releases, nil if none.
func (a *arenaFlow) releasedChunk(call *ast.CallExpr) types.Object {
	if isPutChunkCall(a.info, call) && len(call.Args) == 1 {
		return a.chunkIdent(call.Args[0])
	}
	if cs := a.p.callSummary(a.info, call); cs != nil {
		for i, arg := range call.Args {
			if cs.argFacts(i).Released {
				if o := a.chunkIdent(arg); o != nil {
					return o
				}
			}
		}
	}
	return nil
}

// escEvent is one point where a tainted value leaves the frame.
type escEvent struct {
	node  ast.Node
	pos   token.Pos
	desc  string
	taint taintSet
}

// collectEscapes finds every frame-escape of tainted values among g's
// nodes: stores outside the frame (with the repoint exemption — writing an
// arena-derived slice back into its *own* chunk's fields is the sanctioned
// decode pattern), channel sends, goroutine captures, and calls into
// functions whose summaries retain an alias of the argument.
func (a *arenaFlow) collectEscapes(g *cfg) []escEvent {
	var out []escEvent
	add := func(n ast.Node, pos token.Pos, desc string, t taintSet) {
		if len(t) > 0 {
			out = append(out, escEvent{node: n, pos: pos, desc: desc, taint: t})
		}
	}
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			switch st := n.(type) {
			case *ast.AssignStmt:
				taintFor := func(i int) taintSet {
					if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
						return a.tupleTaints(st.Rhs[0], len(st.Lhs))[i]
					}
					if i < len(st.Rhs) {
						return a.taintOf(st.Rhs[i])
					}
					return nil
				}
				for i, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := a.objOf(id); obj == nil || !isGlobalVar(obj) {
							continue // environment binding, not a store
						}
						// A package-level variable outlives every frame:
						// fall through to the escape report below.
					}
					t := taintFor(i)
					if len(t) == 0 {
						continue
					}
					root := rootIdent(lhs)
					if root != nil {
						obj := a.objOf(root)
						if obj != nil && isChunkType(obj.Type()) && t[obj] != nil {
							// Repointing a chunk's own fields at its arena:
							// c.Recs, c.Arena = recs, arena.
							t = cloneWithout(t, obj)
							if len(t) == 0 {
								continue
							}
						}
						if obj != nil && a.local[obj] && !isChunkType(obj.Type()) {
							continue // store into a local struct: tracked via env
						}
					}
					add(n, lhs.Pos(), "stored to "+types.ExprString(lhs), t)
				}
			case *ast.SendStmt:
				add(n, st.Pos(), "sent on channel "+types.ExprString(st.Chan), a.taintOf(st.Value))
			case *ast.GoStmt:
				t := taintSet{}
				ast.Inspect(st, func(x ast.Node) bool {
					id, ok := x.(*ast.Ident)
					if !ok {
						return true
					}
					obj := a.objOf(id)
					if obj == nil {
						return true
					}
					mergeTaint(t, a.env[obj], "")
					if isChunkType(obj.Type()) {
						addOrigin(t, obj, a.step(id))
					}
					if a.slots != nil {
						if _, isParam := a.slots[obj]; isParam && carriesRef(obj.Type()) {
							addOrigin(t, obj, a.step(id))
						}
					}
					return true
				})
				add(n, st.Pos(), "captured by a spawned goroutine", t)
			}
			// Calls into callees that retain an alias of an argument.
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue // runs at exit; the deferred-put cases cover ordering
			}
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				cs := a.p.callSummary(a.info, call)
				if cs == nil {
					return true
				}
				if slot := cs.recvSlot(); slot >= 0 && cs.Params[slot].AliasEscapes {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						key, _ := a.p.staticCallee(a.info, call)
						add(n, call.Pos(), "passed to "+key+", which retains an alias of it", a.taintOf(sel.X))
					}
				}
				for i, arg := range call.Args {
					slot := cs.argSlot(i)
					if slot < 0 || !cs.Params[slot].AliasEscapes {
						continue
					}
					key, _ := a.p.staticCallee(a.info, call)
					add(n, arg.Pos(), "passed to "+key+", which retains an alias of it", a.taintOf(arg))
				}
				return true
			})
		}
	}
	return out
}

// isGlobalVar reports whether obj is a package-level variable.
func isGlobalVar(obj types.Object) bool {
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// cloneWithout copies t minus origin o.
func cloneWithout(t taintSet, o types.Object) taintSet {
	out := taintSet{}
	for k, v := range t {
		if k != o {
			out[k] = v
		}
	}
	return out
}

// rootIdent walks to the base identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// --- findings --------------------------------------------------------------

// check reports the arena-escape findings of one function body.
func (a *arenaFlow) check(pass *Pass) {
	g := buildCFG(a.body, a.info)
	puts := a.collectPuts(g)
	if len(puts) == 0 {
		return
	}
	rangeBound := a.rangeBoundObjs()
	reported := map[string]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		k := fmt.Sprintf("%d:%s", pos, msg)
		if !reported[k] {
			reported[k] = true
			pass.Reportf(pos, "%s", msg)
		}
	}

	// Case A: use after a non-deferred release.
	for _, put := range puts {
		if put.deferred {
			continue
		}
		for _, v := range a.candidatesFor(put.origin) {
			var hit *ast.Ident
			g.scanAfter(put.node,
				func(n ast.Node) bool { return a.rebinds(n, v) },
				func(n ast.Node) bool {
					hit = a.findUse(n, v, put, rangeBound)
					return hit != nil
				})
			if hit == nil {
				continue
			}
			if v == put.origin {
				report(hit.Pos(), "chunk %s is used after buffer.PutChunk(%s) (%s): the chunk and its arena are back in the pool and may be recycled",
					v.Name(), v.Name(), a.posStr(put.call.Pos()))
				continue
			}
			report(hit.Pos(), "%s aliases the pooled arena of chunk %s and is used after buffer.PutChunk (%s): the arena may be recycled and overwritten; leak path: %s; copy with slices.Clone before releasing, or use it before PutChunk",
				v.Name(), put.origin.Name(), a.posStr(put.call.Pos()), a.pathTo(v, put.origin))
		}
	}

	// Cases B and C: escape (or tainted return) while a release of the
	// origin still runs afterwards.
	escapes := a.collectEscapes(g)
	for _, ev := range escapes {
		for _, o := range sortedOrigins(ev.taint) {
			released, relPos, deferred := a.releaseAfter(g, puts, ev.node, o)
			if !released {
				continue
			}
			how := "buffer.PutChunk"
			if deferred {
				how = "the deferred buffer.PutChunk"
			}
			report(ev.pos, "alias of chunk %s's pooled arena is %s (leak path: %s) and then %s (%s) recycles the arena: the stored slice outlives its memory; copy with slices.Clone first",
				o.Name(), ev.desc, pathOf(ev.taint[o]), how, a.posStr(relPos))
		}
	}
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			rs, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			for _, res := range rs.Results {
				t := taintSet{}
				mergeTaint(t, a.taintOf(res), "")
				if o := a.chunkIdent(res); o != nil {
					addOrigin(t, o, a.step(res))
				}
				for _, o := range sortedOrigins(t) {
					for _, put := range puts {
						if !put.deferred || put.origin != o {
							continue
						}
						if o == a.chunkIdent(res) {
							report(res.Pos(), "chunk %s is returned while a deferred buffer.PutChunk (%s) releases it at function exit: the caller receives a recycled chunk",
								o.Name(), a.posStr(put.call.Pos()))
						} else {
							report(res.Pos(), "returned value aliases the pooled arena of chunk %s (leak path: %s) but the deferred buffer.PutChunk (%s) recycles the arena before the caller can use it; copy with slices.Clone before returning",
								o.Name(), pathOf(t[o]), a.posStr(put.call.Pos()))
						}
						break
					}
				}
			}
		}
	}
}

// releaseAfter reports whether a release of origin o runs after node n: a
// non-deferred put reachable forward without o being rebound, or any
// deferred put of o (which runs at exit, after everything).
func (a *arenaFlow) releaseAfter(g *cfg, puts []putEvent, n ast.Node, o types.Object) (found bool, pos token.Pos, deferred bool) {
	for _, put := range puts {
		if put.origin != o {
			continue
		}
		if put.deferred {
			return true, put.call.Pos(), true
		}
		if put.node == n {
			continue
		}
		hit := g.scanAfter(n,
			func(x ast.Node) bool { return a.rebinds(x, o) },
			func(x ast.Node) bool { return x == put.node })
		if hit {
			return true, put.call.Pos(), false
		}
	}
	return false, token.NoPos, false
}

// candidatesFor lists the values endangered by releasing origin: the chunk
// variable itself plus every variable whose taint includes it, in
// declaration order.
func (a *arenaFlow) candidatesFor(origin types.Object) []types.Object {
	out := []types.Object{origin}
	for obj, t := range a.env {
		if t[origin] != nil {
			out = append(out, obj)
		}
	}
	sort.Slice(out[1:], func(i, j int) bool { return out[1+i].Pos() < out[1+j].Pos() })
	return out
}

// rangeBoundObjs collects variables bound by range clauses: they are
// rebound each iteration without any CFG node recording it, so use/put
// ordering for them falls back to source positions.
func (a *arenaFlow) rangeBoundObjs() map[types.Object]bool {
	out := map[types.Object]bool{}
	topLevelStmts(a.body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			for _, ve := range []ast.Expr{rs.Key, rs.Value} {
				if id, ok := ve.(*ast.Ident); ok {
					if obj := a.objOf(id); obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// rebinds reports whether node n assigns a fresh value to v.
func (a *arenaFlow) rebinds(n ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch st := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && a.objOf(id) == v {
					found = true
				}
			}
		case *ast.ValueSpec:
			for _, id := range st.Names {
				if a.objOf(id) == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// findUse returns the first identifier in node n that reads v — skipping
// nested literal bodies, assignment targets, and v's own release calls.
// For range-bound v, uses positioned at or before the put are prior-
// iteration bindings of a fresh value and do not count.
func (a *arenaFlow) findUse(n ast.Node, v types.Object, put putEvent, rangeBound map[types.Object]bool) *ast.Ident {
	var hit *ast.Ident
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if hit != nil {
			return false
		}
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && a.releasedChunk(call) == v {
			return false // a second release is poolpair's double-put domain
		}
		id, ok := x.(*ast.Ident)
		if !ok || a.info.Uses[id] != v {
			return true
		}
		for i := len(stack) - 2; i >= 0; i-- {
			if as, ok := stack[i].(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if ast.Unparen(lhs) == ast.Expr(id) {
						return true // assignment target, not a read
					}
				}
			}
		}
		if rangeBound[v] && id.Pos() <= put.call.Pos() {
			return true
		}
		hit = id
		return false
	})
	return hit
}

// pathTo renders the derivation of v's alias of origin.
func (a *arenaFlow) pathTo(v, origin types.Object) string {
	if t := a.env[v]; t != nil && t[origin] != nil {
		return pathOf(t[origin])
	}
	return v.Name()
}

func pathOf(t *taintPath) string {
	if t == nil {
		return "?"
	}
	if len(t.steps) == 0 {
		return t.origin.Name()
	}
	return strings.Join(t.steps, " -> ")
}

// sortedOrigins returns t's origins in source order, for deterministic
// reporting.
func sortedOrigins(t taintSet) []types.Object {
	out := make([]types.Object, 0, len(t))
	for o := range t {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// --- summary integration ---------------------------------------------------

// scanAlias computes fi's AliasEscapes and ResultAlias facts with the same
// engine, parameters acting as origins.
func (p *Program) scanAlias(fi *FuncInfo, slotOf map[types.Object]int, s *FuncSummary) {
	a := newArenaFlow(p, fi.Pkg, fi.Decl.Body, slotOf)
	g := fi.cfg()
	for _, ev := range a.collectEscapes(g) {
		for o := range ev.taint {
			if slot, ok := slotOf[o]; ok {
				s.Params[slot].AliasEscapes = true
			}
		}
	}
	nres := len(s.ResultAlias)
	if nres == 0 {
		return
	}
	record := func(i int, t taintSet) {
		if i >= nres {
			return
		}
		for o := range t {
			if slot, ok := slotOf[o]; ok {
				s.ResultAlias[i] = appendSlot(s.ResultAlias[i], slot)
			}
		}
	}
	topLevelStmts(fi.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(rs.Results) == 1 && nres > 1 {
			if call, ok := ast.Unparen(rs.Results[0]).(*ast.CallExpr); ok {
				for i, t := range a.callTaints(call) {
					record(i, t)
				}
			}
			return true
		}
		for i, res := range rs.Results {
			t := taintSet{}
			mergeTaint(t, a.taintOf(res), "")
			if o := a.chunkIdent(res); o != nil {
				addOrigin(t, o, "")
			}
			record(i, t)
		}
		return true
	})
	for i := range s.ResultAlias {
		sort.Ints(s.ResultAlias[i])
	}
}

func appendSlot(slots []int, slot int) []int {
	for _, s := range slots {
		if s == slot {
			return slots
		}
	}
	return append(slots, slot)
}

// NewArenaescape builds the analyzer. skipPaths name the packages that
// legitimately manipulate arenas (the pool and the codec layer); test
// files are exempt like poolpair's.
func NewArenaescape(skipPaths ...string) *Analyzer {
	return &Analyzer{
		Name: "arenaescape",
		Doc:  "no Chunk.Recs/Chunk.Arena-derived slice may outlive its chunk's PutChunk",
		Run: func(pass *Pass) {
			if pass.Prog == nil || anyPathWithin(pass.Pkg.Path, skipPaths) {
				return
			}
			for i, file := range pass.Pkg.Files {
				if pass.Pkg.IsTest[i] {
					continue
				}
				funcBodies(file, func(body *ast.BlockStmt) {
					a := newArenaFlow(pass.Prog, pass.Pkg, body, nil)
					a.check(pass)
				})
			}
		},
	}
}
