package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// suppressPrefix marks a suppression comment: //optlint:ignore <rule> <reason>.
const suppressPrefix = "optlint:ignore"

// SuppressRule is the pseudo-rule under which directive problems are
// reported: a directive with no reason, and a directive that suppresses
// nothing. Both are findings, so a stale ignore fails CI the same way the
// bug it once hid would have.
const SuppressRule = "suppression"

// directive is one parsed //optlint:ignore comment.
type directive struct {
	pos    token.Position // of the comment itself
	rule   string
	reason string
	used   bool
}

// ApplySuppressions filters findings through the //optlint:ignore
// directives found in the packages' files, and appends directive
// diagnostics (missing reason, unused directive) under the "suppression"
// pseudo-rule. A directive suppresses findings of its rule on the same
// line (trailing comment) or on the line immediately below (comment on
// its own line). Call it after Analyze and before Relativize.
func ApplySuppressions(pkgs []*Package, findings []Finding) []Finding {
	directives := collectDirectives(pkgs)
	if len(directives) == 0 {
		return findings
	}
	// Index by file:line the directive covers.
	type key struct {
		file string
		line int
	}
	index := map[key][]*directive{}
	for _, d := range directives {
		index[key{d.pos.Filename, d.pos.Line}] = append(index[key{d.pos.Filename, d.pos.Line}], d)
		index[key{d.pos.Filename, d.pos.Line + 1}] = append(index[key{d.pos.Filename, d.pos.Line + 1}], d)
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range index[key{f.Pos.Filename, f.Pos.Line}] {
			if d.rule == f.Rule && d.reason != "" {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range directives {
		switch {
		case d.reason == "":
			kept = append(kept, Finding{
				Pos:     d.pos,
				Rule:    SuppressRule,
				Message: fmt.Sprintf("optlint:ignore %s has no reason; a suppression must say why (//optlint:ignore %s <reason>)", d.rule, d.rule),
			})
		case !d.used:
			kept = append(kept, Finding{
				Pos:     d.pos,
				Rule:    SuppressRule,
				Message: fmt.Sprintf("unused optlint:ignore %s directive; the finding it suppressed is gone, so delete the directive", d.rule),
			})
		}
	}
	sortFindings(kept)
	return kept
}

// collectDirectives parses every //optlint:ignore comment in the
// packages' files, deduplicating files shared between a package and its
// test variant.
func collectDirectives(pkgs []*Package) []*directive {
	var out []*directive
	seen := map[string]bool{} // file:line of already-collected directives
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+suppressPrefix)
					if !ok {
						continue
					}
					// A trailing comment (`… // see ISSUE-42`) is not part
					// of the reason — and a directive whose "reason" is only
					// a trailing comment has no reason at all.
					if i := strings.Index(text, "//"); i >= 0 {
						text = text[:i]
					}
					pos := pkg.Fset.Position(c.Pos())
					id := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
					if seen[id] {
						continue
					}
					seen[id] = true
					fields := strings.Fields(text)
					d := &directive{pos: pos}
					if len(fields) > 0 {
						d.rule = fields[0]
					}
					if len(fields) > 1 {
						d.reason = strings.Join(fields[1:], " ")
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// sortFindings orders findings by position, then rule, then message — the
// same order Analyze produces.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
