package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewLockheld builds the lockheld analyzer for the given package paths: in
// the overlap-critical packages no goroutine may perform a potentially
// blocking operation while holding a sync.Mutex/RWMutex — that is the
// micro-overlap deadlock class of Paper §5.4, where a completion callback
// blocks on a queue whose consumer needs the lock the callback holds.
//
// Flagged between Lock/RLock and the matching Unlock/RUnlock (or to the
// end of a function that defers the unlock): channel sends and receives,
// select statements, calls to methods named Wait or Drain, and invocations
// of function-typed struct fields (callbacks). sync.Cond.Wait is exempt —
// it releases the lock while parked and is the one blocking call the
// schedulers legitimately make under their mutex.
//
// The scan is flow-lite and within one function body: branches are
// analyzed with the conservative-for-false-positives rule that a lock
// counts as held after a conditional only if every non-terminating path
// left it held. Function literals are scanned as separate functions (a
// deferred or spawned literal does not run at its definition point).
func NewLockheld(pkgs []string) *Analyzer {
	lh := &lockheld{pkgs: pkgs}
	return &Analyzer{
		Name: "lockheld",
		Doc:  "no blocking operation (send/recv/select/Wait/Drain/callback) while holding a mutex",
		Run:  lh.run,
	}
}

type lockheld struct {
	pkgs []string
}

func (lh *lockheld) run(pass *Pass) {
	if !anyPathWithin(pass.Pkg.Path, lh.pkgs) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch f := n.(type) {
			case *ast.FuncDecl:
				body = f.Body
			case *ast.FuncLit:
				body = f.Body
			default:
				return true
			}
			if body != nil {
				s := &lockScan{pass: pass}
				s.block(body.List, lockSet{})
			}
			return true // literals nested inside are scanned on their own visit
		})
	}
}

// lockSet maps a lock's receiver expression (printed) to the position of
// the acquiring call.
type lockSet map[string]token.Pos

func (h lockSet) clone() lockSet {
	c := make(lockSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h lockSet) names() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// intersect keeps only locks held in both sets.
func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

type lockScan struct {
	pass *Pass
}

// block scans a statement list sequentially, mutating held, and reports
// whether control cannot flow past the list's end.
func (s *lockScan) block(stmts []ast.Stmt, held lockSet) bool {
	for _, stmt := range stmts {
		if s.stmt(stmt, held) {
			return true
		}
	}
	return false
}

// stmt scans one statement; the return value reports termination (return,
// branch, or panic).
func (s *lockScan) stmt(stmt ast.Stmt, held lockSet) bool {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		s.expr(st.X, held)
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, op := s.lockOp(call); op == opLock {
				held[key] = call.Pos()
			} else if op == opUnlock {
				delete(held, key)
			}
			if isPanic(s.pass.Pkg.Info, call) {
				return true
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the section held to the function's end,
		// which is exactly how the scan already models an un-released lock.
		// A deferred blocking call while the unlock is also deferred runs
		// before the (LIFO-later) unlock, so reporting it while held is
		// right; argument expressions evaluate immediately either way.
		if key, op := s.lockOp(st.Call); op != opNone {
			_ = key // deferred Lock is nonsense; deferred Unlock changes nothing now
		} else {
			s.call(st.Call, held)
		}
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.GoStmt:
		// The spawned call runs on another goroutine that does not inherit
		// this one's locks; only its argument evaluation happens here.
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			s.pass.Reportf(st.Arrow, "channel send while holding %s", held.names())
		}
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IncDecStmt:
		s.expr(st.X, held)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		branches := []lockSet{}
		thenHeld := held.clone()
		if !s.block(st.Body.List, thenHeld) {
			branches = append(branches, thenHeld)
		}
		if st.Else != nil {
			elseHeld := held.clone()
			if !s.stmt(st.Else, elseHeld) {
				branches = append(branches, elseHeld)
			}
		} else {
			branches = append(branches, held.clone()) // fallthrough path
		}
		if len(branches) == 0 {
			return true
		}
		merged := branches[0]
		for _, b := range branches[1:] {
			merged = intersect(merged, b)
		}
		replace(held, merged)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		body := held.clone()
		s.block(st.Body.List, body)
		if st.Post != nil {
			s.stmt(st.Post, body)
		}
	case *ast.RangeStmt:
		s.expr(st.X, held)
		body := held.clone()
		s.block(st.Body.List, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		s.caseBodies(st.Body, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.caseBodies(st.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			s.pass.Reportf(st.Select, "select (blocking channel operation) while holding %s", held.names())
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				s.block(cc.Body, held.clone())
			}
		}
	}
	return false
}

// caseBodies scans each case clause with its own copy of the held set.
func (s *lockScan) caseBodies(body *ast.BlockStmt, held lockSet) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			s.block(cc.Body, held.clone())
		}
	}
}

// replace overwrites dst's contents with src's.
func replace(dst, src lockSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// expr reports blocking operations inside an expression tree, without
// descending into function literals.
func (s *lockScan) expr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 {
				s.pass.Reportf(x.OpPos, "channel receive while holding %s", held.names())
			}
		case *ast.CallExpr:
			s.call(x, held)
		}
		return true
	})
}

// call reports a blocking or callback call made while locks are held.
func (s *lockScan) call(call *ast.CallExpr, held lockSet) {
	if len(held) == 0 {
		return
	}
	info := s.pass.Pkg.Info
	// Interprocedural (v3): an in-module callee whose summary proves it
	// blocks on every normal path is as bad as the send itself, whatever
	// the callee is named. Wait/Drain names are left to the v2 rule below
	// so those sites keep their one familiar message.
	if s.pass.Prog != nil {
		if fn, isFn := funcFor(info, call); isFn && fn.Name() != "Wait" && fn.Name() != "Drain" {
			if key, ok := s.pass.Prog.staticCallee(info, call); ok {
				if cs := s.pass.Prog.Summaries[key]; cs != nil && cs.Blocks {
					s.pass.Reportf(call.Pos(), "call to %s while holding %s: the callee always blocks (%s)", key, held.names(), cs.BlocksWhy)
				}
			}
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		name := fn.Name()
		if name == "Wait" || name == "Drain" {
			if pkg, typ, ok := methodOn(fn); ok && pkg == "sync" && typ == "Cond" {
				return // Cond.Wait releases the lock while parked
			}
			s.pass.Reportf(call.Pos(), "blocking %s.%s() while holding %s", types.ExprString(sel.X), name, held.names())
		}
		return
	}
	// Not a method or function: a call through a value. Flag function-typed
	// struct fields — the paper's completion-callback shape.
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		if _, isFunc := selection.Type().Underlying().(*types.Signature); isFunc {
			s.pass.Reportf(call.Pos(), "callback field %s invoked while holding %s (callbacks may block)", types.ExprString(sel), held.names())
		}
	}
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockOp classifies a call as acquiring or releasing a sync mutex and
// returns the printed receiver expression as the lock's identity.
func (s *lockScan) lockOp(call *ast.CallExpr) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	fn, ok := s.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	pkg, typ, ok := methodOn(fn)
	if !ok || pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return "", opNone
	}
	return types.ExprString(sel.X), op
}

// isPanic reports whether call is the builtin panic.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
