package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewCancelfree builds the cancelfree analyzer: the cancel function
// returned by context.WithCancel, WithTimeout, WithDeadline (and their
// Cause variants) must be called on every path to the function's normal
// exit — the discipline that keeps the job manager and engine free of
// context leaks, where a forgotten cancel pins the parent context's
// resources (and, for WithTimeout, a live timer goroutine) long after the
// operation finished.
//
// The analysis is path-sensitive over the function's cfg: a cancel bound
// to `_` is an immediate finding; a named cancel must be called, deferred,
// or escape (returned, stored in a field, passed to another call, or
// captured by a closure — whoever receives it owns the obligation) before
// every reachable return. A `defer cancel()` anywhere discharges exactly
// the paths that execute it, so a defer inside one branch still leaks the
// other. Paths ending in panic or os.Exit are not leaks. The mechanical
// fix — inserting `defer cancel()` right after the creation — ships as a
// SuggestedFix applied by `optlint -fix`.
func NewCancelfree() *Analyzer {
	return &Analyzer{
		Name: "cancelfree",
		Doc:  "every context.WithCancel/WithTimeout/WithDeadline cancel func must be called on all exit paths",
		Run:  runCancelfree,
	}
}

func runCancelfree(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			var sites []*ast.AssignStmt
			topLevelStmts(body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && cancelAssign(info, as) != "" {
					sites = append(sites, as)
				}
				return true
			})
			if len(sites) == 0 {
				return
			}
			g := buildCFG(body, info)
			for _, as := range sites {
				checkCancelSite(pass, g, as)
			}
		})
	}
}

// cancelAssign reports the context constructor name ("WithCancel", …) when
// as assigns the two results of a cancelable-context creation, "" when it
// is anything else.
func cancelAssign(info *types.Info, as *ast.AssignStmt) string {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn, ok := funcFor(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "WithCancel", "WithCancelCause", "WithTimeout", "WithTimeoutCause",
		"WithDeadline", "WithDeadlineCause":
		return fn.Name()
	}
	return ""
}

// checkCancelSite analyzes one creation site inside graph g.
func checkCancelSite(pass *Pass, g *cfg, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	ctor := cancelAssign(info, as)
	target := as.Lhs[1]
	id, isIdent := target.(*ast.Ident)
	switch {
	case isIdent && id.Name == "_":
		pass.Reportf(as.Pos(), "cancel func of context.%s discarded with _; the context can never be released", ctor)
		return
	case !isIdent:
		// Stored straight into a field or element: ownership moved to the
		// structure (the manager's rootCtx/cancelJobs pattern). Not ours.
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id] // `=` rebinding an existing variable
	}
	if obj == nil {
		return
	}
	discharged := func(n ast.Node) bool { return referencesObject(info, n, obj) }
	if g.mayReachExitWithout(as, discharged) {
		f := Finding{
			Pos:     pass.Pkg.Fset.Position(as.Pos()),
			Rule:    "cancelfree",
			Message: fmt.Sprintf("cancel func %q of context.%s is not called on every path to return (context leak)", id.Name, ctor),
		}
		if end := as.End(); end.IsValid() {
			indent := indentFor(pass.Pkg.Fset.Position(as.Pos()).Column)
			f.Fix = &Fix{
				Message: fmt.Sprintf("insert `defer %s()` after the context creation", id.Name),
				Edits: []TextEdit{{
					Pos:     end,
					End:     end,
					NewText: "\n" + indent + "defer " + id.Name + "()",
				}},
			}
		}
		pass.report(f)
	}
}

// indentFor rebuilds the leading tabs of a statement that starts at the
// given 1-based column, assuming tab indentation (gofmt's output).
func indentFor(column int) string {
	if column < 1 {
		return ""
	}
	out := make([]byte, column-1)
	for i := range out {
		out[i] = '\t'
	}
	return string(out)
}

// referencesObject reports whether node n mentions obj at all, including
// inside nested function literals (a capture hands the obligation to the
// closure). The defining identifier itself does not count.
func referencesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
