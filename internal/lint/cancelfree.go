package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewCancelfree builds the cancelfree analyzer: the cancel function
// returned by context.WithCancel, WithTimeout, WithDeadline (and their
// Cause variants) must be called on every path to the function's normal
// exit — the discipline that keeps the job manager and engine free of
// context leaks, where a forgotten cancel pins the parent context's
// resources (and, for WithTimeout, a live timer goroutine) long after the
// operation finished.
//
// The analysis is path-sensitive over the function's cfg: a cancel bound
// to `_` is an immediate finding; a named cancel must be called, deferred,
// or escape (returned, stored in a field, passed to another call, or
// captured by a closure — whoever receives it owns the obligation) before
// every reachable return. A `defer cancel()` anywhere discharges exactly
// the paths that execute it, so a defer inside one branch still leaks the
// other. Paths ending in panic or os.Exit are not leaks. The mechanical
// fix — inserting `defer cancel()` right after the creation — ships as a
// SuggestedFix applied by `optlint -fix`.
//
// v3 consults the Program's summaries (DESIGN.md §13) in both directions:
// an in-module wrapper whose summary marks a result as a cancel obligation
// (CancelResults) creates a site at its callers, and passing the cancel
// func to a callee whose summary proves a pure borrow no longer counts as
// a discharge — only a callee that calls, stores or returns it does.
func NewCancelfree() *Analyzer {
	return &Analyzer{
		Name: "cancelfree",
		Doc:  "every context.WithCancel/WithTimeout/WithDeadline cancel func must be called on all exit paths",
		Run:  runCancelfree,
	}
}

// cancelSite is one obligation: the assignment, which LHS holds the cancel
// func, and the printable source ("context.WithCancel" or a summary key).
type cancelSite struct {
	as     *ast.AssignStmt
	lhsIdx int
	src    string
}

func runCancelfree(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			var sites []cancelSite
			topLevelStmts(body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					sites = append(sites, cancelSitesOf(pass, as)...)
				}
				return true
			})
			if len(sites) == 0 {
				return
			}
			g := buildCFG(body, info)
			for _, site := range sites {
				checkCancelSite(pass, g, site)
			}
		})
	}
}

// cancelAssign reports the context constructor name ("WithCancel", …) when
// as assigns the two results of a cancelable-context creation, "" when it
// is anything else.
func cancelAssign(info *types.Info, as *ast.AssignStmt) string {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn, ok := funcFor(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "WithCancel", "WithCancelCause", "WithTimeout", "WithTimeoutCause",
		"WithDeadline", "WithDeadlineCause":
		return fn.Name()
	}
	return ""
}

// cancelSitesOf extracts the cancel obligations one assignment creates:
// the context-package intrinsics, plus results an in-module callee's
// summary marks as cancel functions (a WithTimeout wrapper, say).
func cancelSitesOf(pass *Pass, as *ast.AssignStmt) []cancelSite {
	info := pass.Pkg.Info
	if ctor := cancelAssign(info, as); ctor != "" {
		return []cancelSite{{as: as, lhsIdx: 1, src: "context." + ctor}}
	}
	if pass.Prog == nil || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	key, ok := pass.Prog.staticCallee(info, call)
	if !ok {
		return nil
	}
	cs := pass.Prog.Summaries[key]
	if cs == nil {
		return nil
	}
	var sites []cancelSite
	for i := range as.Lhs {
		if i < len(cs.CancelResults) && cs.CancelResults[i] {
			sites = append(sites, cancelSite{as: as, lhsIdx: i, src: key})
		}
	}
	return sites
}

// checkCancelSite analyzes one creation site inside graph g.
func checkCancelSite(pass *Pass, g *cfg, site cancelSite) {
	info := pass.Pkg.Info
	as := site.as
	if site.lhsIdx >= len(as.Lhs) {
		return
	}
	target := as.Lhs[site.lhsIdx]
	id, isIdent := target.(*ast.Ident)
	switch {
	case isIdent && id.Name == "_":
		pass.Reportf(as.Pos(), "cancel func of %s discarded with _; the context can never be released", site.src)
		return
	case !isIdent:
		// Stored straight into a field or element: ownership moved to the
		// structure (the manager's rootCtx/cancelJobs pattern). Not ours.
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id] // `=` rebinding an existing variable
	}
	if obj == nil {
		return
	}
	discharged := func(n ast.Node) bool { return dischargesObligation(pass.Prog, info, n, obj) }
	if g.mayReachExitWithout(as, discharged) {
		f := Finding{
			Pos:     pass.Pkg.Fset.Position(as.Pos()),
			Rule:    "cancelfree",
			Message: fmt.Sprintf("cancel func %q of %s is not called on every path to return (context leak)", id.Name, site.src),
		}
		if end := as.End(); end.IsValid() {
			indent := indentFor(pass.Pkg.Fset.Position(as.Pos()).Column)
			f.Fix = &Fix{
				Message: fmt.Sprintf("insert `defer %s()` after the context creation", id.Name),
				Edits: []TextEdit{{
					Pos:     end,
					End:     end,
					NewText: "\n" + indent + "defer " + id.Name + "()",
				}},
			}
		}
		pass.report(f)
	}
}

// indentFor rebuilds the leading tabs of a statement that starts at the
// given 1-based column, assuming tab indentation (gofmt's output).
func indentFor(column int) string {
	if column < 1 {
		return ""
	}
	out := make([]byte, column-1)
	for i := range out {
		out[i] = '\t'
	}
	return string(out)
}

// referencesObject reports whether node n mentions obj at all, including
// inside nested function literals (a capture hands the obligation to the
// closure). The defining identifier itself does not count.
func referencesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
