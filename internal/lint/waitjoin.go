package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// NewWaitjoin builds the waitjoin analyzer: a sync.WaitGroup.Wait must
// not execute while holding a lock that one of the goroutines it joins
// still needs. gojoin proves every spawn has a join edge; waitjoin proves
// the join itself cannot be a wait-for cycle: the waiter holds L and
// parks in Wait, the worker parks in L.Lock, nobody moves. The check is
// per enclosing function — the scope where the spawn/Add/Wait protocol is
// visible — and interprocedural on the worker side: a spawned literal's
// direct lock operations and its callees' summarized Acquires (abstract
// identities, lockfacts.go) both count, as do the Acquires of a spawned
// named function. Lock identity is abstract, so a worker locking m.mu
// through a helper three calls deep is still caught. Read-read overlap is
// not flagged (RWMutex readers don't exclude each other); every other
// mode combination is.
func NewWaitjoin() *Analyzer {
	return &Analyzer{
		Name: "waitjoin",
		Doc:  "WaitGroup.Wait must not hold a lock a joined goroutine needs (wait-for cycle)",
		Run:  runWaitjoin,
	}
}

// spawnedAcq is one lock a spawned goroutine may take.
type spawnedAcq struct {
	spawn *ast.GoStmt
	fn    string // "" for a literal's direct op
	acq   LockAcq
}

func runWaitjoin(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	keys := make([]string, 0, len(pass.Prog.ByKey))
	for k, fi := range pass.Prog.ByKey {
		if fi.Pkg == pass.Pkg {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		checkWaitjoin(pass, pass.Prog.ByKey[k])
	}
}

func checkWaitjoin(pass *Pass, fi *FuncInfo) {
	info := fi.Pkg.Info
	body := fi.Decl.Body
	par := parents(fi.Decl)

	// Wait sites of this function proper (a Wait inside a nested literal
	// belongs to whichever goroutine runs the literal, not this one).
	var waits []*ast.CallExpr
	topLevelStmts(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(info, call, "Wait") {
			waits = append(waits, call)
		}
		return true
	})
	if len(waits) == 0 {
		return
	}

	// Locks the joined goroutines may acquire. Spawns anywhere in the body
	// count (including inside literals — they still run under this
	// function's protocol), provided WaitGroup evidence links them to a
	// join: an Add before the spawn or a Done in the spawned body.
	var acqs []spawnedAcq
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !waitGroupJoined(info, par, gs) {
			return true
		}
		if lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
			collectLitAcquires(pass, gs, lit, &acqs)
			return true
		}
		if key, isStatic := pass.Prog.staticCallee(info, gs.Call); isStatic {
			if cs := pass.Prog.Summaries[key]; cs != nil {
				for _, a := range cs.Acquires {
					acqs = append(acqs, spawnedAcq{spawn: gs, fn: key, acq: a})
				}
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	g := fi.cfg()
	heldAt := heldAbstractLocks(g, info)
	fset := fi.Pkg.Fset
	for _, wait := range waits {
		held := absHeldNodeAt(g, heldAt, wait)
		type repKey struct{ lock string }
		reported := map[repKey]bool{}
		// Deterministic lock order for multi-lock holds.
		ids := make([]string, 0, len(held))
		for id := range held {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			h := held[id]
			for _, sa := range acqs {
				if sa.acq.Lock != id {
					continue
				}
				if !h.Write && !sa.acq.Write {
					continue // read-read: joiner and worker can overlap
				}
				if reported[repKey{id}] {
					continue
				}
				reported[repKey{id}] = true
				who := "the goroutine spawned at " + fset.Position(sa.spawn.Pos()).String()
				if sa.fn != "" {
					who += " (" + sa.fn + ")"
				}
				pass.Reportf(wait.Pos(),
					"WaitGroup.Wait while holding %s (acquired at %s), but %s acquires %s: the worker can never finish and Wait never returns (wait-for cycle)",
					id, fset.Position(h.Pos), who, sa.acq.describe())
				break
			}
		}
	}
}

// collectLitAcquires gathers the locks a spawned literal may take: its
// direct Lock/RLock ops and its static callees' summarized Acquires.
func collectLitAcquires(pass *Pass, gs *ast.GoStmt, lit *ast.FuncLit, acqs *[]spawnedAcq) {
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset
	lockBodyOps(lit.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, write, op := mutexOpAbs(info, call); op == opLock && id != "" {
			ps := fset.Position(call.Pos())
			*acqs = append(*acqs, spawnedAcq{spawn: gs, acq: LockAcq{
				Lock: id, Write: write,
				Site: LockSite{File: ps.Filename, Line: ps.Line, Col: ps.Column},
			}})
			return
		}
		if key, isStatic := pass.Prog.staticCallee(info, call); isStatic {
			if cs := pass.Prog.Summaries[key]; cs != nil {
				for _, a := range cs.Acquires {
					lifted := a
					lifted.Chain = append([]string{key}, a.Chain...)
					*acqs = append(*acqs, spawnedAcq{spawn: gs, fn: key, acq: lifted})
				}
			}
		}
	})
}

// waitGroupJoined reports whether gs is visibly joined through a
// WaitGroup: an Add call before the spawn in the enclosing function, or a
// Done/Add inside the spawned literal's body.
func waitGroupJoined(info *types.Info, par map[ast.Node]ast.Node, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		done := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if done {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if isWaitGroupMethod(info, call, "Done") || isWaitGroupMethod(info, call, "Add") {
					done = true
					return false
				}
			}
			return true
		})
		if done {
			return true
		}
	}
	return addBeforeSpawn(info, par, gs)
}

// absHeldNodeAt returns the abstract must-held set in force at node n:
// the set recorded for n itself when n is a CFG node, otherwise the
// innermost recorded node containing it.
func absHeldNodeAt(g *cfg, heldAt map[ast.Node]absLockset, n ast.Node) absLockset {
	if s, ok := heldAt[n]; ok {
		return s
	}
	var best ast.Node
	var bestHeld absLockset
	for _, blk := range g.blocks {
		for _, cand := range blk.nodes {
			if cand.Pos() <= n.Pos() && n.End() <= cand.End() {
				if best == nil || (cand.Pos() >= best.Pos() && cand.End() <= best.End()) {
					best = cand
					bestHeld = heldAt[cand]
				}
			}
		}
	}
	return bestHeld
}
