package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewChanflow builds the chanflow analyzer: no potentially blocking
// channel operation while holding a mutex, anywhere in the module. This
// is lockheld's invariant (DESIGN.md §7) generalized from the three
// overlap-critical packages to the whole tree, with the discharges that
// make it livable at module scale:
//
//   - a select with a default clause never blocks;
//   - a send on a channel provably buffered (every binding is
//     `make(chan T, N)` with constant N ≥ 1, traced through the package's
//     assignments) is accepted when the bounded-occupancy argument holds:
//     the package's send sites on that channel number at most N and the
//     flagged send is not inside a loop;
//   - sync.Cond.Wait is exempt (it releases the mutex while parked);
//   - //optlint:ignore chanflow <reason> for the residue.
//
// Flagged under a definitely-held lock (the CFG must-analysis, so
// branch-released locks do not count): channel sends and receives, select
// without default, sync.WaitGroup.Wait, and calls to in-module functions
// whose summary proves they always block. The packages lockheld already
// polices are skipped — one finding per site, under the stricter rule.
func NewChanflow(skip []string) *Analyzer {
	cf := &chanflow{skip: skip}
	return &Analyzer{
		Name: "chanflow",
		Doc:  "no blocking channel op, WaitGroup.Wait, or always-blocking call under a held mutex, unless select-default or provably-buffered",
		Run:  cf.run,
	}
}

type chanflow struct {
	skip []string
}

func (cf *chanflow) run(pass *Pass) {
	if anyPathWithin(pass.Pkg.Path, cf.skip) {
		return // lockheld owns these packages with the stricter rule
	}
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			cf.checkBody(pass, body)
		})
	}
}

// checkBody analyzes one function (or literal) body.
func (cf *chanflow) checkBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// Cheap gate: a body with no mutex acquisition cannot hold a lock.
	hasLock := false
	topLevelStmts(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, op := mutexOp(info, call); op == opLock {
				hasLock = true
				return false
			}
		}
		return !hasLock
	})
	if !hasLock {
		return
	}

	g := buildCFG(body, info)
	heldAt := heldLocks(g, info)
	par := parents(body)

	// The comm statement of a select clause is part of the select's own
	// blocking decision, not an independent op.
	commOps := map[ast.Node]bool{}
	topLevelStmts(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				commOps[cc.Comm] = true
				ast.Inspect(cc.Comm, func(x ast.Node) bool {
					commOps[x] = true
					return true
				})
			}
		}
		return true
	})

	report := func(n ast.Node, pos token.Pos, format string, args ...any) {
		held := heldSetAt(g, heldAt, n)
		if len(held) == 0 {
			return
		}
		args = append(args, lockNames(held))
		pass.Reportf(pos, format+" while holding %s: a blocked goroutine wedges every waiter of the lock", args...)
	}

	topLevelStmts(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if commOps[x] {
				return true
			}
			if cf.bufferedDischarge(pass, par, x) {
				return true
			}
			report(x, x.Arrow, "blocking channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !commOps[x] {
				report(x, x.OpPos, "blocking channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				// The select itself is not a CFG node (its comm statements
				// are); the held set at entry is the one at any comm clause.
				probe := ast.Node(x)
				for _, clause := range x.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						probe = cc.Comm
						break
					}
				}
				report(probe, x.Select, "select without default (blocks until a case is ready)")
			}
		case *ast.CallExpr:
			if commOps[x] {
				return true
			}
			if isWaitGroupMethod(info, x, "Wait") {
				report(x, x.Pos(), "sync.WaitGroup.Wait")
				return true
			}
			if name := condMethod(info, x); name == "Wait" {
				return true // Cond.Wait releases the lock while parked
			}
			if pass.Prog != nil {
				if key, ok := pass.Prog.staticCallee(info, x); ok {
					if cs := pass.Prog.Summaries[key]; cs != nil && cs.Blocks {
						report(x, x.Pos(), "call to "+key+", which always blocks ("+cs.BlocksWhy+"),")
					}
				}
			}
		}
		return true
	})
}

// selectHasDefault reports whether sel carries a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// heldSetAt returns the must-held lockset in force at node n: the set
// recorded for n itself when n is a CFG node, otherwise the innermost
// recorded node containing n (deterministic over g.blocks order).
func heldSetAt(g *cfg, heldAt map[ast.Node]lockset, n ast.Node) lockset {
	if s, ok := heldAt[n]; ok {
		return s
	}
	var best ast.Node
	var bestHeld lockset
	for _, blk := range g.blocks {
		for _, cand := range blk.nodes {
			if cand.Pos() <= n.Pos() && n.End() <= cand.End() {
				if best == nil || (cand.Pos() >= best.Pos() && cand.End() <= best.End()) {
					best = cand
					bestHeld = heldAt[cand]
				}
			}
		}
	}
	return bestHeld
}

// lockNames renders a lockset's keys sorted, for stable messages.
func lockNames(s lockset) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// bufferedDischarge reports whether send is discharged by the
// provably-buffered rule: the channel resolves to a variable or field
// whose every binding in this package is make(chan T, N) with one
// constant N ≥ 1, the package's send sites on it number ≤ N, and this
// send is not inside a loop.
func (cf *chanflow) bufferedDischarge(pass *Pass, par map[ast.Node]ast.Node, send *ast.SendStmt) bool {
	obj := chanObject(pass.Pkg.Info, send.Chan)
	if obj == nil {
		return false
	}
	capN, ok := chanMakeCap(pass.Pkg.Info, pass.Pkg.Files, obj)
	if !ok {
		return false
	}
	if inLoop(par, send) {
		return false
	}
	sends, looped := packageSends(pass.Pkg.Info, pass.Pkg.Files, obj)
	return !looped && int64(sends) <= capN
}

// chanObject resolves a channel expression to the variable or field it
// names, nil when it is anything more dynamic.
func chanObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// chanMakeCap traces every binding of obj across the package's files:
// assignments, value specs, and composite-literal fields. It succeeds
// only when at least one binding exists, every binding is a make with the
// same constant capacity, and that capacity is ≥ 1.
func chanMakeCap(info *types.Info, files []*ast.File, obj types.Object) (int64, bool) {
	capN := int64(-1)
	sound := true
	record := func(rhs ast.Expr) {
		c, ok := makeChanCap(info, rhs)
		if !ok {
			sound = false
			return
		}
		if capN == -1 {
			capN = c
		} else if capN != c {
			sound = false
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					for _, lhs := range st.Lhs {
						if bindsObject(info, lhs, obj) {
							sound = false // tuple assignment: can't trace the make
						}
					}
					return true
				}
				for i, lhs := range st.Lhs {
					if bindsObject(info, lhs, obj) {
						record(st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					o := info.Defs[name]
					if o != obj {
						continue
					}
					if i < len(st.Values) {
						record(st.Values[i])
					} else if len(st.Values) != 0 {
						sound = false
					}
					// A bare `var ch chan T` binds nil; nil channels block
					// forever, but a later make assignment is the binding that
					// counts and is recorded when seen.
				}
			case *ast.KeyValueExpr:
				if id, ok := st.Key.(*ast.Ident); ok && info.Uses[id] == obj {
					record(st.Value)
				}
			}
			return true
		})
	}
	return capN, sound && capN >= 1
}

// bindsObject reports whether assignment target lhs names obj.
func bindsObject(info *types.Info, lhs ast.Expr, obj types.Object) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if info.Defs[x] == obj || info.Uses[x] == obj {
			return true
		}
	case *ast.SelectorExpr:
		return info.Uses[x.Sel] == obj
	}
	return false
}

// makeChanCap matches `make(chan T, N)` with constant N, returning N.
func makeChanCap(info *types.Info, e ast.Expr) (int64, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return 0, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return 0, false
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return 0, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return 0, false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return 0, false
	}
	cv, ok := info.Types[call.Args[1]]
	if !ok || cv.Value == nil {
		return 0, false
	}
	n, exact := constant.Int64Val(constant.ToInt(cv.Value))
	return n, exact
}

// packageSends counts the package's send statements on obj and whether
// any of them sits inside a loop.
func packageSends(info *types.Info, files []*ast.File, obj types.Object) (count int, looped bool) {
	for _, f := range files {
		par := parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if chanObject(info, send.Chan) != obj {
				return true
			}
			count++
			if inLoop(par, send) {
				looped = true
			}
			return true
		})
	}
	return count, looped
}

// inLoop reports whether n sits inside a for or range statement (within
// the same function: the walk stops at function boundaries).
func inLoop(par map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := par[n]; cur != nil; cur = par[cur] {
		switch cur.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
