package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/optlab/opt/internal/lint"
)

// TestSuggestedFixes runs each fixable analyzer over its testdata/<rule>/fix
// package, applies the suggested edits, and compares the result to the
// .golden files. The patched package is then typechecked and re-analyzed in
// a temp dir: zero findings there proves both that the fixes actually
// silence the rule and that a second -fix pass would be a no-op.
func TestSuggestedFixes(t *testing.T) {
	cases := []struct {
		rule     string
		analyzer *lint.Analyzer
	}{
		{"closecheck", lint.NewClosecheck([]string{"fixture/closecheck"})},
		{"cancelfree", lint.NewCancelfree()},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			pkg := loadFixture(t, tc.rule, "fix")
			findings := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{tc.analyzer})
			if len(findings) == 0 {
				t.Fatalf("fix fixture produced no findings; nothing to fix")
			}
			for _, f := range findings {
				if f.Fix == nil {
					t.Errorf("finding without a suggested fix in the fix fixture: %s", f)
				}
			}
			patched, n, err := lint.ApplyFixes(pkg.Fset, findings, os.ReadFile)
			if err != nil {
				t.Fatalf("ApplyFixes: %v", err)
			}
			if n != len(findings) {
				t.Errorf("applied %d of %d fixes", n, len(findings))
			}
			if len(patched) == 0 {
				t.Fatalf("ApplyFixes returned no patched files")
			}

			tmp := t.TempDir()
			var names []string
			for path, content := range patched {
				golden, err := os.ReadFile(path + ".golden")
				if err != nil {
					t.Fatalf("reading golden: %v", err)
				}
				if string(content) != string(golden) {
					t.Errorf("%s: patched content does not match %s.golden\n--- got ---\n%s\n--- want ---\n%s",
						path, path, content, golden)
				}
				name := filepath.Base(path)
				if err := os.WriteFile(filepath.Join(tmp, name), content, 0o644); err != nil {
					t.Fatalf("writing patched file: %v", err)
				}
				names = append(names, name)
			}

			fixedPkg, err := fixtureLoader(t).LoadDir(tmp, "fixture/"+tc.rule+"/fixed", names)
			if err != nil {
				t.Fatalf("loading patched package: %v", err)
			}
			if again := lint.Analyze([]*lint.Package{fixedPkg}, []*lint.Analyzer{tc.analyzer}); len(again) > 0 {
				t.Fatalf("fixes are not idempotent: patched package still reports %d findings, first: %s", len(again), again[0])
			}
		})
	}
}
