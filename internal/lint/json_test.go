package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"reflect"
	"sort"
	"testing"

	"github.com/optlab/opt/internal/lint"
)

// TestWriteJSONSchema pins the -json output schema: an array of objects
// with exactly the keys file, line, col, rule, message.
func TestWriteJSONSchema(t *testing.T) {
	findings := []lint.Finding{
		{
			Pos:     token.Position{Filename: "internal/core/opt.go", Line: 705, Column: 8},
			Rule:    "closecheck",
			Message: "error result of FileDevice.Close() is unchecked",
		},
		{
			Pos:     token.Position{Filename: "triangulate.go", Line: 3, Column: 1},
			Rule:    "ctxflow",
			Message: "thread the caller's context",
		},
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != len(findings) {
		t.Fatalf("got %d objects, want %d", len(got), len(findings))
	}
	for i, obj := range got {
		var keys []string
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if want := []string{"col", "file", "line", "message", "rule"}; !reflect.DeepEqual(keys, want) {
			t.Fatalf("object %d keys = %v, want %v", i, keys, want)
		}
		if obj["file"] != findings[i].Pos.Filename ||
			int(obj["line"].(float64)) != findings[i].Pos.Line ||
			int(obj["col"].(float64)) != findings[i].Pos.Column ||
			obj["rule"] != findings[i].Rule ||
			obj["message"] != findings[i].Message {
			t.Fatalf("object %d = %v, want %+v", i, obj, findings[i])
		}
	}
}

// TestWriteJSONEmpty keeps clean runs machine-parseable: an empty array,
// never null.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Fatalf("WriteJSON(nil) = %q, want %q", got, "[]\n")
	}
}

// TestWriteJSONCleanPipeline runs the whole Analyze→suppress→WriteJSON
// pipeline over a clean fixture package with the full default registry and
// pins that the output is exactly the empty array — the regression a `jq`
// consumer hits when a clean tree suddenly prints `null`.
func TestWriteJSONCleanPipeline(t *testing.T) {
	pkg := loadFixture(t, "ctxflow", "ok")
	pkgs := []*lint.Package{pkg}
	findings := lint.Analyze(pkgs, lint.Default("github.com/optlab/opt"))
	findings = lint.ApplySuppressions(pkgs, findings)
	if len(findings) > 0 {
		t.Fatalf("clean fixture reported %d findings, first: %s", len(findings), findings[0])
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Fatalf("clean pipeline JSON = %q, want %q", got, "[]\n")
	}
}
