package lint

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// lockorder (DESIGN.md §16): the module-wide lock-order graph. Nodes are
// abstract lock identities (lockfacts.go); a directed edge A→B means some
// function may acquire B while A is definitely held, with a concrete
// witness (the acquiring site, the site that took A, and the call chain
// when B is taken through callees). Every cycle in this graph is a
// potential ABBA deadlock; every cycle is reported once, with a witness
// for each of its edges, so the report *is* the repro recipe. The graph
// and its cycles are computed once, single-threaded, in
// buildLockGraph — the analyzer merely replays the findings owned by its
// package, which keeps output byte-identical at any -parallel width.

// lockWitness is the representative evidence for one graph edge.
type lockWitness struct {
	Owner string // key of the function whose body creates the edge
	Edge  LockEdge
}

// describe renders the witness as one clause of a cycle message.
func (w lockWitness) describe() string {
	return fmt.Sprintf("%s acquires %s while holding %s (acquired at %s)",
		w.Owner, w.Edge.Acq.describe(), w.Edge.Held, w.Edge.HeldSite)
}

// lockCycle is one reportable cycle, precomputed with its anchor position
// and owning function (whose package reports it).
type lockCycle struct {
	owner string
	site  LockSite
	msg   string
}

// buildLockGraph unions every summary's AcqEdges into the module lock
// graph and enumerates its cycles. Called from BuildProgramCached after
// summaries exist — the facts live in the (cache-serialized) summaries,
// so warm-cache runs rebuild the graph without rerunning the fixpoint.
func (p *Program) buildLockGraph() {
	p.lockAdj = map[string][]string{}
	p.lockWit = map[[2]string]lockWitness{}
	keys := make([]string, 0, len(p.Summaries))
	for k := range p.Summaries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	nodeSet := map[string]bool{}
	for _, key := range keys {
		s := p.Summaries[key]
		if s == nil {
			continue
		}
		// Every acquired lock is a node even without order edges, so the
		// -graph dump doubles as the module's lock inventory.
		for _, a := range s.Acquires {
			nodeSet[a.Lock] = true
		}
		for _, e := range s.AcqEdges {
			nodeSet[e.Held] = true
			nodeSet[e.Acq.Lock] = true
			id := [2]string{e.Held, e.Acq.Lock}
			if _, dup := p.lockWit[id]; dup {
				continue // first witness in sorted key order wins
			}
			p.lockWit[id] = lockWitness{Owner: key, Edge: e}
			p.lockAdj[e.Held] = append(p.lockAdj[e.Held], e.Acq.Lock)
		}
	}
	p.lockNodes = make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		p.lockNodes = append(p.lockNodes, n)
	}
	sort.Strings(p.lockNodes)
	for _, adj := range p.lockAdj {
		sort.Strings(adj)
	}
	p.lockCycles = p.findLockCycles()
}

// findLockCycles enumerates the graph's elementary cycles: Tarjan SCCs
// over the lock nodes, then for every in-component edge u→v the shortest
// v⇝u return path, canonicalized by rotation and deduplicated — each
// distinct node sequence is reported exactly once.
func (p *Program) findLockCycles() []lockCycle {
	sccs := tarjanLocks(p.lockNodes, p.lockAdj)
	var cycles []lockCycle
	seen := map[string]bool{}
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue // no self-edges exist (same-lock reacquisition is a LockReport)
		}
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		for _, u := range scc {
			for _, v := range p.lockAdj[u] {
				if !in[v] {
					continue
				}
				back := shortestLockPath(v, u, in, p.lockAdj)
				if back == nil {
					continue
				}
				cyc := append([]string{u}, back...) // u, v, …, u
				cyc = cyc[:len(cyc)-1]
				rot := rotateToMin(cyc)
				sig := strings.Join(rot, "\x00")
				if seen[sig] {
					continue
				}
				seen[sig] = true
				cycles = append(cycles, p.renderCycle(rot))
			}
		}
	}
	sort.Slice(cycles, func(i, j int) bool {
		a, b := cycles[i], cycles[j]
		if c := a.site.compare(b.site); c != 0 {
			return c < 0
		}
		return a.msg < b.msg
	})
	return cycles
}

// renderCycle formats one canonical cycle into a finding: the lock ring
// followed by every edge's witness. The anchor (position and owning
// function) is the witness with the smallest acquisition site, so the
// finding lands on real code in exactly one package.
func (p *Program) renderCycle(rot []string) lockCycle {
	ring := strings.Join(append(append([]string{}, rot...), rot[0]), " → ")
	var clauses []string
	var anchor *lockWitness
	for i := range rot {
		w, ok := p.lockWit[[2]string{rot[i], rot[(i+1)%len(rot)]}]
		if !ok {
			continue
		}
		clauses = append(clauses, w.describe())
		if anchor == nil || w.Edge.Acq.Site.compare(anchor.Edge.Acq.Site) < 0 {
			cp := w
			anchor = &cp
		}
	}
	c := lockCycle{msg: fmt.Sprintf("lock-order cycle %s: %s", ring, strings.Join(clauses, "; "))}
	if anchor != nil {
		c.owner = anchor.Owner
		c.site = anchor.Edge.Acq.Site
	}
	return c
}

// tarjanLocks runs Tarjan's SCC over the lock graph (iterating sorted
// nodes and sorted adjacency, so component order is deterministic).
func tarjanLocks(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0
	var connect func(v string)
	connect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				connect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			out = append(out, scc)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			connect(n)
		}
	}
	return out
}

// shortestLockPath BFSes from src to dst inside the node set `in`,
// returning the node sequence src..dst (nil if unreachable). Sorted
// adjacency makes ties deterministic.
func shortestLockPath(src, dst string, in map[string]bool, adj map[string][]string) []string {
	if src == dst {
		return []string{src}
	}
	parent := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !in[v] {
				continue
			}
			if _, seen := parent[v]; seen {
				continue
			}
			parent[v] = u
			if v == dst {
				var path []string
				for n := dst; ; n = parent[n] {
					path = append(path, n)
					if n == src {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// rotateToMin rotates the cycle so its lexicographically smallest node
// comes first — the canonical spelling used for deduplication.
func rotateToMin(cyc []string) []string {
	best := 0
	for i := 1; i < len(cyc); i++ {
		if cyc[i] < cyc[best] {
			best = i
		}
	}
	out := make([]string, 0, len(cyc))
	out = append(out, cyc[best:]...)
	out = append(out, cyc[:best]...)
	return out
}

// WriteLockGraphDOT renders the lock-order graph as GraphViz DOT: one
// node per abstract lock, one labeled edge per acquisition-order fact,
// cycle edges highlighted. This is the `optlint -graph` output DESIGN.md
// §16 renders the sanctioned lock hierarchy from.
func (p *Program) WriteLockGraphDOT(w io.Writer) error {
	cyclic := map[[2]string]bool{}
	for _, scc := range tarjanLocks(p.lockNodes, p.lockAdj) {
		if len(scc) < 2 {
			continue
		}
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		for _, u := range scc {
			for _, v := range p.lockAdj[u] {
				if in[v] {
					cyclic[[2]string{u, v}] = true
				}
			}
		}
	}
	if _, err := fmt.Fprintln(w, "digraph lockorder {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, n := range p.lockNodes {
		fmt.Fprintf(w, "  %q;\n", n)
	}
	for _, u := range p.lockNodes {
		for _, v := range p.lockAdj[u] {
			wit := p.lockWit[[2]string{u, v}]
			attr := fmt.Sprintf("label=%q", wit.Owner)
			if cyclic[[2]string{u, v}] {
				attr += ", color=red, penwidth=2"
			}
			if _, err := fmt.Fprintf(w, "  %q -> %q [%s];\n", u, v, attr); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// LockGraphSize reports the graph's shape (nodes, edges, cycles) for
// driver logging.
func (p *Program) LockGraphSize() (nodes, edges, cycles int) {
	return len(p.lockNodes), len(p.lockWit), len(p.lockCycles)
}

// --- analyzer ---------------------------------------------------------------

// NewLockorder returns the lockorder analyzer: module-wide ABBA deadlock
// cycles with two-path witnesses, plus the outright conflicts recorded in
// summaries (Lock of an already-held lock, RLock→Lock upgrade).
func NewLockorder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "detect lock-order cycles (ABBA deadlocks) across the whole module, plus same-lock reacquisition and RLock→Lock upgrades",
		Run: func(pass *Pass) {
			if pass.Prog == nil {
				return
			}
			keys := make([]string, 0, len(pass.Prog.ByKey))
			for k, fi := range pass.Prog.ByKey {
				if fi.Pkg == pass.Pkg {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			owned := map[string]bool{}
			for _, k := range keys {
				owned[k] = true
				s := pass.Prog.Summaries[k]
				if s == nil {
					continue
				}
				for _, r := range s.LockReports {
					pass.ReportAt(r.Site.position(), "%s", r.Msg)
				}
			}
			for _, c := range pass.Prog.lockCycles {
				if owned[c.owner] {
					pass.ReportAt(c.site.position(), "%s", c.msg)
				}
			}
		},
	}
}
