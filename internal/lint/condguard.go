package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewCondguard builds the condguard analyzer, the PageBudget discipline
// as a machine-checked rule:
//
//   - sync.Cond.Wait must execute inside a `for` loop (the predicate must
//     be re-checked after every wakeup — Wait returns on Broadcast and on
//     spurious wakeups alike, so an `if` admits waiters whose condition
//     is still false), and
//   - Wait, Signal and Broadcast all require a sync.Mutex/RWMutex to be
//     definitely held at the call (must-held over the function's cfg).
//
// Signal/Broadcast under L is stricter than the sync package demands, and
// deliberately so: an unlocked Signal can fire between a waiter's
// predicate check and its park — the lost-wakeup window that stalls a
// condvar-arbitrated budget under exactly the heavy-traffic interleavings
// the roadmap targets. Holding L for the notify closes the window; the
// cost is nanoseconds on a path that just took the lock anyway.
//
// v3 makes the held requirement interprocedural through the Program's
// summaries (DESIGN.md §13): a helper whose cond op runs without a local
// lock is no longer reported at the op when the module calls it — the
// obligation propagates to its callers (RequiresHeld), and the finding
// lands at whichever call site up the chain neither holds a mutex nor has
// callers of its own to pass the duty to. Functions nobody calls (module
// roots, exported API) still report at the op itself, with the v2
// message. The Wait-inside-a-for-loop rule stays local: looping is a
// property of the waiting function, not of its callers.
func NewCondguard() *Analyzer {
	return &Analyzer{
		Name: "condguard",
		Doc:  "sync.Cond.Wait needs a predicate-rechecking for loop with L held; Signal/Broadcast require L",
		Run:  runCondguard,
	}
}

func runCondguard(pass *Pass) {
	info := pass.Pkg.Info
	// Map function bodies of this package to their interprocedural
	// summaries; literals and unkeyed declarations fall back to the local
	// v2 analysis below.
	byBody := map[*ast.BlockStmt]*FuncInfo{}
	if pass.Prog != nil {
		for _, fi := range pass.Prog.ByKey {
			if fi.Pkg == pass.Pkg && fi.Decl.Body != nil {
				byBody[fi.Decl.Body] = fi
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			// Gather the cond-method calls of this function (not of nested
			// literals, which get their own visit).
			type condCall struct {
				call *ast.CallExpr
				name string // Wait, Signal, Broadcast
			}
			var calls []condCall
			topLevelStmts(body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name := condMethod(info, call); name != "" {
						calls = append(calls, condCall{call: call, name: name})
					}
				}
				return true
			})
			if len(calls) > 0 {
				par := parents(body)
				for _, cc := range calls {
					if cc.name == "Wait" && !insideForLoop(body, par, cc.call) {
						pass.Reportf(cc.call.Pos(), "sync.Cond.Wait outside a for loop; the predicate must be re-checked after every wakeup")
					}
				}
			}
			if fi, ok := byBody[body]; ok {
				reportUncoveredHeld(pass, fi)
				return
			}
			if len(calls) == 0 {
				return
			}
			g := buildCFG(body, info)
			held := heldLocks(g, info)
			for _, cc := range calls {
				if !lockHeldAt(g, held, cc.call) {
					pass.Reportf(cc.call.Pos(), "sync.Cond.%s without holding a mutex; notify under L or a waiter can miss the wakeup", cc.name)
				}
			}
		})
	}
}

// reportUncoveredHeld emits the summary's uncovered requires-held
// operations of fi — cond ops and calls to requires-held callees with no
// mutex definitely held — but only when nothing in the module calls fi:
// for called functions the obligation has already propagated into each
// caller's own summary, and reporting here too would double up (or blame
// a helper whose callers all hold the lock correctly).
func reportUncoveredHeld(pass *Pass, fi *FuncInfo) {
	s := pass.Prog.Summaries[fi.Key]
	if s == nil || !s.RequiresHeld || pass.Prog.Callers(fi.Key) > 0 {
		return
	}
	for _, op := range s.Uncovered {
		msg := op.Desc + "; acquire the mutex before the call"
		if name, isCond := strings.CutPrefix(op.Desc, "sync.Cond."); isCond {
			msg = "sync.Cond." + name + " without holding a mutex; notify under L or a waiter can miss the wakeup"
		}
		pass.report(Finding{
			Pos:     token.Position{Filename: op.File, Line: op.Line, Column: op.Col},
			Rule:    "condguard",
			Message: msg,
		})
	}
}

// condMethod returns the method name when call is sync.Cond.Wait, Signal
// or Broadcast, "" otherwise.
func condMethod(info *types.Info, call *ast.CallExpr) string {
	fn, ok := funcFor(info, call)
	if !ok {
		return ""
	}
	name := fn.Name()
	if name != "Wait" && name != "Signal" && name != "Broadcast" {
		return ""
	}
	pkg, typ, isMethod := methodOn(fn)
	if !isMethod || pkg != "sync" || typ != "Cond" {
		return ""
	}
	return name
}

// insideForLoop reports whether call sits inside a ForStmt of this
// function (parent chain up to body, stopping at a nested literal — a
// goroutine spawned inside a loop is not itself looping).
func insideForLoop(body *ast.BlockStmt, par map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	for cur := par[call]; cur != nil; cur = par[cur] {
		switch cur.(type) {
		case *ast.ForStmt:
			return true
		case *ast.FuncLit:
			return false
		}
		if cur == body {
			return false
		}
	}
	return false
}

// lockHeldAt reports whether the must-held set on entry to the statement
// containing call is non-empty. heldAt is keyed by cfg nodes (statements
// and guard expressions); the innermost recorded node containing the call
// carries its entry state. Statements earlier in the same basic block
// have already been applied by the dataflow, so `mu.Lock()` on the line
// above is credited.
func lockHeldAt(g *cfg, heldAt map[ast.Node]lockset, call *ast.CallExpr) bool {
	var best ast.Node
	var bestHeld lockset
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if n.Pos() <= call.Pos() && call.End() <= n.End() {
				if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
					best = n
					bestHeld = heldAt[n]
				}
			}
		}
	}
	return best != nil && len(bestHeld) > 0
}
