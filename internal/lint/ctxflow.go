package lint

import (
	"go/ast"
	"go/types"
)

// NewCtxflow builds the ctxflow analyzer: inside a function that has a
// context.Context parameter in scope (directly or captured by a closure),
// context.Background() and context.TODO() must not be passed to another
// call — the caller's context must thread through instead, or cancellation
// silently stops propagating (the end-to-end discipline PR 1 established
// across every algorithm layer).
//
// Replacing a nil context parameter (ctx = context.Background()) is the
// documented default-guard idiom and stays legal: only argument positions
// are flagged. Package main and test files are exempt — entry points and
// tests are where fresh root contexts legitimately begin.
func NewCtxflow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "a ctx-taking function must pass its context on, never context.Background()/TODO()",
		Run:  runCtxflow,
	}
}

func runCtxflow(pass *Pass) {
	if pass.Pkg.Types == nil || pass.Pkg.Types.Name() == "main" {
		return
	}
	for i, file := range pass.Pkg.Files {
		if pass.Pkg.IsTest[i] {
			continue
		}
		par := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fresh := freshContextName(pass.Pkg.Info, call)
			if fresh == "" {
				return true
			}
			outer, ok := par[call].(*ast.CallExpr)
			if !ok || !isArgOf(outer, call) {
				return true
			}
			if name := enclosingCtxParam(pass.Pkg.Info, par, call); name != "" {
				pass.Reportf(call.Pos(), "context.%s() passed to a call while context parameter %q is in scope; thread the caller's context", fresh, name)
			}
			return true
		})
	}
}

// freshContextName returns "Background" or "TODO" when call creates a
// fresh root context, and "" otherwise.
func freshContextName(info *types.Info, call *ast.CallExpr) string {
	fn, ok := funcFor(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// isArgOf reports whether arg is a direct argument of call.
func isArgOf(call *ast.CallExpr, arg ast.Expr) bool {
	for _, a := range call.Args {
		if a == arg {
			return true
		}
	}
	return false
}

// enclosingCtxParam walks outward from n and returns the name of the first
// context.Context parameter declared by an enclosing function literal or
// declaration (closures see the parameters they capture). Blank and
// unnamed context parameters don't count: they cannot be forwarded.
func enclosingCtxParam(info *types.Info, par map[ast.Node]ast.Node, n ast.Node) string {
	for cur := par[n]; cur != nil; cur = par[cur] {
		var ft *ast.FuncType
		switch f := cur.(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			tv, ok := info.Types[field.Type]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	pkg, name, ok := namedDef(t)
	return ok && pkg == "context" && name == "Context"
}
