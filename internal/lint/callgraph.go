package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-module half of the analysis framework
// (DESIGN.md §13): it indexes every function declaration of the analysis
// units into a Program, resolves a static call graph over them, and orders
// the strongly connected components bottom-up so summary.go can compute
// compositional per-function summaries with callee facts always available
// before (or, inside a cycle, alongside) their callers.
//
// Identity is the central design problem. The loader typechecks every
// analysis unit independently, so the same function is represented by
// *different* *types.Func objects in different units (a package imported
// by another is re-checked into a separate types universe). Pointer
// identity therefore cannot name a function across packages; instead every
// function is keyed by a universe-independent string:
//
//	pkgpath.Func                  top-level function
//	(pkgpath.Type).Method         method (pointer and value receivers alike)
//
// which is also the shape the summary cache serializes.

// FuncInfo is one analyzed function declaration with its body.
type FuncInfo struct {
	Key    string
	Fn     *types.Func
	Decl   *ast.FuncDecl
	Pkg    *Package
	IsTest bool // declared in a _test.go file

	callees []string // sorted unique callee keys within the program
	graph   *cfg     // lazily built body CFG, shared by the summary passes
}

// cfg returns the function's control-flow graph, building it on first use.
func (fi *FuncInfo) cfg() *cfg {
	if fi.graph == nil {
		fi.graph = buildCFG(fi.Decl.Body, fi.Pkg.Info)
	}
	return fi.graph
}

// Program is the module-wide view the interprocedural analyzers share: an
// index of function declarations, a call graph over them, and one summary
// per function (computed bottom-up over SCCs, or loaded from cache).
type Program struct {
	// ByKey indexes every analyzed function declaration.
	ByKey map[string]*FuncInfo
	// Summaries holds one FuncSummary per ByKey entry.
	Summaries map[string]*FuncSummary

	callerCount map[string]int               // statically resolved call sites per callee
	methods     map[string]map[string]string // "pkgpath.Type" → method name → key
	order       [][]string                   // SCCs of the call graph, callees first

	// Module-wide lock-order graph (lockorder.go), rebuilt from summaries
	// on every run — including warm-cache runs, since the edge facts ride
	// in the serialized summaries.
	lockNodes  []string
	lockAdj    map[string][]string
	lockWit    map[[2]string]lockWitness
	lockCycles []lockCycle
}

// maxDispatch bounds how many concrete implementations an interface call
// may fan out to before the callee set is treated as unknown.
const maxDispatch = 8

// funcKey names fn independently of its types universe; "" when fn cannot
// be keyed (nil, unnamed receiver).
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		pkg, name, ok := namedDef(recv.Type())
		if !ok {
			return ""
		}
		return "(" + pkg + "." + name + ")." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// BuildProgram indexes pkgs, resolves the call graph, and computes every
// function summary bottom-up.
func BuildProgram(pkgs []*Package) *Program {
	return BuildProgramCached(pkgs, nil)
}

// BuildProgramCached is BuildProgram with a warm-start: when cached (keyed
// like Summaries) covers every indexed function, the fixpoint is skipped
// entirely and the cached summaries are used as-is. A partial or stale
// cache is ignored and the summaries are recomputed from source.
func BuildProgramCached(pkgs []*Package, cached map[string]*FuncSummary) *Program {
	p := &Program{
		ByKey:       map[string]*FuncInfo{},
		Summaries:   map[string]*FuncSummary{},
		callerCount: map[string]int{},
		methods:     map[string]map[string]string{},
	}
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		for i, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				if key == "" {
					continue
				}
				if _, dup := p.ByKey[key]; dup {
					continue // first unit wins (base package vs its test unit)
				}
				p.ByKey[key] = &FuncInfo{Key: key, Fn: fn, Decl: fd, Pkg: pkg, IsTest: pkg.IsTest[i]}
			}
		}
	}
	for key, fi := range p.ByKey {
		if pkg, typ, ok := methodOn(fi.Fn); ok {
			id := pkg + "." + typ
			if p.methods[id] == nil {
				p.methods[id] = map[string]string{}
			}
			p.methods[id][fi.Fn.Name()] = key
		}
	}
	for _, fi := range p.ByKey {
		p.resolveCallees(fi)
	}
	p.order = p.sccOrder()
	if cached != nil && p.cacheCovers(cached) {
		for key := range p.ByKey {
			p.Summaries[key] = cached[key]
		}
	} else {
		p.computeSummaries()
	}
	p.buildLockGraph()
	return p
}

// cacheCovers reports whether cached has an entry for every indexed
// function.
func (p *Program) cacheCovers(cached map[string]*FuncSummary) bool {
	for key := range p.ByKey {
		if cached[key] == nil {
			return false
		}
	}
	return true
}

// resolveCallees records fi's outgoing edges: every statically resolved
// call target anywhere in the body (nested literals included — they run
// within the function's dynamic extent often enough that grouping them
// into the caller's SCC is the sound choice for fixpoint ordering).
func (p *Program) resolveCallees(fi *FuncInfo) {
	seen := map[string]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, key := range p.mayCallees(fi.Pkg.Info, call) {
			if !seen[key] {
				seen[key] = true
				fi.callees = append(fi.callees, key)
			}
		}
		if key, ok := p.staticCallee(fi.Pkg.Info, call); ok {
			p.callerCount[key]++
		}
		return true
	})
	sort.Strings(fi.callees)
}

// staticCallee resolves call to a single in-program target: a top-level
// function or a method invoked on a concrete (non-interface) receiver.
// Interface dispatch, function values, builtins and out-of-program callees
// all return ok=false.
func (p *Program) staticCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, ok := funcFor(info, call)
	if !ok {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return "", false
		}
	}
	key := funcKey(fn)
	if _, inProg := p.ByKey[key]; !inProg {
		return "", false
	}
	return key, true
}

// mayCallees returns the candidate in-program targets of call: the static
// target when there is one, or the bounded set of concrete methods that
// may implement an interface call (matched structurally by method-name
// sets, since types.Implements cannot compare named types across the
// loader's per-unit type universes). An unbounded or empty set is nil.
func (p *Program) mayCallees(info *types.Info, call *ast.CallExpr) []string {
	if key, ok := p.staticCallee(info, call); ok {
		return []string{key}
	}
	fn, ok := funcFor(info, call)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	need := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		need = append(need, iface.Method(i).Name())
	}
	var out []string
	for _, tbl := range p.methods {
		impl := true
		for _, name := range need {
			if tbl[name] == "" {
				impl = false
				break
			}
		}
		if impl && tbl[fn.Name()] != "" {
			out = append(out, tbl[fn.Name()])
		}
	}
	if len(out) == 0 || len(out) > maxDispatch {
		return nil
	}
	sort.Strings(out)
	return out
}

// Callers returns how many statically resolved call sites target key.
func (p *Program) Callers(key string) int { return p.callerCount[key] }

// Summary returns the summary for key, nil when the function is not part
// of the program.
func (p *Program) Summary(key string) *FuncSummary { return p.Summaries[key] }

// sccOrder computes Tarjan's strongly connected components over the
// callee edges and returns them in reverse topological order: every edge
// leaving an SCC points at an earlier component, so processing in order
// sees callee summaries before caller summaries. Keys inside a component
// and the component sequence itself are deterministic (DFS over sorted
// keys).
func (p *Program) sccOrder() [][]string {
	keys := make([]string, 0, len(p.ByKey))
	for k := range p.ByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var order [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range p.ByKey[v].callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			order = append(order, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return order
}

// pathSuffixWithin reports whether import path p is, or is beneath, a
// package whose path ends in suffix (e.g. "internal/buffer"). The
// program-level intrinsics match by suffix so they hold under any module
// path — including the fixture loader, whose packages import the real
// module packages.
func pathSuffixWithin(p, suffix string) bool {
	p = strings.TrimSuffix(p, "_test")
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}
