package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"strings"
	"sync"
)

// Finding is one rule violation at a source position. Fix, when non-nil,
// is a mechanical remediation `optlint -fix` can apply; it never appears
// in the -json schema.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
	Fix     *Fix
}

// String renders the driver's line format: file:line:col: [rule] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Pkg *Package
	// Prog is the whole-module view (call graph + per-function summaries)
	// shared by every package's pass; analyzers read it, never write it.
	Prog   *Program
	rule   string
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved position — the shape
// used by analyzers replaying facts from (possibly cached) summaries,
// which carry positions rather than token.Pos values.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Finding{Pos: pos, Rule: p.rule, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one registered rule.
type Analyzer struct {
	// Name is the rule identifier printed in findings.
	Name string
	// Doc is a one-line description for -help style listings.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Analyze runs every analyzer over every package and returns the findings
// sorted by position. The whole-module Program (call graph + summaries) is
// built first so every pass sees interprocedural facts.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return AnalyzeParallel(pkgs, analyzers, 1)
}

// AnalyzeParallel is Analyze with the per-package analyzer runs fanned out
// over a bounded worker pool. Findings are deterministic regardless of
// workers: results are collected per package and sorted by position at the
// end, and the shared Program is immutable once built.
func AnalyzeParallel(pkgs []*Package, analyzers []*Analyzer, workers int) []Finding {
	return AnalyzeProgram(BuildProgram(pkgs), pkgs, analyzers, workers)
}

// AnalyzeProgram runs the analyzers over pkgs against an already-built
// Program — the entry point for drivers that warm-start summaries from a
// cache.
func AnalyzeProgram(prog *Program, pkgs []*Package, analyzers []*Analyzer, workers int) []Finding {
	if workers < 1 {
		workers = 1
	}
	results := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var found []Finding
			for _, a := range analyzers {
				a.Run(&Pass{Pkg: pkg, Prog: prog, rule: a.Name, report: func(f Finding) { found = append(found, f) }})
			}
			results[i] = found
		}(i, pkg)
	}
	wg.Wait()
	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	sortFindings(out)
	return out
}

// Relativize rewrites finding filenames relative to base where possible,
// for readable driver output.
func Relativize(findings []Finding, base string) {
	for i := range findings {
		if rel, err := filepath.Rel(base, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}

// WriteText writes one finding per line in file:line:col: [rule] message
// form.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable -json schema for editor/tooling integration.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON writes the findings as a JSON array of
// {file, line, col, rule, message} objects (an empty array when clean),
// followed by a newline.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// pathWithin reports whether import path p equals prefix or lies beneath
// it. An external test package ("pkg_test") counts as within its base
// package's path.
func pathWithin(p, prefix string) bool {
	p = strings.TrimSuffix(p, "_test")
	if p == prefix {
		return true
	}
	return strings.HasPrefix(p, prefix+"/")
}

// anyPathWithin reports whether p lies within any of the prefixes.
func anyPathWithin(p string, prefixes []string) bool {
	for _, pre := range prefixes {
		if pathWithin(p, pre) {
			return true
		}
	}
	return false
}

// parents builds a child→parent node map for the subtree rooted at root.
func parents(root ast.Node) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

// namedDef resolves t (after pointer indirection) to its defining package
// path and type name; ok is false for unnamed types.
func namedDef(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// methodOn reports whether fn is a method and resolves its receiver's
// defining package path and type name.
func methodOn(fn *types.Func) (pkgPath, name string, ok bool) {
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	return namedDef(sig.Recv().Type())
}

// funcFor resolves the called function object of a call expression, if the
// callee is an identifier or selector (not a conversion or func literal).
func funcFor(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := info.Uses[id].(*types.Func)
	return fn, ok
}
