package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// TextEdit is one replacement of the source range [Pos, End) by NewText.
// Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Fix is a mechanical remediation attached to a Finding, applied by
// `optlint -fix`. Fixes must be safe to apply blindly: after application
// the analyzer that produced the finding no longer fires (the -fix golden
// tests pin idempotence — a second pass is a no-op).
type Fix struct {
	// Message describes the edit for -fix's per-file report.
	Message string
	// Edits are the textual changes, all within one file.
	Edits []TextEdit
}

// fileEdit is a TextEdit resolved to byte offsets in a named file.
type fileEdit struct {
	file       string
	start, end int
	newText    string
}

// ApplyFixes applies every finding's Fix and returns the new contents of
// each edited file, keyed by file path as recorded in the FileSet (call
// it before Relativize). read supplies the current content of a file —
// injected, like the Loader's openExport, so this package does its own
// confinement honest and performs no direct file I/O. Overlapping edits
// within one file are an error; edits are applied bottom-up so offsets
// stay valid.
func ApplyFixes(fset *token.FileSet, findings []Finding, read func(path string) ([]byte, error)) (map[string][]byte, int, error) {
	var edits []fileEdit
	applied := 0
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		applied++
		for _, e := range f.Fix.Edits {
			pos := fset.PositionFor(e.Pos, false)
			end := fset.PositionFor(e.End, false)
			if !pos.IsValid() || !end.IsValid() || pos.Filename != end.Filename || end.Offset < pos.Offset {
				return nil, 0, fmt.Errorf("lint: invalid fix range for %s finding at %s", f.Rule, f.Pos)
			}
			edits = append(edits, fileEdit{file: pos.Filename, start: pos.Offset, end: end.Offset, newText: e.NewText})
		}
	}
	if len(edits) == 0 {
		return map[string][]byte{}, 0, nil
	}
	// Bottom-up per file, with overlap detection.
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].file != edits[j].file {
			return edits[i].file < edits[j].file
		}
		return edits[i].start > edits[j].start
	})
	out := map[string][]byte{}
	for _, e := range edits {
		content, ok := out[e.file]
		if !ok {
			var err error
			content, err = read(e.file)
			if err != nil {
				return nil, 0, fmt.Errorf("lint: reading %s to fix it: %w", e.file, err)
			}
		}
		if e.end > len(content) {
			return nil, 0, fmt.Errorf("lint: fix range [%d,%d) beyond %s (%d bytes)", e.start, e.end, e.file, len(content))
		}
		patched := make([]byte, 0, len(content)+len(e.newText))
		patched = append(patched, content[:e.start]...)
		patched = append(patched, e.newText...)
		patched = append(patched, content[e.end:]...)
		out[e.file] = patched
	}
	// Descending-offset order catches only same-file overlaps between
	// neighbours; verify pairwise within each file for clarity of failure.
	for i := 1; i < len(edits); i++ {
		a, b := edits[i], edits[i-1] // a precedes b in the file
		if a.file == b.file && a.end > b.start {
			return nil, 0, fmt.Errorf("lint: overlapping fixes in %s at offsets %d and %d", a.file, a.start, b.start)
		}
	}
	return out, applied, nil
}
