package lint_test

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/optlab/opt/internal/lint"
)

// The fixture packages under testdata/ carry `// want "regex"` comments on
// every line where the analyzer under test must report, and nothing
// anywhere else. Each analyzer is exercised on a violating package (every
// want line fires, nothing extra) and a conforming one (zero findings).

var (
	loaderOnce   sync.Once
	sharedLoader *lint.Loader
	loaderErr    error
)

// fixtureLoader builds one Loader against the repository root, shared by
// every fixture test: the deep `go list -export` walk is the expensive
// part, and fixtures only add small source-checked units on top of it.
func fixtureLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		open := func(path string) (io.ReadCloser, error) { return os.Open(path) }
		sharedLoader, loaderErr = lint.NewLoader(root, open, "./...")
	})
	if loaderErr != nil {
		t.Fatalf("building fixture loader: %v", loaderErr)
	}
	return sharedLoader
}

// loadFixture typechecks testdata/<rule>/<variant> under the import path
// fixture/<rule>/<variant>.
func loadFixture(t *testing.T, rule, variant string) *lint.Package {
	t.Helper()
	dir := filepath.Join("testdata", rule, variant)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	pkg, err := fixtureLoader(t).LoadDir(dir, "fixture/"+rule+"/"+variant, names)
	if err != nil {
		t.Fatalf("loading fixture %s/%s: %v", rule, variant, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s/%s has no Go files", rule, variant)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// wantAt extracts the expected-finding regexps from every fixture file,
// keyed by "<path>:<line>".
func wantAt(t *testing.T, dir string) map[string]*regexp.Regexp {
	t.Helper()
	wants := map[string]*regexp.Regexp{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			pattern, err := strconv.Unquote(`"` + m[1] + `"`)
			if err != nil {
				t.Fatalf("%s:%d: bad want string: %v", path, line, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, line, err)
			}
			wants[fmt.Sprintf("%s:%d", path, line)] = re
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
		_ = f.Close()
	}
	return wants
}

// diffWant fails the test unless the findings and the want comments agree
// line for line.
func diffWant(t *testing.T, dir string, findings []lint.Finding) {
	t.Helper()
	wants := wantAt(t, dir)
	matched := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		re, expected := wants[key]
		if !expected {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if got := fmt.Sprintf("[%s] %s", f.Rule, f.Message); !re.MatchString(got) {
			t.Errorf("%s: finding %q does not match want %q", key, got, re)
			continue
		}
		matched[key] = true
	}
	for key, re := range wants {
		if !matched[key] {
			t.Errorf("%s: expected a finding matching %q, got none", key, re)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		rule     string
		analyzer *lint.Analyzer
	}{
		{"ctxflow", lint.NewCtxflow()},
		{"lockheld", lint.NewLockheld([]string{"fixture/lockheld"})},
		{"ioconfine", lint.NewIoconfine([]string{"fixture/other"})},
		{"closecheck", lint.NewClosecheck([]string{"fixture/closecheck"})},
		{"eventkind", lint.NewEventkind("github.com/optlab/opt/internal/events")},
		{"cancelfree", lint.NewCancelfree()},
		{"poolpair", lint.NewPoolpair("github.com/optlab/opt/internal/buffer")},
		{"atomicfield", lint.NewAtomicfield()},
		{"condguard", lint.NewCondguard()},
		{"gojoin", lint.NewGojoin()},
		{"arenaescape", lint.NewArenaescape(
			"github.com/optlab/opt/internal/buffer",
			"github.com/optlab/opt/internal/storage",
		)},
		{"lockorder", lint.NewLockorder()},
		{"chanflow", lint.NewChanflow(nil)},
		{"waitjoin", lint.NewWaitjoin()},
	}
	for _, tc := range cases {
		for _, variant := range []string{"bad", "ok"} {
			t.Run(tc.rule+"/"+variant, func(t *testing.T) {
				pkg := loadFixture(t, tc.rule, variant)
				findings := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{tc.analyzer})
				diffWant(t, filepath.Join("testdata", tc.rule, variant), findings)
			})
		}
	}
}

// TestInterprocFixtures exercises the summary layer across package
// boundaries: the helper package's summaries (ownership transfer, pure
// borrow, alias retention, transitive requires-held) drive findings — and
// silence — in the packages that call it. The helper itself must stay
// clean, which the shared diffWant enforces since its files carry no want
// comments.
func TestInterprocFixtures(t *testing.T) {
	helper := loadFixture(t, "interproc", "helper")
	analyzers := []*lint.Analyzer{
		lint.NewPoolpair("github.com/optlab/opt/internal/buffer"),
		lint.NewCondguard(),
		lint.NewArenaescape(
			"github.com/optlab/opt/internal/buffer",
			"github.com/optlab/opt/internal/storage",
		),
	}
	for _, variant := range []string{"bad", "ok"} {
		t.Run(variant, func(t *testing.T) {
			pkg := loadFixture(t, "interproc", variant)
			findings := lint.Analyze([]*lint.Package{helper, pkg}, analyzers)
			diffWant(t, filepath.Join("testdata", "interproc", variant), findings)
		})
	}
}

// TestLockorderCrossPackage proves the lock-order graph spans package
// boundaries: the cycle closes between fixture/lockorder/multi and
// fixture/lockorder/multihelper, and the witness chain names the
// acquisition site inside the helper package plus the call (LockShared)
// that reaches it. The helper package itself must stay silent — the
// cycle is owned by the anchor witness in multi.
func TestLockorderCrossPackage(t *testing.T) {
	helper := loadFixture(t, "lockorder", "multihelper")
	pkg := loadFixture(t, "lockorder", "multi")
	findings := lint.Analyze([]*lint.Package{helper, pkg}, []*lint.Analyzer{lint.NewLockorder()})
	diffWant(t, filepath.Join("testdata", "lockorder", "multi"), findings)
}

// TestConcurrencyDeterminism pins the acceptance bar for the v4 rules:
// byte-identical output whatever the -parallel width. The fixture mix
// exercises every new analyzer plus the cross-package cycle, so the
// precomputed-in-Program reporting paths race against per-package ones.
func TestConcurrencyDeterminism(t *testing.T) {
	pkgs := []*lint.Package{
		loadFixture(t, "lockorder", "multihelper"),
		loadFixture(t, "lockorder", "multi"),
		loadFixture(t, "lockorder", "bad"),
		loadFixture(t, "chanflow", "bad"),
		loadFixture(t, "waitjoin", "bad"),
	}
	analyzers := []*lint.Analyzer{lint.NewLockorder(), lint.NewChanflow(nil), lint.NewWaitjoin()}
	var base string
	for _, workers := range []int{1, 2, 8} {
		var out strings.Builder
		findings := lint.AnalyzeParallel(pkgs, analyzers, workers)
		if err := lint.WriteText(&out, findings); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if out.Len() == 0 {
			t.Fatalf("-parallel %d produced no findings at all", workers)
		}
		if base == "" {
			base = out.String()
			continue
		}
		if out.String() != base {
			t.Errorf("-parallel %d output differs from -parallel 1:\n%s\nvs\n%s", workers, out.String(), base)
		}
	}
}

// TestSuppression runs the suppress fixtures through the full
// Analyze→ApplySuppressions path: the bad variant's want comments describe
// the findings that survive (underlying findings the directives fail to
// suppress, plus the directive diagnostics under the "suppression"
// pseudo-rule); the ok variant carries reasoned, matching directives and
// must come out clean.
func TestSuppression(t *testing.T) {
	for _, variant := range []string{"bad", "ok"} {
		t.Run(variant, func(t *testing.T) {
			pkg := loadFixture(t, "suppress", variant)
			findings := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{lint.NewCtxflow()})
			findings = lint.ApplySuppressions([]*lint.Package{pkg}, findings)
			diffWant(t, filepath.Join("testdata", "suppress", variant), findings)
		})
	}
}

// TestIoconfineScoping proves the allowlist works: the violating fixture
// produces nothing when its own path is allowed, the way internal/ssd and
// internal/diskio are in the real configuration.
func TestIoconfineScoping(t *testing.T) {
	pkg := loadFixture(t, "ioconfine", "bad")
	an := lint.NewIoconfine([]string{"fixture/ioconfine"})
	if findings := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{an}); len(findings) > 0 {
		t.Fatalf("allowlisted package still reported %d findings, first: %s", len(findings), findings[0])
	}
}

// TestDefaultRegistry pins the shipped rule set.
func TestDefaultRegistry(t *testing.T) {
	var names []string
	for _, a := range lint.Default("github.com/optlab/opt") {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc or Run", a.Name)
		}
	}
	want := []string{
		"ctxflow", "lockheld", "ioconfine", "closecheck", "eventkind",
		"cancelfree", "poolpair", "atomicfield", "condguard", "gojoin",
		"arenaescape", "lockorder", "chanflow", "waitjoin",
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Default() = %v, want %v", names, want)
	}
}
