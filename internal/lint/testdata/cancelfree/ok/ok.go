package ok

import (
	"context"
	"time"
)

type holder struct {
	cancel context.CancelFunc
}

// The canonical idiom: defer immediately after creation.
func Deferred(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return ctx.Err()
}

// Called explicitly on every path.
func EveryPath(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(ctx)
	if fail {
		cancel()
		return ctx.Err()
	}
	cancel()
	return nil
}

// Ownership moves into a struct field; whoever holds the struct cancels.
func Stored(ctx context.Context, h *holder) context.Context {
	ctx, h.cancel = context.WithCancel(ctx)
	return ctx
}

// Escapes into a closure: the caller runs the cleanup.
func Escapes(ctx context.Context) (context.Context, func()) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	return ctx, func() { cancel() }
}

// Paths that end in panic are not leaks.
func PanicPath(ctx context.Context, bad bool) {
	ctx, cancel := context.WithCancel(ctx)
	if bad {
		panic("unreachable in production")
	}
	cancel()
	_ = ctx
}
