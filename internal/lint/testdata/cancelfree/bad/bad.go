package bad

import (
	"context"
	"time"
)

// The only mention of cancel is in a branch the exit path never takes, so
// the fallthrough path leaks. (A cancel with no references at all would
// not compile: the leak always hides behind a path split.)
func DeadBranch(ctx context.Context, debug bool) {
	ctx, cancel := context.WithCancel(ctx) // want "cancel func \"cancel\" of context\\.WithCancel is not called on every path"
	if debug {
		cancel()
	}
	_ = ctx
}

// Discarded outright.
func Discarded(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) // want "cancel func of context\\.WithTimeout discarded with _"
	return ctx
}

// Multi-path leak: the error branch returns without calling cancel, even
// though the happy path defers it.
func BranchLeak(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // want "cancel func \"cancel\" of context\\.WithTimeout is not called on every path"
	if fail {
		return ctx.Err()
	}
	defer cancel()
	return nil
}

// Loop leak: the early return inside the loop bypasses the call site
// after the loop.
func LoopLeak(ctx context.Context, n int) {
	ctx, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want "cancel func \"cancel\" of context\\.WithDeadline is not called on every path"
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
	}
	cancel()
}
