package fix

import (
	"context"
	"time"
)

func Run(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	if fail {
		return ctx.Err()
	}
	cancel()
	return nil
}

func Watch(ctx context.Context, stop <-chan struct{}) {
	ctx, cancel := context.WithCancel(ctx)
	select {
	case <-stop:
		cancel()
	case <-ctx.Done():
	}
}
