// Package ok holds the joining shapes waitjoin must accept: Wait after
// the lock is released, workers that touch no held lock, and read-read
// overlap on an RWMutex.
package ok

import "sync"

type pool struct {
	mu    sync.Mutex
	items []int
}

func (p *pool) add(v int) {
	p.mu.Lock()
	p.items = append(p.items, v)
	p.mu.Unlock()
}

// flush joins first, locks after: the workers get the lock, finish, and
// Wait returns.
func flush(p *pool) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.add(1)
		}()
	}
	wg.Wait()
	p.mu.Lock()
	p.items = p.items[:0]
	p.mu.Unlock()
}

// gather holds its own lock while joining workers that only touch a
// different one — no overlap, no cycle.
type twoLocks struct {
	muA sync.Mutex
	muB sync.Mutex
	n   int
}

func (t *twoLocks) bump() {
	t.muB.Lock()
	t.n++
	t.muB.Unlock()
}

func gather(t *twoLocks) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.bump()
	}()
	t.muA.Lock()
	wg.Wait()
	t.muA.Unlock()
}

// snapshot read-holds while the worker read-holds: RWMutex readers admit
// each other, so the join completes.
type stats struct {
	mu sync.RWMutex
	n  int
}

func (s *stats) read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func snapshot(s *stats) int {
	var wg sync.WaitGroup
	var v int
	wg.Add(1)
	go func() {
		defer wg.Done()
		v = s.read()
	}()
	s.mu.RLock()
	wg.Wait()
	s.mu.RUnlock()
	return v
}
