// Package bad holds the wait-for cycles waitjoin must catch: a
// WaitGroup.Wait executed while holding a lock the joined goroutines
// still need — through a spawned literal calling a locking method, and
// through a spawned named worker locking directly.
package bad

import "sync"

type pool struct {
	mu    sync.Mutex
	items []int
}

func (p *pool) add(v int) {
	p.mu.Lock()
	p.items = append(p.items, v)
	p.mu.Unlock()
}

// flush joins workers that need p.mu while holding p.mu: the workers
// park in Lock, Wait parks forever.
func flush(p *pool) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.add(1)
		}()
	}
	p.mu.Lock()
	wg.Wait() // want "WaitGroup\\.Wait while holding .*pool\\.mu \\(acquired at .*bad\\.go:\\d+:\\d+\\), but the goroutine spawned at .*bad\\.go:\\d+:\\d+ .*acquires .*pool\\.mu at .*bad\\.go:\\d+:\\d+ via \\(fixture/waitjoin/bad\\.pool\\)\\.add: .*wait-for cycle"
	p.mu.Unlock()
}

// worker locks the pool directly.
func worker(p *pool, wg *sync.WaitGroup) {
	defer wg.Done()
	p.mu.Lock()
	p.items = append(p.items, 0)
	p.mu.Unlock()
}

// run spawns the named worker and then waits under the lock it needs.
func run(p *pool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(p, &wg)
	p.mu.Lock()
	wg.Wait() // want "WaitGroup\\.Wait while holding .*pool\\.mu.*goroutine spawned at .*bad\\.go:\\d+:\\d+ \\(fixture/waitjoin/bad\\.worker\\) acquires .*pool\\.mu.*wait-for cycle"
	p.mu.Unlock()
}
