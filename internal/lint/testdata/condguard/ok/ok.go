package ok

import "sync"

type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
	done  bool
}

// The canonical shape: Wait in a predicate-rechecking for loop, lock held
// via defer to the function's end.
func (q *queue) Pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.done {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return 0, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Notify under the lock, explicit unlock after.
func (q *queue) Push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.cond.Signal()
	q.mu.Unlock()
}

// Broadcast under a deferred lock, reached through a branch.
func (q *queue) Close(flush bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if flush {
		q.items = nil
	}
	q.done = true
	q.cond.Broadcast()
}
