package bad

import "sync"

type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

// Wait guarded by `if`: a spurious or stale wakeup proceeds with the
// predicate still false.
func (q *queue) PopIf() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		q.cond.Wait() // want "sync\\.Cond\\.Wait outside a for loop"
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// Signal after Unlock: the notify can land in the window between a
// waiter's predicate check and its park.
func (q *queue) Push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.cond.Signal() // want "sync\\.Cond\\.Signal without holding a mutex"
}

// Broadcast with no lock anywhere near it.
func (q *queue) WakeAll() {
	q.cond.Broadcast() // want "sync\\.Cond\\.Broadcast without holding a mutex"
}

// Wait with the lock released on one path before it: must-held analysis
// intersects to empty at the merge.
func (q *queue) PopRacy(drop bool) {
	q.mu.Lock()
	if drop {
		q.mu.Unlock()
	}
	for len(q.items) == 0 {
		q.cond.Wait() // want "sync\\.Cond\\.Wait without holding a mutex"
	}
	q.items = q.items[1:]
	q.mu.Unlock()
}
