// Package broken fails to type-check on purpose: the optlint driver must
// exit 2 (load failure), not 0 or 1, when a target package does not build.
package broken

func Boom() int {
	var s string = 42 // type error: untyped int to string
	return s          // type error: string result for int
}
