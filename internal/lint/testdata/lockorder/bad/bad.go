// Package bad seeds the lock-order analyzer's deadlock shapes: an AB/BA
// cycle whose witness must name both acquisition sites, a same-lock
// reacquisition, the same through a callee, and an RLock→Lock upgrade.
package bad

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// abFirst takes muA and then muB through a helper — one half of the
// seeded cycle; the witness chain must name lockB.
func abFirst() {
	muA.Lock()
	lockB()
	muB.Unlock()
	muA.Unlock()
}

func lockB() {
	muB.Lock() // want "lock-order cycle .*muA → .*muB → .*muA: .*abFirst acquires .*muB at .*bad\\.go:\\d+:\\d+ via fixture/lockorder/bad\\.lockB while holding .*muA \\(acquired at .*bad\\.go:\\d+:\\d+\\); .*baFirst acquires .*muA at .*bad\\.go:\\d+:\\d+ while holding .*muB \\(acquired at .*bad\\.go:\\d+:\\d+\\)"
}

// baFirst takes the same two locks in the opposite order — the other
// half of the cycle.
func baFirst() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var muC sync.Mutex

// reenter acquires a lock it already holds: sync.Mutex is not reentrant,
// the second Lock parks forever.
func reenter() {
	muC.Lock()
	muC.Lock() // want "Lock of .*muC while the same lock is already held \\(acquired at .*bad\\.go:\\d+:\\d+\\): guaranteed self-deadlock"
	muC.Unlock()
	muC.Unlock()
}

func lockC() {
	muC.Lock()
}

// reenterViaCall does the same through a callee, so the summary lift has
// to carry the acquisition back to the held site.
func reenterViaCall() {
	muC.Lock()
	lockC() // want "call acquires .*muC at .*bad\\.go:\\d+:\\d+ via fixture/lockorder/bad\\.lockC while the same lock is already held .*: guaranteed self-deadlock"
	muC.Unlock()
}

var rw sync.RWMutex

// upgrade promotes a read hold to a write hold: the writer waits for all
// readers — including itself.
func upgrade() {
	rw.RLock()
	rw.Lock() // want "Lock of .*rw upgrades a read hold \\(RLock at .*bad\\.go:\\d+:\\d+\\) to a write hold: guaranteed self-deadlock"
	rw.Unlock()
	rw.RUnlock()
}
