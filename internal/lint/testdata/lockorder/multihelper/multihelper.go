// Package multihelper is the far side of the cross-package lock-order
// fixture: it owns a lock and exports a locking helper, so the cycle's
// witness chain has to cross a package boundary to name this site.
package multihelper

import "sync"

// Mu is the helper package's lock.
var Mu sync.Mutex

// LockShared takes the package lock on behalf of callers.
func LockShared() {
	Mu.Lock()
}

// UnlockShared releases it.
func UnlockShared() {
	Mu.Unlock()
}
