// Package ok holds the conforming shapes lockorder must stay silent on:
// a consistent lock hierarchy, release-before-reverse, read re-entry on
// distinct goroutine paths, and callee-acquired locks in sanctioned
// order.
package ok

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// first and second both follow the sanctioned order muA → muB, directly
// and through a helper: two edges, no cycle.
func first() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func second() {
	muA.Lock()
	lockB()
	muB.Unlock()
	muA.Unlock()
}

func lockB() {
	muB.Lock()
}

// reversedButReleased takes the locks in the other order but never holds
// both at once — no edge, no cycle.
func reversedButReleased() {
	muB.Lock()
	muB.Unlock()
	muA.Lock()
	muA.Unlock()
}

var rw sync.RWMutex

// readers and a distinct writer don't upgrade: RLock/RUnlock and a
// self-contained Lock/Unlock are each fine.
func readers() int {
	rw.RLock()
	defer rw.RUnlock()
	return 1
}

func writer() {
	rw.Lock()
	rw.Unlock()
}

// branchHeld releases on one path: muB is not must-held at the muA
// acquisition, so no edge forms from the conditional path.
func branchHeld(flip bool) {
	muB.Lock()
	if flip {
		muB.Unlock()
	} else {
		muB.Unlock()
	}
	muA.Lock()
	muA.Unlock()
}
