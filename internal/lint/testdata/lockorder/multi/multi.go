// Package multi closes a lock-order cycle across a package boundary:
// the local lock is held while multihelper's lock is taken through its
// exported helper, and the reverse order is taken directly. The reported
// witness must name the acquisition site inside multihelper and the call
// chain (LockShared) that reaches it.
package multi

import (
	"sync"

	"fixture/lockorder/multihelper"
)

var muLocal sync.Mutex

// localFirst holds the local lock while taking the helper package's lock
// through its exported helper — the A→B half.
func localFirst() {
	muLocal.Lock()
	multihelper.LockShared()
	multihelper.UnlockShared()
	muLocal.Unlock()
}

// helperFirst takes the helper package's lock directly, then the local
// lock — the B→A half.
func helperFirst() {
	multihelper.Mu.Lock()
	muLocal.Lock() // want "lock-order cycle .*multi\\.muLocal → .*multihelper\\.Mu → .*multi\\.muLocal: .*localFirst acquires .*multihelper\\.Mu at .*multihelper\\.go:\\d+:\\d+ via fixture/lockorder/multihelper\\.LockShared while holding .*muLocal.*; .*helperFirst acquires .*muLocal at .*multi\\.go:\\d+:\\d+ while holding .*multihelper\\.Mu"
	muLocal.Unlock()
	multihelper.Mu.Unlock()
}
