package ok

import "sync"

type worker struct {
	jobs []func()
}

// Add-before-go with Done in the body: the classic join.
func (w *worker) Run() {
	var wg sync.WaitGroup
	for _, j := range w.jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}

// The body closes an owned channel: whoever holds done can join.
func (w *worker) RunSignal() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, j := range w.jobs {
			j()
		}
	}()
	return done
}

// The body sends its result: the receiver is the join.
func Compute(f func() int) <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- f()
	}()
	return out
}

// A channel argument hands the callee a way to report back.
func Feed(items []int) <-chan int {
	ch := make(chan int)
	go produce(ch, items)
	return ch
}

func produce(ch chan<- int, items []int) {
	defer close(ch)
	for _, v := range items {
		ch <- v
	}
}
