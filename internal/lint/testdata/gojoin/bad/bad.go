package bad

import "sync"

type worker struct {
	jobs []func()
}

// Fire-and-forget: nothing can observe this goroutine finishing.
func (w *worker) Kick() {
	go func() { // want "go statement without a visible join edge"
		for _, j := range w.jobs {
			j()
		}
	}()
}

// A named method spawn with no channel argument and no Add before it.
func (w *worker) KickAll() {
	for _, j := range w.jobs {
		go runOne(j) // want "go statement without a visible join edge"
	}
}

func runOne(j func()) { j() }

// A spawn buried inside a callback literal: the Add in the enclosing
// function is outside the literal's scope and earns no credit — the
// callback may run long after that frame returned.
func (w *worker) KickNested() func() {
	var wg sync.WaitGroup
	wg.Add(1)
	defer wg.Done()
	return func() {
		go func() { // want "go statement without a visible join edge"
			for _, j := range w.jobs {
				j()
			}
		}()
	}
}
