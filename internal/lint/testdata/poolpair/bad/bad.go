package bad

import (
	"sync"

	"github.com/optlab/opt/internal/buffer"
)

// Field access through the chunk is a plain use, not a release: this path
// drops the chunk on the floor.
func FieldUseOnly() int {
	c := buffer.GetChunk() // want "chunk from buffer\\.GetChunk is not handed back"
	c.FirstPage = 7
	return len(c.Recs)
}

// Multi-path leak: the error branch returns without PutChunk.
func BranchLeak(fail bool) int {
	c := buffer.GetChunk() // want "chunk from buffer\\.GetChunk is not handed back"
	c.NumPages = 1
	if fail {
		return -1
	}
	n := c.NumPages
	buffer.PutChunk(c)
	return n
}

var scratch = sync.Pool{New: func() any { return new([]byte) }}

// sync.Pool obeys the same pairing rule.
func PoolLeak(fail bool) {
	b := scratch.Get() // want "value from sync\\.Pool Get is not handed back via Put"
	if fail {
		return
	}
	scratch.Put(b)
}
