package ok

import (
	"sync"

	"github.com/optlab/opt/internal/buffer"
)

type cache struct {
	chunks map[uint32]*buffer.Chunk
}

// Put on every path, including the early-out branch.
func Paired(fail bool) int {
	c := buffer.GetChunk()
	if fail {
		buffer.PutChunk(c)
		return -1
	}
	n := c.NumPages
	buffer.PutChunk(c)
	return n
}

// defer covers every path at once.
func DeferPaired() int {
	c := buffer.GetChunk()
	defer buffer.PutChunk(c)
	return len(c.Recs)
}

// Ownership transfers: returned to the caller.
func Returned() *buffer.Chunk {
	c := buffer.GetChunk()
	c.FirstPage = 3
	return c
}

// Ownership transfers: stored into a structure the caller owns.
func Stored(cc *cache) {
	c := buffer.GetChunk()
	cc.chunks[c.FirstPage] = c
}

// Ownership transfers: handed to another call (Insert pins it).
func Inserted(p *buffer.Pool) {
	c := buffer.GetChunk()
	p.Insert(c)
}

var scratch = sync.Pool{New: func() any { return new([]byte) }}

// sync.Pool paired via defer.
func PoolPaired() {
	b := scratch.Get()
	defer scratch.Put(b)
}

// Panic paths carry no obligation.
func PanicPath(bad bool) {
	c := buffer.GetChunk()
	if bad {
		panic("corrupt state")
	}
	buffer.PutChunk(c)
}
