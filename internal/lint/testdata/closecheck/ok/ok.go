package ok

import "os"

type Device struct{}

func (d *Device) Close() error { return nil }

// Quiet's Close has no error result, so there is nothing to drop.
type Quiet struct{}

func (q *Quiet) Close() {}

func tidy(d *Device, q *Quiet, f *os.File) error {
	_ = d.Close() // explicit discard is a visible decision
	q.Close()
	f.Close() // os.File is outside the configured packages
	if err := d.Close(); err != nil {
		return err
	}
	return d.Close()
}
