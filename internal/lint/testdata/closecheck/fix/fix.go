package fix

type Dev struct{}

func (Dev) Close() error { return nil }
func (Dev) Flush() error { return nil }

func Shutdown(d Dev) {
	d.Flush()
	d.Close()
}
