package bad

type Device struct{}

func (d *Device) Close() error { return nil }
func (d *Device) Drain() error { return nil }
func (d *Device) Flush() error { return nil }

func leak(d *Device) {
	d.Close()       // want "error result of Device\\.Close\\(\\) is unchecked"
	defer d.Drain() // want "error result of Device\\.Drain\\(\\) is unchecked"
	go d.Flush()    // want "error result of Device\\.Flush\\(\\) is unchecked"
}
