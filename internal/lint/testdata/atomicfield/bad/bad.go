package bad

import "sync/atomic"

type counter struct {
	hits int64
	errs int64
}

func (c *counter) Observe() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Snapshot() int64 {
	return c.hits // want "non-atomic access to field hits"
}

func (c *counter) Reset() {
	c.hits = 0 // want "non-atomic access to field hits"
}

// errs is only ever touched atomically in one branch and plainly in the
// other — the mixed pair races with itself.
func (c *counter) Record(fatal bool) {
	if fatal {
		atomic.AddInt64(&c.errs, 1)
		return
	}
	c.errs++ // want "non-atomic access to field errs"
}
