package ok

import "sync/atomic"

type counter struct {
	hits  int64
	plain int64 // never touched atomically; plain access everywhere is fine
}

func (c *counter) Observe() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) Swap() int64 {
	return atomic.SwapInt64((&c.hits), 0) // parens around the address are fine
}

func (c *counter) Bump() {
	c.plain++
}

// Composite-literal keys name the field without accessing shared state.
func Fresh() *counter {
	return &counter{hits: 0, plain: 0}
}

// The typed atomic API needs no rule: non-atomic access is inexpressible.
type typedCounter struct {
	n atomic.Int64
}

func (t *typedCounter) Observe() { t.n.Add(1) }
