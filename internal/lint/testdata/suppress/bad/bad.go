package bad

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// A directive with no reason is itself a finding and suppresses nothing.
func NoReason(ctx context.Context) error {
	//optlint:ignore ctxflow // want "optlint:ignore ctxflow has no reason"
	return helper(context.Background()) // want "context\\.Background\\(\\) passed to a call"
}

// A directive whose finding is gone must be deleted.
//
//optlint:ignore ctxflow the bug was fixed long ago // want "unused optlint:ignore ctxflow directive"
func Unused(ctx context.Context) error {
	return helper(ctx)
}

// A directive for the wrong rule suppresses nothing and is unused.
func WrongRule(ctx context.Context) error {
	//optlint:ignore lockheld not the right rule // want "unused optlint:ignore lockheld directive"
	return helper(context.Background()) // want "context\\.Background\\(\\) passed to a call"
}
