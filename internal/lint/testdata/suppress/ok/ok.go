package ok

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// A reasoned directive on the line above the finding suppresses it.
func Detach(ctx context.Context) error {
	//optlint:ignore ctxflow detached maintenance task must outlive the request
	return helper(context.Background())
}

// The trailing form on the finding's own line works too.
func DetachInline(ctx context.Context) error {
	return helper(context.Background()) //optlint:ignore ctxflow detached maintenance task must outlive the request
}
