// Package ok holds the sanctioned arena-handling shapes: arenaescape must
// stay silent on every function here.
package ok

import (
	"slices"

	"github.com/optlab/opt/internal/buffer"
	"github.com/optlab/opt/internal/storage"
)

var sink []uint32

// decodeRepointRecycle is the decode → repoint → consume → recycle cycle
// of the real external-triangulation path: the DecodeRangeAppend results
// are written back into the chunk's own fields (the repoint exemption) and
// every arena read happens before PutChunk.
func decodeRepointRecycle(data []byte) (int, error) {
	c := buffer.GetChunk()
	recs, arena, err := storage.DecodeRangeAppend(c.Recs, c.Arena, nil, 4096, data)
	c.Recs, c.Arena = recs, arena
	if err != nil {
		buffer.PutChunk(c)
		return 0, err
	}
	n := 0
	for _, rec := range c.Recs {
		n += len(rec.Adj)
	}
	buffer.PutChunk(c)
	return n, nil
}

// cloneBeforePut is the sanctioned remedy: slices.Clone severs the arena
// alias, so the copy may outlive the chunk.
func cloneBeforePut(data []byte) []uint32 {
	c := buffer.GetChunk()
	recs, arena, err := storage.DecodeRangeAppend(c.Recs, c.Arena, nil, 4096, data)
	c.Recs, c.Arena = recs, arena
	if err != nil || len(c.Recs) == 0 {
		buffer.PutChunk(c)
		return nil
	}
	out := slices.Clone(c.Recs[0].Adj)
	buffer.PutChunk(c)
	return out
}

// cloneToGlobal stores only severed copies in package state.
func cloneToGlobal() {
	c := buffer.GetChunk()
	sink = slices.Clone(c.Arena)
	buffer.PutChunk(c)
}

// borrowViaHelper passes arena slices to an in-module helper whose summary
// proves a pure borrow — no alias survives the call, so the recycle that
// follows is safe.
func borrowViaHelper(data []byte) int {
	c := buffer.GetChunk()
	recs, arena, err := storage.DecodeRangeAppend(c.Recs, c.Arena, nil, 4096, data)
	c.Recs, c.Arena = recs, arena
	total := 0
	if err == nil {
		for _, rec := range c.Recs {
			total += sum(rec.Adj)
		}
	}
	buffer.PutChunk(c)
	return total
}

func sum(xs []uint32) int {
	t := 0
	for _, x := range xs {
		t += int(x)
	}
	return t
}
