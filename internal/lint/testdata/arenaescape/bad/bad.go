// Package bad exercises arenaescape: every function retains an alias of a
// pooled chunk's arena past its PutChunk.
package bad

import (
	"github.com/optlab/opt/internal/buffer"
	"github.com/optlab/opt/internal/storage"
)

var sink []uint32

// returnAfterPut is the seeded use-after-recycle: a Record.Adj alias
// returned after the chunk went back to the pool.
func returnAfterPut(data []byte) []uint32 {
	c := buffer.GetChunk()
	recs, arena, err := storage.DecodeRangeAppend(c.Recs, c.Arena, nil, 4096, data)
	c.Recs, c.Arena = recs, arena
	if err != nil || len(c.Recs) == 0 {
		buffer.PutChunk(c)
		return nil
	}
	adj := c.Recs[0].Adj
	buffer.PutChunk(c)
	return adj // want "adj aliases the pooled arena of chunk c and is used after buffer\\.PutChunk .*leak path: c\\.Recs \\(bad\\.go:22\\) -> adj \\(bad\\.go:22\\); copy with slices\\.Clone"
}

// useChunkAfterPut touches the chunk header itself after release.
func useChunkAfterPut() uint32 {
	c := buffer.GetChunk()
	buffer.PutChunk(c)
	return c.FirstPage // want "chunk c is used after buffer\\.PutChunk\\(c\\) .*back in the pool and may be recycled"
}

// storeThenPut parks an arena alias in a package-level variable and then
// recycles the arena underneath it.
func storeThenPut() {
	c := buffer.GetChunk()
	adj := c.Arena[:0]
	sink = adj // want "alias of chunk c's pooled arena is stored to sink \\(leak path: c\\.Arena .*-> adj .*\\) and then buffer\\.PutChunk .*copy with slices\\.Clone first"
	buffer.PutChunk(c)
}

// goroutineCapture hands the arena to another goroutine that races the
// recycle.
func goroutineCapture() {
	c := buffer.GetChunk()
	go func() { // want "alias of chunk c's pooled arena is captured by a spawned goroutine .*and then buffer\\.PutChunk"
		sink = c.Arena
	}()
	buffer.PutChunk(c)
}

// deferredPutReturn returns arena memory that the deferred release
// recycles before the caller can look at it.
func deferredPutReturn(data []byte) []uint32 {
	c := buffer.GetChunk()
	defer buffer.PutChunk(c)
	recs, arena, err := storage.DecodeRangeAppend(c.Recs, c.Arena, nil, 4096, data)
	c.Recs, c.Arena = recs, arena
	if err != nil || len(recs) == 0 {
		return nil
	}
	return c.Recs[0].Adj // want "returned value aliases the pooled arena of chunk c .*deferred buffer\\.PutChunk .*copy with slices\\.Clone before returning"
}

// returnChunkDeferredPut gives the caller a chunk that is already back in
// the pool by the time the return completes.
func returnChunkDeferredPut() *buffer.Chunk {
	c := buffer.GetChunk()
	defer buffer.PutChunk(c)
	return c // want "chunk c is returned while a deferred buffer\\.PutChunk .*the caller receives a recycled chunk"
}
