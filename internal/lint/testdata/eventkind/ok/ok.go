package ok

import "github.com/optlab/opt/internal/events"

// AliasRunStart re-exports a declared kind by value, the triangulate.go
// public-API pattern.
const AliasRunStart = events.RunStart

func emit(s events.Sink, kind events.Kind) {
	s.Event(events.Event{Kind: events.RunStart})
	s.Event(events.Event{Kind: kind}) // threading a kind variable is free
	s.Event(events.Event{Kind: AliasRunStart})
	forward(s, events.TrianglesFound)
	// The I/O-scheduler kinds are part of the declared vocabulary.
	s.Event(events.Event{Kind: events.CoalescedRead})
	s.Event(events.Event{Kind: events.PrefetchHit})
	s.Event(events.Event{Kind: events.PrefetchWasted})
}

func forward(s events.Sink, kind events.Kind) {
	s.Event(events.Event{Kind: kind})
}
