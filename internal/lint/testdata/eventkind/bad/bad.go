package bad

import "github.com/optlab/opt/internal/events"

const rogue events.Kind = 99 // want "literal event kind"

func emit(s events.Sink) {
	s.Event(events.Event{Kind: events.Kind(42)}) // want "conversion mints an event kind"
	s.Event(events.Event{Kind: 3})               // want "literal event kind"
	s.Event(events.Event{Kind: rogue})           // want "constant rogue has a kind value outside the declared events vocabulary"
}
