package bad

import "sync"

type worker struct {
	mu   sync.Mutex
	ch   chan int
	done func()
	wg   sync.WaitGroup
}

func (w *worker) send() {
	w.mu.Lock()
	w.ch <- 1 // want "channel send while holding w\\.mu"
	w.mu.Unlock()
}

func (w *worker) recv() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return <-w.ch // want "channel receive while holding w\\.mu"
}

func (w *worker) wait() {
	w.mu.Lock()
	w.wg.Wait() // want "blocking w\\.wg\\.Wait\\(\\) while holding w\\.mu"
	w.mu.Unlock()
}

func (w *worker) callback() {
	w.mu.Lock()
	w.done() // want "callback field w\\.done invoked while holding w\\.mu"
	w.mu.Unlock()
}

func (w *worker) sel() {
	w.mu.Lock()
	defer w.mu.Unlock()
	select { // want "select \\(blocking channel operation\\) while holding w\\.mu"
	case v := <-w.ch:
		_ = v
	default:
	}
}
