package ok

import "sync"

type worker struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
	ch    chan int
	done  func()
}

// condWait parks on a sync.Cond, which releases the mutex while waiting:
// the one blocking call that is legal under a lock.
func (w *worker) condWait() {
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// unlockFirst releases before blocking.
func (w *worker) unlockFirst() {
	w.mu.Lock()
	w.ready = true
	w.mu.Unlock()
	w.ch <- 1
	w.done()
}

// guard unlocks on every path before the send: the branch merge must see
// the lock released on the fast path.
func (w *worker) guard(fast bool) {
	w.mu.Lock()
	if fast {
		w.mu.Unlock()
		w.ch <- 1
		return
	}
	w.mu.Unlock()
}

// spawn sends from a new goroutine that does not inherit this one's lock.
func (w *worker) spawn() {
	w.mu.Lock()
	go func() { w.ch <- 1 }()
	w.mu.Unlock()
}
