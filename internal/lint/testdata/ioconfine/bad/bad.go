package bad

import (
	"os"
	"syscall" // want "import of \"syscall\" outside the I/O layer"
)

type holder struct {
	f *os.File // want "os\\.File outside the I/O layer"
}

func open(path string) error {
	f, err := os.Open(path) // want "os\\.Open outside the I/O layer"
	if err != nil {
		return err
	}
	return f.Close()
}

func stat(h *holder) error {
	_, err := os.Stat(h.f.Name()) // metadata access stays legal
	return err
}

var _ = syscall.Getpid
