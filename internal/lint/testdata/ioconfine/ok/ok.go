package ok

import "os"

// scratch uses only metadata operations, which the rule does not confine.
func scratch() error {
	dir, err := os.MkdirTemp("", "fixture")
	if err != nil {
		return err
	}
	return os.RemoveAll(dir)
}
