package ok

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// Run replaces a nil context with the documented default-guard idiom;
// assignment position is legal.
func Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return helper(ctx)
}

// Root has no context parameter in scope, so it may mint one.
func Root() error {
	return helper(context.Background())
}

// Blank's context parameter is unnamed and cannot be forwarded.
func Blank(_ context.Context) error {
	return helper(context.Background())
}
