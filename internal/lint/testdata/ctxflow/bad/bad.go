package bad

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

func Run(ctx context.Context) error {
	return helper(context.Background()) // want "context\\.Background\\(\\) passed to a call"
}

func RunTODO(ctx context.Context) error {
	return helper(context.TODO()) // want "context\\.TODO\\(\\) passed to a call"
}

func Closure(ctx context.Context) func() error {
	return func() error {
		return helper(context.Background()) // want "context parameter \"ctx\" is in scope"
	}
}
