// Package bad holds the blocking-under-mutex shapes chanflow must flag:
// send, receive, select without default, WaitGroup.Wait, and a call to
// an in-module function whose summary proves it always blocks.
package bad

import "sync"

type hub struct {
	mu sync.Mutex
	ch chan int
}

func sendUnderLock(h *hub) {
	h.mu.Lock()
	h.ch <- 1 // want "blocking channel send while holding h\\.mu"
	h.mu.Unlock()
}

func recvUnderLock(h *hub) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.ch // want "blocking channel receive while holding h\\.mu"
}

func selectUnderLock(h *hub, done chan struct{}) {
	h.mu.Lock()
	select { // want "select without default .* while holding h\\.mu"
	case v := <-h.ch:
		_ = v
	case <-done:
	}
	h.mu.Unlock()
}

func waitUnderLock(h *hub, wg *sync.WaitGroup) {
	h.mu.Lock()
	wg.Wait() // want "sync\\.WaitGroup\\.Wait while holding h\\.mu"
	h.mu.Unlock()
}

// drainOne blocks on every path — its summary carries Blocks, so calling
// it under the lock is as bad as the receive itself.
func drainOne(h *hub) int {
	return <-h.ch
}

func callBlockingUnderLock(h *hub) int {
	h.mu.Lock()
	v := drainOne(h) // want "call to fixture/chanflow/bad\\.drainOne, which always blocks .* while holding h\\.mu"
	h.mu.Unlock()
	return v
}
