// Package ok holds the discharged shapes chanflow must accept:
// select-with-default, a provably-buffered channel with bounded
// occupancy, lock released before the op, and sync.Cond.Wait.
package ok

import "sync"

type hub struct {
	mu sync.Mutex
	ch chan int
}

// trySend never blocks: the default clause makes the send best-effort.
func trySend(h *hub) {
	h.mu.Lock()
	select {
	case h.ch <- 1:
	default:
	}
	h.mu.Unlock()
}

// sendAfterUnlock blocks, but with the lock already released.
func sendAfterUnlock(h *hub) {
	h.mu.Lock()
	v := 1
	h.mu.Unlock()
	h.ch <- v
}

// once's done channel is provably buffered (every binding is a make with
// constant capacity 1) and the package sends to it exactly once, outside
// any loop — the bounded-occupancy discharge.
type once struct {
	mu   sync.Mutex
	done chan int
}

func newOnce() *once {
	return &once{done: make(chan int, 1)}
}

func (o *once) finish(v int) {
	o.mu.Lock()
	o.done <- v
	o.mu.Unlock()
}

// guarded parks on the condition variable under its mutex: Cond.Wait
// releases the lock while parked, so nothing is wedged.
type guarded struct {
	mu    sync.Mutex
	c     *sync.Cond
	ready bool
}

func (g *guarded) await() {
	g.mu.Lock()
	for !g.ready {
		g.c.Wait()
	}
	g.mu.Unlock()
}
