// Package ok satisfies the interprocedural contracts: every obligation
// helper's summaries impose is met, so nothing may be reported.
package ok

import (
	"sync"

	"fixture/interproc/helper"
	"github.com/optlab/opt/internal/buffer"
)

// handOff discharges its pool obligation through helper.Consume's
// Released summary — a cross-package ownership transfer.
func handOff() {
	c := buffer.GetChunk()
	helper.Consume(c)
}

// borrowThenRelease borrows via the helper and still releases itself.
func borrowThenRelease() int {
	c := buffer.GetChunk()
	n := helper.BorrowChunk(c)
	buffer.PutChunk(c)
	return n
}

// guardedNotify holds the mutex across the transitively-requiring call.
func guardedNotify(mu *sync.Mutex, c *sync.Cond) {
	mu.Lock()
	helper.Notify(c)
	mu.Unlock()
}
