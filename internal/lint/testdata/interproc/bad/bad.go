// Package bad violates the interprocedural contracts helper's summaries
// describe: a borrow mistaken for a hand-off, an arena alias escaping
// through an exported API, and a transitively missing lock.
package bad

import (
	"sync"

	"fixture/interproc/helper"
	"github.com/optlab/opt/internal/buffer"
)

// borrowLeak never releases its chunk: per-function v2 treated any
// mention as a hand-off, but BorrowChunk's summary proves a pure borrow.
func borrowLeak() int {
	c := buffer.GetChunk() // want "chunk from buffer\\.GetChunk is not handed back via buffer\\.PutChunk"
	return helper.BorrowChunk(c)
}

// escapeViaHelper parks an arena alias in helper's package state and then
// recycles the arena underneath it.
func escapeViaHelper() {
	c := buffer.GetChunk()
	helper.KeepAlias(c.Arena) // want "alias of chunk c's pooled arena is passed to fixture/interproc/helper\\.KeepAlias, which retains an alias of it .*and then buffer\\.PutChunk"
	buffer.PutChunk(c)
}

// relay forwards the notify without a lock: its own summary inherits the
// requires-held obligation, and nothing is reported here.
func relay(c *sync.Cond) {
	helper.Notify(c)
}

// Trigger is the module root where the transitively missing lock is
// finally reported, naming the whole chain.
func Trigger(c *sync.Cond) {
	relay(c) // want "call to fixture/interproc/bad\\.relay, which needs the caller to hold a mutex \\(call to fixture/interproc/helper\\.Notify, which needs the caller to hold a mutex \\(sync\\.Cond\\.Signal\\)\\); acquire the mutex before the call"
}
