// Package helper provides cross-package callees whose summaries the
// interprocedural fixture tests consume: an ownership sink, a pure
// borrow, an alias retainer, and a transitively lock-requiring notify.
package helper

import (
	"sync"

	"github.com/optlab/opt/internal/buffer"
)

var retained []uint32

// Consume takes ownership of c and releases it — callers' poolpair
// obligations discharge through this summary (Released).
func Consume(c *buffer.Chunk) {
	buffer.PutChunk(c)
}

// BorrowChunk only reads through c: its summary proves a pure borrow, so
// passing a chunk here discharges nothing at the caller.
func BorrowChunk(c *buffer.Chunk) int {
	return c.NumPages
}

// KeepAlias retains its argument in package state (AliasEscapes).
func KeepAlias(xs []uint32) {
	retained = xs
}

// Notify signals without locking: the held obligation propagates to every
// caller (RequiresHeld).
func Notify(c *sync.Cond) {
	c.Signal()
}
