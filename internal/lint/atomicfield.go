package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewAtomicfield builds the atomicfield analyzer: once any code in a
// package passes a struct field's address to a sync/atomic function
// (atomic.AddInt64(&x.n, 1), atomic.LoadUint32(&x.flag), …), every other
// access to that field in the package must also go through sync/atomic.
// A mixed plain read or write is a data race the compiler accepts and
// `-race` only reports if the two accesses actually collide during a test
// run — exactly the latent-race class the typed atomic.Int64 fields of
// the metrics collector and AsyncDevice were introduced to rule out.
//
// Composite-literal keys (Field: value in a constructor, before the value
// is shared) are exempt, as is test code: tests read counters after
// goroutines have joined, a pattern that is sequenced, not racy. The
// durable fix is migrating the field to the sync/atomic typed API, which
// makes non-atomic access unrepresentable; this rule holds the line until
// then.
func NewAtomicfield() *Analyzer {
	return &Analyzer{
		Name: "atomicfield",
		Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
		Run:  runAtomicfield,
	}
}

func runAtomicfield(pass *Pass) {
	info := pass.Pkg.Info
	// Pass 1: collect the fields whose address reaches a sync/atomic call,
	// with the first such position for the report.
	atomicFields := map[*types.Var]token.Pos{}
	forEachNonTestFile(pass, func(file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld := addressedField(info, arg); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
				}
			}
			return true
		})
	})
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: every other use of those fields must sit under & in a
	// sync/atomic argument.
	forEachNonTestFile(pass, func(file *ast.File) {
		par := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(info, sel)
			if fld == nil {
				return true
			}
			first, isAtomic := atomicFields[fld]
			if !isAtomic || isAtomicArg(info, par, sel) {
				return true
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed with sync/atomic at %s (mixed access races; use sync/atomic or a typed atomic field)",
				fld.Name(), pass.Pkg.Fset.Position(first))
			return true
		})
	})
}

// forEachNonTestFile visits the package's non-test files.
func forEachNonTestFile(pass *Pass, visit func(*ast.File)) {
	for i, file := range pass.Pkg.Files {
		if !pass.Pkg.IsTest[i] {
			visit(file)
		}
	}
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function (the address-taking API; methods on atomic.Int64 etc. are safe
// by construction and irrelevant here).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := funcFor(info, call)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// addressedField resolves &x.f arguments to the field's object.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOf(info, sel)
}

// fieldOf resolves a selector to the struct field it names, or nil when
// the selector is a method, package member, or unresolved.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		if v, ok := selection.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// isAtomicArg reports whether sel appears as &sel directly inside a
// sync/atomic call's argument list.
func isAtomicArg(info *types.Info, par map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	// Climb through parens: (&x.f) is still fine.
	up := par[sel]
	for {
		if p, ok := up.(*ast.ParenExpr); ok {
			up = par[p]
			continue
		}
		break
	}
	ue, ok := up.(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return false
	}
	up = par[ue]
	for {
		if p, ok := up.(*ast.ParenExpr); ok {
			up = par[p]
			continue
		}
		break
	}
	call, ok := up.(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}
