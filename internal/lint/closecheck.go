package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewClosecheck builds the closecheck analyzer: calling Close, Drain or
// Flush on a type defined in one of the given packages and dropping its
// error result is a finding. Those are the calls that settle buffered
// writes, outstanding async requests and simulated-latency debt — an
// ignored error there silently truncates a store file or miscounts I/O.
//
// Discarding explicitly (`_ = dev.Close()`) is legal: the decision is
// visible to a reviewer. Methods without an error result (for example
// AsyncDevice.Close) are never flagged. Test files are checked too — the
// rule exists precisely because test helpers were dropping Close errors.
func NewClosecheck(pkgs []string) *Analyzer {
	cc := &closecheck{pkgs: pkgs}
	return &Analyzer{
		Name: "closecheck",
		Doc:  "Close/Drain/Flush errors on ssd/diskio/storage types must be checked or explicitly discarded",
		Run:  cc.run,
	}
}

type closecheck struct {
	pkgs []string
}

func (cc *closecheck) run(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			fixable := false // `_ =` only rewrites a plain statement, not defer/go
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
				fixable = true
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			if recv, method, ok := cc.target(pass.Pkg.Info, call); ok {
				f := Finding{
					Pos:     pass.Pkg.Fset.Position(call.Pos()),
					Rule:    "closecheck",
					Message: fmt.Sprintf("error result of %s.%s() is unchecked (check it or discard with `_ =`)", recv, method),
				}
				if fixable {
					f.Fix = &Fix{
						Message: "discard the error explicitly with `_ =`",
						Edits:   []TextEdit{{Pos: call.Pos(), End: call.Pos(), NewText: "_ = "}},
					}
				}
				pass.report(f)
			}
			return true
		})
	}
}

// target reports whether call is a Close/Drain/Flush method with an error
// result on a type defined in one of the configured packages.
func (cc *closecheck) target(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	name := ""
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		name = sel.Sel.Name
	}
	if name != "Close" && name != "Drain" && name != "Flush" {
		return "", "", false
	}
	fn, isFn := funcFor(info, call)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !returnsError(sig) {
		return "", "", false
	}
	pkg, typ, isNamed := methodOn(fn)
	if !isNamed || !anyPathWithin(pkg, cc.pkgs) {
		return "", "", false
	}
	return typ, fn.Name(), true
}

// returnsError reports whether any result of sig is the error type.
func returnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if named, isNamed := sig.Results().At(i).Type().(*types.Named); isNamed {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
