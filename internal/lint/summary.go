package lint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"reflect"
	"sort"
)

// Per-function summaries (DESIGN.md §13). A summary is everything a caller
// needs to know about a callee without looking at its body, in the
// RacerD-compositional style: obligation transfer (does passing a value in
// release it, consume it, or merely borrow it?), result ownership (does the
// callee hand back a pool obligation or a cancel func?), lock effects (does
// it block? does it require the caller to hold a mutex?), and arena alias
// facts (which params/results may alias pooled Chunk.Recs/Chunk.Arena
// memory — computed by the taint engine in arenaescape.go).
//
// Facts are may-facts unless stated otherwise, and every fact is monotone
// from an all-false bottom, so the SCC fixpoint in computeSummaries
// converges: recursion starts callees at the empty summary and iterates
// until stable.

// ParamFacts describes what a function may do with one incoming value.
// Slot 0 is the receiver when HasRecv; explicit parameters follow, with
// every variadic argument mapped onto the final slot.
type ParamFacts struct {
	// Released: the value is handed back to its pool (buffer.PutChunk,
	// sync.Pool.Put, or transitively a callee that releases it).
	Released bool `json:"released,omitempty"`
	// Escapes: the bare value is stored, captured, appended, sent, or
	// passed somewhere unknown — ownership visibly leaves the function.
	Escapes bool `json:"escapes,omitempty"`
	// Returned: the bare value is returned to the caller.
	Returned bool `json:"returned,omitempty"`
	// Called: the value is invoked as a function (discharges a cancel).
	Called bool `json:"called,omitempty"`
	// AliasEscapes: a slice aliasing the value's pooled arena is stored
	// beyond the function's frame (field, global, channel, goroutine).
	AliasEscapes bool `json:"aliasEscapes,omitempty"`
}

// borrows reports whether the facts amount to a pure borrow: the callee
// looks at the value and hands it back untouched — nothing that could
// discharge a pool or cancel obligation.
func (f ParamFacts) borrows() bool {
	return !f.Released && !f.Escapes && !f.Returned && !f.Called
}

// UncoveredOp is one lock-requiring operation (sync.Cond notify, or a call
// to a requires-held function) at a site where no mutex is definitely
// held; positions are retained so cached summaries can still report.
type UncoveredOp struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Desc string `json:"desc"`
}

// FuncSummary is the compositional summary of one function.
type FuncSummary struct {
	Key     string       `json:"key"`
	HasRecv bool         `json:"hasRecv,omitempty"`
	Params  []ParamFacts `json:"params,omitempty"`
	// ResultAlias[i] lists the param slots whose pooled arena result i may
	// alias (storage.DecodeAppend: results 0 and 1 alias slots 0 and 1).
	ResultAlias [][]int `json:"resultAlias,omitempty"`
	// OwnedResults[i]: on every normal return path, result i carries a
	// fresh pool obligation (buffer.GetChunk / sync.Pool Get) the caller
	// must discharge. Mixed nil-or-owned results stay false.
	OwnedResults []bool `json:"ownedResults,omitempty"`
	// CancelResults[i]: on every normal return path, result i is a context
	// cancel func the caller must call.
	CancelResults []bool `json:"cancelResults,omitempty"`
	// Blocks: every path from entry to the normal exit performs a
	// potentially blocking operation (send, receive, select without
	// default, Wait/Drain, or a callee that Blocks).
	Blocks    bool   `json:"blocks,omitempty"`
	BlocksWhy string `json:"blocksWhy,omitempty"`
	// RequiresHeld: the function performs a sync.Cond notify/Wait or calls
	// a requires-held function at a site with no mutex definitely held —
	// the obligation to hold L moves to the callers.
	RequiresHeld bool          `json:"requiresHeld,omitempty"`
	HeldWhy      string        `json:"heldWhy,omitempty"`
	Uncovered    []UncoveredOp `json:"uncovered,omitempty"`
	// Acquires: abstract locks the function may take in its dynamic extent,
	// directly or through callees (lockfacts.go); Chain names the call path.
	Acquires []LockAcq `json:"acquires,omitempty"`
	// AcqEdges: lock-order facts "may acquire Acq while Held is definitely
	// held" — the module-wide lock graph is the union of these.
	AcqEdges []LockEdge `json:"acqEdges,omitempty"`
	// LockReports: conflicts proven outright during the scan (self-deadlock,
	// RLock→Lock upgrade), replayed by the lockorder analyzer so warm-cache
	// runs still report them.
	LockReports []LockReport `json:"lockReports,omitempty"`
}

// argSlot maps a call-site argument index onto a summary slot; -1 when the
// summary has no explicit parameters.
func (s *FuncSummary) argSlot(argIdx int) int {
	base := 0
	if s.HasRecv {
		base = 1
	}
	if len(s.Params)-base <= 0 {
		return -1
	}
	slot := base + argIdx
	if slot >= len(s.Params) {
		slot = len(s.Params) - 1 // variadic tail
	}
	return slot
}

// recvSlot returns the receiver's slot, -1 when the function has none.
func (s *FuncSummary) recvSlot() int {
	if s.HasRecv && len(s.Params) > 0 {
		return 0
	}
	return -1
}

// argFacts returns the facts for a value passed as argument argIdx, the
// all-false facts when the slot cannot be mapped.
func (s *FuncSummary) argFacts(argIdx int) ParamFacts {
	if slot := s.argSlot(argIdx); slot >= 0 {
		return s.Params[slot]
	}
	return ParamFacts{}
}

// computeSummaries runs the bottom-up fixpoint: SCCs in callee-first
// order, every function starting from the empty summary, iterating each
// component until its summaries stop changing.
func (p *Program) computeSummaries() {
	for _, scc := range p.order {
		for _, key := range scc {
			p.Summaries[key] = emptySummary(p.ByKey[key])
		}
		for iter := 0; iter < 16; iter++ {
			changed := false
			for _, key := range scc {
				ns := p.computeSummary(p.ByKey[key])
				if !reflect.DeepEqual(p.Summaries[key], ns) {
					p.Summaries[key] = ns
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// paramObjects returns the value objects of fi's summary slots: receiver
// first (when present), then the declared parameters.
func paramObjects(fi *FuncInfo) []types.Object {
	sig, ok := fi.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Object
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// emptySummary is the all-false bottom element for fi, with slot and
// result shapes in place.
func emptySummary(fi *FuncInfo) *FuncSummary {
	sig, _ := fi.Fn.Type().(*types.Signature)
	s := &FuncSummary{Key: fi.Key, HasRecv: sig != nil && sig.Recv() != nil}
	s.Params = make([]ParamFacts, len(paramObjects(fi)))
	if sig != nil && sig.Results().Len() > 0 {
		n := sig.Results().Len()
		s.ResultAlias = make([][]int, n)
		s.OwnedResults = make([]bool, n)
		s.CancelResults = make([]bool, n)
	}
	return s
}

// computeSummary derives fi's summary from its body and the current
// summaries of its callees.
func (p *Program) computeSummary(fi *FuncInfo) *FuncSummary {
	s := emptySummary(fi)
	objs := paramObjects(fi)
	slotOf := make(map[types.Object]int, len(objs))
	for i, o := range objs {
		slotOf[o] = i
	}
	p.scanValueFacts(fi, slotOf, s)
	p.scanResultFacts(fi, s)
	p.scanBlocks(fi, s)
	p.scanHeld(fi, s)
	p.scanLockFacts(fi, s)
	p.scanAlias(fi, slotOf, s)
	return s
}

// callSummary resolves call to the summary of its static in-program
// target, nil otherwise.
func (p *Program) callSummary(info *types.Info, call *ast.CallExpr) *FuncSummary {
	key, ok := p.staticCallee(info, call)
	if !ok {
		return nil
	}
	return p.Summaries[key]
}

// --- value-level obligation facts -----------------------------------------

// scanValueFacts classifies every use of a parameter (or receiver) in fi's
// body. The classification mirrors poolpair's v2 transfersOwnership —
// field access and dereference are plain uses, any other bare appearance
// moves the value — refined with callee summaries: a pass to a known
// borrowing callee is a plain use; a pass to a releasing callee is a
// release.
func (p *Program) scanValueFacts(fi *FuncInfo, slotOf map[types.Object]int, s *FuncSummary) {
	info := fi.Pkg.Info
	deferLit := map[*ast.FuncLit]bool{} // runs in this frame, at exit
	var stack []ast.Node
	litDepth := 0
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if lit, ok := top.(*ast.FuncLit); ok && !deferLit[lit] {
				litDepth--
			}
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				deferLit[lit] = true
			}
		case *ast.FuncLit:
			if !deferLit[x] {
				litDepth++
			}
		case *ast.Ident:
			slot, isParam := slotOf[info.Uses[x]]
			if !isParam {
				return true
			}
			f := &s.Params[slot]
			if litDepth > 0 {
				f.Escapes = true // captured by a closure that may outlive the call
				return true
			}
			p.classifyUse(info, stack, x, f)
		}
		return true
	})
}

// classifyUse folds one bare appearance of a tracked value into facts,
// judging by the immediately enclosing node.
func (p *Program) classifyUse(info *types.Info, stack []ast.Node, id *ast.Ident, f *ParamFacts) {
	if len(stack) < 2 {
		return
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		if parent.X != id {
			return
		}
		// x.f / x.m(...): plain use, unless it invokes a known method whose
		// receiver facts say otherwise.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == parent {
				if cs := p.callSummary(info, call); cs != nil {
					if slot := cs.recvSlot(); slot >= 0 {
						mergeFacts(f, cs.Params[slot])
					}
				}
			}
		}
	case *ast.StarExpr:
		if parent.X != id {
			return
		}
		// *x: dereference, plain use.
	case *ast.CallExpr:
		if parent.Fun == id {
			f.Called = true
			return
		}
		argIdx := -1
		for i, a := range parent.Args {
			if a == id {
				argIdx = i
				break
			}
		}
		if argIdx < 0 {
			return // e.g. the Fun position of a conversion
		}
		mergeFacts(f, p.argUseFacts(info, parent, argIdx))
	case *ast.ReturnStmt:
		f.Returned = true
	default:
		// Assignment, composite literal, send, index base of a store, map
		// key, binary expr… — the bare value moved somewhere.
		f.Escapes = true
	}
}

// mergeFacts folds src's obligation bits into dst (alias facts are merged
// by the taint engine, not here).
func mergeFacts(dst *ParamFacts, src ParamFacts) {
	dst.Released = dst.Released || src.Released
	dst.Escapes = dst.Escapes || src.Escapes
	dst.Returned = dst.Returned || src.Returned
	dst.Called = dst.Called || src.Called
}

// argUseFacts says what happens to a value passed as argument argIdx of
// call: released by the pool intrinsics or a releasing callee, consumed by
// append/panic/unknown callees (the v2 "any pass is a transfer"
// conservatism), borrowed by callees whose summaries prove it.
func (p *Program) argUseFacts(info *types.Info, call *ast.CallExpr, argIdx int) ParamFacts {
	if isPutChunkCall(info, call) || isPoolPutCall(info, call) {
		if argIdx == 0 {
			return ParamFacts{Released: true}
		}
		return ParamFacts{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "panic":
				return ParamFacts{Escapes: true}
			default:
				return ParamFacts{} // len, cap, …: plain use
			}
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return ParamFacts{} // conversion: the value itself, renamed
	}
	if cs := p.callSummary(info, call); cs != nil {
		f := cs.argFacts(argIdx)
		// A callee that returns the value hands it back to *this* frame's
		// caller-visible result chain; v2 treated any pass as a transfer, so
		// fold Returned into Escapes to stay no-new-false-positives.
		return ParamFacts{
			Released: f.Released,
			Escapes:  f.Escapes || f.Returned,
			Called:   f.Called,
		}
	}
	return ParamFacts{Escapes: true} // unknown callee: assume it consumes
}

// --- result ownership facts ------------------------------------------------

// scanResultFacts computes OwnedResults and CancelResults: must-facts over
// every normal return path.
func (p *Program) scanResultFacts(fi *FuncInfo, s *FuncSummary) {
	sig, _ := fi.Fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return
	}
	nres := sig.Results().Len()
	info := fi.Pkg.Info
	owned := map[types.Object]bool{}
	cancel := map[types.Object]bool{}
	topLevelStmts(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unwrapAssert(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		ownedRes := p.ownedResultsOf(info, call)
		cancelRes := p.cancelResultsOf(info, call)
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if i < len(ownedRes) && ownedRes[i] {
				owned[obj] = true
			}
			if i < len(cancelRes) && cancelRes[i] {
				cancel[obj] = true
			}
		}
		return true
	})
	ownedAcc := allTrue(nres)
	cancelAcc := allTrue(nres)
	sawReturn := false
	topLevelStmts(fi.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		switch {
		case len(rs.Results) == 0:
			// Named results falling back: no ownership claim.
			ownedAcc = andBools(ownedAcc, make([]bool, nres))
			cancelAcc = andBools(cancelAcc, make([]bool, nres))
		case len(rs.Results) == 1 && nres > 1:
			// return f(): tuple pass-through.
			var ro, rc []bool
			if call, ok := unwrapAssert(rs.Results[0]).(*ast.CallExpr); ok {
				ro = p.ownedResultsOf(info, call)
				rc = p.cancelResultsOf(info, call)
			}
			ownedAcc = andBools(ownedAcc, padBools(ro, nres))
			cancelAcc = andBools(cancelAcc, padBools(rc, nres))
		default:
			ro := make([]bool, nres)
			rc := make([]bool, nres)
			for i, e := range rs.Results {
				if i >= nres {
					break
				}
				e = unwrapAssert(e)
				if id, ok := e.(*ast.Ident); ok {
					obj := info.Uses[id]
					ro[i] = owned[obj]
					rc[i] = cancel[obj]
					continue
				}
				if call, ok := e.(*ast.CallExpr); ok {
					if o := p.ownedResultsOf(info, call); len(o) == 1 {
						ro[i] = o[0]
					}
					if c := p.cancelResultsOf(info, call); len(c) == 1 {
						rc[i] = c[0]
					}
				}
			}
			ownedAcc = andBools(ownedAcc, ro)
			cancelAcc = andBools(cancelAcc, rc)
		}
		return true
	})
	if !sawReturn || fallsOffEnd(fi.cfg()) {
		return // a no-return path reaches the exit: nothing is guaranteed
	}
	copy(s.OwnedResults, ownedAcc)
	copy(s.CancelResults, cancelAcc)
}

// ownedResultsOf reports, per result of call, whether it is a fresh pool
// obligation: the GetChunk/Pool.Get intrinsics or a callee whose summary
// says so.
func (p *Program) ownedResultsOf(info *types.Info, call *ast.CallExpr) []bool {
	if isGetChunkCall(info, call) || isPoolGetCall(info, call) {
		return []bool{true}
	}
	if cs := p.callSummary(info, call); cs != nil {
		return cs.OwnedResults
	}
	return nil
}

// cancelResultsOf reports, per result of call, whether it is a context
// cancel func: the context constructors or a callee whose summary says so.
func (p *Program) cancelResultsOf(info *types.Info, call *ast.CallExpr) []bool {
	if fn, ok := funcFor(info, call); ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		switch fn.Name() {
		case "WithCancel", "WithCancelCause", "WithTimeout", "WithTimeoutCause",
			"WithDeadline", "WithDeadlineCause":
			return []bool{false, true}
		}
	}
	if cs := p.callSummary(info, call); cs != nil {
		return cs.CancelResults
	}
	return nil
}

// unwrapAssert strips a type assertion (and parens): the Get().(*T) idiom.
func unwrapAssert(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return ast.Unparen(ta.X)
	}
	return e
}

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func andBools(a, b []bool) []bool {
	for i := range a {
		a[i] = a[i] && i < len(b) && b[i]
	}
	return a
}

func padBools(b []bool, n int) []bool {
	if len(b) >= n {
		return b[:n]
	}
	out := make([]bool, n)
	copy(out, b)
	return out
}

// --- blocking facts --------------------------------------------------------

// scanBlocks computes Blocks: a definitely blocking op on every normal
// path. The op vocabulary matches lockheld's intra-function rule (send,
// receive, select without default — whose comm clauses the CFG already
// places on every path — Wait/Drain calls except sync.Cond.Wait) plus
// callees that Block.
func (p *Program) scanBlocks(fi *FuncInfo, s *FuncSummary) {
	info := fi.Pkg.Info
	isBlocking := func(n ast.Node) bool { return p.blockingDesc(info, n) != "" }
	any := false
	why := ""
	whyPos := token.NoPos
	g := fi.cfg()
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if d := p.blockingDesc(info, n); d != "" {
				any = true
				if whyPos == token.NoPos || n.Pos() < whyPos {
					whyPos = n.Pos()
					why = d
				}
			}
		}
	}
	if !any {
		return
	}
	if !g.reachesExitWithout(isBlocking) {
		s.Blocks = true
		s.BlocksWhy = why
	}
}

// blockingDesc describes the potentially blocking operation n performs
// directly (not inside a nested literal), "" if none.
func (p *Program) blockingDesc(info *types.Info, n ast.Node) string {
	desc := ""
	ast.Inspect(n, func(x ast.Node) bool {
		if desc != "" {
			return false
		}
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			desc = "channel send"
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				desc = "channel receive"
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					name := fn.Name()
					if name == "Wait" || name == "Drain" {
						if pkg, typ, ok := methodOn(fn); !ok || pkg != "sync" || typ != "Cond" {
							desc = "blocking " + types.ExprString(sel.X) + "." + name + "()"
							return false
						}
					}
				}
			}
			if key, ok := p.staticCallee(info, e); ok {
				if cs := p.Summaries[key]; cs != nil && cs.Blocks {
					desc = "call to " + key + ", which always blocks (" + cs.BlocksWhy + ")"
				}
			}
		}
		return true
	})
	return desc
}

// --- requires-held facts ---------------------------------------------------

// scanHeld computes RequiresHeld: sync.Cond operations and calls to
// requires-held callees at sites with no mutex definitely held. The
// positions are kept so condguard can report inside functions nobody
// calls.
func (p *Program) scanHeld(fi *FuncInfo, s *FuncSummary) {
	info := fi.Pkg.Info
	type op struct {
		call *ast.CallExpr
		desc string
	}
	var ops []op
	topLevelStmts(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := condMethod(info, call); name != "" {
			ops = append(ops, op{call, "sync.Cond." + name})
			return true
		}
		if key, ok := p.staticCallee(info, call); ok {
			if cs := p.Summaries[key]; cs != nil && cs.RequiresHeld {
				ops = append(ops, op{call, "call to " + key + ", which needs the caller to hold a mutex (" + cs.HeldWhy + ")"})
			}
		}
		return true
	})
	if len(ops) == 0 {
		return
	}
	g := fi.cfg()
	held := heldLocks(g, info)
	for _, o := range ops {
		if lockHeldAt(g, held, o.call) {
			continue
		}
		pos := fi.Pkg.Fset.Position(o.call.Pos())
		s.Uncovered = append(s.Uncovered, UncoveredOp{File: pos.Filename, Line: pos.Line, Col: pos.Column, Desc: o.desc})
	}
	if len(s.Uncovered) > 0 {
		sort.Slice(s.Uncovered, func(i, j int) bool {
			a, b := s.Uncovered[i], s.Uncovered[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Col < b.Col
		})
		s.RequiresHeld = true
		s.HeldWhy = s.Uncovered[0].Desc
	}
}

// --- intrinsics ------------------------------------------------------------

// The pool/codec intrinsics are matched by import-path suffix rather than
// configured path so they hold under any module prefix — including the
// fixture loader, whose packages import the real module packages.

func isPutChunkCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := funcFor(info, call)
	return ok && fn.Pkg() != nil && fn.Name() == "PutChunk" && pathSuffixWithin(fn.Pkg().Path(), "internal/buffer")
}

func isGetChunkCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := funcFor(info, call)
	return ok && fn.Pkg() != nil && fn.Name() == "GetChunk" && pathSuffixWithin(fn.Pkg().Path(), "internal/buffer")
}

func isPoolPutCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := funcFor(info, call)
	if !ok || fn.Name() != "Put" {
		return false
	}
	pkg, typ, isMethod := methodOn(fn)
	return isMethod && pkg == "sync" && typ == "Pool"
}

func isPoolGetCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := funcFor(info, call)
	if !ok || fn.Name() != "Get" {
		return false
	}
	pkg, typ, isMethod := methodOn(fn)
	return isMethod && pkg == "sync" && typ == "Pool"
}

// isDecodeAppendCall matches storage.DecodeAppend/DecodeRangeAppend — the
// arena-filling decoders whose first two results alias their first two
// arguments. The summary of the real storage package proves the same facts
// when it is part of the program; the intrinsic keeps subset runs sound.
func isDecodeAppendCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := funcFor(info, call)
	if !ok || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	return (name == "DecodeAppend" || name == "DecodeRangeAppend") && pathSuffixWithin(fn.Pkg().Path(), "internal/storage")
}

// --- summary cache ---------------------------------------------------------

// summaryCacheFile is the on-disk shape of -summary-cache.
type summaryCacheFile struct {
	Fingerprint string                  `json:"fingerprint"`
	Summaries   map[string]*FuncSummary `json:"summaries"`
}

// Fingerprint digests the exact file set of pkgs (paths and contents, in
// sorted order) via the injected reader; the summary cache is valid only
// while the fingerprint matches.
func Fingerprint(pkgs []*Package, read func(string) ([]byte, error)) (string, error) {
	names := map[string]bool{}
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			if tf := pkg.Fset.File(f.Pos()); tf != nil {
				names[tf.Name()] = true
			}
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	h := sha256.New()
	var lenBuf [8]byte
	for _, name := range sorted {
		content, err := read(name)
		if err != nil {
			return "", fmt.Errorf("lint: fingerprinting %s: %w", name, err)
		}
		io.WriteString(h, name)
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(content)))
		h.Write(lenBuf[:])
		h.Write(content)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WriteSummaryCache serializes the program's summaries under fingerprint.
func WriteSummaryCache(w io.Writer, fingerprint string, p *Program) error {
	return json.NewEncoder(w).Encode(summaryCacheFile{Fingerprint: fingerprint, Summaries: p.Summaries})
}

// ReadSummaryCache decodes a summary cache written by WriteSummaryCache.
func ReadSummaryCache(r io.Reader) (fingerprint string, summaries map[string]*FuncSummary, err error) {
	var f summaryCacheFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return "", nil, fmt.Errorf("lint: decoding summary cache: %w", err)
	}
	return f.Fingerprint, f.Summaries, nil
}

// DebugSummaries writes every summary, one JSON object per line in key
// order — the -debug-summary dump.
func (p *Program) DebugSummaries(w io.Writer) error {
	keys := make([]string, 0, len(p.Summaries))
	for k := range p.Summaries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, err := json.Marshal(p.Summaries[k])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return err
		}
	}
	return nil
}
