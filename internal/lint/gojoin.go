package lint

import (
	"go/ast"
	"go/types"
)

// NewGojoin builds the gojoin analyzer: every `go` statement in a library
// package (not package main, not test files) must carry a visible join
// edge — evidence that something can observe the goroutine's completion.
// Accepted evidence:
//
//   - a sync.WaitGroup Add call earlier in the same enclosing function
//     (the Add-before-go idiom; the goroutine or its callee does the
//     matching Done),
//   - the spawned function literal itself containing a WaitGroup
//     Add/Done, a channel send, or a close() — an owned result channel or
//     a completion marker someone drains,
//   - a channel-typed value among the spawned call's arguments (the
//     callee reports back through it).
//
// A goroutine with none of these is unjoinable from the spawn site: the
// no-leaked-goroutine invariant the server e2e tests assert dynamically
// (goroutine counts before/after drain) becomes unfalsifiable, and a
// cancelled run can strand work that still touches freed buffers. The
// rule deliberately wants the evidence *visible near the spawn* — a
// drain registered three calls away may exist, but nobody reviewing the
// spawn can tell, and the paper's overlap machinery (Algorithm 9) is
// precisely a protocol of spawn/complete pairs.
func NewGojoin() *Analyzer {
	return &Analyzer{
		Name: "gojoin",
		Doc:  "every go statement in library packages needs a visible join edge (WaitGroup, result channel, or close)",
		Run:  runGojoin,
	}
}

func runGojoin(pass *Pass) {
	if pass.Pkg.Types == nil || pass.Pkg.Types.Name() == "main" {
		return
	}
	info := pass.Pkg.Info
	for i, file := range pass.Pkg.Files {
		if pass.Pkg.IsTest[i] {
			continue
		}
		par := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if hasJoinEdge(info, par, gs) {
				return true
			}
			pass.Reportf(gs.Pos(), "go statement without a visible join edge (no WaitGroup.Add before it, no Done/send/close in the body, no channel argument); a leaked goroutine outlives its run")
			return true
		})
	}
}

// hasJoinEdge checks the three accepted evidence shapes for one go
// statement.
func hasJoinEdge(info *types.Info, par map[ast.Node]ast.Node, gs *ast.GoStmt) bool {
	// Shape 1: the spawned literal's body joins by itself.
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if bodyJoins(info, lit.Body) {
			return true
		}
	}
	// Shape 2: a channel-typed argument — the callee owns a way back.
	for _, arg := range gs.Call.Args {
		if tv, ok := info.Types[arg]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	// Shape 3: WaitGroup.Add positioned before the spawn in the same
	// enclosing function.
	return addBeforeSpawn(info, par, gs)
}

// bodyJoins reports whether body contains a WaitGroup Add/Done call, a
// channel send, or a close() — without descending into further nested
// literals (their execution is not implied by this goroutine running).
func bodyJoins(info *types.Info, body *ast.BlockStmt) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			joins = true
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
					joins = true
					return false
				}
			}
			if isWaitGroupMethod(info, x, "Done") || isWaitGroupMethod(info, x, "Add") {
				joins = true
				return false
			}
		}
		return true
	})
	return joins
}

// addBeforeSpawn reports whether a sync.WaitGroup Add call occurs before
// gs (by source position) within the function enclosing gs.
func addBeforeSpawn(info *types.Info, par map[ast.Node]ast.Node, gs *ast.GoStmt) bool {
	var scope ast.Node
	for cur := par[gs]; cur != nil; cur = par[cur] {
		if _, ok := cur.(*ast.FuncLit); ok {
			scope = cur
			break
		}
		if fd, ok := cur.(*ast.FuncDecl); ok {
			scope = fd
			break
		}
	}
	if scope == nil {
		return false
	}
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n.Pos() >= gs.Pos() {
			return false // only evidence before the spawn counts
		}
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(info, call, "Add") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupMethod reports whether call invokes the named method on a
// sync.WaitGroup.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn, ok := funcFor(info, call)
	if !ok || fn.Name() != name {
		return false
	}
	pkg, typ, isMethod := methodOn(fn)
	return isMethod && pkg == "sync" && typ == "WaitGroup"
}
