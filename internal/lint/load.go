// Package lint is a dependency-free static-analysis framework for this
// repository, built on the standard library's go/parser, go/ast and
// go/types only (no golang.org/x/tools, keeping the module zero-dep).
//
// OPT's correctness rests on discipline the compiler cannot check: the
// macro-level overlap between the internal-triangulation main thread and
// the external-triangulation callback thread stays deadlock- and leak-free
// only if callbacks never block while holding scheduler locks, contexts
// thread through every layer, and all disk access funnels through the
// designated I/O packages. The analyzers in this package enforce those
// invariants mechanically on every tree; cmd/optlint is the driver.
//
// The Loader typechecks every module package from source, in dependency
// order, importing standard-library dependencies from compiler export data
// located via `go list -export`. Test files are included in each analysis
// unit (in-package tests join their package; external _test packages form
// their own unit), so the analyzers see test helpers too.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	ForTest      string
	Module       *struct{ Path, Dir string }
}

// Package is one type-checked analysis unit: a module package together
// with its in-package test files, or an external _test package.
type Package struct {
	// Path is the unit's import path; external test packages carry the
	// "_test" suffix.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	// IsTest parallels Files and marks _test.go files.
	IsTest []bool
	Types  *types.Package
	Info   *types.Info
}

// Loader loads and typechecks packages of one module.
type Loader struct {
	// Fset is shared by every parsed file, so finding positions from
	// different packages are comparable.
	Fset *token.FileSet

	openExport func(path string) (io.ReadCloser, error)
	modulePath string
	moduleDir  string
	dir        string
	mods       map[string]*listPkg       // module packages by import path
	export     map[string]string         // non-module import path → export data file
	imported   map[string]*types.Package // typechecked importable module packages
	loading    map[string]bool           // cycle detection
	gc         types.Importer
	targets    []string // import paths selected by the load patterns
}

// listJSONFields keeps `go list` output limited to what listPkg decodes.
const listJSONFields = "Dir,ImportPath,Name,Standard,Export,GoFiles,TestGoFiles,XTestGoFiles,ForTest,Module"

// NewLoader enumerates the module rooted at (or containing) dir with
// `go list` and prepares typechecking for the packages matching patterns
// (default "./..."). openExport opens a compiler export-data file by path;
// the caller supplies it so this package performs no direct file I/O of
// its own (the same confinement optlint enforces on the rest of the tree).
func NewLoader(dir string, openExport func(path string) (io.ReadCloser, error), patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		openExport: openExport,
		dir:        dir,
		mods:       map[string]*listPkg{},
		export:     map[string]string{},
		imported:   map[string]*types.Package{},
		loading:    map[string]bool{},
	}
	// One deep run collects every package in the dependency closure —
	// including test-only dependencies — with export data built for the
	// non-module ones.
	deep := append([]string{"list", "-deps", "-test", "-export", "-json=" + listJSONFields}, patterns...)
	out, err := runGo(dir, deep...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test variants; base entries carry the files
		}
		if p.Module != nil && !p.Standard {
			if l.modulePath == "" {
				l.modulePath, l.moduleDir = p.Module.Path, p.Module.Dir
			}
			l.mods[p.ImportPath] = &p
			continue
		}
		if p.Export != "" {
			l.export[p.ImportPath] = p.Export
		}
	}
	if l.modulePath == "" {
		return nil, fmt.Errorf("lint: no module packages matched %v in %s", patterns, dir)
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.export[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return l.openExport(file)
	})
	// A shallow run resolves which of the loaded packages the patterns
	// actually name (the deep run drags in dependencies).
	flat, err := runGo(dir, append([]string{"list"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(strings.TrimSpace(flat), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			if _, ok := l.mods[line]; ok {
				l.targets = append(l.targets, line)
			}
		}
	}
	sort.Strings(l.targets)
	return l, nil
}

// runGo executes the go tool in dir and returns its stdout.
func runGo(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return "", fmt.Errorf("lint: go %s: %w%s", strings.Join(args[:min(2, len(args))], " "), err, detail)
	}
	return string(out), nil
}

// ModulePath returns the module path of the loaded module.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// Load typechecks every package selected by the loader's patterns and
// returns the analysis units in deterministic order: each package with its
// in-package test files, plus a separate unit per external _test package.
func (l *Loader) Load() ([]*Package, error) {
	var out []*Package
	for _, path := range l.targets {
		lp := l.mods[path]
		names := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		pkg, err := l.check(path, lp.Dir, names)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			xp, err := l.check(path+"_test", lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			if xp != nil {
				out = append(out, xp)
			}
		}
	}
	return out, nil
}

// LoadDir typechecks the package in dir (every .go file, sorted by name)
// under the given import path. It serves the analyzer fixture tests, which
// live in testdata directories the go tool does not enumerate. The checked
// package becomes importable by later LoadDir calls, so multi-package
// fixtures (a helper package plus the package under test) can reference
// each other when loaded dependency-first.
func (l *Loader) LoadDir(dir, importPath string, fileNames []string) (*Package, error) {
	sort.Strings(fileNames)
	pkg, err := l.check(importPath, dir, fileNames)
	if err == nil && pkg != nil {
		l.imported[importPath] = pkg.Types
	}
	return pkg, err
}

// importable returns the exported type information for path: module
// packages are typechecked from source (without test files), everything
// else is read from compiler export data.
func (l *Loader) importable(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.imported[path]; ok {
		return p, nil
	}
	if lp, ok := l.mods[path]; ok {
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pkg, err := l.check(path, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: package %q has no Go files", path)
		}
		l.imported[path] = pkg.Types
		return pkg.Types, nil
	}
	if _, ok := l.export[path]; ok {
		return l.gc.Import(path)
	}
	return nil, fmt.Errorf("lint: unknown import %q (not in module, no export data)", path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check parses and typechecks one unit of files from dir.
func (l *Loader) check(importPath, dir string, names []string) (*Package, error) {
	if len(names) == 0 {
		return nil, nil
	}
	p := &Package{Path: importPath, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		p.Files = append(p.Files, f)
		p.IsTest = append(p.IsTest, strings.HasSuffix(name, "_test.go"))
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var terrs []error
	conf := types.Config{
		Importer: importerFunc(l.importable),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	p.Types, _ = conf.Check(importPath, l.Fset, p.Files, p.Info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s (first of %d): %v", importPath, len(terrs), terrs[0])
	}
	return p, nil
}
