package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Dataflow queries over the cfg of one function body. Two analyses live
// here: the obligation walk (cancelfree, poolpair — "can the normal exit
// be reached without discharging?") and the must-held lock analysis
// (condguard — "which mutexes are definitely held at this statement?").

// mayReachExitWithout reports whether the cfg's normal exit block is
// reachable from the point just after node `from` without first passing a
// node for which discharged returns true. `from` must be one of the nodes
// recorded in the graph; when it is not found the answer is false (no
// claim is made, keeping the caller silent rather than wrong).
func (g *cfg) mayReachExitWithout(from ast.Node, discharged func(ast.Node) bool) bool {
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			if n == from {
				return g.searchFrom(blk, i+1, discharged, map[*cfgBlock]bool{})
			}
		}
	}
	return false
}

// searchFrom scans blk.nodes[start:] and then the successor graph for a
// discharge-free path to the exit block.
func (g *cfg) searchFrom(blk *cfgBlock, start int, discharged func(ast.Node) bool, seen map[*cfgBlock]bool) bool {
	for i := start; i < len(blk.nodes); i++ {
		if discharged(blk.nodes[i]) {
			return false
		}
	}
	if blk == g.exit {
		return true
	}
	for _, succ := range blk.succs {
		if seen[succ] {
			continue
		}
		seen[succ] = true
		if g.searchFrom(succ, 0, discharged, seen) {
			return true
		}
	}
	return false
}

// reachesExitWithout reports whether the normal exit is reachable from the
// function's entry without passing a node for which pred holds — the
// whole-body variant of mayReachExitWithout, used by the Blocks summary
// ("does every normal path block?" ⇔ !reachesExitWithout(isBlocking)).
func (g *cfg) reachesExitWithout(pred func(ast.Node) bool) bool {
	if g.entry == g.exit {
		return true
	}
	return g.searchFrom(g.entry, 0, pred, map[*cfgBlock]bool{g.entry: true})
}

// fallsOffEnd reports whether some path reaches the exit block by falling
// off the end of the body (an exit edge whose block does not end in a
// return statement). Result-ownership summaries claim nothing for such
// functions: a named-result fall-through hides what is returned.
func fallsOffEnd(g *cfg) bool {
	for _, blk := range g.blocks {
		for _, succ := range blk.succs {
			if succ != g.exit {
				continue
			}
			if len(blk.nodes) == 0 {
				return true
			}
			if _, ok := blk.nodes[len(blk.nodes)-1].(*ast.ReturnStmt); !ok {
				return true
			}
		}
	}
	return false
}

// scanAfter walks forward from just after node `from`, reporting whether a
// node for which hit holds is reachable without first passing a node for
// which barrier holds. Used by arenaescape: from a PutChunk node, is a
// tainted value used again before its variable is rebound?
func (g *cfg) scanAfter(from ast.Node, barrier, hit func(ast.Node) bool) bool {
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			if n == from {
				return g.scanNodes(blk, i+1, barrier, hit, map[*cfgBlock]bool{})
			}
		}
	}
	return false
}

// scanNodes is scanAfter's DFS: nodes of blk from start, then successors.
func (g *cfg) scanNodes(blk *cfgBlock, start int, barrier, hit func(ast.Node) bool, seen map[*cfgBlock]bool) bool {
	for i := start; i < len(blk.nodes); i++ {
		if hit(blk.nodes[i]) {
			return true
		}
		if barrier(blk.nodes[i]) {
			return false
		}
	}
	for _, succ := range blk.succs {
		if seen[succ] {
			continue
		}
		seen[succ] = true
		if g.scanNodes(succ, 0, barrier, hit, seen) {
			return true
		}
	}
	return false
}

// lockset maps a lock's printed receiver expression to the position of
// the acquiring call, as in lockheld's lockSet; a separate type keeps the
// two analyses' invariants (may vs must) from being mixed up.
type lockset map[string]token.Pos

func (s lockset) clone() lockset {
	c := make(lockset, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockset) equal(o lockset) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// intersectLocks keeps only locks present in both sets (must-semantics at
// control-flow merges).
func intersectLocks(a, b lockset) lockset {
	out := lockset{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// heldLocks runs a forward must-analysis over g: the result maps every
// recorded node to the set of sync.Mutex/RWMutex receivers definitely
// held when that node begins executing. Lock/RLock adds the receiver,
// Unlock/RUnlock removes it; a deferred unlock changes nothing (the lock
// stays held to the end of the function, which is the point). Merges
// intersect, so a lock held on only one inbound path does not count —
// exactly the conservatism condguard needs to avoid false "held" claims.
func heldLocks(g *cfg, info *types.Info) map[ast.Node]lockset {
	heldAt := map[ast.Node]lockset{}
	in := map[*cfgBlock]lockset{g.entry: {}}
	work := []*cfgBlock{g.entry}
	out := map[*cfgBlock]lockset{}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		cur := in[blk].clone()
		for _, n := range blk.nodes {
			if prev, ok := heldAt[n]; !ok || !prev.equal(cur) {
				heldAt[n] = cur.clone()
			}
			applyLockOps(n, info, cur)
		}
		out[blk] = cur
		for _, succ := range blk.succs {
			next, seen := in[succ]
			if !seen {
				in[succ] = cur.clone()
				work = append(work, succ)
				continue
			}
			merged := intersectLocks(next, cur)
			if !merged.equal(next) {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}
	return heldAt
}

// applyLockOps updates held with every Lock/Unlock call contained in node
// n, in source order, without descending into function literals (a nested
// closure body runs at call time, not here). Deferred unlocks are
// ignored: the lock remains held for the rest of the function.
func applyLockOps(n ast.Node, info *types.Info, held lockset) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			key, op := mutexOp(info, c)
			switch op {
			case opLock:
				held[key] = c.Pos()
			case opUnlock:
				delete(held, key)
			}
		}
		return true
	})
}

// mutexOp classifies a call as acquiring or releasing a sync mutex,
// returning the printed receiver expression as the lock's identity. It is
// the types-aware twin of lockheld's lockOp, shared by the dataflow
// analyses.
func mutexOp(info *types.Info, call *ast.CallExpr) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	pkg, typ, ok := methodOn(fn)
	if !ok || pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return "", opNone
	}
	return types.ExprString(sel.X), op
}

// funcBodies visits every function declaration and function literal in
// file, handing each body to visit exactly once. Literals nested inside a
// body are visited on their own, so a per-function analysis never sees
// the same statement twice.
func funcBodies(file *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch f := n.(type) {
		case *ast.FuncDecl:
			if f.Body != nil {
				visit(f.Body)
			}
		case *ast.FuncLit:
			if f.Body != nil {
				visit(f.Body)
			}
		}
		return true
	})
}

// topLevelStmts walks the statements of body that belong to this function
// itself, invoking visit on each node encountered, without descending
// into nested function literals.
func topLevelStmts(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n == nil || n == body {
			return true
		}
		return visit(n)
	})
}
