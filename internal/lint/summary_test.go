package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"sync"
	"testing"

	"github.com/optlab/opt/internal/lint"
)

// Summary-layer tests against the real tree: the facts the interprocedural
// analyzers depend on must hold for the actual core/buffer code, not just
// fixtures.

const (
	keyGetScratch = "(github.com/optlab/opt/internal/core.Ctx).getScratch"
	keyPutScratch = "(github.com/optlab/opt/internal/core.Ctx).putScratch"
	keyPoolInsert = "(github.com/optlab/opt/internal/buffer.Pool).Insert"
)

var (
	moduleOnce sync.Once
	modulePkgs []*lint.Package
	moduleProg *lint.Program
	moduleErr  error
)

// loadModule typechecks every analysis unit of the repository once and
// builds the whole-module Program, shared across the summary tests.
func loadModule(t *testing.T) ([]*lint.Package, *lint.Program) {
	t.Helper()
	moduleOnce.Do(func() {
		modulePkgs, moduleErr = fixtureLoader(t).Load()
		if moduleErr == nil {
			moduleProg = lint.BuildProgram(modulePkgs)
		}
	})
	if moduleErr != nil {
		t.Fatalf("loading module: %v", moduleErr)
	}
	return modulePkgs, moduleProg
}

// TestRealTreeSummaries pins the cross-function facts the acceptance bar
// names: getScratch owns its result through the type-asserted sync.Pool
// Get (the transfer per-function v2 could not prove), putScratch releases
// its argument, and Pool.Insert stores the chunk it is given.
func TestRealTreeSummaries(t *testing.T) {
	_, prog := loadModule(t)
	get := prog.Summaries[keyGetScratch]
	if get == nil {
		t.Fatalf("no summary for %s", keyGetScratch)
	}
	if len(get.OwnedResults) != 1 || !get.OwnedResults[0] {
		t.Errorf("%s OwnedResults = %v, want [true] (sync.Pool Get behind a type assertion transfers ownership)",
			keyGetScratch, get.OwnedResults)
	}
	put := prog.Summaries[keyPutScratch]
	if put == nil {
		t.Fatalf("no summary for %s", keyPutScratch)
	}
	if len(put.Params) != 2 || !put.Params[1].Released {
		t.Errorf("%s Params = %+v, want parameter b Released via sync.Pool Put", keyPutScratch, put.Params)
	}
	ins := prog.Summaries[keyPoolInsert]
	if ins == nil {
		t.Fatalf("no summary for %s", keyPoolInsert)
	}
	if len(ins.Params) != 2 || !ins.Params[1].Escapes {
		t.Errorf("%s Params = %+v, want the chunk parameter Escapes (stored in the pool)", keyPoolInsert, ins.Params)
	}
}

// TestCoreDecodePathClean pins the other half of the acceptance bar: the
// real decode → repoint → consume → recycle cycle in internal/core passes
// poolpair and arenaescape with zero findings and zero suppressions.
func TestCoreDecodePathClean(t *testing.T) {
	pkgs, prog := loadModule(t)
	var core []*lint.Package
	for _, p := range pkgs {
		if p.Path == "github.com/optlab/opt/internal/core" {
			core = append(core, p)
		}
	}
	if len(core) == 0 {
		t.Fatal("no core package loaded")
	}
	an := []*lint.Analyzer{
		lint.NewPoolpair("github.com/optlab/opt/internal/buffer"),
		lint.NewArenaescape(
			"github.com/optlab/opt/internal/buffer",
			"github.com/optlab/opt/internal/storage",
		),
	}
	for _, f := range lint.AnalyzeProgram(prog, core, an, 2) {
		t.Errorf("unexpected finding on the core decode path: %s", f)
	}
}

// TestAnalyzeParallelDeterminism: identical findings whatever the worker
// count, across repeated runs — the bar for parallelizing the driver.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	pkgs := []*lint.Package{
		loadFixture(t, "interproc", "helper"),
		loadFixture(t, "interproc", "bad"),
		loadFixture(t, "arenaescape", "bad"),
	}
	an := []*lint.Analyzer{
		lint.NewPoolpair("github.com/optlab/opt/internal/buffer"),
		lint.NewCondguard(),
		lint.NewArenaescape(
			"github.com/optlab/opt/internal/buffer",
			"github.com/optlab/opt/internal/storage",
		),
	}
	render := func(fs []lint.Finding) []string {
		out := make([]string, len(fs))
		for i, f := range fs {
			out[i] = f.String()
		}
		return out
	}
	base := render(lint.AnalyzeParallel(pkgs, an, 1))
	if len(base) == 0 {
		t.Fatal("determinism test needs a non-empty finding set")
	}
	for _, workers := range []int{2, 8} {
		for round := 0; round < 3; round++ {
			if got := render(lint.AnalyzeParallel(pkgs, an, workers)); !reflect.DeepEqual(base, got) {
				t.Fatalf("workers=%d round=%d findings diverge:\nbase=%v\ngot =%v", workers, round, base, got)
			}
		}
	}
}

// summariesJSON renders a summary map in canonical form (JSON object keys
// are sorted), so maps that differ only in nil-versus-empty slices after a
// cache round trip still compare equal.
func summariesJSON(t *testing.T, m map[string]*lint.FuncSummary) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal summaries: %v", err)
	}
	return string(b)
}

// TestSummaryCacheRoundTrip: fingerprint stability, write/read identity,
// and a warm BuildProgramCached producing the same summaries as the cold
// fixpoint.
func TestSummaryCacheRoundTrip(t *testing.T) {
	pkgs, prog := loadModule(t)
	fp, err := lint.Fingerprint(pkgs, os.ReadFile)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	fp2, err := lint.Fingerprint(pkgs, os.ReadFile)
	if err != nil || fp != fp2 {
		t.Fatalf("fingerprint not stable: %q vs %q (err %v)", fp, fp2, err)
	}
	var buf bytes.Buffer
	if err := lint.WriteSummaryCache(&buf, fp, prog); err != nil {
		t.Fatalf("writing cache: %v", err)
	}
	gotFP, sums, err := lint.ReadSummaryCache(&buf)
	if err != nil {
		t.Fatalf("reading cache: %v", err)
	}
	if gotFP != fp {
		t.Fatalf("cache fingerprint = %q, want %q", gotFP, fp)
	}
	warm := lint.BuildProgramCached(pkgs, sums)
	cold, warmed := summariesJSON(t, prog.Summaries), summariesJSON(t, warm.Summaries)
	if cold != warmed {
		t.Fatalf("warm-start summaries differ from cold fixpoint")
	}
	if g := warm.Summaries[keyGetScratch]; g == nil || len(g.OwnedResults) != 1 || !g.OwnedResults[0] {
		t.Fatalf("warm program lost %s OwnedResults", keyGetScratch)
	}
}
