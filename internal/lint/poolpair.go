package lint

import (
	"go/ast"
	"go/types"
)

// NewPoolpair builds the poolpair analyzer for the buffer package at the
// given import path: in non-test code, a value obtained from
// buffer.GetChunk or a sync.Pool's Get must, on every path to the
// function's normal exit, either be returned to its pool (PutChunk /
// Put) or visibly change owner — returned, stored into a field, slice,
// map or channel, passed to a consuming call, or captured by a closure. A
// path that drops the value on the floor un-recycles it: the steady-state
// 0 allocs/op of the PR-3 hot loops holds only while every Get has a
// matching Put, and a leak here shows up as allocation growth no unit
// test pins until the benchmark regresses.
//
// Field reads and writes through the value (c.Recs, c.FirstPage = …) are
// plain uses, not ownership transfers; only the bare value moving
// somewhere else discharges the obligation. Panic/Fatal paths are exempt,
// and the analyzer skips test files entirely — fixtures churn pools in
// ways production code must not.
//
// v3 makes the obligation interprocedural via the Program's summaries
// (DESIGN.md §13):
//
//   - passing the value to an in-module callee whose summary proves a pure
//     borrow (no release, no escape, no return) does NOT discharge — the
//     obligation stays here, where the per-function v2 rule wrongly
//     assumed any pass was a hand-off;
//   - a call whose summary owns a result on every return path (a wrapper
//     around GetChunk or Pool.Get, like core's getScratch) creates a new
//     obligation at the caller, which per-function analysis could not see;
//   - sync.Pool Gets hidden behind a type assertion
//     (`p.Get().(*[]uint32)`) are recognized as obligation sites too.
//
// Unknown callees (stdlib, interface dispatch, function values) still
// count as transfers — exactly v2's conservatism, so the tree gains no
// false positives.
func NewPoolpair(bufferPath string) *Analyzer {
	pp := &poolpair{bufferPath: bufferPath}
	return &Analyzer{
		Name: "poolpair",
		Doc:  "buffer.GetChunk/PutChunk and sync.Pool Get/Put must pair on every path in non-test code",
		Run:  pp.run,
	}
}

type poolpair struct {
	bufferPath string
}

// poolSite is one obligation: the assignment creating it, the obligated
// identifier, and the message pieces describing the source.
type poolSite struct {
	as   *ast.AssignStmt
	id   *ast.Ident
	what string
	put  string
}

func (pp *poolpair) run(pass *Pass) {
	if pathWithin(pass.Pkg.Path, pp.bufferPath) {
		return // the pool's own package defines the lifecycle
	}
	info := pass.Pkg.Info
	for i, file := range pass.Pkg.Files {
		if pass.Pkg.IsTest[i] {
			continue
		}
		funcBodies(file, func(body *ast.BlockStmt) {
			var sites []poolSite
			topLevelStmts(body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					sites = append(sites, pp.sitesOf(pass, as)...)
				}
				return true
			})
			if len(sites) == 0 {
				return
			}
			g := buildCFG(body, info)
			for _, site := range sites {
				pp.checkSite(pass, g, site)
			}
		})
	}
}

// sitesOf extracts the pool obligations created by one assignment: the
// Get intrinsics (with type assertions unwrapped) and callee results whose
// summaries prove ownership on every return path.
func (pp *poolpair) sitesOf(pass *Pass, as *ast.AssignStmt) []poolSite {
	info := pass.Pkg.Info
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := unwrapAssert(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if len(as.Lhs) == 1 {
		if fn, ok := funcFor(info, call); ok && fn.Pkg() != nil {
			if fn.Name() == "GetChunk" && pathWithin(fn.Pkg().Path(), pp.bufferPath) {
				if id := obligatedIdent(as.Lhs[0]); id != nil {
					return []poolSite{{as: as, id: id, what: "chunk from buffer.GetChunk", put: "buffer.PutChunk"}}
				}
				return nil
			}
			if isPoolGetCall(info, call) {
				if id := obligatedIdent(as.Lhs[0]); id != nil {
					return []poolSite{{as: as, id: id, what: "value from sync.Pool Get", put: "Put"}}
				}
				return nil
			}
		}
	}
	var cs *FuncSummary
	var key string
	if pass.Prog != nil {
		if k, ok := pass.Prog.staticCallee(info, call); ok {
			key, cs = k, pass.Prog.Summaries[k]
		}
	}
	if cs == nil {
		return nil
	}
	var sites []poolSite
	for i, lhs := range as.Lhs {
		if i >= len(cs.OwnedResults) || !cs.OwnedResults[i] {
			continue
		}
		if id := obligatedIdent(lhs); id != nil {
			sites = append(sites, poolSite{as: as, id: id,
				what: "pooled value from " + key + " (whose summary owns the result)",
				put:  "its pool"})
		}
	}
	return sites
}

// obligatedIdent returns the plain identifier lhs binds, nil when the
// value is dropped or stored elsewhere immediately (not trackable here).
func obligatedIdent(lhs ast.Expr) *ast.Ident {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

func (pp *poolpair) checkSite(pass *Pass, g *cfg, site poolSite) {
	info := pass.Pkg.Info
	obj := info.Defs[site.id]
	if obj == nil {
		obj = info.Uses[site.id]
	}
	if obj == nil {
		return
	}
	discharged := func(n ast.Node) bool { return dischargesObligation(pass.Prog, info, n, obj) }
	if g.mayReachExitWithout(site.as, discharged) {
		pass.Reportf(site.as.Pos(), "%s is not handed back via %s (or otherwise released) on every path to return", site.what, site.put)
	}
}

// dischargesObligation reports whether node n uses obj *as a value* — bare,
// not through a field selector — in a position that moves or settles
// ownership: returned, assigned away, sent, captured by a literal, invoked,
// or passed to a call that releases or consumes it. `c.Recs` and
// `c.FirstPage = 0` are reads/writes through the value and transfer
// nothing; so — new in v3 — does passing it to an in-module callee whose
// summary proves a pure borrow, or invoking a borrowing method on it.
func dischargesObligation(prog *Program, info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	litDepth := 0
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, isLit := top.(*ast.FuncLit); isLit {
				litDepth--
			}
			return true
		}
		stack = append(stack, x)
		if _, isLit := x.(*ast.FuncLit); isLit {
			litDepth++
		}
		if found {
			return true // keep traversal (and the stack) balanced
		}
		id, isIdent := x.(*ast.Ident)
		if !isIdent || info.Uses[id] != obj {
			return true
		}
		if litDepth > 0 {
			found = true // captured by a closure: the closure owns it now
			return true
		}
		if len(stack) >= 2 {
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				if parent.X == id {
					// Field access or method call through the value. A method
					// whose summary releases, stores or returns its receiver
					// discharges; everything else is a plain use.
					if prog != nil && len(stack) >= 3 {
						if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == parent {
							if cs := prog.callSummary(info, call); cs != nil {
								if slot := cs.recvSlot(); slot >= 0 && !cs.Params[slot].borrows() {
									found = true
								}
							}
						}
					}
					return true
				}
			case *ast.StarExpr:
				if parent.X == id {
					return true // dereference: plain use
				}
			case *ast.CallExpr:
				if parent.Fun == id {
					found = true // invoked: discharges a callable obligation
					return true
				}
				if prog != nil {
					for i, a := range parent.Args {
						if a != id {
							continue
						}
						f := prog.argUseFacts(info, parent, i)
						// A known pure borrow (len, a read-only helper) keeps
						// the obligation here; anything else moves it.
						found = !f.borrows()
						return true
					}
				}
				found = true
				return true
			}
		}
		found = true
		return true
	})
	return found
}
