package lint

import (
	"go/ast"
	"go/types"
)

// NewPoolpair builds the poolpair analyzer for the buffer package at the
// given import path: in non-test code, a value obtained from
// buffer.GetChunk or a sync.Pool's Get must, on every path to the
// function's normal exit, either be returned to its pool (PutChunk /
// Put) or visibly change owner — returned, stored into a field, slice,
// map or channel, passed to another call, or captured by a closure. A
// path that drops the value on the floor un-recycles it: the steady-state
// 0 allocs/op of the PR-3 hot loops holds only while every Get has a
// matching Put, and a leak here shows up as allocation growth no unit
// test pins until the benchmark regresses.
//
// Field reads and writes through the value (c.Recs, c.FirstPage = …) are
// plain uses, not ownership transfers; only the bare value moving
// somewhere else discharges the obligation. Panic/Fatal paths are exempt,
// and the analyzer skips test files entirely — fixtures churn pools in
// ways production code must not.
func NewPoolpair(bufferPath string) *Analyzer {
	pp := &poolpair{bufferPath: bufferPath}
	return &Analyzer{
		Name: "poolpair",
		Doc:  "buffer.GetChunk/PutChunk and sync.Pool Get/Put must pair on every path in non-test code",
		Run:  pp.run,
	}
}

type poolpair struct {
	bufferPath string
}

func (pp *poolpair) run(pass *Pass) {
	if pathWithin(pass.Pkg.Path, pp.bufferPath) {
		return // the pool's own package defines the lifecycle
	}
	info := pass.Pkg.Info
	for i, file := range pass.Pkg.Files {
		if pass.Pkg.IsTest[i] {
			continue
		}
		funcBodies(file, func(body *ast.BlockStmt) {
			var sites []*ast.AssignStmt
			topLevelStmts(body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && pp.getKind(info, as) != "" {
					sites = append(sites, as)
				}
				return true
			})
			if len(sites) == 0 {
				return
			}
			g := buildCFG(body, info)
			for _, as := range sites {
				pp.checkSite(pass, g, as)
			}
		})
	}
}

// getKind classifies as: "GetChunk" for buffer.GetChunk, "Get" for a
// sync.Pool Get, "" otherwise. Only single-value assignments to a plain
// identifier create an obligation this analyzer tracks.
func (pp *poolpair) getKind(info *types.Info, as *ast.AssignStmt) string {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn, ok := funcFor(info, call)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if fn.Name() == "GetChunk" && pathWithin(fn.Pkg().Path(), pp.bufferPath) {
		return "GetChunk"
	}
	if fn.Name() == "Get" {
		if pkg, typ, isMethod := methodOn(fn); isMethod && pkg == "sync" && typ == "Pool" {
			return "Get"
		}
	}
	return ""
}

func (pp *poolpair) checkSite(pass *Pass, g *cfg, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	kind := pp.getKind(info, as)
	id, isIdent := as.Lhs[0].(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return // dropped or stored elsewhere immediately: not trackable here
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	discharged := func(n ast.Node) bool { return transfersOwnership(info, n, obj) }
	if g.mayReachExitWithout(as, discharged) {
		what := "chunk from buffer.GetChunk"
		putName := "buffer.PutChunk"
		if kind == "Get" {
			what = "value from sync.Pool Get"
			putName = "Put"
		}
		pass.Reportf(as.Pos(), "%s is not handed back via %s (or otherwise released) on every path to return", what, putName)
	}
}

// transfersOwnership reports whether node n uses obj *as a value* — bare,
// not through a field selector — in a position that moves ownership:
// argument of a call (Put and any other callee alike), return result,
// right-hand side of an assignment, composite literal element, channel
// send, or any appearance inside a function literal (the closure now owns
// it). `c.Recs` and `c.FirstPage = 0` are reads/writes through the value
// and transfer nothing.
func transfersOwnership(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	litDepth := 0
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, isLit := top.(*ast.FuncLit); isLit {
				litDepth--
			}
			return true
		}
		stack = append(stack, x)
		if _, isLit := x.(*ast.FuncLit); isLit {
			litDepth++
		}
		if found {
			return true // keep traversal (and the stack) balanced
		}
		id, isIdent := x.(*ast.Ident)
		if !isIdent || info.Uses[id] != obj {
			return true
		}
		if litDepth > 0 {
			found = true // captured by a closure: the closure owns it now
			return true
		}
		if len(stack) >= 2 {
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				if parent.X == id {
					return true // field access through the value: plain use
				}
			case *ast.StarExpr:
				if parent.X == id {
					return true // dereference: plain use
				}
			}
		}
		found = true
		return true
	})
	return found
}
