package lint

import (
	"go/ast"
	"go/types"
)

// This file is the control-flow substrate of the dataflow analyzers
// (cancelfree, poolpair, condguard). It lowers one function body into a
// conventional basic-block graph over the go/ast statement nodes — no
// SSA, no third-party dependency — precise enough to answer the two
// questions the rules ask: "can control reach the function's normal exit
// from here without passing a node for which pred holds?" (obligation
// analysis) and "which locks are definitely held at this statement?"
// (must-held analysis, dataflow.go).
//
// Panics and calls that never return (os.Exit, log.Fatal*, runtime.Goexit,
// testing's Fatal/Skip family) end their block without an exit edge: an
// obligation dropped on a panic path is not a leak the rules care about,
// matching how -race and the e2e leak checks would never observe it.

// cfgBlock is one basic block: statements (and guard expressions) in
// execution order, then unconditional transfer to one of succs.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is the control-flow graph of one function body. exit is the single
// synthetic normal-exit block: returns and falling off the end edge to
// it. Blocks whose control dies (panic, Goexit) simply have no
// successors.
type cfg struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
}

// loopFrame tracks the jump targets of one enclosing loop or switch.
type loopFrame struct {
	label        string    // of the enclosing LabeledStmt, or ""
	breakTarget  *cfgBlock // after the construct
	continueTgt  *cfgBlock // loop post/cond block; nil for switch/select
	isSwitchLike bool      // break applies, continue does not
}

type cfgBuilder struct {
	g      *cfg
	info   *types.Info
	frames []loopFrame
	labels map[string]*cfgBlock // goto targets
	gotos  []gotoPatch
}

type gotoPatch struct {
	from  *cfgBlock
	label string
}

// buildCFG lowers body to a cfg. info drives the detection of calls that
// never return; it may be nil (every call is then assumed to return).
func buildCFG(body *ast.BlockStmt, info *types.Info) *cfg {
	b := &cfgBuilder{
		g:      &cfg{},
		info:   info,
		labels: map[string]*cfgBlock{},
	}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	last := b.stmts(body.List, b.g.entry, "")
	if last != nil {
		b.link(last, b.g.exit)
	}
	for _, p := range b.gotos {
		if tgt, ok := b.labels[p.label]; ok {
			b.link(p.from, tgt)
		}
		// An unresolved goto (malformed source) leaves the block dead-ended,
		// which is the conservative choice for obligation analysis.
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// stmts lowers a statement list starting in cur and returns the block
// holding the fallthrough end of the list, or nil when control cannot
// reach past it. label names the LabeledStmt directly wrapping the next
// loop/switch statement, so labeled break/continue resolve.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator; lower it anyway (it may
			// hold labels gotos jump to) starting from a fresh dead block.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, label)
		label = ""
	}
	return cur
}

// stmt lowers one statement and returns the block control falls into
// afterwards (nil if control never falls through).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		tgt := b.newBlock()
		b.link(cur, tgt)
		b.labels[st.Label.Name] = tgt
		return b.stmt(st.Stmt, tgt, st.Label.Name)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, st)
		b.link(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, st)
		switch st.Tok.String() {
		case "break":
			if tgt := b.findBreak(st.Label); tgt != nil {
				b.link(cur, tgt)
			}
		case "continue":
			if tgt := b.findContinue(st.Label); tgt != nil {
				b.link(cur, tgt)
			}
		case "goto":
			if st.Label != nil {
				b.gotos = append(b.gotos, gotoPatch{from: cur, label: st.Label.Name})
			}
		case "fallthrough":
			// Handled by the switch lowering (the clause end links to the
			// next clause body); nothing to do here.
			return cur
		}
		return nil

	case *ast.BlockStmt:
		return b.stmts(st.List, cur, "")

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		cur.nodes = append(cur.nodes, st.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		b.link(cur, thenB)
		if end := b.stmts(st.Body.List, thenB, ""); end != nil {
			b.link(end, after)
		}
		if st.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB)
			if end := b.stmt(st.Else, elseB, ""); end != nil {
				b.link(end, after)
			}
		} else {
			b.link(cur, after)
		}
		return after

	case *ast.ForStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.link(cur, head)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
			b.link(head, after) // condition false
		}
		b.link(head, body)
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTgt: post})
		end := b.stmts(st.Body.List, body, "")
		b.frames = b.frames[:len(b.frames)-1]
		if end != nil {
			b.link(end, post)
		}
		if st.Post != nil {
			b.stmt(st.Post, post, "")
		}
		b.link(post, head)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		cur.nodes = append(cur.nodes, st.X)
		b.link(cur, head)
		b.link(head, body)
		b.link(head, after) // range exhausted
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTgt: head})
		end := b.stmts(st.Body.List, body, "")
		b.frames = b.frames[:len(b.frames)-1]
		if end != nil {
			b.link(end, head)
		}
		return after

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		if st.Tag != nil {
			cur.nodes = append(cur.nodes, st.Tag)
		}
		return b.switchBody(st.Body, cur, label, true)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur, "")
		}
		cur.nodes = append(cur.nodes, st.Assign)
		return b.switchBody(st.Body, cur, label, true)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, isSwitchLike: true})
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.link(cur, blk)
			if cc.Comm != nil {
				blk = b.stmt(cc.Comm, blk, "")
			}
			if end := b.stmts(cc.Body, blk, ""); end != nil {
				b.link(end, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(st.Body.List) == 0 {
			// Empty select blocks forever: no successor.
			return nil
		}
		return after

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, st)
		if call, ok := st.X.(*ast.CallExpr); ok && b.neverReturns(call) {
			return nil
		}
		return cur

	default:
		// Assignments, declarations, sends, defers, go statements, inc/dec,
		// empty statements: straight-line nodes.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchBody lowers the clause list of a switch/type-switch. A missing
// default adds a direct edge to after (no clause matched).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, cur *cfgBlock, label string, hasDefaultEdge bool) *cfgBlock {
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, isSwitchLike: true})
	hasDefault := false
	// Lower clause bodies first so fallthrough can link to the next one.
	clauseBlocks := make([]*cfgBlock, 0, len(body.List))
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.link(cur, blk)
		for _, e := range cc.List {
			blk.nodes = append(blk.nodes, e)
		}
		clauseBlocks = append(clauseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		end := b.stmts(cc.Body, clauseBlocks[i], "")
		if end == nil {
			continue
		}
		if fallsThrough(cc.Body) && i+1 < len(clauseBlocks) {
			b.link(end, clauseBlocks[i+1])
		} else {
			b.link(end, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if hasDefaultEdge && !hasDefault {
		b.link(cur, after)
	}
	return after
}

// fallsThrough reports whether the clause body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func (b *cfgBuilder) findBreak(label *ast.Ident) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == nil || f.label == label.Name {
			return f.breakTarget
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label *ast.Ident) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.isSwitchLike || f.continueTgt == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f.continueTgt
		}
	}
	return nil
}

// neverReturns reports whether call is a statically known no-return call:
// the builtin panic, runtime.Goexit, os.Exit, the log.Fatal family, or a
// testing Fatal/Skip method.
func (b *cfgBuilder) neverReturns(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	if isPanic(b.info, call) {
		return true
	}
	fn, ok := funcFor(b.info, call)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "runtime":
		return fn.Name() == "Goexit"
	case "os":
		return fn.Name() == "Exit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
