package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"github.com/optlab/opt/internal/lint"
)

// TestWriteSARIF pins the subset of SARIF 2.1.0 that GitHub code scanning
// ingests: version, one run, a rule descriptor per analyzer (findings
// reference rules by index), and per-result physical locations with
// 1-based lines and columns.
func TestWriteSARIF(t *testing.T) {
	analyzers := lint.Default("github.com/optlab/opt")
	findings := []lint.Finding{
		{
			Pos:     token.Position{Filename: "internal/ssd/async.go", Line: 338, Column: 2},
			Rule:    "condguard",
			Message: "sync.Cond.Signal without holding a mutex",
		},
		{
			Pos:     token.Position{Filename: "internal/server/manager.go", Line: 12, Column: 1},
			Rule:    lint.SuppressRule,
			Message: "unused optlint:ignore gojoin directive",
		},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, analyzers, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "optlint" {
		t.Errorf("driver name = %q, want optlint", run.Tool.Driver.Name)
	}
	// Every default analyzer plus the suppression pseudo-rule has a
	// descriptor, and every result's ruleIndex points at its own rule.
	if want := len(analyzers) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("%d rule descriptors, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("%d results, want %d", len(run.Results), len(findings))
	}
	for i, r := range run.Results {
		if r.RuleID != findings[i].Rule || r.Level != "error" {
			t.Errorf("result %d: ruleId=%q level=%q", i, r.RuleID, r.Level)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d does not resolve to %q", i, r.RuleIndex, r.RuleID)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != findings[i].Pos.Filename {
			t.Errorf("result %d: uri = %q, want %q", i, loc.ArtifactLocation.URI, findings[i].Pos.Filename)
		}
		if loc.Region.StartLine != findings[i].Pos.Line || loc.Region.StartColumn != findings[i].Pos.Column {
			t.Errorf("result %d: region %d:%d, want %d:%d", i,
				loc.Region.StartLine, loc.Region.StartColumn, findings[i].Pos.Line, findings[i].Pos.Column)
		}
	}
}
