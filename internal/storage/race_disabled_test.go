//go:build !race

package storage

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
