package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
)

// edgeSlice is a trivial re-iterable EdgeScanner.
type edgeSlice [][2]uint32

func (e edgeSlice) Scan(fn func(u, v uint32) error) error {
	for _, p := range e {
		if err := fn(p[0], p[1]); err != nil {
			return err
		}
	}
	return nil
}

// TestStreamingEquivalentToInMemory: for random graphs, the streaming
// builder (with spills forced) must produce a store that decodes to
// exactly the same graph as the in-memory builder on the degree-ordered
// input.
func TestStreamingEquivalentToInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		n := 40 + rng.Intn(200)
		var edges edgeSlice
		for i := 0; i < n*6; i++ {
			edges = append(edges, [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
		}
		// Reference: in-memory build on the degree-ordered graph.
		b := graph.NewBuilder(n)
		for _, e := range edges {
			_ = b.AddEdge(e[0], e[1])
		}
		og, _ := graph.DegreeOrder(b.Build())

		dir := t.TempDir()
		streamed, err := BuildFileStreaming(filepath.Join(dir, "s.optstore"), edges, StreamBuildOptions{
			PageSize: 128, TempDir: dir, RunSize: 64, DegreeOrder: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if streamed.NumVertices != og.NumVertices() || streamed.NumEdges != og.NumEdges() {
			t.Fatalf("trial %d: streamed |V|=%d |E|=%d, want |V|=%d |E|=%d",
				trial, streamed.NumVertices, streamed.NumEdges, og.NumVertices(), og.NumEdges())
		}
		// The streaming builder's ordering heuristic counts duplicate input
		// edges, so its permutation can differ from graph.DegreeOrder's —
		// both are valid relabelings. Compare label-invariant properties:
		// degree multiset and triangle count, plus full integrity.
		re := mustReopen(t, streamed)
		got := decodeToGraph(t, re)
		if gd, wd := degreeMultiset(got), degreeMultiset(og); !reflect.DeepEqual(gd, wd) {
			t.Fatalf("trial %d: degree multisets differ", trial)
		}
		if gt, wt := graph.CountTrianglesReference(got), graph.CountTrianglesReference(og); gt != wt {
			t.Fatalf("trial %d: triangles %d, want %d", trial, gt, wt)
		}
		dev, err := re.Device()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(re, dev); err != nil {
			_ = dev.Close()
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := dev.Close(); err != nil {
			t.Fatalf("trial %d: closing device: %v", trial, err)
		}
	}
}

// decodeToGraph reads the whole store back into a graph.
func decodeToGraph(t *testing.T, s *Store) *graph.Graph {
	t.Helper()
	adj := readAll(t, s)
	b := graph.NewBuilder(s.NumVertices)
	for v, ns := range adj {
		for _, w := range ns {
			if v < w {
				_ = b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// degreeMultiset returns the sorted degree sequence.
func degreeMultiset(g *graph.Graph) []int {
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = g.Degree(graph.VertexID(v))
	}
	sort.Ints(out)
	return out
}

func mustReopen(t *testing.T, s *Store) *Store {
	t.Helper()
	re, err := Open(s.Path)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

func TestStreamingVerifyPasses(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 91))
	if err != nil {
		t.Fatal(err)
	}
	var edges edgeSlice
	raw.Edges(func(u, v graph.VertexID) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	dir := t.TempDir()
	s, err := BuildFileStreaming(filepath.Join(dir, "s.optstore"), edges, StreamBuildOptions{
		PageSize: 256, TempDir: dir, RunSize: 500, DegreeOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	rep, err := Verify(s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges != raw.NumEdges() {
		t.Fatalf("edges = %d, want %d", rep.Edges, raw.NumEdges())
	}
}

func TestStreamingHandlesJunkInput(t *testing.T) {
	// Self-loops, duplicates, isolated gap vertices, reversed duplicates.
	edges := edgeSlice{
		{3, 3},         // self-loop
		{0, 5}, {5, 0}, // duplicate both ways
		{0, 5}, // duplicate again
		{7, 9}, // gap: vertices 1,2,4,6,8 isolated
	}
	dir := t.TempDir()
	s, err := BuildFileStreaming(filepath.Join(dir, "s.optstore"), edges, StreamBuildOptions{
		PageSize: 64, TempDir: dir, DegreeOrder: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices != 10 || s.NumEdges != 2 {
		t.Fatalf("|V|=%d |E|=%d, want 10, 2", s.NumVertices, s.NumEdges)
	}
	for _, v := range []uint32{1, 2, 3, 4, 6, 8} {
		if s.DegreeOf(v) != 0 {
			t.Fatalf("vertex %d degree %d, want 0", v, s.DegreeOf(v))
		}
	}
	if s.DegreeOf(0) != 1 || s.DegreeOf(5) != 1 || s.DegreeOf(7) != 1 || s.DegreeOf(9) != 1 {
		t.Fatal("edge degrees wrong")
	}
}

func TestStreamingEmptyInput(t *testing.T) {
	if _, err := BuildFileStreaming(filepath.Join(t.TempDir(), "x"), edgeSlice{}, StreamBuildOptions{}); err == nil {
		t.Fatal("empty stream: want error")
	}
}

func TestEdgeListFileScanner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")
	content := "# header\n1 2\n  2\t3\n% comment\n\n3 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := EdgeListFileScanner{Path: path}
	var got [][2]uint32
	if err := sc.Scan(func(u, v uint32) error {
		got = append(got, [2]uint32{u, v})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := [][2]uint32{{1, 2}, {2, 3}, {3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scanned %v, want %v", got, want)
	}

	// Streaming build from the file end to end.
	dir := t.TempDir()
	s, err := BuildFileStreaming(filepath.Join(dir, "g.optstore"), sc, StreamBuildOptions{
		PageSize: 64, TempDir: dir, DegreeOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEdges != 3 || s.NumVertices != 4 { // ids 0..3, vertex 0 isolated
		t.Fatalf("|V|=%d |E|=%d", s.NumVertices, s.NumEdges)
	}

	// Malformed inputs error.
	bad := filepath.Join(t.TempDir(), "bad.el")
	if err := os.WriteFile(bad, []byte("1 x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := (EdgeListFileScanner{Path: bad}).Scan(func(u, v uint32) error { return nil }); err == nil {
		t.Fatal("malformed line: want error")
	}
	if err := (EdgeListFileScanner{Path: "/nonexistent"}).Scan(func(u, v uint32) error { return nil }); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestParseUint32(t *testing.T) {
	if _, _, err := parseUint32("99999999999"); err == nil {
		t.Fatal("overflow: want error")
	}
	x, rest, err := parseUint32("  42 7")
	if err != nil || x != 42 || rest != " 7" {
		t.Fatalf("parseUint32 = %d, %q, %v", x, rest, err)
	}
}

// TestStreamingTriangleCounts: the full pipeline — streaming build then
// OPT triangulation — must agree with the in-memory count.
func TestStreamingTriangleCounts(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 101))
	if err != nil {
		t.Fatal(err)
	}
	want := graph.CountTrianglesReference(raw)
	var edges edgeSlice
	raw.Edges(func(u, v graph.VertexID) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	dir := t.TempDir()
	s, err := BuildFileStreaming(filepath.Join(dir, "s.optstore"), edges, StreamBuildOptions{
		PageSize: 128, TempDir: dir, RunSize: 300, DegreeOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count triangles straight off the store pages.
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	data, err := dev.ReadPages(0, int(s.NumPages))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(s.NumVertices)
	for _, r := range recs {
		for _, w := range r.Adj {
			if r.ID < w {
				_ = b.AddEdge(r.ID, w)
			}
		}
	}
	if got := graph.CountTrianglesReference(b.Build()); got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}
