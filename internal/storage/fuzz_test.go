package storage

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/optlab/opt/internal/graph"
)

// FuzzDecodeRange feeds arbitrary bytes to the page decoder: it must never
// panic, only return records or an error.
func FuzzDecodeRange(f *testing.F) {
	// Seed with a real encoded store's pages.
	g := graph.PaperExample()
	path := filepath.Join(f.TempDir(), "g.optstore")
	s, err := BuildFile(path, g, 64)
	if err != nil {
		f.Fatal(err)
	}
	dev, err := s.Device()
	if err != nil {
		f.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	data, err := dev.ReadPages(0, int(s.NumPages))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data, 64)
	f.Add(data[:64], 64)
	f.Add([]byte{}, 64)
	f.Add(make([]byte, 128), 64)

	f.Fuzz(func(t *testing.T, raw []byte, pageSize int) {
		if pageSize < MinPageSize || pageSize > 1<<16 {
			pageSize = 64
		}
		// Trim to page alignment as the contract requires; unaligned input
		// must error, which we also exercise.
		recs, err := DecodeRange(pageSize, raw)
		if err != nil {
			return
		}
		for _, r := range recs {
			_ = r.ID
			_ = len(r.Adj)
		}
	})
}

// FuzzOpenStore feeds arbitrary bytes as a store file: Open must reject or
// parse without panicking, and a successful Open must expose a consistent
// directory.
func FuzzOpenStore(f *testing.F) {
	g := graph.PaperExample()
	path := filepath.Join(f.TempDir(), "g.optstore")
	if _, err := BuildFile(path, g, 64); err != nil {
		f.Fatal(err)
	}
	valid, err := readFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:40])
	f.Add([]byte("OPTSTOR1garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.optstore")
		if err := writeFile(p, raw); err != nil {
			t.Skip()
		}
		s, err := Open(p)
		if err != nil {
			return
		}
		// A store that opened must at least have internally consistent
		// directory sizes.
		for v := 0; v < s.NumVertices && v < 1000; v++ {
			_ = s.FirstPageOf(uint32(v))
			_ = s.DegreeOf(uint32(v))
			_ = s.SpanOf(uint32(v))
		}
	})
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
