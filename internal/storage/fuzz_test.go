package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/optlab/opt/internal/graph"
)

// fuzzCodec maps a fuzzer-chosen byte onto a registered codec.
func fuzzCodec(sel byte) Codec {
	return codecsByID[int(sel)%len(codecsByID)]
}

// FuzzDecodeRange feeds arbitrary bytes to the page decoder under both
// codecs: it must never panic, only return records or an error.
func FuzzDecodeRange(f *testing.F) {
	// Seed with real encoded pages from each codec.
	g := graph.PaperExample()
	for i, codec := range []string{CodecRaw, CodecDeltaVarint} {
		path := filepath.Join(f.TempDir(), "g.optstore")
		s, err := BuildFileCodec(path, g, 64, codec)
		if err != nil {
			f.Fatal(err)
		}
		dev, err := s.Device()
		if err != nil {
			f.Fatal(err)
		}
		data, err := dev.ReadPages(0, int(s.NumPages))
		_ = dev.Close()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, 64, byte(i))
		f.Add(data[:64], 64, byte(i))
	}
	f.Add([]byte{}, 64, byte(0))
	f.Add(make([]byte, 128), 64, byte(1))

	f.Fuzz(func(t *testing.T, raw []byte, pageSize int, sel byte) {
		if pageSize < MinPageSize || pageSize > 1<<16 {
			pageSize = 64
		}
		c := fuzzCodec(sel)
		recs, err := DecodeRange(c, pageSize, raw)
		if err != nil {
			return
		}
		for _, r := range recs {
			_ = r.ID
			_ = len(r.Adj)
		}
	})
}

// FuzzCodecRoundTrip drives arbitrary adjacency lists through the page
// writer and decoder of both codecs at a fuzzer-chosen page size: encode
// followed by decode must reproduce the records exactly (the deltavarint
// wraparound arithmetic is total, so even unsorted lists round-trip).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, 64)
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 255, 255, 255, 255}, MinPageSize)
	f.Add([]byte{9, 9, 9, 9, 1, 1, 1, 1}, 4096)

	f.Fuzz(func(t *testing.T, raw []byte, pageSize int) {
		var adj []uint32
		for len(raw) >= 4 {
			adj = append(adj, binary.LittleEndian.Uint32(raw))
			raw = raw[4:]
		}
		// Two records exercise both slotted sharing and run splitting.
		recs := []VertexRec{
			{ID: 7, Adj: adj[:len(adj)/2]},
			{ID: 8, Adj: adj[len(adj)/2:]},
		}
		for _, c := range codecsByID {
			ps := pageSize
			if min := MinPageSizeFor(c); ps < min || ps > 1<<13 {
				ps = min
			}
			w := newPageWriter(ps, c)
			for _, r := range recs {
				w.appendRecord(r.ID, r.Adj)
			}
			pages, _ := w.finish()
			var data []byte
			for _, p := range pages {
				data = append(data, p...)
			}
			got, err := DecodeRange(c, ps, data)
			if err != nil {
				t.Fatalf("%s: decode of freshly encoded pages: %v", c.Name(), err)
			}
			if len(got) != len(recs) {
				t.Fatalf("%s: decoded %d records, want %d", c.Name(), len(got), len(recs))
			}
			for i, r := range recs {
				if got[i].ID != r.ID || !reflect.DeepEqual(append([]uint32{}, got[i].Adj...), append([]uint32{}, r.Adj...)) {
					t.Fatalf("%s: record %d: got (%d, %v), want (%d, %v)",
						c.Name(), i, got[i].ID, got[i].Adj, r.ID, r.Adj)
				}
			}
		}
	})
}

// FuzzOpenStore feeds arbitrary bytes as a store file: Open must reject or
// parse without panicking, and a successful Open must expose a consistent
// directory.
func FuzzOpenStore(f *testing.F) {
	g := graph.PaperExample()
	for _, codec := range []string{CodecRaw, CodecDeltaVarint} {
		path := filepath.Join(f.TempDir(), "g.optstore")
		if _, err := BuildFileCodec(path, g, 64, codec); err != nil {
			f.Fatal(err)
		}
		valid, err := readFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(valid)
		f.Add(valid[:40])
	}
	f.Add([]byte("OPTSTOR1garbage"))
	f.Add([]byte("OPTSTOR2garbage"))
	f.Add([]byte("OPTSTOR9garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.optstore")
		if err := writeFile(p, raw); err != nil {
			t.Skip()
		}
		s, err := Open(p)
		if err != nil {
			return
		}
		// A store that opened must at least have internally consistent
		// directory sizes.
		for v := 0; v < s.NumVertices && v < 1000; v++ {
			_ = s.FirstPageOf(uint32(v))
			_ = s.DegreeOf(uint32(v))
			_ = s.SpanOf(uint32(v))
		}
	})
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
