package storage

import (
	"os"
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
)

func TestVerifyCleanStores(t *testing.T) {
	raw, err := gen.RMAT(gen.DefaultRMAT(1<<10, 10_000, 61))
	if err != nil {
		t.Fatal(err)
	}
	ordered, _ := graph.DegreeOrder(raw)
	for name, g := range map[string]*graph.Graph{
		"paper": graph.PaperExample(),
		"rmat":  ordered,
		"star":  graph.Star(300), // multi-page runs
		"k30":   graph.Complete(30),
	} {
		for _, ps := range []int{64, 256} {
			s := buildAndOpen(t, g, ps)
			dev, err := s.Device()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Verify(s, dev)
			if cerr := dev.Close(); cerr != nil {
				t.Fatalf("%s/ps=%d: closing device: %v", name, ps, cerr)
			}
			if err != nil {
				t.Fatalf("%s/ps=%d: %v", name, ps, err)
			}
			if rep.Edges != g.NumEdges() || rep.Vertices != g.NumVertices() {
				t.Fatalf("%s/ps=%d: report %+v", name, ps, rep)
			}
			if rep.Asymmetric != 0 || rep.UnsortedRecs != 0 {
				t.Fatalf("%s/ps=%d: clean store flagged: %+v", name, ps, rep)
			}
			if rep.MaxDegree != g.MaxDegree() {
				t.Fatalf("%s/ps=%d: MaxDegree = %d, want %d", name, ps, rep.MaxDegree, g.MaxDegree())
			}
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g := graph.PaperExample()
	s := buildAndOpen(t, g, 64)

	// Flip bytes in the data region and expect Verify to object.
	f, err := os.OpenFile(s.Path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record's first neighbor: page 0 starts at
	// size − NumPages·pageSize; the neighbor sits after the 8-byte page
	// header and the 8-byte record header.
	dataStart := st.Size() - int64(s.NumPages)*int64(s.PageSize)
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, dataStart+16); err != nil {
		t.Fatal(err)
	}

	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	if _, err := Verify(s, dev); err == nil {
		t.Fatal("Verify accepted a corrupted store")
	}
}

func TestVerifyDetectsHeaderMismatch(t *testing.T) {
	g := graph.PaperExample()
	s := buildAndOpen(t, g, 64)
	s.NumEdges++ // simulate a header lying about the edge count
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	if _, err := Verify(s, dev); err == nil {
		t.Fatal("Verify accepted an edge-count mismatch")
	}
}
