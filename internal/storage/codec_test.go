package storage

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
)

func TestCodecRegistry(t *testing.T) {
	for i, name := range Codecs() {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if int(c.ID()) != i {
			t.Fatalf("codec %s: id %d at registry slot %d", name, c.ID(), i)
		}
	}
	if c, err := CodecByName(""); err != nil || c.Name() != CodecRaw {
		t.Fatalf("empty name: (%v, %v), want raw", c, err)
	}
	if _, err := CodecByName("zstd"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown name err = %v, want ErrUnknownCodec", err)
	}
	if _, err := codecByID(99); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown id err = %v, want ErrUnknownCodec", err)
	}
}

func TestBuildFileCodecValidation(t *testing.T) {
	g := graph.PaperExample()
	dir := t.TempDir()
	if _, err := BuildFileCodec(filepath.Join(dir, "x"), g, 128, "zstd"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown codec err = %v, want ErrUnknownCodec", err)
	}
	// deltavarint needs one extra byte over the raw minimum page.
	if _, err := BuildFileCodec(filepath.Join(dir, "y"), g, MinPageSize, CodecDeltaVarint); err == nil {
		t.Fatal("deltavarint at raw minimum page size: want error")
	}
	dv, err := CodecByName(CodecDeltaVarint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFileCodec(filepath.Join(dir, "z"), g, MinPageSizeFor(dv), CodecDeltaVarint); err != nil {
		t.Fatalf("deltavarint at its minimum page size: %v", err)
	}
}

// rewriteHeaderV1 turns a raw-codec v2 store file into the v1 layout: the
// pages are bit-identical, only the header magic/version differ (v1 kept
// the codec bytes zero).
func rewriteHeaderV1(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[0:8], storeMagicV1)
	binary.LittleEndian.PutUint32(data[8:], storeVersionV1)
	binary.LittleEndian.PutUint16(data[48:], 0)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenV1Store(t *testing.T) {
	g := graph.PaperExample()
	path := filepath.Join(t.TempDir(), "v1.optstore")
	if _, err := BuildFileCodec(path, g, 64, CodecRaw); err != nil {
		t.Fatal(err)
	}
	rewriteHeaderV1(t, path)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("opening v1 store: %v", err)
	}
	if s.Version() != storeVersionV1 || s.CodecName() != CodecRaw {
		t.Fatalf("v1 store reports v%d/%s, want v1/raw", s.Version(), s.CodecName())
	}
	verifyMatchesGraph(t, g, s)
}

func TestOpenRejectsUnknownVersionAndCodec(t *testing.T) {
	g := graph.PaperExample()
	dir := t.TempDir()
	build := func(name string) ([]byte, string) {
		t.Helper()
		p := filepath.Join(dir, name)
		if _, err := BuildFileCodec(p, g, 64, CodecRaw); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return data, p
	}

	data, p := build("badmagic")
	copy(data[0:8], "OPTSTOR9")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("future magic err = %v, want ErrUnknownVersion", err)
	}

	data, p = build("badversion")
	binary.LittleEndian.PutUint32(data[8:], 7)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("v2 magic with version 7 err = %v, want ErrUnknownVersion", err)
	}

	data, p = build("badcodec")
	binary.LittleEndian.PutUint16(data[48:], 99)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("codec id 99 err = %v, want ErrUnknownCodec", err)
	}
}

// TestDeltaVarintShrinksPowerLawStore pins the acceptance criterion: on the
// power-law kernels workload the deltavarint codec must shrink P(G) by at
// least 25% relative to raw.
func TestDeltaVarintShrinksPowerLawStore(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(1<<10, 12_000, 42))
	if err != nil {
		t.Fatal(err)
	}
	og, _ := graph.DegreeOrder(g)
	dir := t.TempDir()
	raw, err := BuildFileCodec(filepath.Join(dir, "raw"), og, 1024, CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := BuildFileCodec(filepath.Join(dir, "dv"), og, 1024, CodecDeltaVarint)
	if err != nil {
		t.Fatal(err)
	}
	if dv.NumPages == 0 || raw.NumPages == 0 {
		t.Fatal("empty store")
	}
	reduction := 1 - float64(dv.NumPages)/float64(raw.NumPages)
	t.Logf("P(G): raw %d pages, deltavarint %d pages, reduction %.1f%%",
		raw.NumPages, dv.NumPages, 100*reduction)
	if reduction < 0.25 {
		t.Fatalf("deltavarint reduced P(G) by %.1f%%, want >= 25%%", 100*reduction)
	}
	// The raw-packing simulation must agree exactly with the raw writer.
	if got := raw.RawDataPages(); got != int64(raw.NumPages) {
		t.Fatalf("RawDataPages() = %d on a raw store with %d pages", got, raw.NumPages)
	}
	if got := dv.RawDataPages(); got != int64(raw.NumPages) {
		t.Fatalf("RawDataPages() on dv store = %d, want %d", got, raw.NumPages)
	}
}

// TestDecodeSteadyStateAllocs pins the decode hot path at zero allocations
// per operation once the record and arena slices are warm, for both codecs.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	g, err := gen.RMAT(gen.DefaultRMAT(512, 6000, 11))
	if err != nil {
		t.Fatal(err)
	}
	og, _ := graph.DegreeOrder(g)
	for _, codec := range codecNames {
		t.Run(codec, func(t *testing.T) {
			s := buildAndOpenCodec(t, og, 128, codec)
			dev, err := s.Device()
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = dev.Close() }()
			data, err := dev.ReadPages(0, int(s.NumPages))
			if err != nil {
				t.Fatal(err)
			}
			var recs []VertexRec
			var arena []uint32
			// Warm pass grows both slices to their steady-state capacity.
			recs, arena, err = s.DecodeAppend(recs[:0], arena[:0], data)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				var derr error
				recs, arena, derr = s.DecodeAppend(recs[:0], arena[:0], data)
				if derr != nil {
					t.Fatal(derr)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state decode allocates %.1f per run, want 0", allocs)
			}
			if len(recs) != s.NumVertices {
				t.Fatalf("decoded %d records, want %d", len(recs), s.NumVertices)
			}
		})
	}
}
