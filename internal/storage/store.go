package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
)

// Store file layout (v2):
//
//	header (64 bytes): magic "OPTSTOR2", version, pageSize, numVertices,
//	                   numPages, numEdges, dirOffset, dataOffset, codec id
//	vertex directory:  numVertices × (firstPage uint32, degree uint32)
//	page directory:    numPages × (firstRecord uint32; NoRecord for
//	                   continuation pages)
//	padding:           zero bytes up to the next ssd.DirectAlign boundary,
//	                   so the data region is O_DIRECT-eligible
//	data pages:        numPages × pageSize
//
// dataOffset in the header is authoritative; readers accept both padded
// files and the unpadded layout older writers produced. v1 files
// ("OPTSTOR1", no codec field) remain readable: their pages are
// bit-identical to v2 pages under the raw codec.
const (
	storeMagicV1   = "OPTSTOR1"
	storeMagicV2   = "OPTSTOR2"
	storeMagicStem = "OPTSTOR"
	headerSize     = 64
	storeVersionV1 = 1
	storeVersionV2 = 2
)

// DefaultPageSize is used when BuildFile is given a page size of 0.
const DefaultPageSize = 8192

// Store describes an on-disk slotted-page graph. The vertex and page
// directories are memory resident (8 bytes and 4 bytes per entry), as in
// the paper's implementation; the data pages are read through an
// ssd.PageDevice.
type Store struct {
	Path        string
	PageSize    int
	NumVertices int
	NumEdges    int64
	NumPages    uint32
	version     int
	codec       Codec
	dataOffset  int64
	firstPage   []uint32 // vertex id -> first data page of its record
	degree      []uint32 // vertex id -> |n(v)|
	pageFirst   []uint32 // page id -> first record starting there, or NoRecord
}

// Version returns the store file format version (1 or 2); a zero-value
// Store reports the current version.
func (s *Store) Version() int {
	if s.version == 0 {
		return storeVersionV2
	}
	return s.version
}

// CodecName returns the name of the page codec the store was built with; a
// zero-value Store reports raw.
func (s *Store) CodecName() string { return s.codecOrRaw().Name() }

func (s *Store) codecOrRaw() Codec {
	if s.codec == nil {
		return rawCodecInst
	}
	return s.codec
}

// BuildFile encodes g into a store file at path using the raw codec.
// Vertices are written in id order, so with a degree-ordered graph the
// storage order matches the ≺ order (see DESIGN.md). pageSize 0 selects
// DefaultPageSize.
func BuildFile(path string, g *graph.Graph, pageSize int) (*Store, error) {
	return BuildFileCodec(path, g, pageSize, CodecRaw)
}

// BuildFileCodec is BuildFile with an explicit page codec name (see Codecs).
func BuildFileCodec(path string, g *graph.Graph, pageSize int, codecName string) (*Store, error) {
	codec, err := CodecByName(codecName)
	if err != nil {
		return nil, err
	}
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if min := MinPageSizeFor(codec); pageSize < min {
		return nil, fmt.Errorf("storage: page size %d below %s codec minimum %d", pageSize, codec.Name(), min)
	}
	w := newPageWriter(pageSize, codec)
	n := g.NumVertices()
	firstPage := make([]uint32, n)
	degree := make([]uint32, n)
	for v := 0; v < n; v++ {
		adj := g.Neighbors(graph.VertexID(v))
		// The record's start page is a write-time fact the writer reports;
		// with variable-width codecs it cannot be recomputed from degrees.
		firstPage[v] = w.appendRecord(uint32(v), adj)
		degree[v] = uint32(len(adj))
	}
	pages, pageFirst := w.finish()

	s := &Store{
		Path:        path,
		PageSize:    pageSize,
		NumVertices: n,
		NumEdges:    g.NumEdges(),
		NumPages:    uint32(len(pages)),
		version:     storeVersionV2,
		codec:       codec,
		firstPage:   firstPage,
		degree:      degree,
		pageFirst:   pageFirst,
	}
	// Round the data region up to the O_DIRECT alignment: with an aligned
	// page size this is what lets the native backend open the store
	// O_DIRECT instead of demoting to buffered reads (DESIGN.md §14).
	dirEnd := headerSize + int64(8*n) + int64(4*len(pages))
	s.dataOffset = (dirEnd + ssd.DirectAlign - 1) &^ int64(ssd.DirectAlign-1)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := s.writeHeader(bw); err != nil {
		return nil, err
	}
	if err := s.writeDirectories(bw); err != nil {
		return nil, err
	}
	if pad := s.dataOffset - dirEnd; pad > 0 {
		if _, err := bw.Write(make([]byte, pad)); err != nil {
			return nil, err
		}
	}
	for _, p := range pages {
		if _, err := bw.Write(p); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) writeHeader(w io.Writer) error {
	var h [headerSize]byte
	copy(h[0:8], storeMagicV2)
	binary.LittleEndian.PutUint32(h[8:], storeVersionV2)
	binary.LittleEndian.PutUint32(h[12:], uint32(s.PageSize))
	binary.LittleEndian.PutUint32(h[16:], uint32(s.NumVertices))
	binary.LittleEndian.PutUint32(h[20:], s.NumPages)
	binary.LittleEndian.PutUint64(h[24:], uint64(s.NumEdges))
	binary.LittleEndian.PutUint64(h[32:], uint64(headerSize))
	binary.LittleEndian.PutUint64(h[40:], uint64(s.dataOffset))
	binary.LittleEndian.PutUint16(h[48:], s.codecOrRaw().ID())
	_, err := w.Write(h[:])
	return err
}

func (s *Store) writeDirectories(w io.Writer) error {
	buf := make([]byte, 8*s.NumVertices)
	for v := 0; v < s.NumVertices; v++ {
		binary.LittleEndian.PutUint32(buf[8*v:], s.firstPage[v])
		binary.LittleEndian.PutUint32(buf[8*v+4:], s.degree[v])
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	pbuf := make([]byte, 4*len(s.pageFirst))
	for i, x := range s.pageFirst {
		binary.LittleEndian.PutUint32(pbuf[4*i:], x)
	}
	_, err := w.Write(pbuf)
	return err
}

// Open reads the directories of a store file built by BuildFile. Both v1
// ("OPTSTOR1", always raw pages) and v2 ("OPTSTOR2", codec id in the
// header) files are accepted; unknown versions and codec ids are rejected
// with ErrUnknownVersion / ErrUnknownCodec.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var h [headerSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return nil, fmt.Errorf("storage: reading header of %s: %w", path, err)
	}
	magic := string(h[0:8])
	version := binary.LittleEndian.Uint32(h[8:])
	var codec Codec
	switch magic {
	case storeMagicV1:
		if version != storeVersionV1 {
			return nil, fmt.Errorf("%w: %s: v1 magic with version field %d", ErrUnknownVersion, path, version)
		}
		codec = rawCodecInst
	case storeMagicV2:
		if version != storeVersionV2 {
			return nil, fmt.Errorf("%w: %s: v2 magic with version field %d", ErrUnknownVersion, path, version)
		}
		codec, err = codecByID(binary.LittleEndian.Uint16(h[48:]))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	default:
		if string(h[0:7]) == storeMagicStem {
			return nil, fmt.Errorf("%w: %s: magic %q", ErrUnknownVersion, path, magic)
		}
		return nil, fmt.Errorf("storage: %s is not a store file", path)
	}
	s := &Store{
		Path:        path,
		PageSize:    int(binary.LittleEndian.Uint32(h[12:])),
		NumVertices: int(binary.LittleEndian.Uint32(h[16:])),
		NumPages:    binary.LittleEndian.Uint32(h[20:]),
		NumEdges:    int64(binary.LittleEndian.Uint64(h[24:])),
		version:     int(version),
		codec:       codec,
		dataOffset:  int64(binary.LittleEndian.Uint64(h[40:])),
	}
	// Validate the header against the file size before allocating
	// directories, so a corrupt header cannot demand absurd memory.
	if s.PageSize < MinPageSize {
		return nil, fmt.Errorf("storage: %s: page size %d below minimum", path, s.PageSize)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	// dataOffset must cover the directories and may include up to one
	// DirectAlign round of padding (older writers wrote none).
	dirEnd := headerSize + int64(8)*int64(s.NumVertices) + int64(4)*int64(s.NumPages)
	if s.dataOffset < dirEnd || s.dataOffset >= dirEnd+ssd.DirectAlign {
		return nil, fmt.Errorf("storage: %s: data offset %d outside [%d, %d)", path, s.dataOffset, dirEnd, dirEnd+ssd.DirectAlign)
	}
	wantSize := s.dataOffset + int64(s.NumPages)*int64(s.PageSize)
	if fi.Size() < wantSize {
		return nil, fmt.Errorf("storage: %s: file is %d bytes, header implies %d", path, fi.Size(), wantSize)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	buf := make([]byte, 8*s.NumVertices)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("storage: reading vertex directory: %w", err)
	}
	s.firstPage = make([]uint32, s.NumVertices)
	s.degree = make([]uint32, s.NumVertices)
	for v := 0; v < s.NumVertices; v++ {
		s.firstPage[v] = binary.LittleEndian.Uint32(buf[8*v:])
		s.degree[v] = binary.LittleEndian.Uint32(buf[8*v+4:])
	}
	pbuf := make([]byte, 4*s.NumPages)
	if _, err := io.ReadFull(br, pbuf); err != nil {
		return nil, fmt.Errorf("storage: reading page directory: %w", err)
	}
	s.pageFirst = make([]uint32, s.NumPages)
	for i := range s.pageFirst {
		s.pageFirst[i] = binary.LittleEndian.Uint32(pbuf[4*i:])
	}
	return s, nil
}

// Device opens the store's data-page region as a read-only file device
// through the portable backend.
func (s *Store) Device() (*ssd.FileDevice, error) {
	return ssd.OpenFileDevice(s.Path, s.dataOffset, s.PageSize)
}

// DeviceBackend opens the store's data-page region through the selected
// ssd backend; the empty backend resolves like ssd.ParseBackend("").
func (s *Store) DeviceBackend(backend ssd.Backend) (ssd.PageDevice, error) {
	return ssd.OpenDeviceBackend(s.Path, s.dataOffset, s.PageSize, backend)
}

// FirstPageOf returns the data page where v's record starts.
func (s *Store) FirstPageOf(v graph.VertexID) uint32 { return s.firstPage[v] }

// DegreeOf returns |n(v)|.
func (s *Store) DegreeOf(v graph.VertexID) int { return int(s.degree[v]) }

// SpanOf returns the number of pages v's record occupies, derived from the
// page directory (with variable-width codecs the span is not a function of
// the degree). A directory pointing outside the store yields 0.
func (s *Store) SpanOf(v graph.VertexID) int {
	first := s.firstPage[v]
	if first >= s.NumPages {
		return 0
	}
	return s.AlignedRange(first, 1)
}

// StartsRecord reports whether a record begins in page pid (false for run
// continuation pages).
func (s *Store) StartsRecord(pid uint32) bool {
	return s.pageFirst[pid] != NoRecord
}

// FirstRecordOf returns the id of the first record starting in page pid,
// or NoRecord for continuation pages. For pid == NumPages it returns the
// number of vertices, so [FirstRecordOf(lo), FirstRecordOf(hi)) is the
// vertex range covered by the aligned page range [lo, hi).
func (s *Store) FirstRecordOf(pid uint32) uint32 {
	if pid >= s.NumPages {
		return uint32(s.NumVertices)
	}
	return s.pageFirst[pid]
}

// AlignedRange extends the page range [start, start+count) so it ends at a
// record boundary: the returned count includes any continuation pages of a
// run that begins inside the range. start itself must begin a record
// (callers iterate ranges produced by this method starting at page 0).
func (s *Store) AlignedRange(start uint32, count int) int {
	end := int64(start) + int64(count)
	if end > int64(s.NumPages) {
		end = int64(s.NumPages)
	}
	for end < int64(s.NumPages) && !s.StartsRecord(uint32(end)) {
		end++
	}
	return int(end - int64(start))
}

// Decode decodes a raw page span read from the device, where data begins at
// a page boundary, dispatching to the store's codec. See DecodeRange.
func (s *Store) Decode(data []byte) ([]VertexRec, error) {
	return DecodeRange(s.codecOrRaw(), s.PageSize, data)
}

// DecodeAppend is Decode appending records onto dst and neighbors onto
// arena; see DecodeRangeAppend.
func (s *Store) DecodeAppend(dst []VertexRec, arena []uint32, data []byte) ([]VertexRec, []uint32, error) {
	return DecodeRangeAppend(dst, arena, s.codecOrRaw(), s.PageSize, data)
}

// RawDataPages returns how many data pages the store's records would occupy
// under the raw codec at the same page size, simulated from the degree
// directory. optinfo reports the ratio NumPages/RawDataPages as the
// compression achieved by the store's codec.
func (s *Store) RawDataPages() int64 {
	nStart := (s.PageSize - pageHeaderSize - recHeaderSize) / 4
	nCont := (s.PageSize - pageHeaderSize) / 4
	var pages int64
	used := 0 // payload bytes used in the current shared page, 0 = no open page
	for _, d := range s.degree {
		recSize := recHeaderSize + 4*int(d)
		if recSize <= s.PageSize-pageHeaderSize {
			if used > 0 && pageHeaderSize+used+recSize > s.PageSize {
				pages++
				used = 0
			}
			used += recSize
			continue
		}
		if used > 0 {
			pages++
			used = 0
		}
		rest := int(d) - nStart
		pages += 1 + int64((rest+nCont-1)/nCont)
	}
	if used > 0 {
		pages++
	}
	return pages
}
