package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
)

// Store file layout:
//
//	header (64 bytes): magic, version, pageSize, numVertices, numPages,
//	                   numEdges, dirOffset, dataOffset
//	vertex directory:  numVertices × (firstPage uint32, degree uint32)
//	page directory:    numPages × (firstRecord uint32; NoRecord for
//	                   continuation pages)
//	data pages:        numPages × pageSize
const (
	storeMagic   = "OPTSTOR1"
	headerSize   = 64
	storeVersion = 1
)

// DefaultPageSize is used when BuildFile is given a page size of 0.
const DefaultPageSize = 8192

// Store describes an on-disk slotted-page graph. The vertex and page
// directories are memory resident (8 bytes and 4 bytes per entry), as in
// the paper's implementation; the data pages are read through an
// ssd.PageDevice.
type Store struct {
	Path        string
	PageSize    int
	NumVertices int
	NumEdges    int64
	NumPages    uint32
	dataOffset  int64
	firstPage   []uint32 // vertex id -> first data page of its record
	degree      []uint32 // vertex id -> |n(v)|
	pageFirst   []uint32 // page id -> first record starting there, or NoRecord
}

// BuildFile encodes g into a store file at path. Vertices are written in id
// order, so with a degree-ordered graph the storage order matches the ≺
// order (see DESIGN.md). pageSize 0 selects DefaultPageSize.
func BuildFile(path string, g *graph.Graph, pageSize int) (*Store, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	w := newPageWriter(pageSize)
	n := g.NumVertices()
	firstPage := make([]uint32, n)
	degree := make([]uint32, n)
	for v := 0; v < n; v++ {
		adj := g.Neighbors(graph.VertexID(v))
		// appendRecord flushes the shared page first for oversized records,
		// so the record's first page is the page count before... after any
		// pending flush. Compute from the writer state: record the page
		// index where this record will start.
		firstPage[v] = w.startPageOf(len(adj))
		degree[v] = uint32(len(adj))
		w.appendRecord(uint32(v), adj)
	}
	pages, pageFirst := w.finish()

	s := &Store{
		Path:        path,
		PageSize:    pageSize,
		NumVertices: n,
		NumEdges:    g.NumEdges(),
		NumPages:    uint32(len(pages)),
		firstPage:   firstPage,
		degree:      degree,
		pageFirst:   pageFirst,
	}
	s.dataOffset = headerSize + int64(8*n) + int64(4*len(pages))

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := s.writeHeader(bw); err != nil {
		return nil, err
	}
	if err := s.writeDirectories(bw); err != nil {
		return nil, err
	}
	for _, p := range pages {
		if _, err := bw.Write(p); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// startPageOf returns the page index at which a record of the given degree
// will start if appended now.
func (w *pageWriter) startPageOf(degree int) uint32 {
	recSize := recHeaderSize + 4*degree
	emitted := w.emitted
	if recSize <= w.payload() {
		if w.cur != nil && w.curUsed+recSize > w.pageSize {
			return emitted + 1 // current page will flush first
		}
		return emitted // appended to current (possibly fresh) page
	}
	if w.cur != nil && w.curRecs > 0 {
		return emitted + 1 // shared page flushes before the run starts
	}
	return emitted
}

func (s *Store) writeHeader(w io.Writer) error {
	var h [headerSize]byte
	copy(h[0:8], storeMagic)
	binary.LittleEndian.PutUint32(h[8:], storeVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(s.PageSize))
	binary.LittleEndian.PutUint32(h[16:], uint32(s.NumVertices))
	binary.LittleEndian.PutUint32(h[20:], s.NumPages)
	binary.LittleEndian.PutUint64(h[24:], uint64(s.NumEdges))
	binary.LittleEndian.PutUint64(h[32:], uint64(headerSize))
	binary.LittleEndian.PutUint64(h[40:], uint64(s.dataOffset))
	_, err := w.Write(h[:])
	return err
}

func (s *Store) writeDirectories(w io.Writer) error {
	buf := make([]byte, 8*s.NumVertices)
	for v := 0; v < s.NumVertices; v++ {
		binary.LittleEndian.PutUint32(buf[8*v:], s.firstPage[v])
		binary.LittleEndian.PutUint32(buf[8*v+4:], s.degree[v])
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	pbuf := make([]byte, 4*len(s.pageFirst))
	for i, x := range s.pageFirst {
		binary.LittleEndian.PutUint32(pbuf[4*i:], x)
	}
	_, err := w.Write(pbuf)
	return err
}

// Open reads the directories of a store file built by BuildFile.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var h [headerSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return nil, fmt.Errorf("storage: reading header of %s: %w", path, err)
	}
	if string(h[0:8]) != storeMagic {
		return nil, fmt.Errorf("storage: %s is not a store file", path)
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != storeVersion {
		return nil, fmt.Errorf("storage: %s has version %d, want %d", path, v, storeVersion)
	}
	s := &Store{
		Path:        path,
		PageSize:    int(binary.LittleEndian.Uint32(h[12:])),
		NumVertices: int(binary.LittleEndian.Uint32(h[16:])),
		NumPages:    binary.LittleEndian.Uint32(h[20:]),
		NumEdges:    int64(binary.LittleEndian.Uint64(h[24:])),
		dataOffset:  int64(binary.LittleEndian.Uint64(h[40:])),
	}
	// Validate the header against the file size before allocating
	// directories, so a corrupt header cannot demand absurd memory.
	if s.PageSize < MinPageSize {
		return nil, fmt.Errorf("storage: %s: page size %d below minimum", path, s.PageSize)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	wantSize := headerSize + int64(8)*int64(s.NumVertices) + int64(4)*int64(s.NumPages) +
		int64(s.NumPages)*int64(s.PageSize)
	if fi.Size() < wantSize {
		return nil, fmt.Errorf("storage: %s: file is %d bytes, header implies %d", path, fi.Size(), wantSize)
	}
	if want := headerSize + int64(8)*int64(s.NumVertices) + int64(4)*int64(s.NumPages); s.dataOffset != want {
		return nil, fmt.Errorf("storage: %s: data offset %d, want %d", path, s.dataOffset, want)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	buf := make([]byte, 8*s.NumVertices)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("storage: reading vertex directory: %w", err)
	}
	s.firstPage = make([]uint32, s.NumVertices)
	s.degree = make([]uint32, s.NumVertices)
	for v := 0; v < s.NumVertices; v++ {
		s.firstPage[v] = binary.LittleEndian.Uint32(buf[8*v:])
		s.degree[v] = binary.LittleEndian.Uint32(buf[8*v+4:])
	}
	pbuf := make([]byte, 4*s.NumPages)
	if _, err := io.ReadFull(br, pbuf); err != nil {
		return nil, fmt.Errorf("storage: reading page directory: %w", err)
	}
	s.pageFirst = make([]uint32, s.NumPages)
	for i := range s.pageFirst {
		s.pageFirst[i] = binary.LittleEndian.Uint32(pbuf[4*i:])
	}
	return s, nil
}

// Device opens the store's data-page region as a read-only file device.
func (s *Store) Device() (*ssd.FileDevice, error) {
	return ssd.OpenFileDevice(s.Path, s.dataOffset, s.PageSize)
}

// FirstPageOf returns the data page where v's record starts.
func (s *Store) FirstPageOf(v graph.VertexID) uint32 { return s.firstPage[v] }

// DegreeOf returns |n(v)|.
func (s *Store) DegreeOf(v graph.VertexID) int { return int(s.degree[v]) }

// SpanOf returns the number of pages v's record occupies.
func (s *Store) SpanOf(v graph.VertexID) int {
	return RecordSpan(s.PageSize, int(s.degree[v]))
}

// StartsRecord reports whether a record begins in page pid (false for run
// continuation pages).
func (s *Store) StartsRecord(pid uint32) bool {
	return s.pageFirst[pid] != NoRecord
}

// FirstRecordOf returns the id of the first record starting in page pid,
// or NoRecord for continuation pages. For pid == NumPages it returns the
// number of vertices, so [FirstRecordOf(lo), FirstRecordOf(hi)) is the
// vertex range covered by the aligned page range [lo, hi).
func (s *Store) FirstRecordOf(pid uint32) uint32 {
	if pid >= s.NumPages {
		return uint32(s.NumVertices)
	}
	return s.pageFirst[pid]
}

// AlignedRange extends the page range [start, start+count) so it ends at a
// record boundary: the returned count includes any continuation pages of a
// run that begins inside the range. start itself must begin a record
// (callers iterate ranges produced by this method starting at page 0).
func (s *Store) AlignedRange(start uint32, count int) int {
	end := int64(start) + int64(count)
	if end > int64(s.NumPages) {
		end = int64(s.NumPages)
	}
	for end < int64(s.NumPages) && !s.StartsRecord(uint32(end)) {
		end++
	}
	return int(end - int64(start))
}

// Decode decodes a raw page span read from the device, where data begins at
// page boundary. See DecodeRange.
func (s *Store) Decode(data []byte) ([]VertexRec, error) {
	return DecodeRange(s.PageSize, data)
}

// DecodeAppend is Decode appending onto dst; see DecodeRangeAppend.
func (s *Store) DecodeAppend(dst []VertexRec, data []byte) ([]VertexRec, error) {
	return DecodeRangeAppend(dst, s.PageSize, data)
}
