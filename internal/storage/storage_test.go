package storage

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
)

// codecNames is the codec axis shared by the parameterized tests.
var codecNames = []string{CodecRaw, CodecDeltaVarint}

// buildAndOpen round-trips g through a raw-codec store file and returns the
// reopened store.
func buildAndOpen(t *testing.T, g *graph.Graph, pageSize int) *Store {
	return buildAndOpenCodec(t, g, pageSize, CodecRaw)
}

func buildAndOpenCodec(t *testing.T, g *graph.Graph, pageSize int, codec string) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.optstore")
	built, err := BuildFileCodec(path, g, pageSize, codec)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if opened.NumVertices != built.NumVertices || opened.NumPages != built.NumPages ||
		opened.NumEdges != built.NumEdges || opened.PageSize != built.PageSize {
		t.Fatalf("reopened store differs: %+v vs %+v", opened, built)
	}
	if opened.CodecName() != codec || opened.Version() != storeVersionV2 {
		t.Fatalf("reopened store codec/version = %s/v%d, want %s/v%d",
			opened.CodecName(), opened.Version(), codec, storeVersionV2)
	}
	return opened
}

// readAll decodes the full store through its device and returns adjacency
// lists keyed by vertex.
func readAll(t *testing.T, s *Store) map[uint32][]uint32 {
	t.Helper()
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	if dev.NumPages() < s.NumPages {
		t.Fatalf("device has %d pages, store says %d", dev.NumPages(), s.NumPages)
	}
	data, err := dev.ReadPages(0, int(s.NumPages))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint32][]uint32, len(recs))
	for _, r := range recs {
		if _, dup := out[r.ID]; dup {
			t.Fatalf("vertex %d decoded twice", r.ID)
		}
		out[r.ID] = r.Adj
	}
	return out
}

func verifyMatchesGraph(t *testing.T, g *graph.Graph, s *Store) {
	t.Helper()
	adj := readAll(t, s)
	if len(adj) != g.NumVertices() {
		t.Fatalf("decoded %d vertices, want %d", len(adj), g.NumVertices())
	}
	for v := 0; v < g.NumVertices(); v++ {
		want := g.Neighbors(graph.VertexID(v))
		got := adj[uint32(v)]
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d: decoded %v, want %v", v, got, want)
		}
	}
	// Directory agrees with decode.
	for v := 0; v < g.NumVertices(); v++ {
		if s.DegreeOf(graph.VertexID(v)) != g.Degree(graph.VertexID(v)) {
			t.Fatalf("DegreeOf(%d) = %d, want %d", v, s.DegreeOf(graph.VertexID(v)), g.Degree(graph.VertexID(v)))
		}
	}
}

func TestStoreRoundtripPaperExample(t *testing.T) {
	g := graph.PaperExample()
	for _, codec := range codecNames {
		t.Run(codec, func(t *testing.T) {
			c, err := CodecByName(codec)
			if err != nil {
				t.Fatal(err)
			}
			for _, ps := range []int{MinPageSizeFor(c), 64, 128, 4096} {
				s := buildAndOpenCodec(t, g, ps, codec)
				verifyMatchesGraph(t, g, s)
			}
		})
	}
}

func TestStoreRoundtripRandom(t *testing.T) {
	for _, codec := range codecNames {
		t.Run(codec, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 5; trial++ {
				n := 50 + rng.Intn(200)
				b := graph.NewBuilder(n)
				m := rng.Intn(2000)
				for i := 0; i < m; i++ {
					_ = b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
				}
				g := b.Build()
				s := buildAndOpenCodec(t, g, 128, codec)
				verifyMatchesGraph(t, g, s)
			}
		})
	}
}

func TestStoreOversizedRecords(t *testing.T) {
	// A star hub with degree 500 forces multi-page runs at page size 64
	// under both codecs.
	g := graph.Star(501)
	for _, codec := range codecNames {
		t.Run(codec, func(t *testing.T) {
			s := buildAndOpenCodec(t, g, 64, codec)
			verifyMatchesGraph(t, g, s)
			hub := graph.VertexID(0)
			if got := s.SpanOf(hub); got < 2 {
				t.Fatalf("SpanOf(hub) = %d, want >= 2", got)
			}
			// Continuation pages must not start records.
			first := s.FirstPageOf(hub)
			for p := first + 1; p < first+uint32(s.SpanOf(hub)); p++ {
				if s.StartsRecord(p) {
					t.Fatalf("continuation page %d claims to start a record", p)
				}
			}
		})
	}
}

func TestStoreEmptyAndIsolatedVertices(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{{U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	s := buildAndOpen(t, g, 64)
	verifyMatchesGraph(t, g, s)
	if s.DegreeOf(0) != 0 {
		t.Fatalf("DegreeOf(0) = %d, want 0", s.DegreeOf(0))
	}
}

func TestSpanOfMatchesDirectory(t *testing.T) {
	// Spans are a write-time fact read back from the page directory: for
	// every vertex, SpanOf must cover exactly the pages up to the next
	// record start, and decoding exactly that range must yield the record.
	g, err := gen.RMAT(gen.DefaultRMAT(256, 3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	og, _ := graph.DegreeOrder(g)
	for _, codec := range codecNames {
		t.Run(codec, func(t *testing.T) {
			s := buildAndOpenCodec(t, og, 64, codec)
			dev, err := s.Device()
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = dev.Close() }()
			for v := 0; v < s.NumVertices; v++ {
				first := s.FirstPageOf(graph.VertexID(v))
				span := s.SpanOf(graph.VertexID(v))
				if span < 1 {
					t.Fatalf("SpanOf(%d) = %d", v, span)
				}
				if !s.StartsRecord(first) {
					t.Fatalf("vertex %d: first page %d does not start a record", v, first)
				}
				// A span beyond one page means a run: its continuation
				// pages must not start records.
				for p := first + 1; p < first+uint32(span); p++ {
					if s.StartsRecord(p) {
						t.Fatalf("vertex %d: span %d crosses record start at page %d", v, span, p)
					}
				}
				data, err := dev.ReadPages(first, span)
				if err != nil {
					t.Fatal(err)
				}
				recs, err := s.Decode(data)
				if err != nil {
					t.Fatalf("vertex %d: decoding its span: %v", v, err)
				}
				found := false
				for _, r := range recs {
					if r.ID == uint32(v) {
						found = true
					}
				}
				if !found {
					t.Fatalf("vertex %d not found in its own span [%d,+%d)", v, first, span)
				}
			}
		})
	}
}

func TestAlignedRange(t *testing.T) {
	g := graph.Star(201) // hub spans several 64-byte pages
	s := buildAndOpen(t, g, 64)
	// Hub record is first (vertex 0). A 1-page range from its start must
	// extend to the whole run.
	first := s.FirstPageOf(0)
	span := s.SpanOf(0)
	if got := s.AlignedRange(first, 1); got != span {
		t.Fatalf("AlignedRange = %d, want %d", got, span)
	}
	// A range already at a boundary stays unchanged.
	after := first + uint32(span)
	if after < s.NumPages {
		if got := s.AlignedRange(after, 1); got < 1 {
			t.Fatalf("AlignedRange at boundary = %d", got)
		}
	}
	// Range reaching the end of the store is capped correctly.
	if got := s.AlignedRange(0, int(s.NumPages)); got != int(s.NumPages) {
		t.Fatalf("full range = %d, want %d", got, s.NumPages)
	}
}

func TestDecodeMisalignedRange(t *testing.T) {
	g := graph.Star(201)
	s := buildAndOpen(t, g, 64)
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	// Page 1 is a continuation of the hub's run.
	if s.StartsRecord(1) {
		t.Skip("layout changed; page 1 not a continuation")
	}
	data, err := dev.ReadPages(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decode(data); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("Decode mid-run err = %v, want ErrMisaligned", err)
	}
}

func TestDecodeTruncatedRun(t *testing.T) {
	g := graph.Star(201)
	s := buildAndOpen(t, g, 64)
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	span := s.SpanOf(0)
	if span < 2 {
		t.Skip("hub does not span pages")
	}
	data, err := dev.ReadPages(s.FirstPageOf(0), span-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decode(data); !errors.Is(err, ErrTruncatedRun) {
		t.Fatalf("Decode truncated run err = %v, want ErrTruncatedRun", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("this is not a store file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open(junk): want error")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Open(missing): want error")
	}
}

func TestBuildFileValidation(t *testing.T) {
	g := graph.PaperExample()
	if _, err := BuildFile(filepath.Join(t.TempDir(), "x"), g, 8); err == nil {
		t.Fatal("tiny page size: want error")
	}
}

func TestStoreOnGeneratedGraph(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(1<<10, 8000, 21))
	if err != nil {
		t.Fatal(err)
	}
	og, _ := graph.DegreeOrder(g)
	s := buildAndOpen(t, og, 256)
	verifyMatchesGraph(t, og, s)

	// Page ranges aligned via AlignedRange decode cleanly across the store.
	dev, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev.Close() }()
	var pid uint32
	total := 0
	for pid < s.NumPages {
		count := s.AlignedRange(pid, 4)
		data, err := dev.ReadPages(pid, count)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := s.Decode(data)
		if err != nil {
			t.Fatalf("decode range [%d,+%d): %v", pid, count, err)
		}
		total += len(recs)
		pid += uint32(count)
	}
	if total != og.NumVertices() {
		t.Fatalf("ranged decode saw %d vertices, want %d", total, og.NumVertices())
	}
}

func TestFirstPageMonotone(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(512, 4000, 13))
	if err != nil {
		t.Fatal(err)
	}
	og, _ := graph.DegreeOrder(g)
	s := buildAndOpen(t, og, 128)
	for v := 1; v < s.NumVertices; v++ {
		if s.FirstPageOf(graph.VertexID(v)) < s.FirstPageOf(graph.VertexID(v-1)) {
			t.Fatalf("FirstPageOf not monotone at %d", v)
		}
	}
}

func TestAlignedRangeClampsToStore(t *testing.T) {
	g := graph.PaperExample()
	s := buildAndOpen(t, g, 64)
	// Requesting far more pages than exist must clamp to the store size.
	if got := s.AlignedRange(0, int(s.NumPages)+100); got != int(s.NumPages) {
		t.Fatalf("AlignedRange over-end = %d, want %d", got, s.NumPages)
	}
	last := s.NumPages - 1
	if got := s.AlignedRange(last, 16); got < 1 || got > int(s.NumPages-last) {
		t.Fatalf("AlignedRange at tail = %d", got)
	}
}

// TestStoreDataAligned pins the v2 layout's O_DIRECT eligibility: both
// writers must land the data region on an ssd.DirectAlign boundary with
// zero padding after the page directory.
func TestStoreDataAligned(t *testing.T) {
	g := graph.PaperExample()
	for _, build := range []struct {
		name string
		fn   func(path string) (*Store, error)
	}{
		{"BuildFileCodec", func(path string) (*Store, error) {
			return BuildFileCodec(path, g, 128, CodecRaw)
		}},
		{"BuildFileStreaming", func(path string) (*Store, error) {
			return BuildFileStreaming(path, GraphScanner{G: g},
				StreamBuildOptions{PageSize: 128, TempDir: t.TempDir()})
		}},
	} {
		t.Run(build.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "g.optstore")
			built, err := build.fn(path)
			if err != nil {
				t.Fatal(err)
			}
			if built.dataOffset%ssd.DirectAlign != 0 {
				t.Fatalf("data offset %d not %d-aligned", built.dataOffset, ssd.DirectAlign)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			dirEnd := headerSize + int64(8*built.NumVertices) + int64(4)*int64(built.NumPages)
			for i := dirEnd; i < built.dataOffset; i++ {
				if raw[i] != 0 {
					t.Fatalf("padding byte %d is %#x, want zero", i, raw[i])
				}
			}
			opened, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if opened.dataOffset != built.dataOffset {
				t.Fatalf("reopened data offset %d, want %d", opened.dataOffset, built.dataOffset)
			}
		})
	}
}

// TestOpenUnpaddedStore pins backward compatibility: files written before
// the alignment padding (data pages immediately after the page directory,
// dataOffset equal to the directory end) must still open and decode. The
// fixture is synthesized by splicing the padding out of a fresh store and
// patching the header's dataOffset field.
func TestOpenUnpaddedStore(t *testing.T) {
	g := graph.PaperExample()
	dir := t.TempDir()
	padded := filepath.Join(dir, "padded.optstore")
	if _, err := BuildFileCodec(padded, g, 128, CodecRaw); err != nil {
		t.Fatal(err)
	}
	want := readAll(t, buildAndOpen(t, g, 128))

	raw, err := os.ReadFile(padded)
	if err != nil {
		t.Fatal(err)
	}
	dataOffset := int64(binary.LittleEndian.Uint64(raw[40:]))
	s, err := Open(padded)
	if err != nil {
		t.Fatal(err)
	}
	dirEnd := headerSize + int64(8*s.NumVertices) + int64(4)*int64(s.NumPages)
	if dataOffset == dirEnd {
		t.Skip("store landed on the alignment boundary with no padding")
	}
	unpadded := append([]byte{}, raw[:dirEnd]...)
	unpadded = append(unpadded, raw[dataOffset:]...)
	binary.LittleEndian.PutUint64(unpadded[40:], uint64(dirEnd))
	legacy := filepath.Join(dir, "legacy.optstore")
	if err := os.WriteFile(legacy, unpadded, 0o644); err != nil {
		t.Fatal(err)
	}

	ls, err := Open(legacy)
	if err != nil {
		t.Fatalf("unpadded layout rejected: %v", err)
	}
	got := readAll(t, ls)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("unpadded store decodes differently from the padded one")
	}

	// A data offset past one alignment round is corruption, not padding.
	binary.LittleEndian.PutUint64(unpadded[40:], uint64(dirEnd+ssd.DirectAlign))
	bad := filepath.Join(dir, "bad.optstore")
	if err := os.WriteFile(bad, unpadded, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("oversized data offset accepted")
	}
}
