package storage

import (
	"errors"
	"fmt"
)

// A Codec encodes the neighbor payload of a record into page bytes and back.
// Two codecs exist: raw (fixed 4-byte little-endian neighbors, bit-identical
// to the v1 format) and deltavarint (each neighbor stored as the uvarint of
// its difference from the previous one, exploiting the sorted-ascending
// adjacency invariant; the first value of a record is stored absolutely).
//
// Codecs are stateless and safe for concurrent use. Encoding is incremental
// so the page writer can split oversized records across run pages: the
// (prev, cont) pair seeds the delta chain, which continues across page
// boundaries within a run. The interface is sealed — codecs are identified
// elsewhere by name (see CodecByName) or by the id stored in the v2 header.
type Codec interface {
	// Name is the stable external name ("raw", "deltavarint").
	Name() string
	// ID is the identifier written into the OPTSTOR2 header.
	ID() uint16

	// countedRuns reports whether run pages record their value count in the
	// page header. Raw pages derive counts from the fixed value width so v1
	// pages stay bit-identical; variable-width codecs cannot.
	countedRuns() bool
	// maxValBytes is the worst-case encoded size of a single value, used to
	// size the per-codec minimum page (every run page must make progress).
	maxValBytes() int
	// encodedLen returns the exact payload size of encoding adj with the
	// chain seeded by (prev, cont).
	encodedLen(prev uint32, cont bool, adj []uint32) int
	// encodeInto encodes as many leading values of adj as fit in dst,
	// returning how many values were consumed and how many bytes written.
	encodeInto(dst []byte, prev uint32, cont bool, adj []uint32) (vals, n int)
	// decodeInto appends exactly count values decoded from src onto dst,
	// returning the grown slice and the bytes consumed. Errors wrap
	// ErrCorruptPage; arbitrary input must never panic.
	decodeInto(dst []uint32, src []byte, count int, prev uint32, cont bool) ([]uint32, int, error)
}

// Codec names accepted by CodecByName and the -codec CLI flags.
const (
	CodecRaw         = "raw"
	CodecDeltaVarint = "deltavarint"
)

// Named errors for header validation (see Open).
var (
	// ErrUnknownVersion is returned when a store header carries a version
	// this build does not understand.
	ErrUnknownVersion = errors.New("storage: unknown store version")
	// ErrUnknownCodec is returned for an unregistered codec name or id.
	ErrUnknownCodec = errors.New("storage: unknown page codec")
)

var (
	rawCodecInst   = rawCodec{}
	deltaCodecInst = deltaVarintCodec{}

	// codecsByID is indexed by the id stored in the v2 header.
	codecsByID = []Codec{rawCodecInst, deltaCodecInst}
)

// Codecs returns the registered codec names in id order.
func Codecs() []string {
	out := make([]string, len(codecsByID))
	for i, c := range codecsByID {
		out[i] = c.Name()
	}
	return out
}

// CodecByName resolves a codec name ("" selects raw). Unknown names return
// an error wrapping ErrUnknownCodec.
func CodecByName(name string) (Codec, error) {
	if name == "" {
		return rawCodecInst, nil
	}
	for _, c := range codecsByID {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownCodec, name, Codecs())
}

// codecByID resolves the codec id stored in a v2 header.
func codecByID(id uint16) (Codec, error) {
	if int(id) < len(codecsByID) {
		return codecsByID[id], nil
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
}

// MinPageSizeFor returns the smallest page size the codec supports: the page
// header, one record header, and one worst-case encoded value, so every run
// page is guaranteed to hold at least one neighbor.
func MinPageSizeFor(c Codec) int {
	min := pageHeaderSize + recHeaderSize + c.maxValBytes()
	if min < MinPageSize {
		min = MinPageSize
	}
	return min
}

// rawCodec stores neighbors as fixed 4-byte little-endian values — the v1
// page format, bit for bit.
type rawCodec struct{}

func (rawCodec) Name() string      { return CodecRaw }
func (rawCodec) ID() uint16        { return 0 }
func (rawCodec) countedRuns() bool { return false }
func (rawCodec) maxValBytes() int  { return 4 }

func (rawCodec) encodedLen(_ uint32, _ bool, adj []uint32) int { return 4 * len(adj) }

func (rawCodec) encodeInto(dst []byte, _ uint32, _ bool, adj []uint32) (int, int) {
	n := len(dst) / 4
	if n > len(adj) {
		n = len(adj)
	}
	for i := 0; i < n; i++ {
		putUint32(dst[4*i:], adj[i])
	}
	return n, 4 * n
}

func (rawCodec) decodeInto(dst []uint32, src []byte, count int, _ uint32, _ bool) ([]uint32, int, error) {
	if count > len(src)/4 {
		return dst, 0, fmt.Errorf("%w: %d raw neighbors exceed %d payload bytes", ErrCorruptPage, count, len(src))
	}
	for i := 0; i < count; i++ {
		dst = append(dst, getUint32(src[4*i:]))
	}
	return dst, 4 * count, nil
}

// deltaVarintCodec stores the first value of a record as an absolute
// uvarint and every subsequent value as uvarint(v - prev) with uint32
// wraparound. Sorted ascending lists (the graph invariant) give small
// deltas and 1–2 byte encodings; arbitrary lists still round-trip because
// the wraparound subtraction is total.
type deltaVarintCodec struct{}

// maxUvarint32Len is the worst-case uvarint size of a 32-bit value.
const maxUvarint32Len = 5

func (deltaVarintCodec) Name() string      { return CodecDeltaVarint }
func (deltaVarintCodec) ID() uint16        { return 1 }
func (deltaVarintCodec) countedRuns() bool { return true }
func (deltaVarintCodec) maxValBytes() int  { return maxUvarint32Len }

// uvarint32Len returns the encoded size of x.
func uvarint32Len(x uint32) int {
	switch {
	case x < 1<<7:
		return 1
	case x < 1<<14:
		return 2
	case x < 1<<21:
		return 3
	case x < 1<<28:
		return 4
	}
	return maxUvarint32Len
}

// putUvarint32 writes x at dst[0:] and returns the bytes written. dst must
// have room for uvarint32Len(x) bytes.
func putUvarint32(dst []byte, x uint32) int {
	i := 0
	for x >= 0x80 {
		dst[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	dst[i] = byte(x)
	return i + 1
}

// uvarint32 reads one uvarint from src, rejecting encodings that overflow
// 32 bits or run past the buffer.
func uvarint32(src []byte) (uint32, int, error) {
	var x uint64
	var shift uint
	for i := 0; i < len(src) && i < maxUvarint32Len; i++ {
		b := src[i]
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if x > 1<<32-1 {
				return 0, 0, fmt.Errorf("%w: varint overflows uint32", ErrCorruptPage)
			}
			return uint32(x), i + 1, nil
		}
		shift += 7
	}
	return 0, 0, fmt.Errorf("%w: truncated varint", ErrCorruptPage)
}

func (deltaVarintCodec) encodedLen(prev uint32, cont bool, adj []uint32) int {
	n := 0
	for _, x := range adj {
		if cont {
			n += uvarint32Len(x - prev)
		} else {
			n += uvarint32Len(x)
			cont = true
		}
		prev = x
	}
	return n
}

func (deltaVarintCodec) encodeInto(dst []byte, prev uint32, cont bool, adj []uint32) (int, int) {
	vals, off := 0, 0
	for _, x := range adj {
		d := x
		if cont {
			d = x - prev
		}
		l := uvarint32Len(d)
		if off+l > len(dst) {
			break
		}
		putUvarint32(dst[off:], d)
		off += l
		prev, cont = x, true
		vals++
	}
	return vals, off
}

func (deltaVarintCodec) decodeInto(dst []uint32, src []byte, count int, prev uint32, cont bool) ([]uint32, int, error) {
	off := 0
	for i := 0; i < count; i++ {
		d, n, err := uvarint32(src[off:])
		if err != nil {
			return dst, off, err
		}
		off += n
		v := d
		if cont {
			v = prev + d
		}
		dst = append(dst, v)
		prev, cont = v, true
	}
	return dst, off, nil
}
