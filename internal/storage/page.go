// Package storage implements the on-disk graph representation of §3.2: each
// (v, n(v)) record is stored in slotted pages, in id order, with adjacency
// lists larger than one page occupying a run of consecutive pages. A vertex
// directory maps every vertex to the first page of its record, and a page
// directory marks which pages begin a new record (so page ranges can be
// aligned to record boundaries).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Page kinds.
const (
	kindSlotted  = 0 // one or more complete records
	kindRunStart = 1 // first page of an oversized record
	kindRunCont  = 2 // continuation page of an oversized record
)

// pageHeaderSize is the fixed per-page header: numRecords (uint16),
// kind (uint8), pad (uint8), contCount (uint32).
const pageHeaderSize = 8

// recHeaderSize is the per-record header inside a page: vertex id (uint32)
// and degree (uint32).
const recHeaderSize = 8

// MinPageSize is the smallest supported page size: header plus one record
// header plus one neighbor.
const MinPageSize = pageHeaderSize + recHeaderSize + 4

// VertexRec is a decoded (v, n(v)) record. Adj aliases the decode buffer.
type VertexRec struct {
	ID  uint32
	Adj []uint32
}

// Errors returned by the codec.
var (
	ErrCorruptPage  = errors.New("storage: corrupt page")
	ErrMisaligned   = errors.New("storage: page range starts inside a record run")
	ErrTruncatedRun = errors.New("storage: page range ends inside a record run")
)

// pageWriter incrementally encodes records into fixed-size pages. With a
// sink set, pages stream out as they fill (bounded memory); otherwise they
// accumulate in pages/firstRec.
type pageWriter struct {
	pageSize int
	cur      []byte
	curRecs  int
	curUsed  int
	curFirst uint32 // id of the first record starting in the current page
	pages    [][]byte
	firstRec []uint32 // per emitted page: id of first record starting there, or NoRecord
	emitted  uint32   // pages emitted so far (streamed or accumulated)
	sink     func(page []byte, firstRec uint32) error
	sinkErr  error
}

// NoRecord marks a page in which no record starts (a run continuation).
const NoRecord = ^uint32(0)

func newPageWriter(pageSize int) *pageWriter {
	return &pageWriter{pageSize: pageSize}
}

func (w *pageWriter) payload() int { return w.pageSize - pageHeaderSize }

// neighborsPerStartPage returns how many neighbors fit in a run-start page.
func neighborsPerStartPage(pageSize int) int {
	return (pageSize - pageHeaderSize - recHeaderSize) / 4
}

// neighborsPerContPage returns how many neighbors fit in a continuation page.
func neighborsPerContPage(pageSize int) int {
	return (pageSize - pageHeaderSize) / 4
}

// RecordSpan returns the number of pages the record of a degree-d vertex
// occupies under the given page size: 1 when it shares a slotted page, more
// when it needs a run.
func RecordSpan(pageSize int, degree int) int {
	if recHeaderSize+4*degree <= pageSize-pageHeaderSize {
		return 1
	}
	rest := degree - neighborsPerStartPage(pageSize)
	per := neighborsPerContPage(pageSize)
	return 1 + (rest+per-1)/per
}

func (w *pageWriter) ensurePage() {
	if w.cur == nil {
		w.cur = make([]byte, w.pageSize)
		w.curRecs = 0
		w.curUsed = pageHeaderSize
	}
}

func (w *pageWriter) flush(kind uint8, contCount uint32, firstRec uint32) {
	if w.cur == nil {
		return
	}
	binary.LittleEndian.PutUint16(w.cur[0:2], uint16(w.curRecs))
	w.cur[2] = kind
	binary.LittleEndian.PutUint32(w.cur[4:8], contCount)
	w.emitted++
	if w.sink != nil {
		if err := w.sink(w.cur, firstRec); err != nil && w.sinkErr == nil {
			w.sinkErr = err
		}
		w.firstRec = append(w.firstRec, firstRec)
		w.cur = nil
		return
	}
	w.pages = append(w.pages, w.cur)
	w.firstRec = append(w.firstRec, firstRec)
	w.cur = nil
}

// appendRecord adds one (id, adj) record, emitting pages as they fill.
func (w *pageWriter) appendRecord(id uint32, adj []uint32) {
	recSize := recHeaderSize + 4*len(adj)
	if recSize <= w.payload() {
		// Fits in a (possibly shared) slotted page.
		w.ensurePage()
		if w.curUsed+recSize > w.pageSize {
			w.flush(kindSlotted, 0, w.pageFirst())
			w.ensurePage()
		}
		if w.curRecs == 0 {
			w.curFirst = id
		}
		binary.LittleEndian.PutUint32(w.cur[w.curUsed:], id)
		binary.LittleEndian.PutUint32(w.cur[w.curUsed+4:], uint32(len(adj)))
		off := w.curUsed + recHeaderSize
		for _, x := range adj {
			binary.LittleEndian.PutUint32(w.cur[off:], x)
			off += 4
		}
		w.curUsed = off
		w.curRecs++
		return
	}
	// Oversized record: close the current shared page, then emit a run.
	w.flush(kindSlotted, 0, w.pageFirst())
	w.ensurePage()
	w.curFirst = id
	binary.LittleEndian.PutUint32(w.cur[pageHeaderSize:], id)
	binary.LittleEndian.PutUint32(w.cur[pageHeaderSize+4:], uint32(len(adj)))
	nStart := neighborsPerStartPage(w.pageSize)
	off := pageHeaderSize + recHeaderSize
	for i := 0; i < nStart; i++ {
		binary.LittleEndian.PutUint32(w.cur[off:], adj[i])
		off += 4
	}
	w.curRecs = 1
	w.flush(kindRunStart, 0, id)
	rest := adj[nStart:]
	per := neighborsPerContPage(w.pageSize)
	for len(rest) > 0 {
		n := per
		if n > len(rest) {
			n = len(rest)
		}
		w.ensurePage()
		off := pageHeaderSize
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(w.cur[off:], rest[i])
			off += 4
		}
		w.flush(kindRunCont, uint32(n), NoRecord)
		rest = rest[n:]
	}
}

func (w *pageWriter) pageFirst() uint32 {
	if w.curRecs == 0 {
		return NoRecord
	}
	return w.curFirst
}

// finish flushes any partial page and returns pages plus the per-page
// first-record directory (the pages slice is nil in sink mode).
func (w *pageWriter) finish() ([][]byte, []uint32) {
	if w.cur != nil && w.curRecs > 0 {
		w.flush(kindSlotted, 0, w.pageFirst())
	} else {
		w.cur = nil
	}
	return w.pages, w.firstRec
}

// DecodeRange decodes the records of a contiguous span of raw pages
// (len(data) must be a multiple of pageSize). The span must begin at a
// record boundary and must not cut a record run short; use
// Store.AlignedRange to obtain such spans.
func DecodeRange(pageSize int, data []byte) ([]VertexRec, error) {
	return DecodeRangeAppend(nil, pageSize, data)
}

// DecodeRangeAppend is DecodeRange appending onto dst, so callers that
// recycle record arrays across reads avoid reallocating them. On error the
// records decoded so far are returned alongside the error.
func DecodeRangeAppend(dst []VertexRec, pageSize int, data []byte) ([]VertexRec, error) {
	if len(data)%pageSize != 0 {
		return dst, fmt.Errorf("%w: %d bytes not page aligned", ErrCorruptPage, len(data))
	}
	out := dst
	numPages := len(data) / pageSize
	for p := 0; p < numPages; p++ {
		page := data[p*pageSize : (p+1)*pageSize]
		numRecs := int(binary.LittleEndian.Uint16(page[0:2]))
		kind := page[2]
		switch kind {
		case kindSlotted:
			off := pageHeaderSize
			for r := 0; r < numRecs; r++ {
				if off+recHeaderSize > pageSize {
					return out, fmt.Errorf("%w: record header beyond page", ErrCorruptPage)
				}
				id := binary.LittleEndian.Uint32(page[off:])
				deg := int(binary.LittleEndian.Uint32(page[off+4:]))
				off += recHeaderSize
				if off+4*deg > pageSize {
					return out, fmt.Errorf("%w: record body beyond page", ErrCorruptPage)
				}
				adj := make([]uint32, deg)
				for i := 0; i < deg; i++ {
					adj[i] = binary.LittleEndian.Uint32(page[off:])
					off += 4
				}
				out = append(out, VertexRec{ID: id, Adj: adj})
			}
		case kindRunStart:
			id := binary.LittleEndian.Uint32(page[pageHeaderSize:])
			deg := int(binary.LittleEndian.Uint32(page[pageHeaderSize+4:]))
			adj := make([]uint32, 0, deg)
			off := pageHeaderSize + recHeaderSize
			nStart := neighborsPerStartPage(pageSize)
			for i := 0; i < nStart && len(adj) < deg; i++ {
				adj = append(adj, binary.LittleEndian.Uint32(page[off:]))
				off += 4
			}
			// Consume continuation pages.
			for len(adj) < deg {
				p++
				if p >= numPages {
					return out, fmt.Errorf("%w: vertex %d needs %d more neighbors", ErrTruncatedRun, id, deg-len(adj))
				}
				page = data[p*pageSize : (p+1)*pageSize]
				if page[2] != kindRunCont {
					return out, fmt.Errorf("%w: expected continuation page", ErrCorruptPage)
				}
				n := int(binary.LittleEndian.Uint32(page[4:8]))
				off := pageHeaderSize
				for i := 0; i < n; i++ {
					adj = append(adj, binary.LittleEndian.Uint32(page[off:]))
					off += 4
				}
			}
			out = append(out, VertexRec{ID: id, Adj: adj})
		case kindRunCont:
			if p == 0 {
				return out, ErrMisaligned
			}
			return out, fmt.Errorf("%w: unexpected continuation page at offset %d", ErrCorruptPage, p)
		default:
			return out, fmt.Errorf("%w: unknown page kind %d", ErrCorruptPage, kind)
		}
	}
	return out, nil
}
