// Package storage implements the on-disk graph representation of §3.2: each
// (v, n(v)) record is stored in slotted pages, in id order, with adjacency
// lists larger than one page occupying a run of consecutive pages. A vertex
// directory maps every vertex to the first page of its record, and a page
// directory marks which pages begin a new record (so page ranges can be
// aligned to record boundaries).
//
// Neighbor payloads are encoded through a pluggable Codec (see codec.go).
// Because codecs may be variable-width, a record's page span is a write-time
// fact recorded in the directories — spans are always derived from the page
// directory (Store.SpanOf / Store.AlignedRange), never recomputed from the
// degree.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Page kinds.
const (
	kindSlotted  = 0 // one or more complete records
	kindRunStart = 1 // first page of an oversized record
	kindRunCont  = 2 // continuation page of an oversized record
)

// pageHeaderSize is the fixed per-page header: numRecords (uint16),
// kind (uint8), pad (uint8), valCount (uint32; the number of neighbor
// values in this page for run pages that record it — see Codec.countedRuns).
const pageHeaderSize = 8

// recHeaderSize is the per-record header inside a page: vertex id (uint32)
// and degree (uint32).
const recHeaderSize = 8

// MinPageSize is the smallest page size any codec supports: header plus one
// record header plus one raw neighbor. Variable-width codecs may require
// slightly more; see MinPageSizeFor.
const MinPageSize = pageHeaderSize + recHeaderSize + 4

// VertexRec is a decoded (v, n(v)) record. Adj sub-slices the decode arena.
type VertexRec struct {
	ID  uint32
	Adj []uint32
}

// Errors returned by the page decoder.
var (
	ErrCorruptPage  = errors.New("storage: corrupt page")
	ErrMisaligned   = errors.New("storage: page range starts inside a record run")
	ErrTruncatedRun = errors.New("storage: page range ends inside a record run")
)

func putUint32(b []byte, x uint32) { binary.LittleEndian.PutUint32(b, x) }
func getUint32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }

// pageWriter incrementally encodes records into fixed-size pages through a
// codec. With a sink set, pages stream out as they fill (bounded memory);
// otherwise they accumulate in pages/firstRec.
type pageWriter struct {
	pageSize int
	codec    Codec
	cur      []byte
	curRecs  int
	curUsed  int
	curFirst uint32 // id of the first record starting in the current page
	pages    [][]byte
	firstRec []uint32 // per emitted page: id of first record starting there, or NoRecord
	emitted  uint32   // pages emitted so far (streamed or accumulated)
	sink     func(page []byte, firstRec uint32) error
	sinkErr  error
}

// NoRecord marks a page in which no record starts (a run continuation).
const NoRecord = ^uint32(0)

// newPageWriter requires pageSize >= MinPageSizeFor(c) so every run page
// holds at least one encoded value (callers validate before constructing).
func newPageWriter(pageSize int, c Codec) *pageWriter {
	return &pageWriter{pageSize: pageSize, codec: c}
}

func (w *pageWriter) payload() int { return w.pageSize - pageHeaderSize }

func (w *pageWriter) ensurePage() {
	if w.cur == nil {
		// make zeroes the page, so unused payload tails are zero on disk.
		w.cur = make([]byte, w.pageSize)
		w.curRecs = 0
		w.curUsed = pageHeaderSize
	}
}

func (w *pageWriter) flush(kind uint8, valCount uint32, firstRec uint32) {
	if w.cur == nil {
		return
	}
	binary.LittleEndian.PutUint16(w.cur[0:2], uint16(w.curRecs))
	w.cur[2] = kind
	putUint32(w.cur[4:8], valCount)
	w.emitted++
	if w.sink != nil {
		if err := w.sink(w.cur, firstRec); err != nil && w.sinkErr == nil {
			w.sinkErr = err
		}
		w.firstRec = append(w.firstRec, firstRec)
		w.cur = nil
		return
	}
	w.pages = append(w.pages, w.cur)
	w.firstRec = append(w.firstRec, firstRec)
	w.cur = nil
}

// appendRecord adds one (id, adj) record, emitting pages as they fill, and
// returns the index of the page where the record starts — the span of a
// record is a write-time fact recorded in the directories, not recomputable
// from the degree once codecs are variable-width.
func (w *pageWriter) appendRecord(id uint32, adj []uint32) uint32 {
	plen := w.codec.encodedLen(0, false, adj)
	if recHeaderSize+plen <= w.payload() {
		// Fits in a (possibly shared) slotted page.
		w.ensurePage()
		if w.curUsed+recHeaderSize+plen > w.pageSize {
			w.flush(kindSlotted, 0, w.pageFirst())
			w.ensurePage()
		}
		start := w.emitted
		if w.curRecs == 0 {
			w.curFirst = id
		}
		putUint32(w.cur[w.curUsed:], id)
		putUint32(w.cur[w.curUsed+4:], uint32(len(adj)))
		_, n := w.codec.encodeInto(w.cur[w.curUsed+recHeaderSize:w.pageSize], 0, false, adj)
		w.curUsed += recHeaderSize + n
		w.curRecs++
		return start
	}
	// Oversized record: close the current shared page, then emit a run.
	w.flush(kindSlotted, 0, w.pageFirst())
	start := w.emitted
	w.ensurePage()
	w.curFirst = id
	putUint32(w.cur[pageHeaderSize:], id)
	putUint32(w.cur[pageHeaderSize+4:], uint32(len(adj)))
	vals, _ := w.codec.encodeInto(w.cur[pageHeaderSize+recHeaderSize:w.pageSize], 0, false, adj)
	w.curRecs = 1
	var startCount uint32
	if w.codec.countedRuns() {
		startCount = uint32(vals)
	}
	w.flush(kindRunStart, startCount, id)
	prev := adj[vals-1] // vals >= 1: the page holds at least maxValBytes
	rest := adj[vals:]
	for len(rest) > 0 {
		w.ensurePage()
		n, _ := w.codec.encodeInto(w.cur[pageHeaderSize:w.pageSize], prev, true, rest)
		w.flush(kindRunCont, uint32(n), NoRecord)
		prev = rest[n-1]
		rest = rest[n:]
	}
	return start
}

func (w *pageWriter) pageFirst() uint32 {
	if w.curRecs == 0 {
		return NoRecord
	}
	return w.curFirst
}

// finish flushes any partial page and returns pages plus the per-page
// first-record directory (the pages slice is nil in sink mode).
func (w *pageWriter) finish() ([][]byte, []uint32) {
	if w.cur != nil && w.curRecs > 0 {
		w.flush(kindSlotted, 0, w.pageFirst())
	} else {
		w.cur = nil
	}
	return w.pages, w.firstRec
}

// DecodeRange decodes the records of a contiguous span of raw pages
// (len(data) must be a multiple of pageSize) under the given codec. The
// span must begin at a record boundary and must not cut a record run short;
// use Store.AlignedRange to obtain such spans.
func DecodeRange(c Codec, pageSize int, data []byte) ([]VertexRec, error) {
	recs, _, err := DecodeRangeAppend(nil, nil, c, pageSize, data)
	return recs, err
}

// DecodeRangeAppend is DecodeRange appending records onto dst and neighbor
// values onto arena; each returned record's Adj sub-slices the returned
// arena, so callers recycling both slices across reads allocate nothing at
// steady state. On error the records decoded so far are still returned
// (with valid Adj views) alongside the error.
func DecodeRangeAppend(dst []VertexRec, arena []uint32, c Codec, pageSize int, data []byte) ([]VertexRec, []uint32, error) {
	nDst, base := len(dst), len(arena)
	out, arena, err := decodeRange(dst, arena, c, pageSize, data)
	// The arena may have been reallocated mid-decode, so records are
	// repointed into its final backing here: segments are contiguous from
	// base, and each record's segment length survives reallocation.
	off := base
	for i := nDst; i < len(out); i++ {
		n := len(out[i].Adj)
		out[i].Adj = arena[off : off+n : off+n]
		off += n
	}
	return out, arena, err
}

func decodeRange(out []VertexRec, arena []uint32, c Codec, pageSize int, data []byte) ([]VertexRec, []uint32, error) {
	if len(data)%pageSize != 0 {
		return out, arena, fmt.Errorf("%w: %d bytes not page aligned", ErrCorruptPage, len(data))
	}
	numPages := len(data) / pageSize
	for p := 0; p < numPages; p++ {
		page := data[p*pageSize : (p+1)*pageSize]
		numRecs := int(binary.LittleEndian.Uint16(page[0:2]))
		kind := page[2]
		switch kind {
		case kindSlotted:
			off := pageHeaderSize
			for r := 0; r < numRecs; r++ {
				if off+recHeaderSize > pageSize {
					return out, arena, fmt.Errorf("%w: record header beyond page", ErrCorruptPage)
				}
				id := getUint32(page[off:])
				deg := int(getUint32(page[off+4:]))
				off += recHeaderSize
				aStart := len(arena)
				var n int
				var err error
				arena, n, err = c.decodeInto(arena, page[off:], deg, 0, false)
				if err != nil {
					return out, arena, fmt.Errorf("record body of vertex %d: %w", id, err)
				}
				off += n
				out = append(out, VertexRec{ID: id, Adj: arena[aStart:len(arena)]})
			}
		case kindRunStart:
			id := getUint32(page[pageHeaderSize:])
			deg := int(getUint32(page[pageHeaderSize+4:]))
			payload := page[pageHeaderSize+recHeaderSize:]
			count := deg
			if c.countedRuns() {
				count = int(getUint32(page[4:8]))
				if count > deg {
					return out, arena, fmt.Errorf("%w: run start holds %d of %d neighbors", ErrCorruptPage, count, deg)
				}
			} else if max := len(payload) / c.maxValBytes(); count > max {
				count = max
			}
			aStart := len(arena)
			var err error
			arena, _, err = c.decodeInto(arena, payload, count, 0, false)
			if err != nil {
				return out, arena, fmt.Errorf("run start of vertex %d: %w", id, err)
			}
			// Consume continuation pages, carrying the delta chain across
			// page boundaries.
			for len(arena)-aStart < deg {
				p++
				if p >= numPages {
					return out, arena, fmt.Errorf("%w: vertex %d needs %d more neighbors", ErrTruncatedRun, id, deg-(len(arena)-aStart))
				}
				page = data[p*pageSize : (p+1)*pageSize]
				if page[2] != kindRunCont {
					return out, arena, fmt.Errorf("%w: expected continuation page", ErrCorruptPage)
				}
				n := int(getUint32(page[4:8]))
				if n > deg-(len(arena)-aStart) {
					return out, arena, fmt.Errorf("%w: continuation holds %d of %d pending neighbors", ErrCorruptPage, n, deg-(len(arena)-aStart))
				}
				var prev uint32
				cont := false
				if len(arena) > aStart {
					prev, cont = arena[len(arena)-1], true
				}
				arena, _, err = c.decodeInto(arena, page[pageHeaderSize:], n, prev, cont)
				if err != nil {
					return out, arena, fmt.Errorf("run continuation of vertex %d: %w", id, err)
				}
			}
			out = append(out, VertexRec{ID: id, Adj: arena[aStart:len(arena)]})
		case kindRunCont:
			if p == 0 {
				return out, arena, ErrMisaligned
			}
			return out, arena, fmt.Errorf("%w: unexpected continuation page at offset %d", ErrCorruptPage, p)
		default:
			return out, arena, fmt.Errorf("%w: unknown page kind %d", ErrCorruptPage, kind)
		}
	}
	return out, arena, nil
}
