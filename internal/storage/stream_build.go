package storage

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/optlab/opt/internal/extsort"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
)

// EdgeScanner is a re-iterable source of undirected edges. Scan must call
// fn once per input edge and may be invoked multiple times (the streaming
// builder makes two passes). Self-loops and duplicates are tolerated.
type EdgeScanner interface {
	Scan(fn func(u, v uint32) error) error
}

// StreamBuildOptions configures BuildFileStreaming.
type StreamBuildOptions struct {
	// PageSize of the store; 0 selects DefaultPageSize.
	PageSize int
	// TempDir holds the external-sort runs and the staged data pages;
	// defaults to the store's directory.
	TempDir string
	// RunSize is the external sorter's in-memory run length in keys
	// (≤ 0 selects the default ~32 MiB). Small values are used by tests to
	// force spills.
	RunSize int
	// DegreeOrder applies the Schank–Wagner relabeling (computed from the
	// first pass's degree counts) before writing. Strongly recommended:
	// every algorithm in the paper assumes it.
	DegreeOrder bool
	// Codec names the page codec ("" selects raw); see Codecs.
	Codec string
}

// BuildFileStreaming builds a store from an edge stream with bounded
// memory: only the degree array, the permutation, the directories (O(V))
// and the external sorter's run buffer are held in RAM — the edge list
// itself never is. This is the preprocessing path for graphs whose edge
// lists exceed memory, per the paper's billion-scale-on-one-PC premise.
//
// Pass 1 counts degrees and determines the vertex count. Pass 2 feeds
// both directions of every edge through an external merge sort keyed by
// (newID(src) << 32) | newID(dst); the sorted stream is deduplicated and
// packed into slotted pages on the fly, with data pages staged to a
// temporary file and assembled into the final store layout at the end.
func BuildFileStreaming(path string, src EdgeScanner, opts StreamBuildOptions) (*Store, error) {
	return BuildFileStreamingContext(context.Background(), path, src, opts)
}

// BuildFileStreamingContext is BuildFileStreaming with cancellation: when
// ctx is done, the build stops within a bounded number of edges (both scan
// passes and the external sort check the context periodically), removes
// nothing it has already staged except via the normal temp-file cleanup,
// and returns an error satisfying errors.Is(err, ctx.Err()).
func BuildFileStreamingContext(ctx context.Context, path string, src EdgeScanner, opts StreamBuildOptions) (*Store, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The per-edge checks are amortised (every few thousand edges), so small
	// inputs might otherwise never observe a cancelled context.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	codec, err := CodecByName(opts.Codec)
	if err != nil {
		return nil, err
	}
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if min := MinPageSizeFor(codec); opts.PageSize < min {
		return nil, fmt.Errorf("storage: page size %d below %s codec minimum %d", opts.PageSize, codec.Name(), min)
	}
	if opts.TempDir == "" {
		opts.TempDir = filepath.Dir(path)
	}

	// ctxTick checks the context every few thousand edges, keeping the
	// check off the per-edge fast path.
	var ticks int
	ctxTick := func() error {
		ticks++
		if ticks&0x1fff != 0 {
			return nil
		}
		return ctx.Err()
	}

	// Pass 1: degrees (duplicate-inclusive — used only for the ordering
	// heuristic and for sizing; exact degrees come from the sorted stream).
	var deg []uint32
	if err := src.Scan(func(u, v uint32) error {
		if err := ctxTick(); err != nil {
			return err
		}
		if u == v {
			return nil
		}
		hi := u
		if v > hi {
			hi = v
		}
		for uint32(len(deg)) <= hi {
			deg = append(deg, 0)
		}
		deg[u]++
		deg[v]++
		return nil
	}); err != nil {
		return nil, fmt.Errorf("storage: streaming pass 1: %w", err)
	}
	n := len(deg)
	if n == 0 {
		return nil, fmt.Errorf("storage: streaming build of an empty edge stream")
	}

	// Ordering permutation: newID[orig].
	newID := make([]uint32, n)
	if opts.DegreeOrder {
		perm := make([]uint32, n)
		for i := range perm {
			perm[i] = uint32(i)
		}
		sort.SliceStable(perm, func(i, j int) bool {
			if deg[perm[i]] != deg[perm[j]] {
				return deg[perm[i]] < deg[perm[j]]
			}
			return perm[i] < perm[j]
		})
		for rank, orig := range perm {
			newID[orig] = uint32(rank)
		}
	} else {
		for i := range newID {
			newID[i] = uint32(i)
		}
	}

	// Pass 2: external sort of both edge directions under the new ids.
	sorter := extsort.NewSorter(opts.TempDir, opts.RunSize)
	sorter.SetContext(ctx)
	if err := src.Scan(func(u, v uint32) error {
		if err := ctxTick(); err != nil {
			return err
		}
		if u == v {
			return nil
		}
		a, b := uint64(newID[u]), uint64(newID[v])
		if err := sorter.Push(a<<32 | b); err != nil {
			return err
		}
		return sorter.Push(b<<32 | a)
	}); err != nil {
		return nil, fmt.Errorf("storage: streaming pass 2: %w", err)
	}

	// Stage data pages to a temp file while consuming the sorted stream.
	stage, err := os.CreateTemp(opts.TempDir, "optstore-stage-*")
	if err != nil {
		return nil, err
	}
	defer func() {
		stage.Close()
		os.Remove(stage.Name())
	}()
	stageW := bufio.NewWriterSize(stage, 1<<20)

	w := newPageWriter(opts.PageSize, codec)
	var pageFirst []uint32
	w.sink = func(page []byte, _ uint32) error {
		_, err := stageW.Write(page)
		return err
	}

	firstPage := make([]uint32, n)
	exactDeg := make([]uint32, n)
	var edges int64

	var curID int64 = -1
	var curAdj []uint32
	var last uint64
	emitRecord := func(id uint32) {
		exactDeg[id] = uint32(len(curAdj))
		edges += int64(len(curAdj))
		firstPage[id] = w.appendRecord(id, curAdj)
		curAdj = curAdj[:0]
	}
	flushThrough := func(nextID int64) {
		// Emit the pending record and empty records for any id gap.
		if curID >= 0 {
			emitRecord(uint32(curID))
			curID++
		} else {
			curID = 0
		}
		for ; curID < nextID; curID++ {
			emitRecord(uint32(curID))
		}
	}
	first := true
	if err := sorter.Sort(func(key uint64) error {
		if !first && key == last {
			return nil // duplicate edge
		}
		first = false
		last = key
		srcID := int64(key >> 32)
		dst := uint32(key)
		if srcID != curID {
			flushThrough(srcID)
		}
		curAdj = append(curAdj, dst)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("storage: streaming sort: %w", err)
	}
	flushThrough(int64(n)) // pending record plus trailing isolated vertices
	w.finish()
	pageFirst = w.firstRec
	if w.sinkErr != nil {
		return nil, w.sinkErr
	}
	if err := stageW.Flush(); err != nil {
		return nil, err
	}

	s := &Store{
		Path:        path,
		PageSize:    opts.PageSize,
		NumVertices: n,
		NumEdges:    edges / 2,
		NumPages:    w.emitted,
		version:     storeVersionV2,
		codec:       codec,
		firstPage:   firstPage,
		degree:      exactDeg,
		pageFirst:   pageFirst,
	}
	// Same O_DIRECT alignment padding as BuildFileCodec: both writers must
	// produce the layout Open documents.
	dirEnd := headerSize + int64(8*n) + int64(4)*int64(w.emitted)
	s.dataOffset = (dirEnd + ssd.DirectAlign - 1) &^ int64(ssd.DirectAlign-1)

	// Assemble the final file: header, directories, padding, then the
	// staged pages.
	out, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 1<<20)
	if err := s.writeHeader(bw); err != nil {
		return nil, err
	}
	if err := s.writeDirectories(bw); err != nil {
		return nil, err
	}
	if pad := s.dataOffset - dirEnd; pad > 0 {
		if _, err := bw.Write(make([]byte, pad)); err != nil {
			return nil, err
		}
	}
	if _, err := stage.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.Copy(bw, bufio.NewReaderSize(stage, 1<<20)); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// GraphScanner adapts an in-memory graph to EdgeScanner (for tests and for
// equivalence checks against BuildFile).
type GraphScanner struct{ G *graph.Graph }

// Scan implements EdgeScanner.
func (g GraphScanner) Scan(fn func(u, v uint32) error) error {
	var err error
	g.G.Edges(func(u, v graph.VertexID) bool {
		err = fn(uint32(u), uint32(v))
		return err == nil
	})
	return err
}

// EdgeListFileScanner scans a whitespace-separated text edge list file
// ("u v" per line, '#'/'%' comments) on every pass — the streaming
// counterpart of the in-memory edge-list reader. Vertex ids are used as
// given (they must be < 2³²); the vertex count becomes maxID+1.
type EdgeListFileScanner struct{ Path string }

// Scan implements EdgeScanner.
func (e EdgeListFileScanner) Scan(fn func(u, v uint32) error) error {
	f, err := os.Open(e.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		i := 0
		for i < len(text) && (text[i] == ' ' || text[i] == '\t') {
			i++
		}
		if i == len(text) || text[i] == '#' || text[i] == '%' {
			continue
		}
		u, rest, err := parseUint32(text[i:])
		if err != nil {
			return fmt.Errorf("storage: edge list line %d: %w", line, err)
		}
		v, _, err := parseUint32(rest)
		if err != nil {
			return fmt.Errorf("storage: edge list line %d: %w", line, err)
		}
		if err := fn(u, v); err != nil {
			return err
		}
	}
	return sc.Err()
}

// parseUint32 reads one base-10 uint32 from the front of s, returning the
// remainder after any following whitespace.
func parseUint32(s string) (uint32, string, error) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	start := i
	var x uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		x = x*10 + uint64(s[i]-'0')
		if x > 1<<32-1 {
			return 0, "", fmt.Errorf("vertex id overflows uint32")
		}
		i++
	}
	if i == start {
		return 0, "", fmt.Errorf("expected a number, got %q", s)
	}
	return uint32(x), s[i:], nil
}
