package storage

import (
	"fmt"

	"github.com/optlab/opt/internal/ssd"
)

// VerifyReport summarises a full-store integrity check.
type VerifyReport struct {
	Vertices     int
	Edges        int64 // directed adjacency entries / 2
	Pages        uint32
	RunPages     uint32 // pages belonging to multi-page records
	SharedPages  uint32 // slotted pages holding ≥ 2 records
	MaxDegree    int
	Asymmetric   int64 // directed entries without a reverse entry
	UnsortedRecs int   // records whose adjacency list is not strictly increasing
}

// Verify scans every data page of the store and checks the on-disk
// invariants:
//
//   - every page range decodes (no truncated runs, no corrupt headers),
//   - records appear exactly once, in id order, matching the vertex
//     directory's first-page and degree entries,
//   - adjacency lists are strictly increasing with no self-loops,
//   - every edge appears in both endpoints' lists (symmetry).
//
// It is the fsck for store files, used by cmd/optinfo -verify.
func Verify(s *Store, dev ssd.PageDevice) (*VerifyReport, error) {
	rep := &VerifyReport{Vertices: s.NumVertices, Pages: s.NumPages}
	// Decode the whole store range by range, tracking record order.
	adj := make(map[uint32][]uint32, s.NumVertices)
	nextID := int64(-1)
	var pid uint32
	for pid < s.NumPages {
		count := s.AlignedRange(pid, 8)
		data, err := dev.ReadPages(pid, count)
		if err != nil {
			return nil, fmt.Errorf("storage: verify read [%d,+%d): %w", pid, count, err)
		}
		recs, err := s.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("storage: verify decode [%d,+%d): %w", pid, count, err)
		}
		for _, r := range recs {
			if int64(r.ID) <= nextID {
				return nil, fmt.Errorf("storage: record %d out of order (previous %d)", r.ID, nextID)
			}
			nextID = int64(r.ID)
			if int(r.ID) >= s.NumVertices {
				return nil, fmt.Errorf("storage: record id %d beyond vertex count %d", r.ID, s.NumVertices)
			}
			if got, want := len(r.Adj), s.DegreeOf(r.ID); got != want {
				return nil, fmt.Errorf("storage: vertex %d degree %d on disk, directory says %d", r.ID, got, want)
			}
			fp := s.FirstPageOf(r.ID)
			if fp < pid || fp >= pid+uint32(count) {
				return nil, fmt.Errorf("storage: vertex %d directory page %d outside its range [%d,+%d)", r.ID, fp, pid, count)
			}
			sorted := true
			for i, x := range r.Adj {
				if x == r.ID {
					return nil, fmt.Errorf("storage: vertex %d has a self-loop", r.ID)
				}
				if int(x) >= s.NumVertices {
					return nil, fmt.Errorf("storage: vertex %d neighbor %d out of range", r.ID, x)
				}
				if i > 0 && x <= r.Adj[i-1] {
					sorted = false
				}
			}
			if !sorted {
				rep.UnsortedRecs++
			}
			if len(r.Adj) > rep.MaxDegree {
				rep.MaxDegree = len(r.Adj)
			}
			adj[r.ID] = r.Adj
		}
		// Page classification.
		for p := pid; p < pid+uint32(count); p++ {
			if !s.StartsRecord(p) {
				rep.RunPages++
			}
		}
		pid += uint32(count)
	}
	if len(adj) != s.NumVertices {
		return nil, fmt.Errorf("storage: decoded %d records, directory says %d", len(adj), s.NumVertices)
	}
	// Symmetry check.
	var entries int64
	for v, ns := range adj {
		entries += int64(len(ns))
		for _, w := range ns {
			if !containsSorted(adj[w], v) {
				rep.Asymmetric++
			}
		}
	}
	rep.Edges = entries / 2
	if rep.Edges != s.NumEdges {
		return nil, fmt.Errorf("storage: %d edges on disk, header says %d", rep.Edges, s.NumEdges)
	}
	if rep.UnsortedRecs > 0 {
		return rep, fmt.Errorf("storage: %d records with unsorted adjacency", rep.UnsortedRecs)
	}
	if rep.Asymmetric > 0 {
		return rep, fmt.Errorf("storage: %d asymmetric adjacency entries", rep.Asymmetric)
	}
	return rep, nil
}

func containsSorted(a []uint32, x uint32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}
