// Package events defines the execution engine's observation vocabulary: a
// small, allocation-free event stream that every Runner emits while a
// triangulation job progresses. It sits below both the engine and the
// metrics packages so that a metrics.Collector can act as a Sink without an
// import cycle (engine → ssd → metrics).
//
// Events are advisory: no algorithm decision may depend on whether a sink
// is attached, and sinks must be safe for concurrent use — the OPT core
// emits from worker goroutines and the device emits from its channel
// goroutines.
package events

import "time"

// Kind identifies what happened.
type Kind uint8

// Event kinds. The N payload field holds the kind-specific count noted in
// parentheses.
const (
	// RunStart marks the beginning of an engine run.
	RunStart Kind = iota
	// RunEnd marks the end of a run (N = total triangles; Elapsed = wall).
	RunEnd
	// IterationStart marks the beginning of one outer-loop iteration or
	// block (N = internal/block pages where known).
	IterationStart
	// IterationEnd marks the end of an iteration (N = triangles found in
	// the iteration; Elapsed = iteration wall time).
	IterationEnd
	// PagesRead reports completed page reads (N = pages).
	PagesRead
	// PagesWritten reports completed page writes (N = pages).
	PagesWritten
	// TrianglesFound reports discovered triangles (N = triangles).
	TrianglesFound
	// Morph reports thread-morphing activity: workers that switched task
	// class during an iteration (N = morph transitions; §3.4).
	Morph
	// CoalescedRead reports one vectored device read that merged several
	// consecutive-page chunk requests of the request list L into a single
	// submission (N = pages covered by the read).
	CoalescedRead
	// PrefetchHit reports read-ahead completions whose data was consumed:
	// the read was issued while another was still in flight, and its chunks
	// went on to be processed (N = reads).
	PrefetchHit
	// PrefetchWasted reports read-ahead completions whose data was dropped
	// — the run was cancelled or the read failed before its chunks could be
	// processed (N = reads).
	PrefetchWasted
	// SubmittedBatch reports one io_uring submission batch: a single
	// io_uring_enter call that pushed several staged reads to the kernel at
	// once (N = SQEs in the batch).
	SubmittedBatch
	// RingDepth reports, once per device open, the depth of the native
	// backend's completion ring (N = SQ entries). Absent when the run uses
	// the portable worker-pool engine.
	RingDepth
	// DirectFallback reports that a native device wanted O_DIRECT but fell
	// back to buffered reads — the store offset or page size is unaligned,
	// or the filesystem rejected the open (N = 1 per open).
	DirectFallback
	// ShardDispatched reports one shard-pair task sent to an agent by the
	// distributed coordinator (Iteration = task index; N = attempt number,
	// 1 for the first dispatch).
	ShardDispatched
	// ShardRetried reports a shard-pair task re-dispatched after an agent
	// failure or a straggler deadline (Iteration = task index; N = attempt
	// number of the replacement dispatch).
	ShardRetried
	// ShardMerged reports a shard-pair task result merged exactly once into
	// the distributed total (Iteration = task index; N = triangles the task
	// contributed; Elapsed = the task's agent-side wall time).
	ShardMerged
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case RunStart:
		return "run-start"
	case RunEnd:
		return "run-end"
	case IterationStart:
		return "iteration-start"
	case IterationEnd:
		return "iteration-end"
	case PagesRead:
		return "pages-read"
	case PagesWritten:
		return "pages-written"
	case TrianglesFound:
		return "triangles-found"
	case Morph:
		return "morph"
	case CoalescedRead:
		return "coalesced-read"
	case PrefetchHit:
		return "prefetch-hit"
	case PrefetchWasted:
		return "prefetch-wasted"
	case SubmittedBatch:
		return "submitted-batch"
	case RingDepth:
		return "ring-depth"
	case DirectFallback:
		return "direct-fallback"
	case ShardDispatched:
		return "shard-dispatched"
	case ShardRetried:
		return "shard-retried"
	case ShardMerged:
		return "shard-merged"
	default:
		return "unknown-event"
	}
}

// MarshalText implements encoding.TextMarshaler, so JSON-encoded events —
// the optd SSE stream, persisted job reports — carry stable kind names
// instead of raw integers that would shift whenever a kind is inserted.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one observation. The zero Iteration is the first iteration;
// events not tied to an iteration (RunStart/RunEnd, device-level I/O)
// leave it at -1 when the emitter knows no iteration, but emitters that
// lack the context may simply leave it 0 — consumers must treat Iteration
// as informational only.
type Event struct {
	Kind      Kind
	Algorithm string        // registry name of the emitting runner, if known
	Iteration int           // outer-loop iteration / block index
	N         int64         // kind-specific count (see Kind docs)
	Elapsed   time.Duration // kind-specific duration (see Kind docs)
}

// Sink receives events. Implementations must be safe for concurrent use
// and must not block: emitters sit on hot paths.
type Sink interface {
	Event(e Event)
}

// Func adapts a function to Sink. The function must be safe for concurrent
// use.
type Func func(e Event)

// Event implements Sink.
func (f Func) Event(e Event) { f(e) }

// multi fans one event out to several sinks in order.
type multi []Sink

// Event implements Sink.
func (m multi) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Tee combines sinks into one, dropping nils. It returns nil when no
// non-nil sink remains, so emitters keep their cheap `if sink != nil`
// guard.
func Tee(sinks ...Sink) Sink {
	var ms multi
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	}
	return ms
}
