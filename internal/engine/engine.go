// Package engine defines the unified execution contract every disk-based
// triangulation algorithm in this repository plugs into. The paper's §3.5
// observation — EdgeIterator, VertexIterator and even MGT are all instances
// of one generic framework — generalises across the whole comparison suite:
// every method is a Runner that consumes a slotted-page store through a
// PageDevice under one Options/Result shape, honours context cancellation,
// and reports progress through an events.Sink. The public API dispatches
// through the name→Runner registry instead of a per-algorithm switch, so
// new backends (shards, remote stores, new algorithms) register themselves
// and become reachable from every entry point at once.
package engine

import (
	"context"
	"fmt"
	"time"

	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// Model selects the pluggable iterator model for runners that support one
// (§2.2, §3.5). Runners without model support ignore it; Validate rejects a
// non-default model for them.
type Model int

// Iterator models.
const (
	// ModelEdge intersects n≻(u) ∩ n≻(v) per edge — the default (§5.1).
	ModelEdge Model = iota
	// ModelVertex checks pairs (v, w) ∈ n≻(u)² against E.
	ModelVertex
	// ModelMGTInstance is the §3.5 degenerate framework instantiation.
	ModelMGTInstance
)

// Options is the engine-wide run configuration subsuming the per-package
// option structs. Zero values select per-runner defaults.
type Options struct {
	// Model selects the iterator model for runners that support one.
	Model Model
	// Threads is the worker count for parallel runners (0 = runner
	// default).
	Threads int
	// MemoryPages is the buffer budget m in pages. When 0, MemoryFraction
	// applies. Run resolves it before the Runner sees the options.
	MemoryPages int
	// MemoryFraction sets the budget as a fraction of the store size
	// (0 selects the paper's 15% default; must otherwise lie in (0, 1]).
	MemoryFraction float64
	// QueueDepth is the FlashSSD channel parallelism (0 = default 8).
	QueueDepth int
	// MaxCoalescePages caps the pages the OPT I/O scheduler merges into one
	// vectored read (0 = default 32, clamped to the external area; 1
	// disables coalescing). Runners without an I/O scheduler ignore it.
	MaxCoalescePages int
	// PrefetchDepth bounds the coalesced reads the OPT I/O scheduler keeps
	// in flight (0 = QueueDepth; 1 disables read-ahead). Runners without an
	// I/O scheduler ignore it.
	PrefetchDepth int
	// Latency simulates device latency on every page access.
	Latency ssd.Latency
	// DisableMorphing turns off thread morphing (OPT only; Figure 4).
	DisableMorphing bool
	// OnTriangles, when non-nil, receives every triangle in the nested
	// representation ⟨u, v, {w…}⟩. It must be safe for concurrent calls.
	// Validate rejects it for counting-only runners.
	OnTriangles func(u, v uint32, ws []uint32)
	// CollectIterStats records per-iteration timings where supported.
	CollectIterStats bool
	// Codec, when non-empty, requires the store to have been built with the
	// named page codec (see storage.Codecs); Run rejects a mismatch before
	// dispatch. It documents a throughput assumption — e.g. a job tuned for
	// deltavarint page counts — rather than converting the store.
	Codec string
	// Backend selects how the store device reaches the disk: "portable",
	// "native", "auto", or empty for the ssd package's default resolution
	// (the OPT_BACKEND environment variable, then portable). Validate
	// rejects unknown names; callers that open the device themselves pass
	// the same value to Store.DeviceBackend.
	Backend string
	// TempDir holds working files for runners that rewrite the graph.
	TempDir string
	// Events receives progress events (nil disables the event layer).
	Events events.Sink
	// ShardGrid selects the 2D vertex-block grid dimension g of the
	// distributed layer (DESIGN.md §15): the vertex id space splits into g
	// contiguous blocks and a run is restricted to one block-pair task.
	// 0 disables sharding (and is the only value runners without shard
	// support accept); 1 is a single task covering the whole store.
	ShardGrid int
	// ShardI and ShardJ are the block-pair coordinates of the task to run,
	// 0 ≤ ShardI ≤ ShardJ < ShardGrid. Both must be 0 when ShardGrid is 0.
	ShardI, ShardJ int
}

// IterationStat describes one outer-loop iteration of an overlapped run
// (Figure 4). It lives here so both the core framework and the public API
// share one definition.
type IterationStat struct {
	Index         int
	InternalPages int           // pages covered by the internal area
	ReusedPages   int           // of those, served from buffered frames (Δin)
	ExternalReqs  int           // |L_i|: external chunk requests
	InternalTime  time.Duration // busy time of the main (internal-home) thread side
	ExternalTime  time.Duration // busy time of the callback (external-home) thread side
	LoadTime      time.Duration // wall time of the internal-area load phase
	PhaseVirtual  time.Duration // virtual-core makespan of the triangulation phase
	Elapsed       time.Duration // wall (or modelled) time of the whole iteration
}

// Result is the uniform run report. On cancellation or device failure a
// Runner returns a partial Result alongside the error, so callers can
// report progress made before the interruption.
type Result struct {
	// Algorithm is the registry name that produced the result.
	Algorithm string
	// Triangles is the triangle count (so far, on a partial result).
	Triangles int64
	// Iterations is the number of completed outer-loop iterations/blocks.
	Iterations int
	// Elapsed is the wall-clock time, including simulated latency.
	Elapsed time.Duration
	// PagesRead and PagesWritten are the I/O volumes in pages.
	PagesRead, PagesWritten int64
	// ReusedPages is the Δin buffered-page credit (OPT only).
	ReusedPages int64
	// IntersectOps is the Eq. 3 min-model CPU cost.
	IntersectOps int64
	// IterStats is populated when Options.CollectIterStats is set.
	IterStats []IterationStat
}

// Runner executes one triangulation algorithm over a store whose data
// pages are served by dev. Implementations must honour ctx: on
// cancellation they return promptly (within one iteration) with a partial
// Result and an error satisfying errors.Is(err, ctx.Err()), and must not
// leak goroutines on any path.
type Runner interface {
	Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts Options) (*Result, error)
}

// Budget resolves the buffer budget in pages for st: MemoryPages when set,
// otherwise MemoryFraction (default 0.15) of the store, minimum 2.
func (o Options) Budget(st *storage.Store) int {
	if o.MemoryPages > 0 {
		return o.MemoryPages
	}
	f := o.MemoryFraction
	if f <= 0 {
		f = 0.15
	}
	m := int(float64(st.NumPages) * f)
	if m < 2 {
		m = 2
	}
	return m
}

// Validate checks the options against the capabilities of the runner they
// are destined for. It is the single validation point for every dispatch
// path. Every rejection names the offending field as Options.<Field>, so
// callers surfacing the error (the optd admission layer, CLI front-ends)
// report a uniform, greppable message regardless of which knob was bad.
func (o Options) Validate(info Info) error {
	nonNegative := []struct {
		field string
		v     int
	}{
		{"Threads", o.Threads},
		{"QueueDepth", o.QueueDepth},
		{"MemoryPages", o.MemoryPages},
		{"MaxCoalescePages", o.MaxCoalescePages},
		{"PrefetchDepth", o.PrefetchDepth},
	}
	for _, k := range nonNegative {
		if k.v < 0 {
			return fmt.Errorf("engine: Options.%s must be non-negative, got %d", k.field, k.v)
		}
	}
	if o.ShardGrid < 0 {
		return fmt.Errorf("engine: Options.ShardGrid must be non-negative, got %d", o.ShardGrid)
	}
	if (o.ShardGrid != 0 || o.ShardI != 0 || o.ShardJ != 0) && !info.Shards {
		return fmt.Errorf("engine: Options.ShardGrid is unsupported by %s: it has no 2D shard decomposition", info.Name)
	}
	if o.ShardGrid == 0 {
		if o.ShardI != 0 || o.ShardJ != 0 {
			return fmt.Errorf("engine: Options.ShardI/ShardJ = (%d, %d) require Options.ShardGrid > 0", o.ShardI, o.ShardJ)
		}
	} else if o.ShardI < 0 || o.ShardJ < o.ShardI || o.ShardJ >= o.ShardGrid {
		return fmt.Errorf("engine: Options.ShardI/ShardJ = (%d, %d) outside 0 ≤ i ≤ j < %d", o.ShardI, o.ShardJ, o.ShardGrid)
	}
	if f := o.MemoryFraction; f < 0 || f > 1 {
		return fmt.Errorf("engine: Options.MemoryFraction must lie in (0, 1], got %v", f)
	}
	if o.OnTriangles != nil && !info.ListsTriangles {
		return fmt.Errorf("engine: Options.OnTriangles must be nil for %s: it is a counting method and cannot list triangles", info.Name)
	}
	if o.Model != ModelEdge && !info.Models {
		return fmt.Errorf("engine: Options.Model is unsupported by %s: it has no iterator model selection", info.Name)
	}
	if o.Codec != "" {
		if _, err := storage.CodecByName(o.Codec); err != nil {
			return fmt.Errorf("engine: Options.Codec: %w", err)
		}
	}
	if o.Backend != "" {
		if _, err := ssd.ParseBackend(o.Backend); err != nil {
			return fmt.Errorf("engine: Options.Backend: %w", err)
		}
	}
	return nil
}

// ValidateFor validates opts against the runner registered under name
// without dispatching a run. Admission layers (the optd job manager) use
// it to reject malformed jobs at submit time through the same single
// validation point engine.Run applies before dispatch.
func ValidateFor(name string, opts Options) error {
	_, info, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("engine: unknown algorithm %q (registered: %v)", name, Names())
	}
	return opts.Validate(info)
}

// Run validates opts, resolves the memory budget, and dispatches to the
// registered Runner for name. It is the single code path every algorithm
// invocation flows through. The returned Result carries the registry name
// and wall-clock elapsed time; on cancellation or failure it may be a
// partial result accompanying a non-nil error.
func Run(ctx context.Context, name string, st *storage.Store, dev ssd.PageDevice, opts Options) (*Result, error) {
	r, info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q (registered: %v)", name, Names())
	}
	if err := opts.Validate(info); err != nil {
		return nil, err
	}
	if opts.Codec != "" && st.CodecName() != opts.Codec {
		return nil, fmt.Errorf("engine: Options.Codec is %q but the store was built with %q", opts.Codec, st.CodecName())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts.MemoryPages = opts.Budget(st)
	if sink := opts.Events; sink != nil {
		sink.Event(events.Event{Kind: events.RunStart, Algorithm: name, Iteration: -1})
	}
	start := time.Now()
	res, err := r.Run(ctx, st, dev, opts)
	if res == nil && err == nil {
		return nil, fmt.Errorf("engine: runner %s returned neither result nor error", name)
	}
	if res != nil {
		res.Algorithm = name
		res.Elapsed = time.Since(start)
		if sink := opts.Events; sink != nil {
			sink.Event(events.Event{Kind: events.RunEnd, Algorithm: name, Iteration: -1, N: res.Triangles, Elapsed: res.Elapsed})
		}
	}
	return res, err
}
