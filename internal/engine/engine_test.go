package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/optlab/opt/internal/events"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// fakeRunner records the options it was dispatched with and returns a
// canned result/error pair.
type fakeRunner struct {
	mu     sync.Mutex
	got    Options
	called int
	res    *Result
	err    error
}

func (f *fakeRunner) Run(ctx context.Context, st *storage.Store, dev ssd.PageDevice, opts Options) (*Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.got = opts
	f.called++
	return f.res, f.err
}

// recordingSink collects events in order.
type recordingSink struct {
	mu  sync.Mutex
	evs []events.Event
}

func (s *recordingSink) Event(e events.Event) {
	s.mu.Lock()
	s.evs = append(s.evs, e)
	s.mu.Unlock()
}

func TestBudget(t *testing.T) {
	st := &storage.Store{NumPages: 100}
	cases := []struct {
		opts Options
		want int
	}{
		{Options{MemoryPages: 7}, 7},
		{Options{MemoryPages: 7, MemoryFraction: 0.5}, 7}, // explicit pages win
		{Options{MemoryFraction: 0.5}, 50},
		{Options{}, 15},                     // paper default 15%
		{Options{MemoryFraction: 0.001}, 2}, // floor of 2
	}
	for _, tc := range cases {
		if got := tc.opts.Budget(st); got != tc.want {
			t.Errorf("Budget(%+v) = %d, want %d", tc.opts, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	full := Info{Name: "full", ListsTriangles: true, Models: true, Parallel: true}
	counting := Info{Name: "counting"}
	sharded := Info{Name: "sharded", Shards: true}
	cb := func(u, v uint32, ws []uint32) {}
	cases := []struct {
		name    string
		opts    Options
		info    Info
		wantErr bool
	}{
		{"zero value", Options{}, full, false},
		{"negative threads", Options{Threads: -1}, full, true},
		{"negative queue depth", Options{QueueDepth: -1}, full, true},
		{"negative memory pages", Options{MemoryPages: -1}, full, true},
		{"fraction above one", Options{MemoryFraction: 1.5}, full, true},
		{"negative fraction", Options{MemoryFraction: -0.1}, full, true},
		{"fraction of exactly one", Options{MemoryFraction: 1}, full, false},
		{"triangles from counting-only method", Options{OnTriangles: cb}, counting, true},
		{"triangles from listing method", Options{OnTriangles: cb}, full, false},
		{"model on model-less method", Options{Model: ModelVertex}, counting, true},
		{"model on modelled method", Options{Model: ModelVertex}, full, false},
		{"known codec", Options{Codec: "deltavarint"}, full, false},
		{"unknown codec", Options{Codec: "zstd"}, full, true},
		{"shard grid on sharded method", Options{ShardGrid: 4, ShardI: 1, ShardJ: 3}, sharded, false},
		{"shard grid on unsharded method", Options{ShardGrid: 4}, full, true},
		{"shard i without grid", Options{ShardI: 1, ShardJ: 1}, sharded, true},
		{"negative shard grid", Options{ShardGrid: -1}, sharded, true},
		{"inverted shard pair", Options{ShardGrid: 4, ShardI: 3, ShardJ: 1}, sharded, true},
		{"shard j at grid", Options{ShardGrid: 4, ShardI: 0, ShardJ: 4}, sharded, true},
		{"negative shard i", Options{ShardGrid: 4, ShardI: -1, ShardJ: 0}, sharded, true},
		{"diagonal shard", Options{ShardGrid: 4, ShardI: 2, ShardJ: 2}, sharded, false},
	}
	for _, tc := range cases {
		err := tc.opts.Validate(tc.info)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidateNamesOffendingField pins the error-message contract: every
// rejection names the offending knob as Options.<Field>, uniformly across
// the original knobs and the PR 3 additions.
func TestValidateNamesOffendingField(t *testing.T) {
	full := Info{Name: "full", ListsTriangles: true, Models: true, Parallel: true}
	counting := Info{Name: "counting"}
	cases := []struct {
		field string
		opts  Options
		info  Info
	}{
		{"Threads", Options{Threads: -1}, full},
		{"QueueDepth", Options{QueueDepth: -1}, full},
		{"MemoryPages", Options{MemoryPages: -1}, full},
		{"MaxCoalescePages", Options{MaxCoalescePages: -1}, full},
		{"PrefetchDepth", Options{PrefetchDepth: -1}, full},
		{"MemoryFraction", Options{MemoryFraction: 2}, full},
		{"OnTriangles", Options{OnTriangles: func(u, v uint32, ws []uint32) {}}, counting},
		{"Model", Options{Model: ModelVertex}, counting},
		{"Codec", Options{Codec: "zstd"}, full},
		{"ShardGrid", Options{ShardGrid: 2}, full},
		{"ShardI", Options{ShardI: 1}, Info{Name: "sharded", Shards: true}},
	}
	for _, tc := range cases {
		err := tc.opts.Validate(tc.info)
		if err == nil {
			t.Errorf("%s: invalid options accepted", tc.field)
			continue
		}
		if want := "Options." + tc.field; !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %q does not name %q", tc.field, err, want)
		}
	}
}

func TestValidateFor(t *testing.T) {
	Register(Info{Name: "test-validatefor"}, &fakeRunner{res: &Result{}})
	if err := ValidateFor("test-validatefor", Options{}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	err := ValidateFor("test-validatefor", Options{Threads: -1})
	if err == nil || !strings.Contains(err.Error(), "Options.Threads") {
		t.Fatalf("ValidateFor = %v, want Options.Threads error", err)
	}
	err = ValidateFor("test-no-such-runner", Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("ValidateFor = %v, want unknown-algorithm error", err)
	}
}

func TestRegistry(t *testing.T) {
	r := &fakeRunner{res: &Result{}}
	Register(Info{Name: "test-registry"}, r)
	got, info, ok := Lookup("test-registry")
	if !ok || got != r || info.Name != "test-registry" {
		t.Fatalf("Lookup = %v, %+v, %v", got, info, ok)
	}
	found := false
	for _, n := range Names() {
		if n == "test-registry" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing test-registry", Names())
	}

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register(Info{Name: "test-registry"}, r) })
	mustPanic("empty name", func() { Register(Info{}, r) })
	mustPanic("nil runner", func() { Register(Info{Name: "test-nil"}, nil) })
}

func TestRunUnknownAlgorithm(t *testing.T) {
	st := &storage.Store{NumPages: 10}
	res, err := Run(context.Background(), "no-such-algorithm", st, nil, Options{})
	if err == nil || res != nil {
		t.Fatalf("Run = %v, %v; want nil result and error", res, err)
	}
	if !strings.Contains(err.Error(), "unknown algorithm") || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("error %q should name the registered algorithms", err)
	}
}

func TestRunDispatch(t *testing.T) {
	fake := &fakeRunner{res: &Result{Triangles: 42, Iterations: 3}}
	Register(Info{Name: "test-dispatch", ListsTriangles: true}, fake)

	st := &storage.Store{NumPages: 100}
	sink := &recordingSink{}
	res, err := Run(context.Background(), "test-dispatch", st, nil, Options{
		MemoryFraction: 0.5,
		Events:         sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fake.called != 1 {
		t.Fatalf("runner called %d times", fake.called)
	}
	if fake.got.MemoryPages != 50 {
		t.Errorf("runner saw MemoryPages = %d, want resolved budget 50", fake.got.MemoryPages)
	}
	if res.Algorithm != "test-dispatch" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
	if res.Triangles != 42 || res.Iterations != 3 {
		t.Errorf("result %+v not passed through", res)
	}
	if res.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", res.Elapsed)
	}
	if len(sink.evs) != 2 ||
		sink.evs[0].Kind != events.RunStart ||
		sink.evs[1].Kind != events.RunEnd {
		t.Fatalf("events = %+v, want [RunStart RunEnd]", sink.evs)
	}
	if sink.evs[1].N != 42 || sink.evs[1].Algorithm != "test-dispatch" {
		t.Errorf("RunEnd event = %+v", sink.evs[1])
	}
}

func TestRunValidatesCentrally(t *testing.T) {
	fake := &fakeRunner{res: &Result{}}
	Register(Info{Name: "test-validate"}, fake)
	st := &storage.Store{NumPages: 10}
	cases := []Options{
		{Threads: -1},
		{QueueDepth: -1},
		{MemoryPages: -1},
		{MemoryFraction: 1.5},
		{OnTriangles: func(u, v uint32, ws []uint32) {}}, // counting-only info
		{Model: ModelVertex},                             // model-less info
	}
	for i, opts := range cases {
		if _, err := Run(context.Background(), "test-validate", st, nil, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if fake.called != 0 {
		t.Fatalf("runner reached %d times despite invalid options", fake.called)
	}
}

// TestRunRejectsCodecMismatch pins the Options.Codec contract: a run that
// requires a specific page codec is rejected before dispatch when the store
// was built with a different one (a zero-value Store reports raw).
func TestRunRejectsCodecMismatch(t *testing.T) {
	fake := &fakeRunner{res: &Result{}}
	Register(Info{Name: "test-codec"}, fake)
	st := &storage.Store{NumPages: 10}
	if _, err := Run(context.Background(), "test-codec", st, nil, Options{Codec: storage.CodecRaw}); err != nil {
		t.Fatalf("matching codec rejected: %v", err)
	}
	_, err := Run(context.Background(), "test-codec", st, nil, Options{Codec: storage.CodecDeltaVarint})
	if err == nil || !strings.Contains(err.Error(), "Options.Codec") {
		t.Fatalf("codec mismatch err = %v, want it to name Options.Codec", err)
	}
	if fake.called != 1 {
		t.Fatalf("runner called %d times, want 1 (the matching run only)", fake.called)
	}
}

func TestRunPartialResultOnError(t *testing.T) {
	boom := errors.New("boom")
	fake := &fakeRunner{res: &Result{Triangles: 7, Iterations: 1}, err: boom}
	Register(Info{Name: "test-partial"}, fake)
	st := &storage.Store{NumPages: 10}
	res, err := Run(context.Background(), "test-partial", st, nil, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if res == nil || res.Triangles != 7 {
		t.Fatalf("partial result %+v not passed through", res)
	}
	if res.Algorithm != "test-partial" {
		t.Errorf("partial result Algorithm = %q", res.Algorithm)
	}
}

func TestRunPreCancelled(t *testing.T) {
	fake := &fakeRunner{res: &Result{}}
	Register(Info{Name: "test-cancelled"}, fake)
	st := &storage.Store{NumPages: 10}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, "test-cancelled", st, nil, Options{})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("Run = %v, %v; want nil result and context.Canceled", res, err)
	}
	if fake.called != 0 {
		t.Fatal("runner dispatched despite cancelled context")
	}
}

func TestRunNilNilRunner(t *testing.T) {
	Register(Info{Name: "test-nilnil"}, &fakeRunner{})
	st := &storage.Store{NumPages: 10}
	if _, err := Run(context.Background(), "test-nilnil", st, nil, Options{}); err == nil {
		t.Fatal("runner returning (nil, nil) must surface an error")
	}
}
