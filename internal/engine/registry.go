package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Info describes a registered runner's identity and capabilities, used for
// central option validation and for listing.
type Info struct {
	// Name is the registry key; it matches the public Algorithm.String()
	// spelling ("OPT", "OPT_serial", "MGT", "CC-Seq", "CC-DS",
	// "GraphChi-Tri").
	Name string
	// ListsTriangles reports whether the runner can deliver triangles
	// through Options.OnTriangles (GraphChi-Tri is counting-only).
	ListsTriangles bool
	// Models reports whether the runner honours Options.Model.
	Models bool
	// Parallel reports whether the runner uses Options.Threads.
	Parallel bool
	// Shards reports whether the runner honours the Options.ShardGrid /
	// ShardI / ShardJ block-pair restriction of the distributed layer.
	Shards bool
}

var (
	regMu   sync.RWMutex
	runners = map[string]Runner{}
	infos   = map[string]Info{}
)

// Register adds a Runner under info.Name. Algorithm packages call it from
// init(); registering a duplicate or empty name panics, as that is a
// programming error caught at process start.
func Register(info Info, r Runner) {
	if info.Name == "" || r == nil {
		panic("engine: Register with empty name or nil runner")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := runners[info.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate runner %q", info.Name))
	}
	runners[info.Name] = r
	infos[info.Name] = info
}

// Lookup returns the Runner and Info registered under name.
func Lookup(name string) (Runner, Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := runners[name]
	return r, infos[name], ok
}

// Names returns every registered runner name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
