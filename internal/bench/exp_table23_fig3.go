package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/optlab/opt/internal/baselines/cc"
	"github.com/optlab/opt/internal/core"
	"github.com/optlab/opt/internal/diskio"
	"github.com/optlab/opt/internal/gen"
	"github.com/optlab/opt/internal/graph"
	"github.com/optlab/opt/internal/ssd"
	"github.com/optlab/opt/internal/storage"
)

// fig3Datasets are the four datasets of Figures 3–6 (YAHOO is Table 6's).
var fig3Datasets = []string{"lj", "orkut", "twitter", "uk"}

// bufferSweep is the 5%–25% memory-budget sweep of Figures 3a and 5.
var bufferSweep = []float64{0.05, 0.10, 0.15, 0.20, 0.25}

// Table2 reports the dataset statistics (paper Table 2) for the proxies.
func Table2(h *Harness) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Basic statistics on the datasets (R-MAT proxies; paper originals in parentheses)",
		Header: []string{"dataset", "|V|", "|E|", "#triangles", "density", "paper |V|", "paper |E|", "paper #tri"},
	}
	for _, d := range gen.Datasets {
		g, err := h.proxy(d.Name)
		if err != nil {
			return nil, err
		}
		tris := graph.CountTrianglesReference(g)
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprint(g.NumVertices()),
			fmt.Sprint(g.NumEdges()),
			fmt.Sprint(tris),
			fmt.Sprintf("%.1f", float64(g.NumEdges())/float64(g.NumVertices())),
			fmt.Sprint(d.PaperVertices),
			fmt.Sprint(d.PaperEdges),
			fmt.Sprint(d.PaperTris),
		})
	}
	t.Notes = append(t.Notes, "proxies preserve |E|/|V| density at laptop scale (DESIGN.md §3)")
	return t, nil
}

// Fig3a measures the relative elapsed time of OPT_serial versus the ideal
// method while sweeping the buffer from 5% to 25% of the graph size.
func Fig3a(h *Harness) (*Table, error) {
	t := &Table{
		ID:     "fig3a",
		Title:  "Relative elapsed time of OPT_serial vs buffer size (1.00 = ideal)",
		Header: []string{"dataset", "5%", "10%", "15%", "20%", "25%"},
	}
	for _, name := range fig3Datasets {
		g, st, err := h.proxyStore(name)
		if err != nil {
			return nil, err
		}
		ideal, err := best(repetitions, func() (*runResult, error) { return h.runIdeal(g, st) })
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, frac := range bufferSweep {
			frac := frac
			res, err := best(repetitions, func() (*runResult, error) {
				return h.runOPTSerial(st, budget(st, frac), nil)
			})
			if err != nil {
				return nil, err
			}
			if res.Triangles != ideal.Triangles {
				return nil, fmt.Errorf("fig3a %s@%.0f%%: %d != ideal %d", name, frac*100, res.Triangles, ideal.Triangles)
			}
			row = append(row, fmtRatio(float64(res.Elapsed)/float64(ideal.Elapsed)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: ≤1.07 at the 15% elbow, sometimes <1 (negative overhead via the Δin page-reuse credit)")
	return t, nil
}

// Fig3b compares OPT_serial (15% buffer) against the in-memory methods
// (including their load time), relative to ideal.
func Fig3b(h *Harness) (*Table, error) {
	t := &Table{
		ID:     "fig3b",
		Title:  "Relative elapsed time of OPT_serial and in-memory methods (1.00 = ideal = EdgeIterator)",
		Header: []string{"dataset", "EdgeIter", "VertexIter", "AYZ", "OPT_serial@15%"},
	}
	for _, name := range fig3Datasets {
		g, st, err := h.proxyStore(name)
		if err != nil {
			return nil, err
		}
		ideal, err := best(repetitions, func() (*runResult, error) { return h.runIdeal(g, st) })
		if err != nil {
			return nil, err
		}
		rel := func(r *runResult) string { return fmtRatio(float64(r.Elapsed) / float64(ideal.Elapsed)) }

		vi, err := best(repetitions, func() (*runResult, error) { return h.runInMemory(g, st, "vertex") })
		if err != nil {
			return nil, err
		}
		ayz, err := best(repetitions, func() (*runResult, error) { return h.runInMemory(g, st, "ayz") })
		if err != nil {
			return nil, err
		}
		optS, err := best(repetitions, func() (*runResult, error) { return h.runOPTSerial(st, budget(st, 0.15), nil) })
		if err != nil {
			return nil, err
		}
		for _, r := range []*runResult{vi, ayz, optS} {
			if r.Triangles != ideal.Triangles {
				return nil, fmt.Errorf("fig3b %s: count mismatch (%d vs %d)", name, r.Triangles, ideal.Triangles)
			}
		}
		t.Rows = append(t.Rows, []string{name, "1.00", rel(vi), rel(ayz), rel(optS)})
	}
	t.Notes = append(t.Notes,
		"paper: EdgeIterator fastest in memory; VertexIterator ≈1.2×; AYZ slowest despite lower asymptotic bound")
	return t, nil
}

// Table3 measures output-writing times: the difference between a
// triangle-listing run (nested representation to a second file) and the
// counting-only run, for OPT_serial, MGT and CC-Seq.
func Table3(h *Harness) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Output writing times (listing run − counting run)",
		Header: []string{"method", "lj", "orkut", "twitter", "uk"},
	}
	type listedRunner func(st *storage.Store, out core.Output) (*runResult, error)
	methods := []struct {
		name string
		run  listedRunner
	}{
		{"OPT_serial", func(st *storage.Store, out core.Output) (*runResult, error) {
			return h.runOPTSerial(st, budget(st, 0.15), out)
		}},
		{"MGT", func(st *storage.Store, out core.Output) (*runResult, error) {
			return h.runMGT(st, budget(st, 0.15), out)
		}},
		{"CC-Seq", func(st *storage.Store, out core.Output) (*runResult, error) {
			return h.runCC(st, cc.Seq, budget(st, 0.15), out)
		}},
	}
	// Output-device write latency: flash writes cost several times reads.
	writeLat := ssd.Latency{PerRead: 4 * h.cfg.Latency.PerRead, PerPage: 4 * h.cfg.Latency.PerPage}
	for _, m := range methods {
		row := []string{m.name}
		for _, name := range fig3Datasets {
			_, st, err := h.proxyStore(name)
			if err != nil {
				return nil, err
			}
			path := filepath.Join(h.workDir, fmt.Sprintf("out-%s-%s.tri", m.name, name))
			sink, err := newListingSink(path, m.name == "OPT_serial", writeLat, h.cfg.PageSize)
			if err != nil {
				return nil, err
			}
			listed, err := m.run(st, sink)
			if err != nil {
				return nil, err
			}
			if err := sink.Close(); err != nil {
				return nil, err
			}
			os.Remove(path)
			if listed.Triangles == 0 {
				return nil, fmt.Errorf("table3 %s/%s: no triangles listed", m.name, name)
			}
			row = append(row, fmtDur(sink.BlockedTime()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"cells are the time the triangulation threads spent blocked on output-device writes",
		"OPT_serial's sink flushes asynchronously on a background goroutine (write I/O overlaps CPU);",
		"MGT and CC-Seq write synchronously, so every flush stalls the computation")
	return t, nil
}

// listingSink is the Table 3 output sink: a NestedWriter over either a
// synchronous file or an asynchronous background flusher.
type listingSink struct {
	nw       *core.NestedWriter
	f        *diskio.RawFile
	async    *asyncFileWriter
	throttle *throttledWriter
}

func newListingSink(path string, asyncFlush bool, lat ssd.Latency, pageSize int) (*listingSink, error) {
	f, err := diskio.CreateRaw(path)
	if err != nil {
		return nil, err
	}
	s := &listingSink{f: f}
	// The output goes to a second device (§5.2); its write latency is
	// simulated like the input device's so the overlap effect is visible
	// deterministically.
	tw := &throttledWriter{w: f, lat: lat, pageSize: pageSize}
	s.throttle = tw
	if asyncFlush {
		s.async = newAsyncFileWriter(tw)
		s.nw = core.NewNestedWriter(s.async)
	} else {
		s.nw = core.NewNestedWriter(tw)
	}
	return s, nil
}

// throttledWriter charges the device latency model per page written.
type throttledWriter struct {
	w        io.Writer
	lat      ssd.Latency
	pageSize int
	pending  int
	busy     atomic.Int64
}

// Write implements io.Writer.
func (t *throttledWriter) Write(p []byte) (int, error) {
	start := time.Now()
	t.pending += len(p)
	pages := t.pending / t.pageSize
	if pages > 0 {
		t.pending -= pages * t.pageSize
		if c := t.lat.Cost(pages); c > 0 {
			time.Sleep(c)
		}
	}
	n, err := t.w.Write(p)
	t.busy.Add(int64(time.Since(start)))
	return n, err
}

// BusyTime returns the cumulative wall time spent inside Write.
func (t *throttledWriter) BusyTime() time.Duration { return time.Duration(t.busy.Load()) }

// Emit implements core.Output.
func (s *listingSink) Emit(u, v uint32, ws []uint32) { s.nw.Emit(u, v, ws) }

// BlockedTime returns the time the emitting threads spent blocked on
// output writes: the throttle's busy time for synchronous sinks, or the
// channel-send stall time for the asynchronous sink.
func (s *listingSink) BlockedTime() time.Duration {
	if s.async != nil {
		return s.async.SendBlocked()
	}
	return s.throttle.BusyTime()
}

// Close flushes and closes the sink.
func (s *listingSink) Close() error {
	err := s.nw.Close()
	if s.async != nil {
		if aerr := s.async.Close(); err == nil {
			err = aerr
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// asyncFileWriter queues writes to a background goroutine, modelling the
// paper's asynchronous write requests that overlap output I/O with CPU.
type asyncFileWriter struct {
	ch      chan []byte
	done    chan error
	blocked atomic.Int64
}

func newAsyncFileWriter(f io.Writer) *asyncFileWriter {
	w := &asyncFileWriter{ch: make(chan []byte, 256), done: make(chan error, 1)}
	go func() {
		var err error
		for buf := range w.ch {
			if err == nil {
				_, err = f.Write(buf)
			}
		}
		w.done <- err
	}()
	return w
}

// Write implements io.Writer; it hands the data to the flusher goroutine.
func (w *asyncFileWriter) Write(p []byte) (int, error) {
	cp := make([]byte, len(p))
	copy(cp, p)
	start := time.Now()
	w.ch <- cp
	w.blocked.Add(int64(time.Since(start)))
	return len(p), nil
}

// SendBlocked returns the time emitters spent waiting on the flusher queue.
func (w *asyncFileWriter) SendBlocked() time.Duration {
	return time.Duration(w.blocked.Load())
}

// Close waits for the flusher to drain.
func (w *asyncFileWriter) Close() error {
	close(w.ch)
	return <-w.done
}
